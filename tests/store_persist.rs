//! End-to-end tests of the durable artifact store (`stamp batch
//! --store DIR`): a warm process is answered from disk byte-identically,
//! corrupted or truncated logs are repaired in place, `--no-artifact-cache`
//! ignores the flag, and a changed program reuses exactly the phases
//! whose fingerprints held.

use std::path::PathBuf;
use std::process::Command;

use stamp::analyzer::Json;

fn stamp(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// A per-test scratch path (removed up front so reruns start clean).
fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("stamp-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

/// The `NN` of `(NN% warm)` in a batch stderr summary.
fn warm_percent(stderr: &str) -> f64 {
    let tail = stderr.rfind("% warm)").expect("summary has a disk section");
    let head = stderr[..tail].rfind('(').expect("opening paren") + 1;
    stderr[head..tail].parse().expect("a percentage")
}

#[test]
fn warm_process_is_byte_identical_and_served_from_disk() {
    let store = scratch("warm-store");
    let store = store.to_str().unwrap();
    let cold = scratch("warm-cold.json");
    let warm = scratch("warm-warm.json");
    let plain = scratch("warm-plain.json");

    let run = |out: &PathBuf, extra: &[&str]| {
        let mut args = vec!["batch", "--corpus", "--no-timing", "--out", out.to_str().unwrap()];
        args.extend_from_slice(extra);
        stamp(&args)
    };

    let (code, _, stderr) = run(&cold, &["--store", store]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("disk store:"), "{stderr}");
    assert_eq!(warm_percent(&stderr), 0.0, "a cold store has nothing to serve: {stderr}");

    // A second *process* on the same directory: the in-memory store
    // starts empty, so ≥50% of its fills must come from disk.
    let (code, _, stderr) = run(&warm, &["--store", store]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(warm_percent(&stderr) >= 50.0, "warm disk-hit rate: {stderr}");

    let (code, _, stderr) = run(&plain, &[]);
    assert_eq!(code, Some(0), "{stderr}");

    let cold = std::fs::read(&cold).unwrap();
    let warm_bytes = std::fs::read(&warm).unwrap();
    let plain = std::fs::read(&plain).unwrap();
    assert_eq!(cold, warm_bytes, "warm results must be byte-identical to cold");
    assert_eq!(cold, plain, "stored results must be byte-identical to storeless");
}

#[test]
fn corrupted_and_truncated_logs_recover_without_wrong_results() {
    let store_dir = scratch("corrupt-store");
    let store = store_dir.to_str().unwrap();
    let cold = scratch("corrupt-cold.json");
    let rerun = scratch("corrupt-rerun.json");

    let (code, _, stderr) = stamp(&[
        "batch",
        "--corpus",
        "--no-timing",
        "--out",
        cold.to_str().unwrap(),
        "--store",
        store,
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    let log = store_dir.join("artifacts.log");
    let pristine = std::fs::read(&log).unwrap();
    assert!(pristine.len() > 64, "the corpus run persisted artifacts");

    // Flip one byte mid-log: everything from the damaged record on is
    // dropped with a warning and recomputed — never a crash, never a
    // wrong result.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&log, &bytes).unwrap();
    let (code, _, stderr) = stamp(&[
        "batch",
        "--corpus",
        "--no-timing",
        "--out",
        rerun.to_str().unwrap(),
        "--store",
        store,
    ]);
    assert_eq!(code, Some(0), "corruption must not fail the run: {stderr}");
    assert!(stderr.contains("corrupt or truncated record"), "{stderr}");
    assert_eq!(std::fs::read(&cold).unwrap(), std::fs::read(&rerun).unwrap());

    // Truncate the (repaired, rewritten) log mid-record: same story.
    let repaired = std::fs::read(&log).unwrap();
    std::fs::write(&log, &repaired[..repaired.len() - 5]).unwrap();
    let (code, _, stderr) = stamp(&[
        "batch",
        "--corpus",
        "--no-timing",
        "--out",
        rerun.to_str().unwrap(),
        "--store",
        store,
    ]);
    assert_eq!(code, Some(0), "truncation must not fail the run: {stderr}");
    assert!(stderr.contains("corrupt or truncated record"), "{stderr}");
    assert_eq!(std::fs::read(&cold).unwrap(), std::fs::read(&rerun).unwrap());
}

#[test]
fn no_artifact_cache_ignores_the_store_flag() {
    let store_dir = scratch("ignored-store");
    let store = store_dir.to_str().unwrap();
    let out = scratch("ignored-out.json");
    let baseline = scratch("ignored-baseline.json");

    let (code, _, stderr) = stamp(&[
        "batch",
        "--corpus",
        "--no-timing",
        "--no-artifact-cache",
        "--out",
        out.to_str().unwrap(),
        "--store",
        store,
    ]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("ignoring --store"), "{stderr}");
    assert!(!store_dir.exists(), "no store directory is created when the cache is off");

    let (code, _, stderr) =
        stamp(&["batch", "--corpus", "--no-timing", "--out", baseline.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(std::fs::read(&out).unwrap(), std::fs::read(&baseline).unwrap());
}

#[test]
fn changed_program_reuses_exactly_the_phases_whose_fingerprints_held() {
    let store = scratch("incremental-store");
    let task = scratch("incremental-task.s");
    let manifest = scratch("incremental-manifest.json");
    let out1 = scratch("incremental-1.json");
    let out2 = scratch("incremental-2.json");

    // A loop the analysis cannot bound on its own: the trip count
    // comes from the manifest annotation, which feeds only the
    // loop-bound fingerprint (and everything downstream of it).
    std::fs::write(
        &task,
        "        .text\n\
         main:   la   r2, count\n\
         lw   r1, 0(r2)\n\
         loop:   addi r1, r1, -1\n\
         bnez r1, loop\n\
         halt\n\
         .data\n\
         count:  .word 10\n",
    )
    .unwrap();
    let manifest_text = |bound: u64| {
        format!(
            r#"{{"targets": [{{"file": "{}", "loop_bounds": {{"loop": {bound}}}}}]}}"#,
            task.file_name().unwrap().to_str().unwrap()
        )
    };

    std::fs::write(&manifest, manifest_text(10)).unwrap();
    let (code, _, stderr) = stamp(&[
        "batch",
        manifest.to_str().unwrap(),
        "--out",
        out1.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    // Same program, different loop bound, fresh process: only the
    // loop-bound analysis and the path analysis depend on the bound.
    std::fs::write(&manifest, manifest_text(40)).unwrap();
    let (code, _, stderr) = stamp(&[
        "batch",
        manifest.to_str().unwrap(),
        "--out",
        out2.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stderr}");

    let job = |path: &PathBuf| {
        let doc = Json::parse(&std::fs::read_to_string(path).unwrap()).unwrap();
        doc.get("jobs").unwrap().as_arr().unwrap()[0].clone()
    };
    let (job1, job2) = (job(&out1), job(&out2));
    assert_ne!(
        job1.get("wcet").unwrap().as_u64(),
        job2.get("wcet").unwrap().as_u64(),
        "the changed bound changes the WCET"
    );
    let provenance = job2.get("artifacts").unwrap().as_obj().unwrap();
    let of = |phase: &str| {
        provenance
            .get(phase)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("phase {phase} missing from provenance {provenance:?}"))
    };
    for held in ["assemble", "cfg", "context", "value", "cache", "pipeline", "stack"] {
        assert_eq!(of(held), "reused", "{held} fingerprint held across the bound change");
    }
    for changed in ["loopbound", "path"] {
        assert_eq!(of(changed), "computed", "{changed} depends on the bound");
    }
}
