//! Property-based soundness (experiment E0): for randomly generated,
//! structurally terminating programs, on random inputs,
//!
//! * simulated cycles ≤ WCET bound,
//! * simulated stack watermark ≤ stack bound,
//! * final concrete register values lie in the value analysis's abstract
//!   exit state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stamp::ai::{Icfg, VivuConfig};
use stamp::cfg::CfgBuilder;
use stamp::value::{ValueAnalysis, ValueOptions};
use stamp::{assemble, HwConfig, Simulator, StackAnalysis, WcetAnalysis};
use stamp_isa::Reg;
use stamp_suite::{generate, GenConfig};

fn run_one(seed: u64, hw: &HwConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let src = generate(&mut rng, &GenConfig::default());
    let program = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));

    let wcet = WcetAnalysis::new(&program)
        .hw(*hw)
        .run()
        .unwrap_or_else(|e| panic!("seed {seed}: wcet analysis: {e}\n{src}"));
    let stack = StackAnalysis::new(&program)
        .hw(*hw)
        .run()
        .unwrap_or_else(|e| panic!("seed {seed}: stack analysis: {e}"));

    let scratch = program.symbols.addr_of("scratch").expect("scratch symbol");
    for input_round in 0..6 {
        let mut sim = Simulator::new(&program, hw);
        let bytes: Vec<u8> = (0..128).map(|_| rng.gen()).collect();
        sim.write_ram(scratch, &bytes);
        let res = sim
            .run(5_000_000)
            .unwrap_or_else(|e| panic!("seed {seed} round {input_round}: fault {e}"));
        assert!(
            res.cycles <= wcet.wcet,
            "seed {seed} round {input_round}: UNSOUND WCET — simulated {} > bound {}\n{src}",
            res.cycles,
            wcet.wcet
        );
        assert!(
            res.max_stack <= stack.bound,
            "seed {seed} round {input_round}: UNSOUND stack — simulated {} > bound {}",
            res.max_stack,
            stack.bound
        );

        // Value-analysis containment at task exit: the halted pc's block
        // exit state (joined over contexts) must contain the concrete
        // register file.
        let cfg = CfgBuilder::new(&program).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let va = ValueAnalysis::run(&program, hw, &cfg, &icfg, &ValueOptions::default());
        let halt_block = cfg.block_containing(sim.pc()).expect("halted inside a block");
        for r in Reg::all() {
            let concrete = sim.reg(r);
            let contained = icfg
                .nodes_of_block(halt_block)
                .iter()
                .any(|&n| va.exit_state(n).is_some_and(|s| s.reg(r).contains(concrete)));
            assert!(
                contained,
                "seed {seed}: register {r} = {concrete:#x} outside every abstract exit state\n{src}"
            );
        }
    }
}

#[test]
fn random_programs_standard_hw() {
    for seed in 0..12 {
        run_one(seed, &HwConfig::default());
    }
}

#[test]
fn random_programs_no_cache() {
    for seed in 100..106 {
        run_one(seed, &HwConfig::no_cache());
    }
}

#[test]
fn random_programs_bigger_shapes() {
    let cfg = GenConfig { constructs: 10, max_depth: 2, functions: 3, ..GenConfig::default() };
    let hw = HwConfig::default();
    for seed in 200..206 {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).unwrap();
        let wcet = WcetAnalysis::new(&program).hw(hw).run().unwrap();
        let scratch = program.symbols.addr_of("scratch").unwrap();
        for _ in 0..3 {
            let mut sim = Simulator::new(&program, &hw);
            let bytes: Vec<u8> = (0..128).map(|_| rng.gen()).collect();
            sim.write_ram(scratch, &bytes);
            let res = sim.run(5_000_000).unwrap();
            assert!(res.cycles <= wcet.wcet, "seed {seed}: {} > {}", res.cycles, wcet.wcet);
        }
    }
}
