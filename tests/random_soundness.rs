//! Property-based soundness (experiment E0): for randomly generated,
//! structurally terminating programs, on random inputs,
//!
//! * simulated cycles ≤ WCET bound,
//! * simulated stack watermark ≤ stack bound,
//! * final concrete register values lie in the value analysis's abstract
//!   exit state,
//!
//! across a hardware × value-options matrix, not just the default
//! configuration. The whole harness is the shared differential oracle
//! (`stamp_suite::oracle`) — the same code path `stamp fuzz` drives at
//! campaign scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp::assemble;
use stamp_core::Annotations;
use stamp_suite::oracle::{check, OracleConfig};
use stamp_suite::{generate, GenConfig};

fn run_one(ctx: &str, seed: u64, gen_cfg: &GenConfig, oracle_cfg: &OracleConfig) {
    let mut rng = StdRng::seed_from_u64(seed);
    let src = generate(&mut rng, gen_cfg);
    let program = assemble(&src).unwrap_or_else(|e| panic!("{ctx} seed {seed}: {e}\n{src}"));
    let report = check(
        &program,
        &Annotations::new(),
        Some(("scratch", gen_cfg.scratch_bytes())),
        oracle_cfg,
        &mut rng,
    )
    .unwrap_or_else(|v| panic!("{ctx} seed {seed}: {v}\n{src}"));
    assert!(report.worst_cycles > 0, "{ctx} seed {seed}: nothing simulated");
}

#[test]
fn random_programs_standard_hw() {
    let cfg = OracleConfig { rounds: 6, ..OracleConfig::default() };
    for seed in 0..12 {
        run_one("default", seed, &GenConfig::default(), &cfg);
    }
}

/// The hardware × value-options sweep — exactly the variant matrix the
/// fuzz campaign cycles through (`stamp_suite::fuzz::default_variants`),
/// so this property test and `stamp fuzz` can never drift apart. Each
/// point checks the full oracle (WCET + stack + value containment) on
/// fresh seeds; `default` is already covered by the test above.
#[test]
fn random_programs_hw_value_matrix() {
    let sweep = stamp_suite::fuzz::default_variants();
    assert!(sweep.len() > 4, "the fuzz sweep shrank unexpectedly");
    for (i, v) in sweep.into_iter().filter(|v| v.name != "default").enumerate() {
        let cfg = OracleConfig { hw: v.hw, value: v.value, rounds: 4, ..OracleConfig::default() };
        for seed in 0..3u64 {
            let seed = 100 + 17 * i as u64 + seed;
            run_one(&v.name, seed, &GenConfig::default(), &cfg);
        }
    }
}

/// The rich scenario space: deep loop nests, call chains with frame
/// traffic, calls under loops, varied addressing, input-dependent
/// branches.
#[test]
fn random_programs_rich_scenarios() {
    let shapes: [GenConfig; 3] = [
        GenConfig::rich(),
        GenConfig {
            functions: 4,
            call_depth: 4,
            frame_traffic: true,
            calls_in_loops: true,
            ..GenConfig::default()
        },
        GenConfig {
            varied_addressing: true,
            load_branches: true,
            scratch_words: 64,
            ..GenConfig::default()
        },
    ];
    let cfg = OracleConfig { rounds: 4, ..OracleConfig::default() };
    for (i, shape) in shapes.iter().enumerate() {
        for seed in 0..3u64 {
            run_one("rich-shape", 200 + 31 * i as u64 + seed, shape, &cfg);
        }
    }
}

#[test]
fn random_programs_bigger_shapes() {
    let gen_cfg = GenConfig { constructs: 10, max_depth: 2, functions: 3, ..GenConfig::default() };
    // Value containment over six work registers × many contexts is the
    // expensive leg; the big-shape test sticks to the bounds.
    let cfg = OracleConfig { rounds: 3, check_values: false, ..OracleConfig::default() };
    for seed in 200..206 {
        run_one("bigger", seed, &gen_cfg, &cfg);
    }
}
