//! The artifact store's contract: cross-job phase reuse is *invisible*
//! in the deterministic batch results (byte-identical with the store
//! enabled, disabled, cold, warm, serial or parallel), while the timing
//! layer records real sharing — a hardware sweep computes one value
//! fixpoint per target, a warm pass computes nothing at all, and a
//! cached phase *error* replays exactly.

use std::path::Path;

use stamp::analyzer::{run_batch_with, ArtifactStore};
use stamp::suite::parse_manifest;
use stamp::{BatchRequest, WcetAnalysis};

/// A matrix-shaped manifest small enough for debug-mode tests: three
/// targets (one stack-only recursive) under the full hardware sweep.
const MANIFEST: &str = r#"{
  "targets": [
    {"benchmark": "fibcall"},
    {"benchmark": "crc"},
    {"benchmark": "fac"}
  ],
  "variants": [
    {"name": "default"},
    {"name": "no-cache", "hw": "no-cache"},
    {"name": "ideal", "hw": "ideal"}
  ]
}"#;

fn request() -> BatchRequest {
    parse_manifest(MANIFEST, Path::new(".")).unwrap()
}

#[test]
fn cached_uncached_serial_and_parallel_results_are_byte_identical() {
    let request = request();
    let cached = run_batch_with(&request, 4, &ArtifactStore::new()).unwrap();
    let uncached = run_batch_with(&request, 4, &ArtifactStore::disabled()).unwrap();
    let serial = run_batch_with(&request, 1, &ArtifactStore::new()).unwrap();
    assert_eq!(
        cached.results_json().to_string(),
        uncached.results_json().to_string(),
        "artifact reuse must be invisible in results_json"
    );
    assert_eq!(cached.results_json().to_string(), serial.results_json().to_string());
    assert_eq!(cached.errors(), 0);
    // The cached run really did share: fewer misses than requests.
    assert!(cached.artifacts.hits() > 0, "{:?}", cached.artifacts);
    assert_eq!(uncached.artifacts.requests(), 0, "disabled store counts nothing");
}

#[test]
fn hardware_sweep_computes_one_value_fixpoint_per_target() {
    let request = request();
    let store = ArtifactStore::new();
    let report = run_batch_with(&request, 2, &store).unwrap();
    let stats = report.artifacts;
    // 2 WCET targets (fibcall, crc): one value artifact each, shared by
    // the stack chain and all three hardware variants. fac is recursive
    // — its context phase fails (cached once) and no value artifact
    // exists for it.
    assert_eq!(stats.phase("value").unwrap().misses, 2, "{stats:?}");
    assert_eq!(stats.phase("assemble").unwrap().misses, 3);
    assert_eq!(stats.phase("cfg").unwrap().misses, 3);
    // Cache analysis: per WCET target, one artifact for `default` and
    // one shared by `no-cache`/`ideal` (both cacheless).
    assert_eq!(stats.phase("cache").unwrap().misses, 4);
    // Pipeline and path never share across variants (timing differs).
    assert_eq!(stats.phase("pipeline").unwrap().misses, 6);
    assert_eq!(stats.phase("pipeline").unwrap().hits, 0);
    // Overall the cold matrix already reuses a majority of requests.
    assert!(stats.hit_rate() > 0.5, "cold hit rate {:.2}", stats.hit_rate());
}

#[test]
fn warm_pass_reuses_everything_and_stays_identical() {
    let request = request();
    let store = ArtifactStore::new();
    let cold = run_batch_with(&request, 2, &store).unwrap();
    let warm = run_batch_with(&request, 2, &store).unwrap();
    assert_eq!(cold.results_json().to_string(), warm.results_json().to_string());
    assert_eq!(warm.artifacts.misses(), 0, "warm pass must be all hits: {:?}", warm.artifacts);
    assert!(warm.artifacts.hits() > 0);
    assert_eq!(warm.artifacts.hit_rate(), 1.0);
    assert!(
        warm.results.iter().all(|r| r.artifacts_computed() == 0),
        "no job of the warm pass computes anything"
    );
}

#[test]
fn provenance_lives_in_the_timing_layer_only() {
    let request = request();
    let report = run_batch_with(&request, 2, &ArtifactStore::new()).unwrap();
    let deterministic = report.results_json().to_string();
    assert!(!deterministic.contains("artifact"), "{deterministic}");
    let full = report.to_json().to_string();
    assert!(full.contains("\"artifact_cache\""), "{full}");
    assert!(full.contains("\"artifacts\""), "{full}");
    assert!(full.contains("\"reused\"") || full.contains("\"computed\""), "{full}");
    // Per-job provenance adds up.
    for r in &report.results {
        assert_eq!(r.artifacts_computed() + r.artifacts_reused(), r.provenance.len());
        if r.is_ok() {
            assert!(!r.provenance.is_empty(), "job {} has provenance", r.name);
        }
    }
}

#[test]
fn phase_errors_are_cached_and_replay_identically() {
    // Two targets with the *same* unboundable source: the path phase
    // fails once, and the second job reuses the cached error. The
    // rendered error strings must match exactly.
    let manifest = r#"{
      "targets": [
        {"name": "u1", "source": ".text\nmain: la r1, v\nlw r1, 0(r1)\nloop: srli r1, r1, 1\nbnez r1, loop\nhalt\n.data\nv: .space 4\n"},
        {"name": "u2", "source": ".text\nmain: la r1, v\nlw r1, 0(r1)\nloop: srli r1, r1, 1\nbnez r1, loop\nhalt\n.data\nv: .space 4\n"}
      ]
    }"#;
    let request = parse_manifest(manifest, Path::new(".")).unwrap();
    let store = ArtifactStore::new();
    let report = run_batch_with(&request, 1, &store).unwrap();
    assert_eq!(report.errors(), 2);
    let (a, b) = (&report.results[0], &report.results[1]);
    assert_eq!(a.error, b.error, "cached error must replay verbatim");
    assert!(a.error.as_deref().unwrap().contains("wcet"), "{:?}", a.error);
    // The failing phase computed once, hit once.
    let stats = report.artifacts;
    let failing = stats.phase("path").unwrap();
    assert_eq!((failing.misses, failing.hits), (1, 1), "{stats:?}");
    // And the uncached run renders the same errors byte-for-byte.
    let uncached = run_batch_with(&request, 1, &ArtifactStore::disabled()).unwrap();
    assert_eq!(report.results_json().to_string(), uncached.results_json().to_string());
}

#[test]
fn cached_assembly_errors_report_reused_provenance() {
    use stamp::analyzer::PhaseId;
    let manifest = r#"{"targets": [
      {"name": "b1", "source": ".text\nmain: frobnicate r1\n"},
      {"name": "b2", "source": ".text\nmain: frobnicate r1\n"}]}"#;
    let request = parse_manifest(manifest, Path::new(".")).unwrap();
    let report = run_batch_with(&request, 1, &ArtifactStore::new()).unwrap();
    assert_eq!(report.errors(), 2);
    assert_eq!(report.results[0].error, report.results[1].error);
    // Serial run: the first job computes the (failing) assemble
    // artifact, the second reuses the cached error — and says so.
    assert_eq!(report.results[0].provenance, vec![(PhaseId::Assemble, false)]);
    assert_eq!(report.results[1].provenance, vec![(PhaseId::Assemble, true)]);
    let assemble = report.artifacts.phase("assemble").unwrap();
    assert_eq!((assemble.misses, assemble.hits), (1, 1));
}

#[test]
fn single_run_report_matches_between_run_and_run_with() {
    let b = stamp::suite::benchmarks().into_iter().find(|b| b.name == "crc").unwrap();
    let program = b.program();
    let plain = WcetAnalysis::new(&program).annotations(b.annotations()).run().unwrap();
    let store = ArtifactStore::new();
    let first = WcetAnalysis::new(&program).annotations(b.annotations()).run_with(&store).unwrap();
    let second = WcetAnalysis::new(&program).annotations(b.annotations()).run_with(&store).unwrap();
    for report in [&first, &second] {
        assert_eq!(report.wcet, plain.wcet);
        assert_eq!(report.evaluations, plain.evaluations);
        assert_eq!(report.fetch_stats, plain.fetch_stats);
        assert_eq!(report.data_stats, plain.data_stats);
        assert_eq!(report.loop_bounds, plain.loop_bounds);
        assert_eq!(report.block_profile, plain.block_profile);
        assert_eq!(report.worst_path, plain.worst_path);
        assert_eq!(report.ilp_size, plain.ilp_size);
        assert_eq!(report.precision, plain.precision);
    }
    assert!(first.phases.iter().all(|p| !p.reused), "cold store: everything computed");
    assert!(second.phases.iter().all(|p| p.reused), "second run: everything reused");
    assert!(plain.phases.iter().all(|p| !p.reused), "disabled store never reuses");
}

#[test]
fn recursive_stack_fallback_shares_through_the_store() {
    // `fac` is recursive: the context phase errors, the stack tool
    // falls back to call-graph mode, and a second run reuses both the
    // cached context *error* and the stack artifact.
    let b = stamp::suite::benchmarks().into_iter().find(|b| b.name == "fac").unwrap();
    let program = b.program();
    let store = ArtifactStore::new();
    let first =
        stamp::StackAnalysis::new(&program).annotations(b.annotations()).run_with(&store).unwrap();
    let second =
        stamp::StackAnalysis::new(&program).annotations(b.annotations()).run_with(&store).unwrap();
    assert_eq!(first.mode, "callgraph");
    assert_eq!(first.bound, second.bound);
    assert_eq!(first.per_function, second.per_function);
    let stack = store.stats().phase("stack").unwrap();
    assert_eq!((stack.misses, stack.hits), (1, 1));
    let context = store.stats().phase("context").unwrap();
    assert_eq!((context.misses, context.hits), (1, 1), "the context error is cached too");
}
