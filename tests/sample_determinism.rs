//! The sampling backend's contract: seed-pinned byte-identity across
//! worker counts, the nearest-rank percentile edge cases, the
//! soundness invariant (observed-max ≤ ILP WCET) on the whole pinned
//! corpus, and the fuzz oracle's sampling leg catching an injected
//! fault.

use std::process::Command;

use stamp::analyzer::SampleParams;
use stamp::run_batch;
use stamp::sample::percentile;
use stamp::suite::fuzz::{run_campaign, FuzzConfig};
use stamp::suite::oracle::FaultInjection;
use stamp::suite::{corpus_request, parse_manifest};

fn stamp_cli(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("writable temp dir");
    path.to_string_lossy().into_owned()
}

/// A manifest that drives sampling from the *variant* vocabulary (the
/// CLI's `--samples`/`--seed` path is exercised separately below).
const MANIFEST: &str = r#"{
  "targets": [
    {"benchmark": "fibcall"},
    {"benchmark": "crc"},
    {"benchmark": "fac"}
  ],
  "variants": [
    {"name": "sampled", "sampling": {"samples": 12, "seed": 4}},
    {"name": "plain"}
  ]
}"#;

/// The headline invariant, CLI edition: a `stamp sample` run is
/// byte-identical across worker counts at a fixed seed.
#[test]
fn cli_sampling_reports_are_byte_identical_across_worker_counts() {
    let mut outputs = Vec::new();
    for jobs in ["1", "2", "8"] {
        let (code, stdout, stderr) = stamp_cli(&[
            "sample",
            "--corpus",
            "--samples",
            "16",
            "--seed",
            "9",
            "--jobs",
            jobs,
            "--no-timing",
        ]);
        assert_eq!(code, Some(0), "--jobs {jobs}: {stderr}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1], "serial vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "serial vs 8 workers");
    assert!(outputs[0].contains("\"sampling\":{"), "{}", outputs[0]);
    assert!(outputs[0].contains("\"observed_max\":"), "{}", outputs[0]);
    assert!(outputs[0].contains("\"seed\":9"), "{}", outputs[0]);
}

/// Manifest-driven sampling (the `sampling` variant key) agrees with
/// the in-process API byte for byte, and only the sampled variant's
/// jobs carry a `sampling` object.
#[test]
fn manifest_sampling_matches_the_in_process_api() {
    let manifest = write_file("sample_det_manifest.json", MANIFEST);
    let (code, stdout, stderr) = stamp_cli(&["batch", &manifest, "--jobs", "4", "--no-timing"]);
    assert_eq!(code, Some(0), "{stderr}");

    let request = parse_manifest(MANIFEST, std::path::Path::new(".")).unwrap();
    let api = run_batch(&request, 2).unwrap();
    assert_eq!(format!("{}\n", api.results_json()), stdout);

    for r in &api.results {
        let sampled_variant = r.name.ends_with("@sampled");
        // `fac` is recursive, hence stack-only: never sampled.
        let expect = sampled_variant && r.wcet.is_some();
        assert_eq!(r.sampling.is_some(), expect, "{}", r.name);
        if let Some(s) = &r.sampling {
            assert_eq!((s.samples, s.seed), (12, 4), "{}", r.name);
        }
    }
}

/// The soundness invariant on the full pinned corpus: every completed
/// walk costs at most the job's ILP WCET bound, and the distribution
/// statistics are internally consistent.
#[test]
fn corpus_observed_max_never_exceeds_the_ilp_bound() {
    let mut request = corpus_request();
    for job in &mut request.jobs {
        if job.wcet {
            job.sampling = Some(SampleParams { samples: 64, seed: 0 });
        }
    }
    let report = run_batch(&request, 4).unwrap();
    assert_eq!(report.errors(), 0);
    let mut sampled = 0;
    for r in &report.results {
        let Some(s) = &r.sampling else { continue };
        sampled += 1;
        let wcet = r.wcet.expect("sampled jobs have a WCET bound");
        let max = s.observed_max.expect("corpus programs complete walks");
        assert!(max <= wcet, "{}: observed {max} > bound {wcet}", r.name);
        let min = s.observed_min.unwrap();
        for (stat, v) in [("mean", s.mean), ("p50", s.p50), ("p90", s.p90), ("p99", s.p99)] {
            let v = v.unwrap();
            assert!(min <= v && v <= max, "{}: {stat} {v} outside [{min}, {max}]", r.name);
        }
        assert_eq!(s.completed + s.dead_ends, s.samples, "{}", r.name);
    }
    assert!(sampled >= 10, "corpus should sample most benchmarks, got {sampled}");
}

/// Nearest-rank percentile edges: empty, singleton, exact ranks, and
/// out-of-range pct clamping.
#[test]
fn percentile_handles_empty_singleton_and_rank_edges() {
    assert_eq!(percentile(&[], 0), None);
    assert_eq!(percentile(&[], 50), None);
    assert_eq!(percentile(&[], 100), None);

    for pct in [0, 1, 50, 99, 100] {
        assert_eq!(percentile(&[7], pct), Some(7), "singleton at pct {pct}");
    }

    let v = [10, 20, 30, 40];
    assert_eq!(percentile(&v, 0), Some(10), "tiny pct clamps to the first element");
    assert_eq!(percentile(&v, 25), Some(10));
    assert_eq!(percentile(&v, 50), Some(20));
    assert_eq!(percentile(&v, 75), Some(30));
    assert_eq!(percentile(&v, 90), Some(40));
    assert_eq!(percentile(&v, 100), Some(40));
    // pct beyond 100 clamps to the maximum, not past the slice.
    assert_eq!(percentile(&v, 250), Some(40));

    let ten: Vec<u64> = (1..=10).collect();
    assert_eq!(percentile(&ten, 50), Some(5));
    assert_eq!(percentile(&ten, 90), Some(9));
    assert_eq!(percentile(&ten, 99), Some(10));
}

/// Harness self-test: an injected sampling fault (the oracle compares
/// observed-max against 1% of the true bound) must surface as findings
/// of kind `sample` — proof the campaign would catch a real sampler
/// soundness bug.
#[test]
fn injected_sampling_fault_is_caught_by_the_fuzz_campaign() {
    let cfg = FuzzConfig {
        iterations: 6,
        seed: 3,
        rounds: 2,
        samples: 16,
        shrink: false,
        fault: Some(FaultInjection::TightenSample(1)),
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg, 2).expect("campaign runs");
    assert!(report.violations() > 0, "tightened sampling bound must be violated");
    for f in &report.findings {
        assert_eq!(f.kind, "sample", "{}", f.message);
        assert!(f.message.contains("UNSOUND sampling"), "{}", f.message);
    }
    // The same campaign with the sampling leg disabled is green: the
    // fault lives entirely in that leg.
    let green = run_campaign(&FuzzConfig { samples: 0, ..cfg }, 2).expect("campaign runs");
    assert_eq!(green.violations(), 0);
    assert_eq!(green.sampled_paths, 0);
    assert!(green.results_json().to_string().contains("\"sampled_paths\":0"));
}
