//! End-to-end tests of the `stamp serve` daemon: protocol round-trips,
//! backpressure, deadlines, SIGTERM drain, and byte-identity of served
//! results against `stamp batch` — all against the real binary.
#![cfg(unix)]

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use stamp::analyzer::Json;

fn spawn_serve(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_stamp"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts")
}

/// Waits for the child with a hard cap so a daemon bug hangs a test
/// assertion, not the whole test run.
fn wait_capped(mut child: Child, what: &str) -> (i32, String, String) {
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        if let Some(status) = child.try_wait().expect("child status") {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("{what}: daemon did not exit within the test budget");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut stdout = String::new();
    let mut stderr = String::new();
    child.stdout.take().expect("piped").read_to_string(&mut stdout).expect("utf-8 stdout");
    child.stderr.take().expect("piped").read_to_string(&mut stderr).expect("utf-8 stderr");
    (status.code().expect("daemon exits by code, not by signal"), stdout, stderr)
}

/// Parses response lines into an id → response map.
fn by_id(stdout: &str) -> BTreeMap<String, Json> {
    stdout
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let resp = Json::parse(l).unwrap_or_else(|e| panic!("bad response `{l}`: {e}"));
            let id = resp.get("id").and_then(Json::as_str).unwrap_or("null").to_string();
            (id, resp)
        })
        .collect()
}

fn status_of(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).expect("every response has a status")
}

/// What `stamp batch --no-timing` reports for one benchmark under the
/// default variant — the reference for served-result byte-identity.
fn batch_result(benchmark: &str) -> Json {
    let manifest = std::env::temp_dir().join(format!("serve_ref_{benchmark}.json"));
    std::fs::write(&manifest, format!(r#"{{"targets": [{{"benchmark": "{benchmark}"}}]}}"#))
        .expect("writable temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_stamp"))
        .args(["batch", &manifest.to_string_lossy(), "--no-timing"])
        .output()
        .expect("batch runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report = Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("batch json");
    report.get("jobs").and_then(Json::as_arr).expect("jobs array")[0].clone()
}

#[test]
fn stdio_daemon_serves_drains_on_eof_and_matches_batch() {
    let mut child = spawn_serve(&[]);
    {
        let stdin = child.stdin.take().expect("piped");
        let mut stdin = stdin;
        // A mixed workload in one shot: liveness probe, two real jobs,
        // a request that cannot make its deadline, and two malformed
        // lines. EOF after the batch triggers the graceful drain.
        writeln!(stdin, r#"{{"id": "ping", "op": "ping"}}"#).unwrap();
        writeln!(stdin, r#"{{"id": "crc", "job": {{"benchmark": "crc"}}}}"#).unwrap();
        writeln!(stdin, r#"{{"id": "fib", "job": {{"benchmark": "fibcall"}}}}"#).unwrap();
        writeln!(stdin, r#"{{"id": "late", "job": {{"benchmark": "crc"}}, "deadline_ms": 0}}"#)
            .unwrap();
        writeln!(stdin, r#"{{"id": "bad", "job": {{"benchmark": "no-such"}}}}"#).unwrap();
        writeln!(stdin, "this is not json").unwrap();
    } // dropping stdin = EOF
    let (code, stdout, stderr) = wait_capped(child, "stdio drain");
    assert_eq!(code, 0, "EOF drains gracefully: {stderr}");

    let responses = by_id(&stdout);
    assert_eq!(responses.len(), 6, "one response per line: {stdout}");
    assert_eq!(status_of(&responses["ping"]), "ok");
    assert_eq!(status_of(&responses["crc"]), "ok");
    assert_eq!(status_of(&responses["fib"]), "ok");
    // The structured timeout names the configured deadline.
    assert_eq!(status_of(&responses["late"]), "timeout");
    assert_eq!(
        responses["late"].get("error").and_then(Json::as_str),
        Some("deadline of 0 ms exceeded")
    );
    // Invalid jobs and unparseable lines answer without killing anything.
    assert_eq!(status_of(&responses["bad"]), "bad_request");
    assert_eq!(status_of(&responses["null"]), "bad_request");

    // Served results are byte-identical to `stamp batch` for the same
    // jobs (both rendered by the same deterministic serializer).
    for (id, benchmark) in [("crc", "crc"), ("fib", "fibcall")] {
        let served = responses[id].get("result").expect("ok responses embed a result");
        assert_eq!(
            served.to_string(),
            batch_result(benchmark).to_string(),
            "served `{id}` diverged from batch"
        );
    }
}

#[test]
fn queue_overflow_sheds_load_with_structured_overloaded_responses() {
    let mut child = spawn_serve(&["--queue", "1", "--jobs", "1"]);
    let burst = 16;
    {
        let mut stdin = child.stdin.take().expect("piped");
        for i in 0..burst {
            writeln!(stdin, r#"{{"id": "b{i}", "job": {{"benchmark": "crc"}}}}"#).unwrap();
        }
    }
    let (code, stdout, stderr) = wait_capped(child, "overflow burst");
    assert_eq!(code, 0, "overload never crashes the daemon: {stderr}");

    let responses = by_id(&stdout);
    assert_eq!(responses.len(), burst, "every request is answered: {stdout}");
    let mut ok = 0;
    let mut overloaded = 0;
    for resp in responses.values() {
        match status_of(resp) {
            "ok" => ok += 1,
            "overloaded" => {
                overloaded += 1;
                let error = resp.get("error").and_then(Json::as_str).unwrap();
                assert!(error.contains("queue full"), "{resp}");
            }
            other => panic!("unexpected status `{other}`: {resp}"),
        }
    }
    assert!(ok >= 1, "admitted jobs still complete under overload");
    assert!(overloaded >= 1, "a queue of 1 must shed a burst of {burst}");
}

#[test]
fn sigterm_drains_in_flight_work_and_exits_zero() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().expect("piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped"));

    // Prove the daemon is serving, then terminate it with stdin still
    // open: SIGTERM alone must reach the drain path.
    writeln!(stdin, r#"{{"id": "warm", "job": {{"benchmark": "fibcall"}}}}"#).unwrap();
    stdin.flush().unwrap();
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let first = Json::parse(line.trim()).unwrap();
    assert_eq!(status_of(&first), "ok", "{line}");

    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(term.success());
    drop(stdout); // the reaper below re-takes nothing; just the status
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(Instant::now() < deadline, "SIGTERM must drain, not hang");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
}

#[test]
fn unix_socket_daemon_reuses_warm_artifacts_across_requests() {
    use std::os::unix::net::UnixStream;

    let tag = std::process::id();
    let socket = std::env::temp_dir().join(format!("serve_daemon_{tag}.sock"));
    let store = std::env::temp_dir().join(format!("serve_daemon_store_{tag}"));
    let _ = std::fs::remove_dir_all(&store);
    let child =
        spawn_serve(&["--socket", &socket.to_string_lossy(), "--store", &store.to_string_lossy()]);

    let mut stream = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("socket never came up: {e}"),
            }
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |line: &str| -> Json {
        writeln!(stream, "{line}").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        Json::parse(resp.trim()).unwrap_or_else(|e| panic!("bad response `{resp}`: {e}"))
    };

    // The same job twice: the second run hits the warm store instead of
    // recomputing, and both results match `stamp batch` byte-for-byte.
    let cold = ask(r#"{"id": "cold", "job": {"benchmark": "crc"}}"#);
    let warm = ask(r#"{"id": "warm", "job": {"benchmark": "crc"}}"#);
    assert_eq!(status_of(&cold), "ok", "{cold}");
    assert_eq!(status_of(&warm), "ok", "{warm}");
    let reference = batch_result("crc").to_string();
    assert_eq!(cold.get("result").unwrap().to_string(), reference);
    assert_eq!(warm.get("result").unwrap().to_string(), reference);

    let stats = ask(r#"{"id": "stats", "op": "stats"}"#);
    let hits = stats.get("stats").and_then(|s| s.get("hits")).and_then(Json::as_u64).unwrap();
    assert!(hits > 0, "the repeated request must reuse warm artifacts: {stats}");

    let term =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("kill runs");
    assert!(term.success());
    let (code, _, stderr) = wait_capped(child, "socket drain");
    assert_eq!(code, 0, "{stderr}");
    // The drain flushed the durable store: the artifacts survived.
    assert!(
        std::fs::read_dir(&store).map(|d| d.count() > 0).unwrap_or(false),
        "the disk store holds flushed artifacts"
    );
    let _ = std::fs::remove_dir_all(&store);
}
