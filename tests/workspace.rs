//! Workspace smoke test: pins the public facade API on the quickstart
//! program from `src/lib.rs`, so the doctest's contract is also
//! enforced by a plain integration test (doctests are easy to skip in
//! filtered runs; this one is not).

use stamp::{assemble, StackAnalysis, WcetAnalysis};

const QUICKSTART: &str = r#"
        .text
    main:
        addi sp, sp, -32        ; reserve a frame
        li   r1, 100
    loop:
        addi r1, r1, -1
        bnez r1, loop
        addi sp, sp, 32
        halt
    "#;

#[test]
fn quickstart_wcet_and_stack_bounds() {
    let program = assemble(QUICKSTART).expect("quickstart program assembles");

    let wcet = WcetAnalysis::new(&program).run().expect("WCET analysis runs");
    // 100 loop iterations of at least one cycle each.
    assert!(wcet.wcet >= 100, "WCET bound {} can't cover the 100-iteration loop", wcet.wcet);

    let stack = StackAnalysis::new(&program).run().expect("stack analysis runs");
    assert_eq!(stack.bound, 32, "frame is exactly 32 bytes");
}

#[test]
fn facade_reexports_are_wired() {
    // The flat re-exports and the module re-exports must agree: the
    // same analysis through `stamp::analyzer` (stamp_core) gives the
    // same bound as through the flat facade names.
    let program = assemble(QUICKSTART).unwrap();
    let flat = WcetAnalysis::new(&program).run().unwrap().wcet;
    let module = stamp::analyzer::WcetAnalysis::new(&program).run().unwrap().wcet;
    assert_eq!(flat, module);
}
