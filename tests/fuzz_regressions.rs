//! Replays every committed fuzz reproducer under its original variant.
//!
//! `stamp fuzz` persists minimized counterexamples as ready-to-commit
//! `.s` files whose header comments name the (HwConfig × ValueOptions)
//! variant that exposed the violation. This test walks
//! `proptest-regressions/fuzz/` and runs the full differential oracle
//! on each file under that variant, so a fixed unsoundness stays fixed:
//! any regression turns the committed counterexample red again.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_core::Annotations;
use stamp_isa::asm::assemble;
use stamp_suite::fuzz::default_variants;
use stamp_suite::oracle::{check, OracleConfig};

/// The `variant:` name from a reproducer's header comments.
fn variant_of(source: &str) -> Option<String> {
    source.lines().find_map(|l| {
        let rest = l.strip_prefix("; variant:")?;
        rest.split_whitespace().next().map(str::to_string)
    })
}

#[test]
fn committed_reproducers_stay_green() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("proptest-regressions/fuzz");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("proptest-regressions/fuzz exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no committed reproducers under {}", dir.display());

    let variants = default_variants();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable reproducer");
        let name = variant_of(&src)
            .unwrap_or_else(|| panic!("{}: missing `; variant:` header", path.display()));
        let variant = variants
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("{}: unknown variant `{name}`", path.display()));
        let program = assemble(&src).expect("reproducer assembles");
        let cfg = OracleConfig {
            hw: variant.hw,
            value: variant.value.clone(),
            rounds: 8,
            adversarial: true,
            ..OracleConfig::default()
        };
        // Reproducers read the `scratch` region when the program has
        // one; randomized + adversarial inputs sharpen the replay.
        let input = program.symbols.addr_of("scratch").map(|_| ("scratch", 256u32));
        let mut rng = StdRng::seed_from_u64(11);
        if let Err(v) = check(&program, &Annotations::new(), input, &cfg, &mut rng) {
            panic!("{} regressed: {v}", path.display());
        }
    }
}
