//! End-to-end tests of the `stamp` command-line tool.

use std::process::Command;

fn stamp(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = stamp_coded(args);
    (code == Some(0), stdout, stderr)
}

/// Like [`stamp`] but exposing the exit code: 0 success, 1 analysis
/// failed, 2 bad arguments.
fn stamp_coded(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_task(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, src).expect("writable temp dir");
    path.to_string_lossy().into_owned()
}

const TASK: &str = "\
        .text
main:   addi sp, sp, -32
        li   r1, 10
loop:   addi r1, r1, -1
        bnez r1, loop
        addi sp, sp, 32
        halt
";

#[test]
fn wcet_command_reports_bound() {
    let path = write_task("cli_wcet.s", TASK);
    let (ok, stdout, stderr) = stamp(&["wcet", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("WCET bound:"), "{stdout}");
    assert!(stdout.contains("loop bounds"), "{stdout}");
}

#[test]
fn wcet_json_and_dot_outputs() {
    let path = write_task("cli_json.s", TASK);
    let dot = std::env::temp_dir().join("cli_out.dot");
    let (ok, stdout, stderr) = stamp(&["wcet", &path, "--json", "--dot", &dot.to_string_lossy()]);
    assert!(ok, "{stderr}");
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"wcet\":"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph cfg {"));
}

#[test]
fn stack_command_reports_bound() {
    let path = write_task("cli_stack.s", TASK);
    let (ok, stdout, stderr) = stamp(&["stack", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("32 bytes"), "{stdout}");
}

#[test]
fn run_command_simulates() {
    let path = write_task("cli_run.s", TASK);
    let (ok, stdout, stderr) = stamp(&["run", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Halted"), "{stdout}");
    assert!(stdout.contains("cycles:"), "{stdout}");
}

#[test]
fn disasm_command_lists_instructions() {
    let path = write_task("cli_disasm.s", TASK);
    let (ok, stdout, stderr) = stamp(&["disasm", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("main:"), "{stdout}");
    assert!(stdout.contains("addi sp, sp, -32"), "{stdout}");
    assert!(stdout.contains("halt"), "{stdout}");
}

#[test]
fn loop_bound_flag_feeds_annotation() {
    // A data-dependent loop that needs an annotation.
    let src = "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
";
    let path = write_task("cli_annot.s", src);
    let (ok, _, stderr) = stamp(&["wcet", &path]);
    assert!(!ok, "should fail without annotation");
    assert!(stderr.contains("loop bound") || stderr.contains("annotation"), "{stderr}");
    let (ok, stdout, stderr) = stamp(&["wcet", &path, "--loop-bound", "loop=33"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("≤ 33 iterations"), "{stdout}");
}

#[test]
fn bad_usage_is_reported_with_exit_code_2() {
    let (code, _, stderr) = stamp_coded(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["wcet", "/nonexistent/file.s"]);
    assert_eq!(code, Some(2), "unreadable input is an argument problem");
    assert!(stderr.contains("file.s"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["wcet", "--loop-bound", "nonsense"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("SYM=N"), "{stderr}");
}

#[test]
fn analysis_failure_exits_1_where_bad_arguments_exit_2() {
    // Same task, two failure classes: without the loop-bound annotation
    // the *analysis* fails (exit 1); with a malformed flag the
    // *invocation* fails (exit 2).
    let src = "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
";
    let path = write_task("cli_exit_codes.s", src);
    let (code, _, stderr) = stamp_coded(&["wcet", &path]);
    assert_eq!(code, Some(1), "{stderr}");
    let (code, _, _) = stamp_coded(&["wcet", &path, "--frobnicate"]);
    assert_eq!(code, Some(2));
    // An existing file that is not valid assembly is an analysis
    // failure, not an argument problem.
    let bad = write_task("cli_exit_codes_bad.s", ".text\nmain: frobnicate r1\n");
    let (code, _, stderr) = stamp_coded(&["wcet", &bad]);
    assert_eq!(code, Some(1), "{stderr}");
}

#[test]
fn usage_text_documents_exit_codes_and_every_flag() {
    let (code, stdout, _) = stamp_coded(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains("analysis failed"), "{stdout}");
    assert!(stdout.contains("bad arguments"), "{stdout}");
    assert!(stdout.contains("soundness violation"), "{stdout}");
    assert!(stdout.contains("stamp batch"), "{stdout}");
    assert!(stdout.contains("stamp serve"), "{stdout}");
    assert!(stdout.contains("stamp fuzz"), "{stdout}");
    for flag in [
        "--no-cache",
        "--ideal",
        "--loop-bound",
        "--json",
        "--dot",
        "--entry",
        "--recursion",
        "--corpus",
        "--jobs",
        "--out",
        "--no-timing",
        "--check-pins",
        "--no-artifact-cache",
        "--repeat",
        "--dry-run",
        "--store",
        "--deadline-ms",
        "--socket",
        "--queue",
        "--per-client",
        "--default-deadline-ms",
        "--max-insns",
        "--iterations",
        "--seed",
        "--rounds",
        "--no-shrink",
        "--max-shrink-evals",
        "--repro-dir",
        "--inject-fault",
    ] {
        assert!(stdout.contains(flag), "--help must document {flag}: {stdout}");
    }
}

/// Every documented flag, exercised once with its expected exit code —
/// the executable contract of the `--help` text.
#[test]
fn exit_code_table_covers_every_documented_flag() {
    let task = write_task("cli_table.s", TASK);
    let manifest =
        write_task("cli_table_manifest.json", r#"{"targets": [{"benchmark": "fibcall"}]}"#);
    let out = std::env::temp_dir().join("cli_table_out.json");
    let out = out.to_string_lossy();
    let dot = std::env::temp_dir().join("cli_table_out.dot");
    let dot = dot.to_string_lossy();
    let repro = std::env::temp_dir().join("cli_table_repro");
    let repro = repro.to_string_lossy();
    let cases: &[(&[&str], i32)] = &[
        // wcet
        (&["wcet", &task, "--no-cache"], 0),
        (&["wcet", &task, "--ideal"], 0),
        (&["wcet", &task, "--loop-bound", "loop=10"], 0),
        (&["wcet", &task, "--loop-bound", "nonsense"], 2),
        (&["wcet", &task, "--json"], 0),
        (&["wcet", &task, "--dot", &dot], 0),
        (&["wcet", &task, "--dot"], 2),
        // stack
        (&["stack", &task, "--entry", "main"], 0),
        (&["stack", &task, "--entry", "no_such_symbol"], 1),
        (&["stack", &task, "--recursion", "main=2"], 0),
        (&["stack", &task, "--recursion", "main"], 2),
        // batch
        (&["batch", &manifest, "--jobs", "2"], 0),
        (&["batch", &manifest, "--jobs", "x"], 2),
        (&["batch", &manifest, "--out", &out], 0),
        (&["batch", &manifest, "--no-timing"], 0),
        (&["batch", &manifest, "--no-artifact-cache"], 0),
        (&["batch", &manifest, "--repeat", "2"], 0),
        (&["batch", &manifest, "--repeat", "0"], 2),
        (&["batch", &manifest, "--repeat", "x"], 2),
        (&["batch", &manifest, "--dry-run"], 0),
        (&["batch", &manifest, "--check-pins"], 2),
        (&["batch", "--corpus", "--dry-run"], 0),
        // a generous deadline passes every job; a zero deadline turns
        // each job into a per-job analysis error (exit 1, not a hang)
        (&["batch", &manifest, "--deadline-ms", "60000"], 0),
        (&["batch", &manifest, "--deadline-ms", "0"], 1),
        (&["batch", &manifest, "--deadline-ms", "x"], 2),
        (&["batch", &manifest, "--deadline-ms"], 2),
        // serve: bad invocations exit 2 without starting the daemon
        // (healthy daemon lifecycles are covered in tests/serve_daemon.rs)
        (&["serve", "--queue", "x"], 2),
        (&["serve", "--queue", "0"], 2),
        (&["serve", "--per-client", "x"], 2),
        (&["serve", "--default-deadline-ms", "x"], 2),
        (&["serve", "--socket"], 2),
        (&["serve", "--frobnicate"], 2),
        // fuzz: a green micro-campaign exits 0; bad numbers and unknown
        // fault kinds are usage errors (2); an injected-fault campaign
        // finds violations and exits 3 — the soundness exit code.
        (&["fuzz", "--iterations", "4", "--seed", "1", "--rounds", "1", "--out", &out], 0),
        (&["fuzz", "--iterations", "x"], 2),
        (&["fuzz", "--seed", "x"], 2),
        (&["fuzz", "--rounds", "x"], 2),
        (&["fuzz", "--jobs", "x"], 2),
        (&["fuzz", "--max-shrink-evals", "x"], 2),
        (&["fuzz", "--inject-fault", "frobnicate"], 2),
        (&["fuzz", "--inject-fault"], 2),
        (
            &[
                "fuzz",
                "--iterations",
                "2",
                "--seed",
                "3",
                "--rounds",
                "1",
                "--inject-fault",
                "contains-div",
                "--no-shrink",
                "--repro-dir",
                &repro,
                "--out",
                &out,
            ],
            3,
        ),
        // run
        (&["run", &task, "--max-insns", "1000"], 0),
        (&["run", &task, "--max-insns", "x"], 2),
        // unknown flags are always usage errors
        (&["batch", &manifest, "--frobnicate"], 2),
    ];
    for (args, expected) in cases {
        let (code, _, stderr) = stamp_coded(args);
        assert_eq!(code, Some(*expected), "stamp {}: {stderr}", args.join(" "));
    }
}

#[test]
fn batch_dry_run_plans_without_running() {
    let manifest = write_task(
        "cli_dry_run.json",
        r#"{
          "targets": [{"benchmark": "fibcall"}, {"benchmark": "crc"}],
          "variants": [{"name": "default"}, {"name": "lean", "hw": "no-cache", "peel": 0}]
        }"#,
    );
    let (code, stdout, stderr) = stamp_coded(&["batch", &manifest, "--dry-run"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("batch plan: 4 jobs"), "{stdout}");
    assert!(stdout.contains("crc@lean"), "{stdout}");
    assert!(stdout.contains("hw=no-cache peel=0"), "{stdout}");
    assert!(stdout.contains("expected phase-artifact reuse"), "{stdout}");
    assert!(stdout.contains("value"), "{stdout}");
    assert!(!stdout.contains("\"wcet\""), "dry-run must not emit results: {stdout}");
    // Manifest problems keep exit code 2, exactly as for a real run.
    let bad = write_task("cli_dry_run_bad.json", r#"{"targets": []}"#);
    let (code, _, stderr) = stamp_coded(&["batch", &bad, "--dry-run"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("no targets"), "{stderr}");
}

#[test]
fn batch_artifact_cache_flags_do_not_change_results() {
    let manifest = write_task(
        "cli_cache_flags.json",
        r#"{"targets": [{"benchmark": "fibcall"}, {"benchmark": "crc"}],
            "variants": [{"name": "default"}, {"name": "no-cache", "hw": "no-cache"}]}"#,
    );
    let (code, cached, stderr) = stamp_coded(&["batch", &manifest, "--no-timing"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("artifact cache:"), "cache stats on stderr: {stderr}");
    let (code, uncached, stderr) =
        stamp_coded(&["batch", &manifest, "--no-timing", "--no-artifact-cache"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(!stderr.contains("artifact cache:"), "no stats when disabled: {stderr}");
    assert_eq!(cached, uncached, "the artifact cache must be invisible in results");
    // A warm second pass (--repeat) is byte-identical too.
    let (code, warm, stderr) = stamp_coded(&["batch", &manifest, "--no-timing", "--repeat", "2"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(cached, warm);
    assert!(stderr.contains("pass 2/2"), "{stderr}");
    assert!(stderr.contains("100% reuse"), "warm pass reuses everything: {stderr}");
}

#[test]
fn fuzz_reports_are_byte_identical_across_jobs() {
    let out1 = std::env::temp_dir().join("cli_fuzz_j1.json");
    let out2 = std::env::temp_dir().join("cli_fuzz_j2.json");
    let args = |jobs: &'static str, out: String| {
        vec![
            "fuzz".to_string(),
            "--iterations".to_string(),
            "6".to_string(),
            "--seed".to_string(),
            "5".to_string(),
            "--rounds".to_string(),
            "1".to_string(),
            "--no-timing".to_string(),
            "--jobs".to_string(),
            jobs.to_string(),
            "--out".to_string(),
            out,
        ]
    };
    for (jobs, out) in [("1", &out1), ("2", &out2)] {
        let argv: Vec<String> = args(jobs, out.to_string_lossy().into_owned());
        let argv: Vec<&str> = argv.iter().map(String::as_str).collect();
        let (code, _, stderr) = stamp_coded(&argv);
        assert_eq!(code, Some(0), "{stderr}");
        assert!(stderr.contains("0 violation(s)"), "{stderr}");
    }
    let a = std::fs::read_to_string(&out1).unwrap();
    let b = std::fs::read_to_string(&out2).unwrap();
    assert_eq!(a, b, "fuzz --no-timing reports must be byte-identical across --jobs");
    assert!(a.contains("\"schema\":\"stamp-fuzz/1\""), "{a}");
    assert!(!a.contains("wall_ms"), "deterministic report must omit timing: {a}");
}

#[test]
fn fuzz_injected_fault_writes_minimized_reproducer_and_exits_3() {
    let repro = std::env::temp_dir().join("cli_fuzz_repro");
    let _ = std::fs::remove_dir_all(&repro);
    let repro_s = repro.to_string_lossy().into_owned();
    let (code, _, stderr) = stamp_coded(&[
        "fuzz",
        "--iterations",
        "2",
        "--seed",
        "3",
        "--rounds",
        "1",
        "--inject-fault",
        "contains-div",
        "--repro-dir",
        &repro_s,
        "--out",
        &std::env::temp_dir().join("cli_fuzz_inj.json").to_string_lossy(),
    ]);
    assert_eq!(code, Some(3), "{stderr}");
    assert!(stderr.contains("VIOLATION"), "{stderr}");
    assert!(stderr.contains("reproducer"), "{stderr}");
    let files: Vec<_> = std::fs::read_dir(&repro).unwrap().collect();
    assert!(!files.is_empty(), "reproducer files written");
    let text = std::fs::read_to_string(files[0].as_ref().unwrap().path()).unwrap();
    assert!(text.starts_with("; stamp fuzz reproducer"), "{text}");
    assert!(text.contains("div"), "{text}");
    let _ = std::fs::remove_dir_all(&repro);
}

#[test]
fn batch_deadline_turns_slow_jobs_into_per_job_errors() {
    let manifest = write_task(
        "cli_deadline.json",
        r#"{"targets": [{"benchmark": "fibcall"}, {"benchmark": "crc"}]}"#,
    );
    let (code, stdout, stderr) =
        stamp_coded(&["batch", &manifest, "--no-timing", "--deadline-ms", "0"]);
    assert_eq!(code, Some(1), "over-deadline jobs take the failed-job exit path: {stderr}");
    assert!(stdout.contains("deadline of 0 ms exceeded"), "{stdout}");
    assert!(stderr.contains("2 batch job(s) failed"), "{stderr}");
    // The deadline never rewrites results that make it: a generous
    // budget is byte-identical to no budget at all.
    let (code, with, stderr) =
        stamp_coded(&["batch", &manifest, "--no-timing", "--deadline-ms", "60000"]);
    assert_eq!(code, Some(0), "{stderr}");
    let (code, without, stderr) = stamp_coded(&["batch", &manifest, "--no-timing"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(with, without);
}

#[test]
fn batch_corpus_smoke_runs_serially() {
    // The full corpus gate runs in release CI (`batch-smoke`); here a
    // two-job serial run keeps the debug-mode test quick.
    let manifest = write_task(
        "cli_batch_smoke.json",
        r#"{"targets": [{"benchmark": "fibcall"}, {"benchmark": "crc"}]}"#,
    );
    let (code, stdout, stderr) = stamp_coded(&["batch", &manifest, "--jobs", "1"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("\"wcet\":242"), "{stdout}");
    assert!(stdout.contains("\"throughput_jobs_per_s\""), "{stdout}");
}
