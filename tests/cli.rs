//! End-to-end tests of the `stamp` command-line tool.

use std::process::Command;

fn stamp(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_task(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, src).expect("writable temp dir");
    path.to_string_lossy().into_owned()
}

const TASK: &str = "\
        .text
main:   addi sp, sp, -32
        li   r1, 10
loop:   addi r1, r1, -1
        bnez r1, loop
        addi sp, sp, 32
        halt
";

#[test]
fn wcet_command_reports_bound() {
    let path = write_task("cli_wcet.s", TASK);
    let (ok, stdout, stderr) = stamp(&["wcet", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("WCET bound:"), "{stdout}");
    assert!(stdout.contains("loop bounds"), "{stdout}");
}

#[test]
fn wcet_json_and_dot_outputs() {
    let path = write_task("cli_json.s", TASK);
    let dot = std::env::temp_dir().join("cli_out.dot");
    let (ok, stdout, stderr) =
        stamp(&["wcet", &path, "--json", "--dot", &dot.to_string_lossy()]);
    assert!(ok, "{stderr}");
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"wcet\":"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph cfg {"));
}

#[test]
fn stack_command_reports_bound() {
    let path = write_task("cli_stack.s", TASK);
    let (ok, stdout, stderr) = stamp(&["stack", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("32 bytes"), "{stdout}");
}

#[test]
fn run_command_simulates() {
    let path = write_task("cli_run.s", TASK);
    let (ok, stdout, stderr) = stamp(&["run", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Halted"), "{stdout}");
    assert!(stdout.contains("cycles:"), "{stdout}");
}

#[test]
fn disasm_command_lists_instructions() {
    let path = write_task("cli_disasm.s", TASK);
    let (ok, stdout, stderr) = stamp(&["disasm", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("main:"), "{stdout}");
    assert!(stdout.contains("addi sp, sp, -32"), "{stdout}");
    assert!(stdout.contains("halt"), "{stdout}");
}

#[test]
fn loop_bound_flag_feeds_annotation() {
    // A data-dependent loop that needs an annotation.
    let src = "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
";
    let path = write_task("cli_annot.s", src);
    let (ok, _, stderr) = stamp(&["wcet", &path]);
    assert!(!ok, "should fail without annotation");
    assert!(stderr.contains("loop bound") || stderr.contains("annotation"), "{stderr}");
    let (ok, stdout, stderr) = stamp(&["wcet", &path, "--loop-bound", "loop=33"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("≤ 33 iterations"), "{stdout}");
}

#[test]
fn bad_usage_is_reported() {
    let (ok, _, stderr) = stamp(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    let (ok, _, stderr) = stamp(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (ok, _, stderr) = stamp(&["wcet", "/nonexistent/file.s"]);
    assert!(!ok);
    assert!(stderr.contains("file.s"), "{stderr}");
}
