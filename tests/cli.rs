//! End-to-end tests of the `stamp` command-line tool.

use std::process::Command;

fn stamp(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = stamp_coded(args);
    (code == Some(0), stdout, stderr)
}

/// Like [`stamp`] but exposing the exit code: 0 success, 1 analysis
/// failed, 2 bad arguments.
fn stamp_coded(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_task(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, src).expect("writable temp dir");
    path.to_string_lossy().into_owned()
}

const TASK: &str = "\
        .text
main:   addi sp, sp, -32
        li   r1, 10
loop:   addi r1, r1, -1
        bnez r1, loop
        addi sp, sp, 32
        halt
";

#[test]
fn wcet_command_reports_bound() {
    let path = write_task("cli_wcet.s", TASK);
    let (ok, stdout, stderr) = stamp(&["wcet", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("WCET bound:"), "{stdout}");
    assert!(stdout.contains("loop bounds"), "{stdout}");
}

#[test]
fn wcet_json_and_dot_outputs() {
    let path = write_task("cli_json.s", TASK);
    let dot = std::env::temp_dir().join("cli_out.dot");
    let (ok, stdout, stderr) = stamp(&["wcet", &path, "--json", "--dot", &dot.to_string_lossy()]);
    assert!(ok, "{stderr}");
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"wcet\":"), "{stdout}");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph cfg {"));
}

#[test]
fn stack_command_reports_bound() {
    let path = write_task("cli_stack.s", TASK);
    let (ok, stdout, stderr) = stamp(&["stack", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("32 bytes"), "{stdout}");
}

#[test]
fn run_command_simulates() {
    let path = write_task("cli_run.s", TASK);
    let (ok, stdout, stderr) = stamp(&["run", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("Halted"), "{stdout}");
    assert!(stdout.contains("cycles:"), "{stdout}");
}

#[test]
fn disasm_command_lists_instructions() {
    let path = write_task("cli_disasm.s", TASK);
    let (ok, stdout, stderr) = stamp(&["disasm", &path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("main:"), "{stdout}");
    assert!(stdout.contains("addi sp, sp, -32"), "{stdout}");
    assert!(stdout.contains("halt"), "{stdout}");
}

#[test]
fn loop_bound_flag_feeds_annotation() {
    // A data-dependent loop that needs an annotation.
    let src = "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
";
    let path = write_task("cli_annot.s", src);
    let (ok, _, stderr) = stamp(&["wcet", &path]);
    assert!(!ok, "should fail without annotation");
    assert!(stderr.contains("loop bound") || stderr.contains("annotation"), "{stderr}");
    let (ok, stdout, stderr) = stamp(&["wcet", &path, "--loop-bound", "loop=33"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("≤ 33 iterations"), "{stdout}");
}

#[test]
fn bad_usage_is_reported_with_exit_code_2() {
    let (code, _, stderr) = stamp_coded(&[]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown command"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["wcet", "/nonexistent/file.s"]);
    assert_eq!(code, Some(2), "unreadable input is an argument problem");
    assert!(stderr.contains("file.s"), "{stderr}");
    let (code, _, stderr) = stamp_coded(&["wcet", "--loop-bound", "nonsense"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("SYM=N"), "{stderr}");
}

#[test]
fn analysis_failure_exits_1_where_bad_arguments_exit_2() {
    // Same task, two failure classes: without the loop-bound annotation
    // the *analysis* fails (exit 1); with a malformed flag the
    // *invocation* fails (exit 2).
    let src = "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
";
    let path = write_task("cli_exit_codes.s", src);
    let (code, _, stderr) = stamp_coded(&["wcet", &path]);
    assert_eq!(code, Some(1), "{stderr}");
    let (code, _, _) = stamp_coded(&["wcet", &path, "--frobnicate"]);
    assert_eq!(code, Some(2));
    // An existing file that is not valid assembly is an analysis
    // failure, not an argument problem.
    let bad = write_task("cli_exit_codes_bad.s", ".text\nmain: frobnicate r1\n");
    let (code, _, stderr) = stamp_coded(&["wcet", &bad]);
    assert_eq!(code, Some(1), "{stderr}");
}

#[test]
fn usage_text_documents_exit_codes() {
    let (code, stdout, _) = stamp_coded(&["--help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains("analysis failed"), "{stdout}");
    assert!(stdout.contains("bad arguments"), "{stdout}");
    assert!(stdout.contains("stamp batch"), "{stdout}");
}

#[test]
fn batch_corpus_smoke_runs_serially() {
    // The full corpus gate runs in release CI (`batch-smoke`); here a
    // two-job serial run keeps the debug-mode test quick.
    let manifest = write_task(
        "cli_batch_smoke.json",
        r#"{"targets": [{"benchmark": "fibcall"}, {"benchmark": "crc"}]}"#,
    );
    let (code, stdout, stderr) = stamp_coded(&["batch", &manifest, "--jobs", "1"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("\"wcet\":242"), "{stdout}");
    assert!(stdout.contains("\"throughput_jobs_per_s\""), "{stdout}");
}
