//! Ablation sanity (experiments E4, E7, E10): weaker configurations must
//! stay sound and must not beat stronger ones.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp::ai::VivuConfig;
use stamp::value::{DomainKind, ValueOptions};
use stamp::{AnalysisConfig, HwConfig, WcetAnalysis};
use stamp_suite::benchmarks;

fn wcet_with(bench: &str, f: impl FnOnce(AnalysisConfig) -> AnalysisConfig) -> u64 {
    let b = benchmarks().into_iter().find(|b| b.name == bench).unwrap();
    let program = b.program();
    let config = f(AnalysisConfig::default());
    WcetAnalysis::new(&program)
        .config(config)
        .annotations(b.annotations())
        .run()
        .unwrap_or_else(|e| panic!("{bench}: {e}"))
        .wcet
}

/// E4: disabling infeasible-path pruning can only increase the bound,
/// and must increase it for `statemate` (whose dead arms are expensive).
#[test]
fn infeasible_path_pruning_tightens() {
    for name in ["statemate", "insertsort", "crc"] {
        let with = wcet_with(name, |c| c);
        let without = wcet_with(name, |mut c| {
            c.use_infeasible = false;
            c
        });
        assert!(without >= with, "{name}: pruning made the bound looser?!");
        if name == "statemate" {
            assert!(without > with, "statemate: pruning must remove the dead expensive arms");
        }
    }
}

/// E7: the domain hierarchy — constants ⊑ intervals ⊑ strided intervals.
/// Weaker domains must never yield smaller bounds.
#[test]
fn domain_hierarchy_monotone() {
    for name in ["crc", "cnt", "fir"] {
        let strided = wcet_with(name, |c| c);
        let interval = wcet_with(name, |mut c| {
            c.value = ValueOptions { domain: DomainKind::Interval, ..ValueOptions::default() };
            c
        });
        assert!(interval >= strided, "{name}: interval bound {interval} < strided bound {strided}");
    }
    // Constant propagation cannot bound data-dependent loops at all for
    // most benchmarks; fibcall (constant counter) still works.
    let const_only = wcet_with("fibcall", |mut c| {
        c.value = ValueOptions { domain: DomainKind::Const, ..ValueOptions::default() };
        c
    });
    let full = wcet_with("fibcall", |c| c);
    assert!(const_only >= full);
}

/// E10: VIVU contexts — disabling virtual unrolling merges cold and warm
/// iterations. On tasks with data-dependent inner loops (insertsort,
/// bsort) the merged must-cache loses guarantees and the bound grows.
/// On tasks fully covered by the persistence analysis the flat bound can
/// even be marginally *smaller* (the unrolled analysis prices the
/// iteration-0 miss explicitly *and* in the one-time persistence budget)
/// — both remain sound, which is what this test pins down.
#[test]
fn vivu_unrolling_tightens_cache_bounds() {
    let mut rng = StdRng::seed_from_u64(7);
    for name in ["fibcall", "matmult", "crc", "insertsort", "bsort"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let program = b.program();
        let full = wcet_with(name, |c| c);
        let flat = wcet_with(name, |mut c| {
            c.vivu = VivuConfig::no_unrolling();
            c
        });
        let hw = HwConfig::default();
        let (observed, _) = b.worst_observed(&program, &hw, 5, &mut rng);
        assert!(flat >= observed, "{name}: no-unroll bound {flat} unsound vs {observed}");
        assert!(full >= observed, "{name}: full bound {full} unsound vs {observed}");
        // Flat may undercut full only by the persistence double-count.
        assert!(
            flat * 100 >= full * 95,
            "{name}: no-unroll bound {flat} unexpectedly far below full {full}"
        );
        if name == "insertsort" || name == "bsort" {
            assert!(
                flat > full,
                "{name}: merging cold/warm contexts must cost precision ({flat} vs {full})"
            );
        }
    }
}

/// The ideal-hardware model isolates pure path effects: bounds shrink
/// drastically but stay sound.
#[test]
fn ideal_hardware_is_cheapest() {
    for name in ["fibcall", "cnt"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let program = b.program();
        let default = wcet_with(name, |c| c);
        let ideal = wcet_with(name, |mut c| {
            c.hw = HwConfig::ideal();
            c
        });
        assert!(ideal < default, "{name}: ideal {ideal} not cheaper than {default}");
        let hw = HwConfig::ideal();
        let mut rng = StdRng::seed_from_u64(3);
        let (observed, _) = b.worst_observed(&program, &hw, 5, &mut rng);
        assert!(ideal >= observed);
    }
}
