//! Differential property suite for per-procedure microarchitectural
//! summaries: on random generated programs, an analysis composed from
//! cache/pipeline region summaries must reproduce the monolithic
//! analysis's deterministic results *exactly* — same WCET, same
//! evaluation counts, same per-class fetch/data classification
//! histograms, byte-identical `result_json`. The comparison runs the
//! real batch pipeline, so any summarization bug that survives the
//! validating fallback turns this red.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stamp_core::{run_batch, Json, PhaseId};
use stamp_suite::manifest::parse_manifest;
use stamp_suite::{generate, GenConfig};

/// The generator shapes under test: procedure-heavy configurations
/// (where summaries engage) plus the plain default.
fn shape(round: usize) -> GenConfig {
    match round % 3 {
        0 => GenConfig::rich(),
        1 => GenConfig {
            functions: 4,
            call_depth: 4,
            frame_traffic: true,
            calls_in_loops: true,
            ..GenConfig::default()
        },
        _ => GenConfig::default(),
    }
}

/// `result_json` minus the `name`/`variant` identity keys — everything
/// that must be equal between summarized and monolithic runs.
fn comparable(result: &Json) -> String {
    match result.clone() {
        Json::Obj(mut o) => {
            o.remove("name");
            o.remove("variant");
            Json::Obj(o).to_string()
        }
        other => other.to_string(),
    }
}

#[test]
fn summarized_results_match_monolithic_on_random_programs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut engaged = 0usize;
    for round in 0..9 {
        let gcfg = GenConfig { constructs: rng.gen_range(4..=8), ..shape(round) };
        let src = generate(&mut rng, &gcfg);
        // Four variants: (summarized, monolithic) × (default hw, small
        // cache). The small 128-byte geometry stresses eviction
        // boundaries where a summary transformer has the most room to
        // disagree with the direct fixpoint.
        let manifest = format!(
            r#"{{"targets": [{{"name": "p{round}", "source": {src}}}],
                "variants": [
                  {{"name": "sum"}},
                  {{"name": "mono", "uarch_summaries": false}},
                  {{"name": "sum-small", "hw": {{"cache_bytes": 128}}}},
                  {{"name": "mono-small", "hw": {{"cache_bytes": 128}},
                    "uarch_summaries": false}}
                ]}}"#,
            src = Json::str(src),
        );
        let request = parse_manifest(&manifest, std::path::Path::new(".")).unwrap();
        let report = run_batch(&request, 1).unwrap();
        assert_eq!(report.results.len(), 4);
        for (sum, mono) in [(0, 1), (2, 3)] {
            let sum = &report.results[sum];
            let mono = &report.results[mono];
            assert!(sum.error.is_none(), "round {round}: {:?}", sum.error);
            assert_eq!(
                comparable(&sum.result_json()),
                comparable(&mono.result_json()),
                "round {round}: summarized `{}` diverged from monolithic `{}`",
                sum.variant,
                mono.variant,
            );
            engaged += sum.provenance.iter().filter(|(p, _)| *p == PhaseId::Uarch).count();
            assert!(
                !mono.provenance.iter().any(|(p, _)| *p == PhaseId::Uarch),
                "round {round}: monolithic mode must not touch the uarch memo",
            );
        }
    }
    // Equality alone would also hold if every program quietly fell back
    // to the monolithic path; require that summaries actually engaged.
    assert!(engaged > 0, "no random program ever exercised the summarized path");
}
