//! Whole-system stack analysis (experiments E2/E8): per-task bounds,
//! recursion handling, and the OSEK preemption-chain computation.

use stamp::{assemble, HwConfig, OsekSystem, Simulator, StackAnalysis, Task};

/// A multi-task ECU image: three tasks sharing helper functions.
const ECU_IMAGE: &str = r#"
        .text
main:   call task_ctrl          ; default entry just runs one task
        halt

task_ctrl:                      ; control task
        addi sp, sp, -64
        sw   lr, 0(sp)
        call filter
        lw   lr, 0(sp)
        addi sp, sp, 64
        ret

task_comm:                      ; communication task
        addi sp, sp, -96
        sw   lr, 0(sp)
        call checksum
        lw   lr, 0(sp)
        addi sp, sp, 96
        ret

task_bg:                        ; background task
        addi sp, sp, -32
        addi sp, sp, 32
        ret

filter: addi sp, sp, -48
        li   r1, 8
flp:    addi r1, r1, -1
        bnez r1, flp
        addi sp, sp, 48
        ret

checksum:
        addi sp, sp, -16
        addi sp, sp, 16
        ret
"#;

fn task_bound(entry: &str) -> u32 {
    let program = assemble(ECU_IMAGE).expect("assembles");
    StackAnalysis::new(&program).run_task(entry).unwrap_or_else(|e| panic!("{entry}: {e}")).bound
}

#[test]
fn per_task_bounds_follow_call_chains() {
    // Each task entry gets its own worst-case chain. The run_task entry
    // starts with a fresh stack, so `main`'s call adds only lr-less
    // frames of the task itself.
    assert_eq!(task_bound("task_ctrl"), 64 + 48);
    assert_eq!(task_bound("task_comm"), 96 + 16);
    assert_eq!(task_bound("task_bg"), 32);
}

#[test]
fn task_bounds_match_simulation() {
    let program = assemble(ECU_IMAGE).expect("assembles");
    let hw = HwConfig::default();
    // The default entry runs task_ctrl to completion.
    let mut sim = Simulator::new(&program, &hw);
    let res = sim.run(100_000).unwrap();
    let bound = StackAnalysis::new(&program).run().unwrap().bound;
    assert_eq!(res.max_stack, bound, "main-task stack must be exact");
}

#[test]
fn osek_system_bound_beats_naive_sum() {
    // Per-task bounds feed the OSEK whole-ECU analysis of ref [3].
    let ctrl = task_bound("task_ctrl");
    let comm = task_bound("task_comm");
    let bg = task_bound("task_bg");
    let sys = OsekSystem::new(vec![
        Task::new("background", 1, bg),
        Task::non_preemptable("comm", 2, comm),
        Task::new("control", 3, ctrl),
    ]);
    // comm is non-preemptable: control never piles on top of it, so the
    // worst chain is bg ← comm (ends chain) vs bg ← control.
    let expected = bg + comm.max(ctrl);
    assert_eq!(sys.system_bound(), expected);
    assert!(sys.system_bound() < sys.naive_bound());
}

#[test]
fn recursive_task_needs_and_uses_annotation() {
    let b = stamp_suite::benchmarks().into_iter().find(|b| b.name == "fac").unwrap();
    let program = b.program();
    // Without the annotation the analysis must refuse.
    let err = StackAnalysis::new(&program).run().unwrap_err();
    assert!(err.to_string().contains("recursion") || err.to_string().contains("depth"));
    // With it, the bound covers the simulated watermark.
    let report = StackAnalysis::new(&program).annotations(b.annotations()).run().unwrap();
    assert_eq!(report.mode, "callgraph");
    let hw = HwConfig::default();
    let mut sim = Simulator::new(&program, &hw);
    let res = sim.run(100_000).unwrap();
    assert!(report.bound >= res.max_stack);
    assert_eq!(report.bound, 88, "depth 11 × 8-byte frame");
    assert_eq!(res.max_stack, 88, "fac(10) recurses 11 frames deep");
}

#[test]
fn per_function_breakdown_is_reported() {
    let program = assemble(ECU_IMAGE).expect("assembles");
    let report = StackAnalysis::new(&program).run().unwrap();
    assert_eq!(report.per_function["filter"].local, 48);
    assert_eq!(report.per_function["task_ctrl"].usage, 112);
}
