//! The batch engine's headline invariant: a parallel batch run is
//! bit-identical to the serial run of the same manifest — plus the
//! failure modes around it (worker panics, empty and malformed
//! manifests).

use std::process::Command;

use stamp::exec::{Pool, PoolError};
use stamp::run_batch;
use stamp::suite::parse_manifest;

fn stamp_cli(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stamp")).args(args).output().expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_file(name: &str, contents: &str) -> String {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("writable temp dir");
    path.to_string_lossy().into_owned()
}

/// A small but matrix-shaped manifest: three corpus benchmarks (one
/// stack-only) and one inline task, under two hardware variants.
const MANIFEST: &str = r#"{
  "targets": [
    {"benchmark": "fibcall"},
    {"benchmark": "crc"},
    {"benchmark": "fac"},
    {"name": "inline", "source": ".text\nmain: addi sp, sp, -16\nli r1, 4\nl: addi r1, r1, -1\nbnez r1, l\naddi sp, sp, 16\nhalt\n"}
  ],
  "variants": [
    {"name": "default"},
    {"name": "no-cache", "hw": "no-cache"}
  ]
}"#;

#[test]
fn parallel_reports_are_byte_identical_to_serial_across_job_counts() {
    let manifest = write_file("batch_det_manifest.json", MANIFEST);
    let mut outputs = Vec::new();
    for jobs in ["1", "2", "8"] {
        let (code, stdout, stderr) =
            stamp_cli(&["batch", &manifest, "--jobs", jobs, "--no-timing"]);
        assert_eq!(code, Some(0), "--jobs {jobs}: {stderr}");
        assert!(stdout.contains("\"schema\":\"stamp-batch/1\""), "{stdout}");
        outputs.push(stdout);
    }
    assert_eq!(outputs[0], outputs[1], "serial vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "serial vs 8 workers");

    // And the in-process API agrees with the CLI, byte for byte.
    let request = parse_manifest(MANIFEST, std::path::Path::new(".")).unwrap();
    let api = run_batch(&request, 3).unwrap();
    assert_eq!(format!("{}\n", api.results_json()), outputs[0]);
    assert_eq!(api.errors(), 0);
}

#[test]
fn job_matrix_is_ordered_targets_outermost() {
    let request = parse_manifest(MANIFEST, std::path::Path::new(".")).unwrap();
    let names: Vec<String> = request.jobs.iter().map(|j| j.name()).collect();
    assert_eq!(
        names,
        [
            "fibcall",
            "fibcall@no-cache",
            "crc",
            "crc@no-cache",
            "fac",
            "fac@no-cache",
            "inline",
            "inline@no-cache",
        ]
    );
    // The recursive task is stack-only in every variant.
    assert!(request.jobs.iter().filter(|j| j.target == "fac").all(|j| !j.wcet));
}

#[test]
fn worker_pool_panic_surfaces_the_failing_jobs_name() {
    let jobs = ["fine-a", "exploding-job", "fine-b", "fine-c"];
    let err = Pool::new(2)
        .map_labeled(
            &jobs,
            |_, name| name.to_string(),
            |_, &name| {
                if name.starts_with("exploding") {
                    panic!("analysis invariant violated in {name}");
                }
                name.len()
            },
        )
        .unwrap_err();
    let PoolError::JobPanicked { label, message, .. } = err;
    assert_eq!(label, "exploding-job");
    assert!(message.contains("analysis invariant violated"), "{message}");
    // The rendered error names the job too — this is what a batch user
    // sees when an analyzer bug takes down a job.
    let rendered = PoolError::JobPanicked { index: 1, label, message }.to_string();
    assert!(rendered.contains("exploding-job"), "{rendered}");
}

#[test]
fn empty_manifest_is_a_clean_usage_error() {
    for empty in [r#"{}"#, r#"{"targets": []}"#] {
        let manifest = write_file("batch_det_empty.json", empty);
        let (code, _, stderr) = stamp_cli(&["batch", &manifest]);
        assert_eq!(code, Some(2), "{stderr}");
        assert!(stderr.contains("no targets"), "{stderr}");
    }
}

#[test]
fn malformed_manifest_is_a_clean_usage_error() {
    for (bad, needle) in [
        (r#"{"targets": ["#, "syntax error"),
        (r#"{"targets": [{"benchmark": "not-a-benchmark"}]}"#, "unknown benchmark"),
        (r#"[1, 2, 3]"#, "top level"),
    ] {
        let manifest = write_file("batch_det_malformed.json", bad);
        let (code, _, stderr) = stamp_cli(&["batch", &manifest]);
        assert_eq!(code, Some(2), "{bad}: {stderr}");
        assert!(stderr.contains("manifest"), "{stderr}");
        assert!(stderr.contains(needle), "{bad}: {stderr}");
    }
}

#[test]
fn failed_jobs_are_reported_and_exit_code_is_analysis_failure() {
    let manifest = write_file(
        "batch_det_failing.json",
        r#"{"targets": [
              {"benchmark": "fibcall"},
              {"name": "bad", "source": ".text\nmain: frobnicate r1\n"}
           ]}"#,
    );
    let (code, stdout, stderr) = stamp_cli(&["batch", &manifest, "--no-timing"]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("1 batch job(s) failed"), "{stderr}");
    // The merged report still carries the good job and the failure.
    assert!(stdout.contains("\"wcet\":242"), "{stdout}");
    assert!(stdout.contains("assemble:"), "{stdout}");
}

#[test]
fn conflicting_batch_inputs_are_usage_errors() {
    let manifest = write_file("batch_det_conflict.json", MANIFEST);
    let (code, _, _) = stamp_cli(&["batch", &manifest, "--corpus"]);
    assert_eq!(code, Some(2));
    let (code, _, _) = stamp_cli(&["batch"]);
    assert_eq!(code, Some(2));
    let (code, _, stderr) = stamp_cli(&["batch", &manifest, "--check-pins"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--corpus"), "{stderr}");
}
