//! Experiment E0/E1 gate: for every benchmark, the WCET bound must cover
//! every observed execution, and stay within a sane tightness envelope.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp::{HwConfig, StackAnalysis, WcetAnalysis};
use stamp_suite::benchmarks;

/// Simulated cycles never exceed the WCET bound, on any tested input.
#[test]
fn wcet_bounds_are_sound_across_corpus() {
    let hw = HwConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE1);
    for b in benchmarks().iter().filter(|b| b.supports_wcet) {
        let program = b.program();
        let report = WcetAnalysis::new(&program)
            .hw(hw)
            .annotations(b.annotations())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (observed, _) = b.worst_observed(&program, &hw, 25, &mut rng);
        assert!(
            report.wcet >= observed,
            "{}: UNSOUND — bound {} < observed {}",
            b.name,
            report.wcet,
            observed
        );
        // Tightness envelope: the corpus is built so the bound stays
        // within 2× of the worst observation (most are far tighter).
        assert!(
            report.wcet <= observed * 2,
            "{}: bound {} looser than 2x observed {}",
            b.name,
            report.wcet,
            observed
        );
    }
}

/// Same soundness property under different hardware models.
#[test]
fn wcet_bounds_sound_without_caches() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for hw in [HwConfig::no_cache(), HwConfig::ideal()] {
        for name in ["fibcall", "insertsort", "crc", "statemate"] {
            let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
            let program = b.program();
            let report = WcetAnalysis::new(&program)
                .hw(hw)
                .annotations(b.annotations())
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let (observed, _) = b.worst_observed(&program, &hw, 10, &mut rng);
            assert!(
                report.wcet >= observed,
                "{name}: bound {} < observed {} under {hw:?}",
                report.wcet,
                observed
            );
        }
    }
}

/// Stack bounds cover the observed stack watermark (and are exact for
/// this corpus).
#[test]
fn stack_bounds_are_sound_and_exact() {
    let hw = HwConfig::default();
    let mut rng = StdRng::seed_from_u64(0xE3);
    for b in benchmarks() {
        let program = b.program();
        let report = StackAnalysis::new(&program)
            .hw(hw)
            .annotations(b.annotations())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (_, observed_stack) = b.worst_observed(&program, &hw, 10, &mut rng);
        assert!(
            report.bound >= observed_stack,
            "{}: stack bound {} < observed {}",
            b.name,
            report.bound,
            observed_stack
        );
        // Every benchmark's stack behaviour is input-independent, so the
        // bound should be exact.
        assert_eq!(
            report.bound, observed_stack,
            "{}: stack bound {} != observed {}",
            b.name, report.bound, observed_stack
        );
    }
}

/// The worst-case counts reported by IPET agree with the simulator on a
/// deterministic benchmark (fibcall has a single path).
#[test]
fn ipet_counts_match_simulation_on_single_path_task() {
    let hw = HwConfig::default();
    let b = benchmarks().into_iter().find(|b| b.name == "fibcall").unwrap();
    let program = b.program();
    let report = WcetAnalysis::new(&program).hw(hw).run().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let (observed, _) = b.worst_observed(&program, &hw, 1, &mut rng);
    // Single-path program: bound is exact.
    assert_eq!(report.wcet, observed, "fibcall is single-path; bound must be exact");
}
