//! Experiment E0/E1 gate: for every benchmark, the WCET bound must cover
//! every observed execution, and stay within a sane tightness envelope.
//!
//! The soundness leg runs through the shared differential oracle
//! (`stamp_suite::oracle`) — the same harness as the random-program
//! tests and the `stamp fuzz` campaign — with the adversarial input
//! patterns enabled so the observed worst case is sharp enough for the
//! tightness assertions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp::HwConfig;
use stamp_suite::benchmarks;
use stamp_suite::oracle::{check, OracleConfig, OracleReport};
use stamp_suite::Benchmark;

/// Runs the oracle on one benchmark; any violation is a test failure.
fn oracle_pass(b: &Benchmark, cfg: &OracleConfig, seed: u64) -> OracleReport {
    let program = b.program();
    let mut rng = StdRng::seed_from_u64(seed);
    check(&program, &b.annotations(), b.input, cfg, &mut rng)
        .unwrap_or_else(|v| panic!("{}: {v}", b.name))
}

/// Simulated cycles never exceed the WCET bound, on any tested input —
/// and the bound stays within the 2× tightness envelope the corpus is
/// built for.
#[test]
fn wcet_bounds_are_sound_across_corpus() {
    let cfg = OracleConfig { rounds: 25, adversarial: true, ..OracleConfig::default() };
    for b in benchmarks().iter().filter(|b| b.supports_wcet) {
        let report = oracle_pass(b, &cfg, 0xE1);
        let (bound, observed) = (report.wcet.unwrap(), report.worst_cycles);
        // Tightness envelope: the corpus is built so the bound stays
        // within 2× of the worst observation (most are far tighter).
        assert!(
            bound <= observed * 2,
            "{}: bound {bound} looser than 2x observed {observed}",
            b.name
        );
    }
}

/// Same soundness property under different hardware models.
#[test]
fn wcet_bounds_sound_without_caches() {
    for hw in [HwConfig::no_cache(), HwConfig::ideal()] {
        let cfg = OracleConfig { hw, rounds: 10, adversarial: true, ..OracleConfig::default() };
        for name in ["fibcall", "insertsort", "crc", "statemate"] {
            let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
            oracle_pass(&b, &cfg, 0xE2);
        }
    }
}

/// Stack bounds cover the observed stack watermark (and are exact for
/// this corpus).
#[test]
fn stack_bounds_are_sound_and_exact() {
    for b in benchmarks() {
        // Stack-only oracle pass: the WCET analysis (and with it the
        // value-containment leg) is covered by the corpus test above;
        // repeating it here per benchmark would only duplicate work.
        let cfg =
            OracleConfig { rounds: 10, adversarial: true, wcet: false, ..OracleConfig::default() };
        let report = oracle_pass(&b, &cfg, 0xE3);
        // Every benchmark's stack behaviour is input-independent, so
        // the (oracle-checked, sound) bound should also be exact.
        assert_eq!(
            report.stack_bound, report.worst_stack,
            "{}: stack bound {} != observed {}",
            b.name, report.stack_bound, report.worst_stack
        );
    }
}

/// The worst-case counts reported by IPET agree with the simulator on a
/// deterministic benchmark (fibcall has a single path).
#[test]
fn ipet_counts_match_simulation_on_single_path_task() {
    let b = benchmarks().into_iter().find(|b| b.name == "fibcall").unwrap();
    let report = oracle_pass(&b, &OracleConfig { rounds: 1, ..OracleConfig::default() }, 1);
    // Single-path program: bound is exact.
    assert_eq!(
        report.wcet.unwrap(),
        report.worst_cycles,
        "fibcall is single-path; bound must be exact"
    );
}
