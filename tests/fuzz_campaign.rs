//! End-to-end tests of the differential fuzz campaign: determinism
//! across worker counts, the counterexample-shrinking pipeline against
//! an intentionally broken oracle, and reproducer persistence.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_core::Annotations;
use stamp_suite::fuzz::{run_campaign, FuzzConfig};
use stamp_suite::oracle::{self, FaultInjection, OracleConfig};

fn small_campaign(iterations: usize, seed: u64) -> FuzzConfig {
    FuzzConfig { iterations, seed, rounds: 2, ..FuzzConfig::default() }
}

/// The tentpole invariant: the deterministic report is byte-identical
/// across worker counts (and across repeated runs).
#[test]
fn campaign_results_are_byte_identical_across_worker_counts() {
    let cfg = small_campaign(18, 5);
    let reports: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            run_campaign(&cfg, workers).expect("campaign runs").results_json().to_string()
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1 vs 2 workers");
    assert_eq!(reports[0], reports[2], "1 vs 8 workers");
    // And the campaign is green: the analyses are sound on the whole
    // generated population.
    assert!(reports[0].contains("\"violation_count\":0"), "{}", reports[0]);
}

/// Campaigns with different seeds explore different programs.
#[test]
fn campaign_seed_changes_the_population() {
    let a = run_campaign(&small_campaign(4, 1), 2).unwrap();
    let b = run_campaign(&small_campaign(4, 2), 2).unwrap();
    assert_ne!(
        (a.lines_total, a.cycles_total),
        (b.lines_total, b.cycles_total),
        "different campaign seeds must generate different populations"
    );
}

/// The acceptance gate for the shrinking pipeline: an intentionally
/// broken oracle (mnemonic predicate) must yield a minimized
/// reproducer no larger than 25% of the original program, persisted as
/// a ready-to-commit regression file.
#[test]
fn broken_oracle_yields_shrunk_reproducer_within_quarter_of_original() {
    let dir = std::env::temp_dir().join("stamp_fuzz_campaign_repro");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FuzzConfig {
        fault: Some(FaultInjection::FlagMnemonic("div".to_string())),
        repro_dir: Some(dir.clone()),
        ..small_campaign(6, 11)
    };
    let report = run_campaign(&cfg, 2).unwrap();
    assert!(report.violations() > 0, "no generated program contained a div");
    for f in &report.findings {
        assert_eq!(f.kind, "injected");
        assert!(
            f.shrunk_lines * 4 <= f.original_lines,
            "job {}: shrunk to {} of {} lines (> 25%)",
            f.job,
            f.shrunk_lines,
            f.original_lines
        );
        // The reproducer file exists, assembles (comments and all), and
        // still fails the same synthetic oracle.
        let path = f.repro_path.as_ref().expect("reproducer path recorded");
        let text = std::fs::read_to_string(path).expect("reproducer written");
        assert!(text.starts_with("; stamp fuzz reproducer"), "{text}");
        assert!(text.contains(&format!("job seed: {}", f.seed)), "{text}");
        let program = stamp::assemble(&text).expect("reproducer assembles");
        let oracle_cfg = OracleConfig { fault: cfg.fault.clone(), ..OracleConfig::default() };
        let mut rng = StdRng::seed_from_u64(f.seed);
        let v = oracle::check(&program, &Annotations::new(), None, &oracle_cfg, &mut rng)
            .expect_err("minimized reproducer must still fail");
        assert_eq!(v.kind(), "injected");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shrinking can be disabled; findings then carry the original source.
#[test]
fn no_shrink_keeps_the_original_counterexample() {
    let cfg = FuzzConfig {
        fault: Some(FaultInjection::FlagMnemonic("div".to_string())),
        shrink: false,
        ..small_campaign(3, 11)
    };
    let report = run_campaign(&cfg, 1).unwrap();
    assert!(report.violations() > 0);
    for f in &report.findings {
        assert_eq!(f.shrunk_lines, f.original_lines);
        assert!(f.shrunk_source.contains("main:"), "unshrunk source is the full program");
    }
}

/// Tightened-bound faults are detected as the corresponding violation
/// kinds (the other two fault-injection modes of the CLI).
#[test]
fn tightened_bound_faults_are_detected() {
    // A 1% WCET bound is overrun by every non-trivial program.
    let cfg = FuzzConfig {
        fault: Some(FaultInjection::TightenWcet(1)),
        shrink: false,
        ..small_campaign(2, 0)
    };
    let report = run_campaign(&cfg, 1).unwrap();
    assert!(report.violations() > 0, "1% WCET bound must be overrun");
    assert!(report.findings.iter().all(|f| f.kind == "wcet"), "{:?}", report.findings[0].kind);

    // Enough jobs that some generated program surely uses the stack
    // (call shapes appear every few draws) — the leg must not pass
    // vacuously on an empty findings list.
    let cfg = FuzzConfig {
        fault: Some(FaultInjection::TightenStack(10)),
        shrink: false,
        ..small_campaign(8, 0)
    };
    let report = run_campaign(&cfg, 1).unwrap();
    assert!(report.violations() > 0, "10% stack bound must be overrun by some program");
    assert!(report.findings.iter().all(|f| f.kind == "stack"), "stack faults misclassified");
}
