//! Report artifacts: the aiT-style report file, JSON export, annotated
//! DOT graph, and the CFG ↔ value-analysis loop for jump tables.

use stamp::{assemble, Annotations, WcetAnalysis};
use stamp_suite::benchmarks;

#[test]
fn report_file_contains_all_sections() {
    let b = benchmarks().into_iter().find(|b| b.name == "matmult").unwrap();
    let program = b.program();
    let report = WcetAnalysis::new(&program).run().unwrap();
    let text = report.render(&program);
    for needle in [
        "WCET analysis report",
        "value analysis",
        "loop bounds",
        "cache analysis",
        "path analysis",
        "WCET bound:",
        "worst-case profile",
        "analysis time",
    ] {
        assert!(text.contains(needle), "report misses `{needle}`:\n{text}");
    }
    // All three nested loops appear with their bounds.
    assert!(text.matches("≤ 5 iterations").count() >= 3, "{text}");
}

#[test]
fn json_export_is_wellformed_and_complete() {
    let b = benchmarks().into_iter().find(|b| b.name == "fibcall").unwrap();
    let program = b.program();
    let report = WcetAnalysis::new(&program).run().unwrap();
    let json = report.to_json().to_string();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for key in ["\"wcet\"", "\"precision\"", "\"loop_bounds\"", "\"ilp\"", "\"analysis_seconds\""] {
        assert!(json.contains(key), "json misses {key}: {json}");
    }
    assert!(json.contains(&format!("\"wcet\":{}", report.wcet)));
}

#[test]
fn dot_export_highlights_worst_path() {
    let b = benchmarks().into_iter().find(|b| b.name == "statemate").unwrap();
    let program = b.program();
    let report = WcetAnalysis::new(&program).run().unwrap();
    let dot = report.to_dot();
    assert!(dot.starts_with("digraph cfg {"));
    assert!(dot.contains("count "), "per-block counts annotated");
    assert!(dot.contains("lightsalmon"), "worst path highlighted");
}

#[test]
fn jump_table_resolution_loop_converges() {
    // switchcase needs the CFG ↔ value-analysis iteration: its dispatch
    // targets live in a ROM jump table.
    let b = benchmarks().into_iter().find(|b| b.name == "switchcase").unwrap();
    let program = b.program();
    let report = WcetAnalysis::new(&program).run().unwrap();
    // All four cases discovered: the CFG has blocks for each.
    assert!(report.blocks >= 8, "expected all dispatch arms, got {} blocks", report.blocks);
    assert!(report.wcet > 0);
}

#[test]
fn indirect_annotation_substitutes_for_value_analysis() {
    // Force resolution through annotations only: same program, targets
    // declared up front — must yield the same CFG shape.
    let b = benchmarks().into_iter().find(|b| b.name == "switchcase").unwrap();
    let program = b.program();
    let auto = WcetAnalysis::new(&program).run().unwrap();

    let jalr_addr = program
        .insns()
        .find(|(_, i)| matches!(i.flow(0), stamp_isa::Flow::IndirectJump))
        .map(|(a, _)| a)
        .unwrap();
    let targets: Vec<u32> = ["case0", "case1", "case2", "case3"]
        .iter()
        .map(|s| program.symbols.addr_of(s).unwrap())
        .collect();
    let annotated = WcetAnalysis::new(&program)
        .annotations(Annotations::new().indirect_target_addrs(jalr_addr, targets))
        .run()
        .unwrap();
    assert_eq!(auto.blocks, annotated.blocks);
    assert_eq!(auto.wcet, annotated.wcet);
}

#[test]
fn phase_timings_are_recorded() {
    let program =
        assemble(".text\nmain: li r1, 3\nl: addi r1, r1, -1\nbnez r1, l\nhalt\n").unwrap();
    let report = WcetAnalysis::new(&program).run().unwrap();
    let names: Vec<&str> = report.phases.iter().map(|p| p.name()).collect();
    for phase in [
        "cfg building",
        "context expansion",
        "value analysis",
        "loop bound analysis",
        "cache analysis",
        "pipeline analysis",
        "path analysis (ILP)",
    ] {
        assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
    }
    assert!(report.analysis_seconds() > 0.0);
}
