//! The procedure-summary solver's contract: segment decomposition is
//! *exact* — batch results are byte-identical between the summarized
//! and the monolithic path solver at every worker count — while the
//! timing layer records real summary reuse, including across processes
//! through the durable store.

use std::path::Path;

use stamp::analyzer::{run_batch, ArtifactStore, PhaseId};
use stamp::suite::{corpus_matrix, parse_manifest};
use stamp::{assemble, BatchVariant, WcetAnalysis};

/// The tentpole identity: the whole corpus, analyzed with the
/// per-segment summary solver, must render byte-for-byte the same
/// deterministic results as the monolithic whole-iCFG ILP — at one,
/// two and eight workers.
#[test]
fn summarized_corpus_results_match_monolithic_at_every_worker_count() {
    let request = corpus_matrix(&[BatchVariant::default()]);
    let mut monolithic_request = corpus_matrix(&[BatchVariant::default()]);
    for job in &mut monolithic_request.jobs {
        job.config.summaries = false;
    }
    let monolithic = run_batch(&monolithic_request, 1).unwrap();
    assert_eq!(monolithic.errors(), 0);
    for workers in [1usize, 2, 8] {
        let summarized = run_batch(&request, workers).unwrap();
        assert_eq!(
            summarized.results_json().to_string(),
            monolithic.results_json().to_string(),
            "summarized vs monolithic results differ at {workers} workers"
        );
    }
}

/// The `summaries` manifest key switches the solver per variant, the
/// bounds agree, and only the summarized variant reports summary
/// provenance.
#[test]
fn manifest_summaries_key_switches_the_solver() {
    let manifest = r#"{
      "targets": [
        {"benchmark": "fibcall"},
        {"benchmark": "crc"}
      ],
      "variants": [
        {"name": "default"},
        {"name": "inlined", "summaries": false}
      ]
    }"#;
    let request = parse_manifest(manifest, Path::new(".")).unwrap();
    for job in &request.jobs {
        assert_eq!(job.config.summaries, job.variant == "default", "{}", job.name());
    }
    let report = run_batch(&request, 2).unwrap();
    assert_eq!(report.errors(), 0);
    for target in ["fibcall", "crc"] {
        let of = |variant: &str| {
            report
                .results
                .iter()
                .find(|r| r.target == target && r.variant == variant)
                .unwrap_or_else(|| panic!("{target}@{variant}"))
        };
        let (summarized, inlined) = (of("default"), of("inlined"));
        assert_eq!(summarized.wcet, inlined.wcet, "{target}: bounds must agree");
        assert!(
            inlined.provenance.iter().all(|(p, _)| *p != PhaseId::Summary),
            "{target}: the monolithic solve must not report summary provenance"
        );
    }
}

/// A call-heavy task whose supergraph decomposes at every return: the
/// memo solves fewer segments than it serves, and the counts surface
/// in the report's timing layer.
const CALLS: &str = "\
    .text
    main: call f
          call f
          call f
          halt
    f:    div r1, r2, r3
          ret
";

/// Summaries persist through the durable store and are recalled by a
/// later *process* (a fresh in-memory store over the primed log) even
/// when the path artifact itself cannot be reused — here the second
/// run flips `use_infeasible`, which re-keys the path phase but leaves
/// every segment's canonical form (and so its summary) unchanged.
#[test]
fn warm_store_serves_summaries_across_processes() {
    let dir = std::env::temp_dir().join(format!("stamp-summary-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let program = assemble(CALLS).unwrap();

    let (store, warnings) = ArtifactStore::with_disk(&dir).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    let first = WcetAnalysis::new(&program).run_with(&store).unwrap();
    assert!(first.summaries_computed > 0, "no decomposition happened");
    assert!(first.summaries_reused > 0, "isomorphic call segments must be served from the memo");

    let (store2, warnings) = ArtifactStore::with_disk(&dir).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    let second = WcetAnalysis::new(&program).use_infeasible(false).run_with(&store2).unwrap();
    assert_eq!(second.wcet, first.wcet, "a branch-free task has no infeasible edges");
    assert_eq!(second.summaries_computed, 0, "every summary must come from the store");
    assert!(second.summaries_reused > 0);
    let summary = store2.stats().phase("summary").unwrap();
    assert!(summary.hits_disk > 0, "summaries must be answered from disk: {summary:?}");
    assert_eq!(summary.misses, 0, "{summary:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The render layer reports the summary counts; the deterministic JSON
/// stays witness-free.
#[test]
fn summary_counts_live_in_the_timing_layer_only() {
    let program = assemble(CALLS).unwrap();
    let report = WcetAnalysis::new(&program).run().unwrap();
    assert!(report.summaries_computed > 0);
    let rendered = report.render(&program);
    assert!(rendered.contains("procedure summaries"), "{rendered}");
    let json = report.to_json().to_string();
    assert!(!json.contains("summar"), "deterministic JSON must not carry provenance: {json}");
}
