//! # stamp-hw — the EVA32 processor and memory-system model
//!
//! This crate pins down the *microarchitectural contract* shared by the
//! cycle-accurate simulator (`stamp-sim`) and all static analyses
//! (`stamp-cache`, `stamp-pipeline`, …). It plays the role of the
//! processor manual from which both an aiT timing model and a reference
//! board would be derived — except that here both sides provably agree,
//! because they read the same [`HwConfig`].
//!
//! The model (see DESIGN.md for rationale):
//!
//! * scalar in-order 5-stage pipeline with an **additive stall model**:
//!   every instruction costs 1 issue cycle plus stalls for I-cache misses,
//!   multi-cycle EX ops, D-cache load misses, taken control transfers and
//!   the load-use hazard;
//! * separate I and D caches, set-associative with true LRU replacement;
//!   loads allocate, stores are write-around (they never touch the cache)
//!   and retire through a write buffer at zero stall cycles;
//! * a flat memory map: ROM (code + constants) and RAM (data, bss, stack;
//!   the stack grows down from the top of RAM).
//!
//! # Example
//!
//! ```
//! use stamp_hw::HwConfig;
//!
//! let hw = HwConfig::default();
//! let dc = hw.dcache.unwrap();
//! assert_eq!(dc.size_bytes(), 1024);
//! assert_eq!(dc.set_index(0x1000_0040), dc.set_index(0x1000_0040 + dc.size_bytes()));
//! ```

use serde::{Deserialize, Serialize};

mod cache;
mod map;
mod timing;

pub use cache::CacheConfig;
pub use map::{MemoryMap, Region};
pub use timing::Timing;

/// Complete hardware configuration: caches, memory map and timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwConfig {
    /// Instruction cache, or `None` for uncached instruction fetch
    /// (every fetch pays the miss penalty).
    pub icache: Option<CacheConfig>,
    /// Data cache, or `None` for uncached data accesses.
    pub dcache: Option<CacheConfig>,
    /// Memory map.
    pub mem: MemoryMap,
    /// Timing parameters.
    pub timing: Timing,
}

impl Default for HwConfig {
    /// The reference configuration used throughout the test suite:
    /// 1 KiB 2-way 16 B-line I and D caches, 10-cycle miss penalties,
    /// 2-cycle taken-branch penalty, 4-cycle multiply, 12-cycle divide.
    fn default() -> HwConfig {
        HwConfig {
            icache: Some(CacheConfig::new(32, 2, 16)),
            dcache: Some(CacheConfig::new(32, 2, 16)),
            mem: MemoryMap::default(),
            timing: Timing::default(),
        }
    }
}

impl HwConfig {
    /// A configuration without caches: every fetch and load pays the miss
    /// penalty. Useful as the "all-miss" baseline in experiments.
    pub fn no_cache() -> HwConfig {
        HwConfig { icache: None, dcache: None, ..HwConfig::default() }
    }

    /// A configuration with an ideal (never-stalling) memory system:
    /// each instruction costs 1 cycle plus EX stalls and branch
    /// penalties. Useful for isolating path-analysis behaviour.
    pub fn ideal() -> HwConfig {
        HwConfig {
            icache: None,
            dcache: None,
            mem: MemoryMap::default(),
            timing: Timing { i_miss_penalty: 0, d_miss_penalty: 0, ..Timing::default() },
        }
    }

    /// Returns the default configuration with both caches resized to
    /// `total_bytes` (same 2-way/16 B geometry). Used by the cache-size
    /// sweep experiment (E9).
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is not a power of two ≥ 32.
    pub fn with_cache_bytes(total_bytes: u32) -> HwConfig {
        assert!(
            total_bytes.is_power_of_two() && total_bytes >= 32,
            "cache size must be a power of two ≥ 32, got {total_bytes}"
        );
        let sets = (total_bytes / (2 * 16)).max(1);
        let cfg = CacheConfig::new(sets, 2, 16);
        HwConfig { icache: Some(cfg), dcache: Some(cfg), ..HwConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_consistent() {
        let hw = HwConfig::default();
        assert_eq!(hw.icache.unwrap().size_bytes(), 1024);
        assert_eq!(hw.mem.stack_top() % 4, 0);
    }

    #[test]
    fn cache_sweep_sizes() {
        for bytes in [64, 256, 1024, 4096] {
            let hw = HwConfig::with_cache_bytes(bytes);
            assert_eq!(hw.dcache.unwrap().size_bytes(), bytes);
        }
    }

    #[test]
    fn ideal_has_no_memory_stalls() {
        let hw = HwConfig::ideal();
        assert!(hw.icache.is_none());
        assert_eq!(hw.timing.i_miss_penalty, 0);
        assert_eq!(hw.timing.d_miss_penalty, 0);
    }
}
