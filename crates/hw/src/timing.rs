//! Pipeline timing parameters.

use serde::{Deserialize, Serialize};

/// Timing parameters of the additive-stall pipeline model.
///
/// The cost of one retired instruction is
///
/// ```text
/// 1                       (issue)
/// + i_miss_penalty        if the fetch misses the I-cache
/// + (mul_latency - 1)     for mul/mulh
/// + (div_latency - 1)     for div/rem
/// + d_miss_penalty        if a load misses the D-cache
/// + branch_penalty        if the instruction is a taken control transfer
/// + 1                     load-use hazard (see [`Timing::load_use_hazard`])
/// ```
///
/// Stores never stall (write buffer, write-around).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Extra cycles for an instruction fetch that misses the I-cache
    /// (also the flat fetch cost when no I-cache is configured).
    pub i_miss_penalty: u32,
    /// Extra cycles for a load that misses the D-cache
    /// (also the flat load cost when no D-cache is configured).
    pub d_miss_penalty: u32,
    /// Extra cycles for every *taken* branch, jump, call and return
    /// (pipeline refill).
    pub branch_penalty: u32,
    /// Total EX-stage occupancy of `mul`/`mulh` (≥ 1).
    pub mul_latency: u32,
    /// Total EX-stage occupancy of `div`/`rem` (≥ 1).
    pub div_latency: u32,
    /// When `true`, an instruction that reads the destination register of
    /// the *immediately preceding* load stalls one cycle. This hazard
    /// crosses basic-block boundaries, so the pipeline analysis must track
    /// it as abstract state.
    pub load_use_hazard: bool,
}

impl Default for Timing {
    fn default() -> Timing {
        Timing {
            i_miss_penalty: 10,
            d_miss_penalty: 10,
            branch_penalty: 2,
            mul_latency: 4,
            div_latency: 12,
            load_use_hazard: true,
        }
    }
}

impl Timing {
    /// Extra EX cycles (beyond the issue cycle) of the given ALU class.
    pub fn ex_stall(&self, is_mul: bool, is_div: bool) -> u32 {
        if is_mul {
            self.mul_latency.saturating_sub(1)
        } else if is_div {
            self.div_latency.saturating_sub(1)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ex_stall_from_latency() {
        let t = Timing::default();
        assert_eq!(t.ex_stall(false, false), 0);
        assert_eq!(t.ex_stall(true, false), 3);
        assert_eq!(t.ex_stall(false, true), 11);
    }
}
