//! Cache geometry.

use serde::{Deserialize, Serialize};

/// Geometry of one set-associative LRU cache.
///
/// All three parameters must be powers of two. Addresses map to sets by
/// `(addr / line_bytes) % sets`; the tag is the remaining high bits.
///
/// # Example
///
/// ```
/// use stamp_hw::CacheConfig;
///
/// let c = CacheConfig::new(32, 2, 16); // 1 KiB, 2-way, 16-byte lines
/// assert_eq!(c.size_bytes(), 1024);
/// assert_eq!(c.set_index(0x40), 4);
/// assert_eq!(c.line_addr(0x47), 0x40);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    sets: u32,
    assoc: u32,
    line_bytes: u32,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or not a power of two, or if
    /// `line_bytes < 4`.
    pub fn new(sets: u32, assoc: u32, line_bytes: u32) -> CacheConfig {
        assert!(sets.is_power_of_two(), "sets must be a power of two, got {sets}");
        assert!(assoc.is_power_of_two(), "assoc must be a power of two, got {assoc}");
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= 4,
            "line_bytes must be a power of two ≥ 4, got {line_bytes}"
        );
        CacheConfig { sets, assoc, line_bytes }
    }

    /// Number of sets.
    pub fn sets(self) -> u32 {
        self.sets
    }

    /// Associativity (ways per set).
    pub fn assoc(self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_bytes(self) -> u32 {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> u32 {
        self.sets * self.assoc * self.line_bytes
    }

    /// The set index of an address.
    pub fn set_index(self, addr: u32) -> u32 {
        (addr / self.line_bytes) % self.sets
    }

    /// The address of the first byte of the line containing `addr`
    /// (tag and set index combined — a unique line identifier).
    pub fn line_addr(self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// Iterates over the distinct line addresses touched by an access of
    /// `len` bytes starting at `addr` (1 or 2 lines for aligned scalar
    /// accesses).
    pub fn lines_touched(self, addr: u32, len: u32) -> impl Iterator<Item = u32> {
        let first = self.line_addr(addr);
        let last = self.line_addr(addr + len.max(1) - 1);
        let lb = self.line_bytes;
        (0..=(last.wrapping_sub(first) / lb)).map(move |i| first + i * lb)
    }
}

impl stamp_codec::Codec for CacheConfig {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.sets);
        e.u32(self.assoc);
        e.u32(self.line_bytes);
    }
    // Re-validates the geometry instead of calling `new` so corrupt
    // bytes surface as a decode error, not a panic.
    fn dec(d: &mut stamp_codec::Dec) -> Result<CacheConfig, stamp_codec::CodecError> {
        let (sets, assoc, line_bytes) = (d.u32()?, d.u32()?, d.u32()?);
        if sets.is_power_of_two()
            && assoc.is_power_of_two()
            && line_bytes.is_power_of_two()
            && line_bytes >= 4
        {
            Ok(CacheConfig { sets, assoc, line_bytes })
        } else {
            Err(stamp_codec::CodecError::Invalid("cache geometry"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::new(64, 4, 32);
        assert_eq!(c.size_bytes(), 8192);
        assert_eq!(c.set_index(0), 0);
        assert_eq!(c.set_index(32), 1);
        assert_eq!(c.set_index(64 * 32), 0); // wraps around
        assert_eq!(c.line_addr(0x1234), 0x1220);
    }

    #[test]
    fn lines_touched_spans_boundary() {
        let c = CacheConfig::new(32, 2, 16);
        let v: Vec<u32> = c.lines_touched(0x0e, 4).collect();
        assert_eq!(v, vec![0x00, 0x10]);
        let v: Vec<u32> = c.lines_touched(0x10, 4).collect();
        assert_eq!(v, vec![0x10]);
        let v: Vec<u32> = c.lines_touched(0x10, 1).collect();
        assert_eq!(v, vec![0x10]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sets_panics() {
        let _ = CacheConfig::new(3, 2, 16);
    }
}
