//! The flat EVA32 memory map.

use serde::{Deserialize, Serialize};

/// Classification of an address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Read-only memory: code and constant data.
    Rom,
    /// Read-write memory: data, bss and the stack.
    Ram,
    /// Not mapped; accesses fault.
    Unmapped,
}

/// The memory map: one ROM window and one RAM window.
///
/// The stack grows *down* from [`MemoryMap::stack_top`]. The assembler's
/// default layout (`text_base = 0`, `data_base = 0x1000_0000`) matches
/// [`MemoryMap::default`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryMap {
    /// Base address of ROM.
    pub rom_base: u32,
    /// ROM size in bytes.
    pub rom_size: u32,
    /// Base address of RAM.
    pub ram_base: u32,
    /// RAM size in bytes.
    pub ram_size: u32,
}

impl Default for MemoryMap {
    /// 1 MiB ROM at `0x0000_0000`, 1 MiB RAM at `0x1000_0000`.
    fn default() -> MemoryMap {
        MemoryMap {
            rom_base: 0x0000_0000,
            rom_size: 0x0010_0000,
            ram_base: 0x1000_0000,
            ram_size: 0x0010_0000,
        }
    }
}

impl MemoryMap {
    /// Classifies an address.
    pub fn region(&self, addr: u32) -> Region {
        if addr.wrapping_sub(self.rom_base) < self.rom_size {
            Region::Rom
        } else if addr.wrapping_sub(self.ram_base) < self.ram_size {
            Region::Ram
        } else {
            Region::Unmapped
        }
    }

    /// Returns `true` if an access of `len` bytes at `addr` stays inside
    /// one mapped region.
    pub fn access_ok(&self, addr: u32, len: u32) -> bool {
        let r = self.region(addr);
        r != Region::Unmapped && len > 0 && self.region(addr + (len - 1)) == r
    }

    /// The initial stack pointer: one byte past the end of RAM, which is
    /// 16-byte aligned for the default map.
    pub fn stack_top(&self) -> u32 {
        self.ram_base + self.ram_size
    }

    /// End of RAM (exclusive).
    pub fn ram_end(&self) -> u32 {
        self.ram_base + self.ram_size
    }

    /// End of ROM (exclusive).
    pub fn rom_end(&self) -> u32 {
        self.rom_base + self.rom_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_classified() {
        let m = MemoryMap::default();
        assert_eq!(m.region(0), Region::Rom);
        assert_eq!(m.region(0x000f_ffff), Region::Rom);
        assert_eq!(m.region(0x0010_0000), Region::Unmapped);
        assert_eq!(m.region(0x1000_0000), Region::Ram);
        assert_eq!(m.region(0x100f_ffff), Region::Ram);
        assert_eq!(m.region(0x1010_0000), Region::Unmapped);
        assert_eq!(m.region(0xffff_ffff), Region::Unmapped);
    }

    #[test]
    fn access_bounds() {
        let m = MemoryMap::default();
        assert!(m.access_ok(0x000f_fffc, 4));
        assert!(!m.access_ok(0x000f_fffd, 4)); // crosses out of ROM
        assert!(!m.access_ok(0x2000_0000, 1));
        assert!(!m.access_ok(0, 0));
    }

    #[test]
    fn stack_top_at_ram_end() {
        let m = MemoryMap::default();
        assert_eq!(m.stack_top(), 0x1010_0000);
        assert_eq!(m.stack_top(), m.ram_end());
    }
}
