//! Structural properties of CFG reconstruction over generated programs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_cfg::{CfgBuilder, EdgeKind};
use stamp_isa::asm::assemble;
use stamp_isa::Flow;
use stamp_suite::{generate, GenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocks_partition_discovered_code(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &GenConfig::default());
        let p = assemble(&src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");

        // No instruction address appears in two blocks.
        let mut seen = std::collections::BTreeSet::new();
        for b in cfg.blocks() {
            for &(addr, _) in &b.insns {
                prop_assert!(seen.insert(addr), "address {addr:#x} in two blocks");
            }
            // Instructions within a block are consecutive.
            for w in b.insns.windows(2) {
                prop_assert_eq!(w[0].0 + 4, w[1].0);
            }
            // Only the last instruction may change control flow.
            for &(addr, insn) in &b.insns[..b.insns.len() - 1] {
                prop_assert!(
                    matches!(insn.flow(addr), Flow::Seq),
                    "non-terminator control flow inside a block"
                );
            }
        }

        // Edge endpoints agree with the terminators.
        for b in cfg.blocks() {
            let succs: Vec<EdgeKind> = cfg.succs(b.id).map(|(_, e)| e.kind).collect();
            match b.exit_flow() {
                Flow::Branch { .. } => {
                    prop_assert!(succs.len() <= 2 && !succs.is_empty());
                }
                Flow::Jump { .. } => prop_assert_eq!(succs.len(), 1),
                Flow::Halt | Flow::Return => prop_assert!(succs.is_empty()),
                Flow::Call { .. } | Flow::IndirectCall => {
                    prop_assert!(succs.iter().all(|k| *k == EdgeKind::CallFall));
                }
                Flow::Seq => prop_assert!(succs.len() <= 1),
                Flow::IndirectJump => {}
            }
        }

        // RPO of each function starts at its entry and visits blocks of
        // that function only, exactly once.
        for f in cfg.functions() {
            let order = cfg.rpo(f.id);
            prop_assert_eq!(order.first().copied(), Some(f.entry));
            let unique: std::collections::BTreeSet<_> = order.iter().collect();
            prop_assert_eq!(unique.len(), order.len());
            for b in &order {
                prop_assert_eq!(cfg.block(*b).func, f.id);
            }
        }

        // Dominators: every function entry dominates all its blocks.
        for f in cfg.functions() {
            let dom = cfg.dominators(f.id);
            for &b in &f.blocks {
                if cfg.rpo(f.id).contains(&b) {
                    prop_assert!(dom.dominates(f.entry, b));
                }
            }
        }

        // Loop bodies contain their headers; back edges originate inside.
        for f in cfg.functions() {
            let forest = cfg.loop_forest(f.id).expect("reducible by construction");
            for l in forest.loops() {
                prop_assert!(l.body.contains(&l.header));
                for &e in &l.back_edges {
                    prop_assert!(l.body.contains(&cfg.edge(e).from));
                    prop_assert_eq!(cfg.edge(e).to, l.header);
                }
                for &e in &l.entry_edges {
                    prop_assert!(!l.body.contains(&cfg.edge(e).from));
                }
            }
        }
    }
}
