//! CFG reconstruction from a binary program image.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

use stamp_isa::{Flow, Program};

use crate::graph::{
    BasicBlock, BlockId, CallSite, Callee, Cfg, Edge, EdgeId, EdgeKind, FuncId, Function,
};

/// Errors raised during CFG reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfgError {
    /// An address on a discovered path does not decode to an instruction.
    Decode { addr: u32, message: String },
    /// The same code address was reached from two different function
    /// entries — the reconstruction assumes functions do not share code.
    SharedCode { addr: u32, first: u32, second: u32 },
    /// A control-flow cycle without a unique dominating header was found;
    /// loop-bound analysis requires reducible control flow.
    Irreducible { func_entry: u32 },
    /// An indirect jump had no targets and `allow_unresolved` was off.
    Unresolved { addr: u32 },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Decode { addr, message } => {
                write!(f, "cannot decode instruction at {addr:#010x}: {message}")
            }
            CfgError::SharedCode { addr, first, second } => write!(
                f,
                "code at {addr:#010x} is shared by functions at {first:#010x} and {second:#010x}"
            ),
            CfgError::Irreducible { func_entry } => {
                write!(f, "irreducible control flow in function at {func_entry:#010x}")
            }
            CfgError::Unresolved { addr } => {
                write!(f, "unresolved indirect jump at {addr:#010x}")
            }
        }
    }
}

impl Error for CfgError {}

/// Reconstructs a [`Cfg`] from a [`Program`].
///
/// # Example
///
/// ```
/// use stamp_isa::asm::assemble;
/// use stamp_cfg::CfgBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble(".text\nmain: call f\nhalt\nf: ret\n")?;
/// let cfg = CfgBuilder::new(&p).build()?;
/// assert_eq!(cfg.functions().len(), 2);
/// assert_eq!(cfg.call_sites().len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct CfgBuilder<'p> {
    program: &'p Program,
    indirect_targets: BTreeMap<u32, Vec<u32>>,
    allow_unresolved: bool,
}

impl<'p> CfgBuilder<'p> {
    /// Creates a builder for `program`.
    pub fn new(program: &'p Program) -> CfgBuilder<'p> {
        CfgBuilder { program, indirect_targets: BTreeMap::new(), allow_unresolved: true }
    }

    /// Supplies possible targets for the indirect jump/call at `addr`
    /// (from annotations or value-analysis refinement).
    pub fn indirect_targets(
        &mut self,
        addr: u32,
        targets: impl IntoIterator<Item = u32>,
    ) -> &mut Self {
        let e = self.indirect_targets.entry(addr).or_default();
        for t in targets {
            if !e.contains(&t) {
                e.push(t);
            }
        }
        e.sort_unstable();
        self
    }

    /// When `false`, unresolved indirect jumps abort the build instead of
    /// being recorded in [`Cfg::unresolved_indirects`]. Default `true`.
    pub fn allow_unresolved(&mut self, allow: bool) -> &mut Self {
        self.allow_unresolved = allow;
        self
    }

    /// Runs the reconstruction.
    ///
    /// # Errors
    ///
    /// See [`CfgError`]. Note that unresolved indirect jumps are *not*
    /// errors by default; callers must check
    /// [`Cfg::unresolved_indirects`].
    pub fn build(&self) -> Result<Cfg, CfgError> {
        Discovery::run(self.program, &self.indirect_targets, self.allow_unresolved)
    }
}

/// Per-function discovery state.
struct FnInfo {
    entry: u32,
    /// All instruction addresses of this function.
    addrs: BTreeSet<u32>,
    /// Block leader addresses.
    leaders: BTreeSet<u32>,
    /// `(call addr, direct targets)` of calls in this function.
    calls: Vec<(u32, Vec<u32>)>,
}

struct Discovery<'p> {
    program: &'p Program,
    indirect: &'p BTreeMap<u32, Vec<u32>>,
    allow_unresolved: bool,
    /// Function entry → dense function index.
    func_ids: BTreeMap<u32, usize>,
    funcs: Vec<FnInfo>,
    /// Code address → owning function entry (for shared-code detection).
    owner: BTreeMap<u32, u32>,
    unresolved: BTreeSet<u32>,
}

impl<'p> Discovery<'p> {
    fn run(
        program: &'p Program,
        indirect: &'p BTreeMap<u32, Vec<u32>>,
        allow_unresolved: bool,
    ) -> Result<Cfg, CfgError> {
        let mut d = Discovery {
            program,
            indirect,
            allow_unresolved,
            func_ids: BTreeMap::new(),
            funcs: Vec::new(),
            owner: BTreeMap::new(),
            unresolved: BTreeSet::new(),
        };
        let mut queue = VecDeque::new();
        d.register_func(program.entry, &mut queue);
        while let Some(entry) = queue.pop_front() {
            d.trace_function(entry, &mut queue)?;
        }
        d.assemble()
    }

    fn register_func(&mut self, entry: u32, queue: &mut VecDeque<u32>) -> usize {
        if let Some(&i) = self.func_ids.get(&entry) {
            return i;
        }
        let i = self.funcs.len();
        self.func_ids.insert(entry, i);
        self.funcs.push(FnInfo {
            entry,
            addrs: BTreeSet::new(),
            leaders: BTreeSet::from([entry]),
            calls: Vec::new(),
        });
        queue.push_back(entry);
        i
    }

    fn trace_function(&mut self, entry: u32, queue: &mut VecDeque<u32>) -> Result<(), CfgError> {
        let fi = self.func_ids[&entry];
        let mut work = vec![entry];
        while let Some(addr) = work.pop() {
            if self.funcs[fi].addrs.contains(&addr) {
                continue;
            }
            if let Some(&first) = self.owner.get(&addr) {
                if first != entry {
                    return Err(CfgError::SharedCode { addr, first, second: entry });
                }
            }
            self.owner.insert(addr, entry);
            self.funcs[fi].addrs.insert(addr);

            let insn = self
                .program
                .decode_at(addr)
                .map_err(|e| CfgError::Decode { addr, message: e.to_string() })?;
            match insn.flow(addr) {
                Flow::Seq => work.push(addr + 4),
                Flow::Branch { target } => {
                    let f = &mut self.funcs[fi];
                    f.leaders.insert(target);
                    f.leaders.insert(addr + 4);
                    work.push(target);
                    work.push(addr + 4);
                }
                Flow::Jump { target } => {
                    self.funcs[fi].leaders.insert(target);
                    work.push(target);
                }
                Flow::Call { target } => {
                    self.register_func(target, queue);
                    let f = &mut self.funcs[fi];
                    f.leaders.insert(addr + 4);
                    f.calls.push((addr, vec![target]));
                    work.push(addr + 4);
                }
                Flow::IndirectCall => {
                    let targets = self.indirect.get(&addr).cloned().unwrap_or_default();
                    if targets.is_empty() {
                        if !self.allow_unresolved {
                            return Err(CfgError::Unresolved { addr });
                        }
                        self.unresolved.insert(addr);
                    }
                    for &t in &targets {
                        self.register_func(t, queue);
                    }
                    let f = &mut self.funcs[fi];
                    f.leaders.insert(addr + 4);
                    f.calls.push((addr, targets));
                    work.push(addr + 4);
                }
                Flow::IndirectJump => {
                    let targets = self.indirect.get(&addr).cloned().unwrap_or_default();
                    if targets.is_empty() {
                        if !self.allow_unresolved {
                            return Err(CfgError::Unresolved { addr });
                        }
                        self.unresolved.insert(addr);
                    }
                    let f = &mut self.funcs[fi];
                    for &t in &targets {
                        f.leaders.insert(t);
                        work.push(t);
                    }
                }
                Flow::Return | Flow::Halt => {}
            }
        }
        Ok(())
    }

    fn assemble(self) -> Result<Cfg, CfgError> {
        let program = self.program;
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut functions: Vec<Function> = Vec::new();
        let mut block_at: BTreeMap<u32, BlockId> = BTreeMap::new();
        let mut call_sites: Vec<CallSite> = Vec::new();

        // Build blocks function by function, in discovery order.
        for (fidx, info) in self.funcs.iter().enumerate() {
            let fid = FuncId(fidx as u32);
            let name = program
                .symbols
                .name_at(info.entry)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("fn_{:x}", info.entry));
            let mut func = Function {
                id: fid,
                entry_addr: info.entry,
                entry: BlockId(0), // fixed up below
                name,
                blocks: Vec::new(),
                returns: Vec::new(),
                halts: Vec::new(),
            };

            let mut current: Option<BasicBlock> = None;
            let mut prev_ends = true;
            for &addr in &info.addrs {
                let insn = program.decode_at(addr).expect("decoded during discovery");
                let start_new = info.leaders.contains(&addr) || prev_ends || current.is_none();
                if start_new {
                    if let Some(b) = current.take() {
                        finish_block(b, &mut blocks, &mut block_at, &mut func);
                    }
                    current = Some(BasicBlock {
                        id: BlockId(blocks.len() as u32), // provisional; fixed in finish
                        func: fid,
                        start: addr,
                        insns: Vec::new(),
                    });
                }
                let cur = current.as_mut().expect("block started");
                cur.insns.push((addr, insn));
                let flow = insn.flow(addr);
                prev_ends = !matches!(flow, Flow::Seq);
                // Non-contiguous addresses also force a new block.
                if !prev_ends && !info.addrs.contains(&(addr + 4)) {
                    prev_ends = true;
                }
            }
            if let Some(b) = current.take() {
                finish_block(b, &mut blocks, &mut block_at, &mut func);
            }
            func.entry = block_at[&info.entry];
            functions.push(func);
        }

        // Classify exits and connect edges.
        let mut edges: Vec<Edge> = Vec::new();
        let mut succs: Vec<Vec<EdgeId>> = vec![Vec::new(); blocks.len()];
        let mut preds: Vec<Vec<EdgeId>> = vec![Vec::new(); blocks.len()];
        let add_edge = |edges: &mut Vec<Edge>,
                        succs: &mut Vec<Vec<EdgeId>>,
                        preds: &mut Vec<Vec<EdgeId>>,
                        from: BlockId,
                        to: BlockId,
                        kind: EdgeKind| {
            let id = EdgeId(edges.len() as u32);
            edges.push(Edge { from, to, kind });
            succs[from.index()].push(id);
            preds[to.index()].push(id);
        };

        for b in &blocks {
            let (last_addr, last) = match b.last() {
                Some(x) => x,
                None => continue,
            };
            let next = last_addr + 4;
            match last.flow(last_addr) {
                Flow::Seq => {
                    if let Some(&to) = block_at.get(&next) {
                        add_edge(&mut edges, &mut succs, &mut preds, b.id, to, EdgeKind::Fall);
                    }
                }
                Flow::Branch { target } => {
                    let t = block_at[&target];
                    add_edge(&mut edges, &mut succs, &mut preds, b.id, t, EdgeKind::Taken);
                    if let Some(&to) = block_at.get(&next) {
                        add_edge(&mut edges, &mut succs, &mut preds, b.id, to, EdgeKind::Fall);
                    }
                }
                Flow::Jump { target } => {
                    let t = block_at[&target];
                    add_edge(&mut edges, &mut succs, &mut preds, b.id, t, EdgeKind::Taken);
                }
                Flow::Call { .. } | Flow::IndirectCall => {
                    let info = &self.funcs[b.func.index()];
                    let (_, targets) = info
                        .calls
                        .iter()
                        .find(|(a, _)| *a == last_addr)
                        .expect("call recorded during discovery");
                    let return_to = block_at.get(&next).copied();
                    if let Some(to) = return_to {
                        add_edge(&mut edges, &mut succs, &mut preds, b.id, to, EdgeKind::CallFall);
                    }
                    let fids: Vec<FuncId> =
                        targets.iter().map(|t| FuncId(self.func_ids[t] as u32)).collect();
                    let callee = if matches!(last.flow(last_addr), Flow::Call { .. }) {
                        Callee::Direct(fids[0])
                    } else {
                        Callee::Indirect(fids)
                    };
                    call_sites.push(CallSite { block: b.id, addr: last_addr, callee, return_to });
                }
                Flow::IndirectJump => {
                    if let Some(targets) = self.indirect.get(&last_addr) {
                        for &t in targets {
                            let to = block_at[&t];
                            add_edge(&mut edges, &mut succs, &mut preds, b.id, to, EdgeKind::Taken);
                        }
                    }
                }
                Flow::Return => functions[b.func.index()].returns.push(b.id),
                Flow::Halt => functions[b.func.index()].halts.push(b.id),
            }
        }

        Ok(Cfg {
            blocks,
            functions,
            edges,
            succs,
            preds,
            call_sites,
            block_at,
            entry_func: FuncId(0),
            unresolved: self.unresolved.into_iter().collect(),
        })
    }
}

fn finish_block(
    mut b: BasicBlock,
    blocks: &mut Vec<BasicBlock>,
    block_at: &mut BTreeMap<u32, BlockId>,
    func: &mut Function,
) {
    let id = BlockId(blocks.len() as u32);
    b.id = id;
    block_at.insert(b.start, id);
    func.blocks.push(id);
    blocks.push(b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        let p = assemble(src).expect("assembles");
        CfgBuilder::new(&p).build().expect("builds")
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = cfg_of(".text\nmain: nop\nnop\nhalt\n");
        assert_eq!(cfg.functions().len(), 1);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.block(BlockId(0)).len(), 3);
        assert_eq!(cfg.functions()[0].halts.len(), 1);
    }

    #[test]
    fn branch_splits_blocks() {
        let cfg = cfg_of(
            ".text\nmain: beq r1, r2, yes\nno: addi r3, r0, 1\nhalt\nyes: addi r3, r0, 2\nhalt\n",
        );
        // main / no / yes = 3 blocks.
        assert_eq!(cfg.blocks().len(), 3);
        let entry = cfg.functions()[0].entry;
        let succ_kinds: Vec<EdgeKind> = cfg.succs(entry).map(|(_, e)| e.kind).collect();
        assert!(succ_kinds.contains(&EdgeKind::Taken));
        assert!(succ_kinds.contains(&EdgeKind::Fall));
    }

    #[test]
    fn loop_has_back_edge_target_split() {
        let cfg = cfg_of(".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n");
        // Blocks: [li], [addi, bnez], [halt].
        assert_eq!(cfg.blocks().len(), 3);
        let loop_block = cfg.block_at(4).unwrap();
        assert!(cfg
            .succs(loop_block)
            .any(|(_, e)| e.to == loop_block && e.kind == EdgeKind::Taken));
    }

    #[test]
    fn call_discovers_function_and_callfall_edge() {
        let cfg = cfg_of(".text\nmain: call f\nhalt\nf: addi r1, r0, 1\nret\n");
        assert_eq!(cfg.functions().len(), 2);
        assert_eq!(cfg.functions()[1].name, "f");
        let cs = &cfg.call_sites()[0];
        assert_eq!(cs.callee.targets().len(), 1);
        let ret_to = cs.return_to.unwrap();
        assert!(cfg.succs(cs.block).any(|(_, e)| e.to == ret_to && e.kind == EdgeKind::CallFall));
        // Callee has one return block.
        let f1 = &cfg.functions()[1];
        assert_eq!(f1.returns.len(), 1);
    }

    #[test]
    fn unresolved_indirect_is_reported() {
        let src = ".text\nmain: la r1, main\njalr r0, r1, 0\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        assert_eq!(cfg.unresolved_indirects().len(), 1);
        // Strict mode errors instead.
        let err = CfgBuilder::new(&p).allow_unresolved(false).build().unwrap_err();
        assert!(matches!(err, CfgError::Unresolved { .. }));
    }

    #[test]
    fn indirect_targets_create_edges() {
        // A two-way computed jump.
        let src = "\
            .text
            main:
                la   r1, a
                jalr r0, r1, 0
            a:  halt
            b:  halt
        ";
        let p = assemble(src).unwrap();
        let a = p.symbols.addr_of("a").unwrap();
        let b = p.symbols.addr_of("b").unwrap();
        let jalr_addr = a - 4;
        let mut builder = CfgBuilder::new(&p);
        builder.indirect_targets(jalr_addr, [a, b]);
        let cfg = builder.build().unwrap();
        assert!(cfg.unresolved_indirects().is_empty());
        let jb = cfg.block_containing(jalr_addr).unwrap();
        let targets: Vec<BlockId> = cfg.succs(jb).map(|(_, e)| e.to).collect();
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let cfg = cfg_of(".text\nmain: beq r0, r0, x\ny: halt\nx: j y\n");
        let f = cfg.functions()[0].id;
        let order = cfg.rpo(f);
        assert_eq!(order[0], cfg.functions()[0].entry);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn block_containing_mid_block_address() {
        let cfg = cfg_of(".text\nmain: nop\nnop\nhalt\n");
        assert_eq!(cfg.block_containing(4), Some(BlockId(0)));
        assert_eq!(cfg.block_containing(0x40), None);
    }

    #[test]
    fn decode_error_surfaces() {
        // Jump into the middle of nowhere is prevented by the assembler;
        // construct a program whose entry points at data instead.
        let p = assemble(".text\nmain: j main\n").unwrap();
        let mut bad = p.clone();
        bad.entry = 0x100; // outside .text
        let err = CfgBuilder::new(&bad).build().unwrap_err();
        assert!(matches!(err, CfgError::Decode { .. }));
    }
}
