//! DOT (Graphviz) export of annotated CFGs.
//!
//! The paper visualizes analysis results "as annotations in the
//! control-flow graph that can be visualized using AbsInt's graph viewer
//! aiSee"; this module produces the equivalent open-format artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::graph::{BlockId, Cfg, EdgeKind};

/// Extra per-block and per-edge label lines (e.g. WCET contributions,
/// cache classifications) merged into the rendering.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// Extra lines appended to a block's label.
    pub block_notes: BTreeMap<BlockId, Vec<String>>,
    /// Extra label applied to edges, keyed by `(from, to)`.
    pub edge_notes: BTreeMap<(BlockId, BlockId), String>,
    /// Blocks to highlight (e.g. the worst-case execution path).
    pub highlight: Vec<BlockId>,
}

impl Annotations {
    /// Creates empty annotations.
    pub fn new() -> Annotations {
        Annotations::default()
    }

    /// Appends a note line to a block.
    pub fn note_block(&mut self, b: BlockId, line: impl Into<String>) {
        self.block_notes.entry(b).or_default().push(line.into());
    }

    /// Sets the label of an edge.
    pub fn note_edge(&mut self, from: BlockId, to: BlockId, label: impl Into<String>) {
        self.edge_notes.insert((from, to), label.into());
    }
}

/// Renders the CFG as a DOT digraph, one cluster per function.
///
/// # Example
///
/// ```
/// use stamp_isa::asm::assemble;
/// use stamp_cfg::{dot, CfgBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble(".text\nmain: halt\n")?;
/// let cfg = CfgBuilder::new(&p).build()?;
/// let text = dot::render(&cfg, &dot::Annotations::new());
/// assert!(text.starts_with("digraph cfg {"));
/// assert!(text.contains("halt"));
/// # Ok(())
/// # }
/// ```
pub fn render(cfg: &Cfg, ann: &Annotations) -> String {
    let mut out = String::new();
    out.push_str("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n");
    for f in cfg.functions() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", f.id.index());
        let _ = writeln!(out, "    label=\"{}\";", escape(&f.name));
        for &bid in &f.blocks {
            let b = cfg.block(bid);
            let mut label = format!("{bid} @ {:#x}\\l", b.start);
            for &(addr, insn) in &b.insns {
                let _ = write!(label, "{addr:#06x}: {}\\l", escape(&insn.to_string()));
            }
            for note in ann.block_notes.get(&bid).into_iter().flatten() {
                let _ = write!(label, "-- {}\\l", escape(note));
            }
            let style = if ann.highlight.contains(&bid) {
                ", style=filled, fillcolor=lightsalmon"
            } else {
                ""
            };
            let _ = writeln!(out, "    {bid} [label=\"{label}\"{style}];");
        }
        let _ = writeln!(out, "  }}");
    }
    for e in cfg.edges() {
        let style = match e.kind {
            EdgeKind::Fall => "",
            EdgeKind::Taken => " color=blue",
            EdgeKind::CallFall => " style=dashed",
        };
        let label = match ann.edge_notes.get(&(e.from, e.to)) {
            Some(l) => format!(" label=\"{}\"", escape(l)),
            None => String::new(),
        };
        let _ = writeln!(out, "  {} -> {} [{}{}];", e.from, e.to, style.trim_start(), label);
    }
    // Call edges between clusters (dotted).
    for cs in cfg.call_sites() {
        for &callee in cs.callee.targets() {
            let entry = cfg.func(callee).entry;
            let _ = writeln!(out, "  {} -> {} [style=dotted, color=gray];", cs.block, entry);
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;
    use stamp_isa::asm::assemble;

    #[test]
    fn render_contains_blocks_edges_and_notes() {
        let src = ".text\nmain: call f\nhalt\nf: ret\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let mut ann = Annotations::new();
        ann.note_block(BlockId(0), "wcet: 42 cycles");
        ann.highlight.push(BlockId(0));
        let text = render(&cfg, &ann);
        assert!(text.contains("cluster_0"));
        assert!(text.contains("cluster_1"));
        assert!(text.contains("wcet: 42 cycles"));
        assert!(text.contains("lightsalmon"));
        assert!(text.contains("style=dotted")); // call edge
        assert!(text.contains("style=dashed")); // call-fall edge
    }
}
