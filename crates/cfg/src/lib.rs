//! # stamp-cfg — control-flow graph reconstruction from EVA32 binaries
//!
//! This crate implements the **CFG building** phase of the paper: it
//! "decodes, i.e. identifies instructions, and reconstructs the
//! control-flow graph (CFG) from a binary program".
//!
//! Starting from the entry point only, [`CfgBuilder`] discovers functions
//! through call instructions, partitions code into basic blocks, and
//! connects intra-procedural edges. Indirect jumps (`jalr`) cannot be
//! resolved from the code alone; their possible targets are supplied
//! either by annotations or — as in aiT — by iterating CFG construction
//! with the value analysis (`stamp-value` folds jump tables held in ROM),
//! feeding resolved targets back via [`CfgBuilder::indirect_targets`].
//!
//! On top of the raw graph the crate provides dominator trees
//! ([`Dominators`]), natural-loop detection ([`LoopForest`]) and an
//! annotated DOT export ([`dot::render`]) standing in for the aiSee
//! visualizations mentioned in the paper.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_cfg::CfgBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(
//!     ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n",
//! )?;
//! let cfg = CfgBuilder::new(&p).build()?;
//! assert_eq!(cfg.functions().len(), 1);
//! let loops = cfg.loop_forest(cfg.functions()[0].id)?;
//! assert_eq!(loops.loops().len(), 1);
//! # Ok(())
//! # }
//! ```

mod build;
mod codec;
mod dom;
pub mod dot;
mod graph;
mod loops;

pub use build::{CfgBuilder, CfgError};
pub use dom::Dominators;
pub use graph::{
    BasicBlock, BlockId, CallSite, Callee, Cfg, Edge, EdgeId, EdgeKind, FuncId, Function,
};
pub use loops::{Loop, LoopForest, LoopId};
