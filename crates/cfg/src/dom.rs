//! Dominator trees (Cooper–Harvey–Kennedy iterative algorithm).

use crate::graph::{BlockId, Cfg, FuncId};

/// The dominator tree of one function.
///
/// Built with [`Cfg::dominators`]. Block `a` dominates `b` when every path
/// from the function entry to `b` passes through `a`.
#[derive(Clone, Debug)]
pub struct Dominators {
    entry: BlockId,
    /// Immediate dominator per block (`idom[entry] == entry`); blocks not
    /// in this function map to `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order used for the computation.
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Computes the dominator tree of function `f`.
    pub fn dominators(&self, f: FuncId) -> Dominators {
        let rpo = self.rpo(f);
        let entry = self.func(f).entry;
        let n = self.blocks().len();
        let mut order = vec![usize::MAX; n]; // block -> rpo index
        for (i, &b) in rpo.iter().enumerate() {
            order[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order[a.index()] > order[b.index()] {
                    a = idom[a.index()].expect("processed");
                }
                while order[b.index()] > order[a.index()] {
                    b = idom[b.index()].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for (_, e) in self.preds(b) {
                    let p = e.from;
                    if order[p.index()] == usize::MAX || idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { entry, idom, rpo }
    }
}

impl Dominators {
    /// The function entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The immediate dominator of `b` (`None` for the entry or blocks of
    /// other functions).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// The reverse post-order the tree was computed over.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use crate::CfgBuilder;
    use stamp_isa::asm::assemble;

    #[test]
    fn diamond_dominators() {
        // entry → {a, b} → join
        let src = "\
            .text
            main: beq r1, r0, a
            b:    addi r2, r0, 1
                  j join
            a:    addi r2, r0, 2
            join: halt
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let f = cfg.functions()[0].id;
        let dom = cfg.dominators(f);
        let entry = cfg.functions()[0].entry;
        let a = cfg.block_at(p.symbols.addr_of("a").unwrap()).unwrap();
        let b = cfg.block_at(p.symbols.addr_of("b").unwrap()).unwrap();
        let join = cfg.block_at(p.symbols.addr_of("join").unwrap()).unwrap();
        assert!(dom.dominates(entry, join));
        assert!(!dom.dominates(a, join));
        assert!(!dom.dominates(b, join));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(a), Some(entry));
        assert!(dom.dominates(join, join));
    }

    #[test]
    fn loop_header_dominates_body() {
        let src = "\
            .text
            main: li r1, 4
            head: beqz r1, done
            body: addi r1, r1, -1
                  j head
            done: halt
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let dom = cfg.dominators(cfg.functions()[0].id);
        let head = cfg.block_at(p.symbols.addr_of("head").unwrap()).unwrap();
        let body = cfg.block_at(p.symbols.addr_of("body").unwrap()).unwrap();
        assert!(dom.dominates(head, body));
        assert!(!dom.dominates(body, head));
    }
}
