//! The reconstructed control-flow graph.

use std::collections::BTreeMap;
use std::fmt;

use stamp_isa::{Flow, Insn};

/// Index of a basic block in a [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Index of a function in a [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The function index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Index of an edge in a [`Cfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Kind of an intra-procedural CFG edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Fall-through to the next block (including the not-taken side of a
    /// conditional branch).
    Fall,
    /// Taken branch, direct jump, or one resolved indirect-jump target.
    Taken,
    /// The *local* successor of a call block: control reaches it after the
    /// callee returns. Interprocedural expansion happens in `stamp-ai`.
    CallFall,
}

/// An intra-procedural edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Owning function.
    pub func: FuncId,
    /// Address of the first instruction.
    pub start: u32,
    /// The instructions, as `(address, instruction)` pairs.
    pub insns: Vec<(u32, Insn)>,
}

impl BasicBlock {
    /// Address one past the last instruction.
    pub fn end(&self) -> u32 {
        self.insns.last().map(|&(a, _)| a + 4).unwrap_or(self.start)
    }

    /// The last instruction with its address.
    pub fn last(&self) -> Option<(u32, Insn)> {
        self.insns.last().copied()
    }

    /// Control-flow classification of the block's last instruction.
    pub fn exit_flow(&self) -> Flow {
        match self.last() {
            Some((addr, insn)) => insn.flow(addr),
            None => Flow::Seq,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Returns `true` if the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

/// The callee of a call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// A direct (or resolved indirect) call to one function.
    Direct(FuncId),
    /// A resolved indirect call with several possible targets.
    Indirect(Vec<FuncId>),
}

impl Callee {
    /// All possible callee functions.
    pub fn targets(&self) -> &[FuncId] {
        match self {
            Callee::Direct(f) => std::slice::from_ref(f),
            Callee::Indirect(fs) => fs,
        }
    }
}

/// A call site: a block terminated by a call instruction.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The calling block (its last instruction is the call).
    pub block: BlockId,
    /// Address of the call instruction.
    pub addr: u32,
    /// The callee(s).
    pub callee: Callee,
    /// The local block control returns to.
    pub return_to: Option<BlockId>,
}

/// A reconstructed function: a single-entry region discovered via calls.
#[derive(Clone, Debug)]
pub struct Function {
    /// This function's id.
    pub id: FuncId,
    /// Entry address.
    pub entry_addr: u32,
    /// Entry block.
    pub entry: BlockId,
    /// Symbolic name (from the symbol table, or `fn_<addr>`).
    pub name: String,
    /// All blocks, in ascending start-address order.
    pub blocks: Vec<BlockId>,
    /// Blocks whose last instruction is a `return`.
    pub returns: Vec<BlockId>,
    /// Blocks whose last instruction is `halt`.
    pub halts: Vec<BlockId>,
}

/// The whole-program control-flow graph: functions, blocks, edges and
/// call sites.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub(crate) blocks: Vec<BasicBlock>,
    pub(crate) functions: Vec<Function>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) succs: Vec<Vec<EdgeId>>,
    pub(crate) preds: Vec<Vec<EdgeId>>,
    pub(crate) call_sites: Vec<CallSite>,
    pub(crate) block_at: BTreeMap<u32, BlockId>,
    pub(crate) entry_func: FuncId,
    /// Addresses of `jalr` instructions whose targets are still unknown.
    pub(crate) unresolved: Vec<u32>,
}

impl Cfg {
    /// All basic blocks.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// One block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// One function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// The function containing the program entry point.
    pub fn entry_func(&self) -> FuncId {
        self.entry_func
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// One edge.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Outgoing edges of a block.
    pub fn succs(&self, b: BlockId) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.succs[b.index()].iter().map(|&e| (e, self.edges[e.index()]))
    }

    /// Incoming edges of a block.
    pub fn preds(&self, b: BlockId) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.preds[b.index()].iter().map(|&e| (e, self.edges[e.index()]))
    }

    /// All call sites.
    pub fn call_sites(&self) -> &[CallSite] {
        &self.call_sites
    }

    /// The call site whose call instruction terminates `b`, if any.
    pub fn call_site_of(&self, b: BlockId) -> Option<&CallSite> {
        self.call_sites.iter().find(|c| c.block == b)
    }

    /// The block starting exactly at `addr`.
    pub fn block_at(&self, addr: u32) -> Option<BlockId> {
        self.block_at.get(&addr).copied()
    }

    /// The block *containing* `addr`.
    pub fn block_containing(&self, addr: u32) -> Option<BlockId> {
        self.block_at
            .range(..=addr)
            .next_back()
            .map(|(_, &b)| b)
            .filter(|&b| addr < self.block(b).end())
    }

    /// Addresses of indirect jumps/calls whose targets are unresolved.
    /// A non-empty list means the CFG is incomplete and should be rebuilt
    /// with more [`CfgBuilder::indirect_targets`](crate::CfgBuilder::indirect_targets)
    /// information.
    pub fn unresolved_indirects(&self) -> &[u32] {
        &self.unresolved
    }

    /// Direct callees of a function (via its call sites).
    pub fn callees(&self, f: FuncId) -> Vec<FuncId> {
        let mut out = Vec::new();
        for cs in &self.call_sites {
            if self.block(cs.block).func == f {
                for &t in cs.callee.targets() {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Reverse post-order of one function's blocks (ignoring `CallFall`
    /// distinction; all intra-procedural edges are followed).
    pub fn rpo(&self, f: FuncId) -> Vec<BlockId> {
        let entry = self.func(f).entry;
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack = vec![(entry, 0usize)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succ_edges = &self.succs[b.index()];
            if *i < succ_edges.len() {
                let e = self.edges[succ_edges[*i].index()];
                *i += 1;
                if !visited[e.to.index()] {
                    visited[e.to.index()] = true;
                    stack.push((e.to, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Total number of instructions in the graph.
    pub fn insn_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }
}
