//! Binary persistence of the CFG (the durable artifact of the
//! CFG-building phase).
//!
//! Everything is serialized positionally, including the derived
//! adjacency vectors — rebuilding them on decode would re-enter the
//! builder's insertion-order assumptions, and byte-exact round-trips
//! are cheaper to prove than behavioural equivalence.

use std::collections::BTreeMap;

use stamp_codec::{Codec, CodecError, Dec, Enc};

use crate::graph::{
    BasicBlock, BlockId, CallSite, Callee, Cfg, Edge, EdgeId, EdgeKind, FuncId, Function,
};

impl Codec for BlockId {
    fn enc(&self, e: &mut Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut Dec) -> Result<BlockId, CodecError> {
        Ok(BlockId(d.u32()?))
    }
}

impl Codec for FuncId {
    fn enc(&self, e: &mut Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut Dec) -> Result<FuncId, CodecError> {
        Ok(FuncId(d.u32()?))
    }
}

impl Codec for EdgeId {
    fn enc(&self, e: &mut Enc) {
        e.u32(self.0);
    }
    fn dec(d: &mut Dec) -> Result<EdgeId, CodecError> {
        Ok(EdgeId(d.u32()?))
    }
}

impl Codec for EdgeKind {
    fn enc(&self, e: &mut Enc) {
        e.u8(match self {
            EdgeKind::Fall => 0,
            EdgeKind::Taken => 1,
            EdgeKind::CallFall => 2,
        });
    }
    fn dec(d: &mut Dec) -> Result<EdgeKind, CodecError> {
        match d.u8()? {
            0 => Ok(EdgeKind::Fall),
            1 => Ok(EdgeKind::Taken),
            2 => Ok(EdgeKind::CallFall),
            _ => Err(CodecError::Invalid("edge kind")),
        }
    }
}

impl Codec for Edge {
    fn enc(&self, e: &mut Enc) {
        self.from.enc(e);
        self.to.enc(e);
        self.kind.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<Edge, CodecError> {
        Ok(Edge { from: BlockId::dec(d)?, to: BlockId::dec(d)?, kind: EdgeKind::dec(d)? })
    }
}

impl Codec for BasicBlock {
    fn enc(&self, e: &mut Enc) {
        self.id.enc(e);
        self.func.enc(e);
        self.start.enc(e);
        self.insns.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<BasicBlock, CodecError> {
        Ok(BasicBlock {
            id: BlockId::dec(d)?,
            func: FuncId::dec(d)?,
            start: u32::dec(d)?,
            insns: Vec::dec(d)?,
        })
    }
}

impl Codec for Callee {
    fn enc(&self, e: &mut Enc) {
        match self {
            Callee::Direct(f) => {
                e.u8(0);
                f.enc(e);
            }
            Callee::Indirect(fs) => {
                e.u8(1);
                fs.enc(e);
            }
        }
    }
    fn dec(d: &mut Dec) -> Result<Callee, CodecError> {
        match d.u8()? {
            0 => Ok(Callee::Direct(FuncId::dec(d)?)),
            1 => Ok(Callee::Indirect(Vec::dec(d)?)),
            _ => Err(CodecError::Invalid("callee tag")),
        }
    }
}

impl Codec for CallSite {
    fn enc(&self, e: &mut Enc) {
        self.block.enc(e);
        self.addr.enc(e);
        self.callee.enc(e);
        self.return_to.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<CallSite, CodecError> {
        Ok(CallSite {
            block: BlockId::dec(d)?,
            addr: u32::dec(d)?,
            callee: Callee::dec(d)?,
            return_to: Option::dec(d)?,
        })
    }
}

impl Codec for Function {
    fn enc(&self, e: &mut Enc) {
        self.id.enc(e);
        self.entry_addr.enc(e);
        self.entry.enc(e);
        self.name.enc(e);
        self.blocks.enc(e);
        self.returns.enc(e);
        self.halts.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<Function, CodecError> {
        Ok(Function {
            id: FuncId::dec(d)?,
            entry_addr: u32::dec(d)?,
            entry: BlockId::dec(d)?,
            name: String::dec(d)?,
            blocks: Vec::dec(d)?,
            returns: Vec::dec(d)?,
            halts: Vec::dec(d)?,
        })
    }
}

impl Codec for Cfg {
    fn enc(&self, e: &mut Enc) {
        self.blocks.enc(e);
        self.functions.enc(e);
        self.edges.enc(e);
        self.succs.enc(e);
        self.preds.enc(e);
        self.call_sites.enc(e);
        self.block_at.enc(e);
        self.entry_func.enc(e);
        self.unresolved.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<Cfg, CodecError> {
        Ok(Cfg {
            blocks: Vec::dec(d)?,
            functions: Vec::dec(d)?,
            edges: Vec::dec(d)?,
            succs: Vec::dec(d)?,
            preds: Vec::dec(d)?,
            call_sites: Vec::dec(d)?,
            block_at: BTreeMap::dec(d)?,
            entry_func: FuncId::dec(d)?,
            unresolved: Vec::dec(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use stamp_codec::{decode_value, encode_value};
    use stamp_isa::asm::assemble;

    use crate::{Cfg, CfgBuilder};

    #[test]
    fn cfg_round_trips_byte_exactly() {
        let p = assemble(
            "\
            .text
            main: li r1, 3
                  call spin
                  beq r1, r0, done
            done: halt
            spin: addi r1, r1, -1
                  bnez r1, spin
                  ret
            ",
        )
        .unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let bytes = encode_value(&cfg);
        let back: Cfg = decode_value(&bytes).unwrap();
        // Byte-exactness is the strongest equivalence available without
        // PartialEq on Cfg: re-encoding the decoded graph must be
        // identical, and the public views must agree.
        assert_eq!(encode_value(&back), bytes);
        assert_eq!(back.blocks().len(), cfg.blocks().len());
        assert_eq!(back.functions().len(), cfg.functions().len());
        for (a, b) in cfg.blocks().iter().zip(back.blocks()) {
            assert_eq!(a.insns, b.insns);
            assert_eq!(a.start, b.start);
        }
    }

    #[test]
    fn truncated_cfg_bytes_fail_cleanly() {
        let p = assemble(".text\nmain: halt\n").unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let bytes = encode_value(&cfg);
        assert!(decode_value::<Cfg>(&bytes[..bytes.len() - 1]).is_err());
    }
}
