//! Natural-loop detection and the loop nesting forest.

use std::collections::BTreeSet;

use crate::build::CfgError;
use crate::graph::{BlockId, Cfg, EdgeId, FuncId};

/// Index of a loop within a [`LoopForest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The loop index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// This loop's id.
    pub id: LoopId,
    /// The unique header block (dominates every block in `body`).
    pub header: BlockId,
    /// All blocks of the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// Back edges `latch → header`.
    pub back_edges: Vec<EdgeId>,
    /// Edges leaving the loop (source in `body`, target outside).
    pub exit_edges: Vec<EdgeId>,
    /// Edges entering the header from outside the loop.
    pub entry_edges: Vec<EdgeId>,
    /// The directly enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: u32,
}

/// The loop nesting forest of one function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block.
    innermost: Vec<Option<LoopId>>,
}

impl Cfg {
    /// Detects the natural loops of function `f` and arranges them into a
    /// nesting forest.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError::Irreducible`] if a cycle without a dominating
    /// header exists (loop-bound analysis would be unsound on it).
    pub fn loop_forest(&self, f: FuncId) -> Result<LoopForest, CfgError> {
        let dom = self.dominators(f);
        let func = self.func(f);

        // Collect back edges: u→h with h dominating u. Any other cycle
        // edge makes the graph irreducible (checked below).
        let mut headers: Vec<(BlockId, Vec<EdgeId>)> = Vec::new();
        for &b in &func.blocks {
            for (eid, e) in self.succs(b) {
                if dom.dominates(e.to, e.from) {
                    match headers.iter_mut().find(|(h, _)| *h == e.to) {
                        Some((_, v)) => v.push(eid),
                        None => headers.push((e.to, vec![eid])),
                    }
                }
            }
        }
        headers.sort_by_key(|(h, _)| self.block(*h).start);

        // Natural loop of each header: backwards closure from the latches.
        let mut loops = Vec::new();
        for (i, (header, back_edges)) in headers.iter().enumerate() {
            let mut body: BTreeSet<BlockId> = BTreeSet::from([*header]);
            let mut work: Vec<BlockId> = back_edges.iter().map(|&e| self.edge(e).from).collect();
            while let Some(b) = work.pop() {
                if body.insert(b) {
                    for (_, e) in self.preds(b) {
                        work.push(e.from);
                    }
                }
            }
            let mut exit_edges = Vec::new();
            for &b in &body {
                for (eid, e) in self.succs(b) {
                    if !body.contains(&e.to) {
                        exit_edges.push(eid);
                    }
                }
            }
            let mut entry_edges = Vec::new();
            for (eid, e) in self.preds(*header) {
                if !body.contains(&e.from) {
                    entry_edges.push(eid);
                }
            }
            loops.push(Loop {
                id: LoopId(i as u32),
                header: *header,
                body,
                back_edges: back_edges.clone(),
                exit_edges,
                entry_edges,
                parent: None,
                depth: 1,
            });
        }

        // Irreducibility check: removing back edges must leave the graph
        // acyclic.
        let back: BTreeSet<EdgeId> =
            loops.iter().flat_map(|l| l.back_edges.iter().copied()).collect();
        if has_cycle_without(self, func, &back) {
            return Err(CfgError::Irreducible { func_entry: func.entry_addr });
        }

        // Nesting: parent = smallest strictly-containing loop.
        let ids: Vec<LoopId> = loops.iter().map(|l| l.id).collect();
        for &lid in &ids {
            let mut best: Option<(usize, LoopId)> = None;
            for &cand in &ids {
                if cand == lid {
                    continue;
                }
                let (a, b) = (&loops[lid.index()], &loops[cand.index()]);
                if b.body.contains(&a.header) && b.body.is_superset(&a.body) && b.body != a.body {
                    let size = b.body.len();
                    if best.is_none_or(|(s, _)| size < s) {
                        best = Some((size, cand));
                    }
                }
            }
            loops[lid.index()].parent = best.map(|(_, c)| c);
        }
        // Depths.
        for i in 0..loops.len() {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block.
        let mut innermost = vec![None; self.blocks().len()];
        for l in &loops {
            for &b in &l.body {
                let cur: &mut Option<LoopId> = &mut innermost[b.index()];
                match *cur {
                    None => *cur = Some(l.id),
                    Some(prev) if loops[prev.index()].depth < l.depth => *cur = Some(l.id),
                    _ => {}
                }
            }
        }
        Ok(LoopForest { loops, innermost })
    }
}

/// DFS cycle check ignoring the identified back edges.
fn has_cycle_without(cfg: &Cfg, func: &crate::graph::Function, back: &BTreeSet<EdgeId>) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; cfg.blocks().len()];
    // Iterative DFS.
    for &start in &func.blocks {
        if color[start.index()] != Color::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color[start.index()] = Color::Grey;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let outs: Vec<EdgeId> = cfg.succs(b).map(|(e, _)| e).collect();
            if *i < outs.len() {
                let eid = outs[*i];
                *i += 1;
                if back.contains(&eid) {
                    continue;
                }
                let to = cfg.edge(eid).to;
                match color[to.index()] {
                    Color::White => {
                        color[to.index()] = Color::Grey;
                        stack.push((to, 0));
                    }
                    Color::Grey => return true,
                    Color::Black => {}
                }
            } else {
                color[b.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    false
}

impl LoopForest {
    /// All loops (outer loops first within a nest is *not* guaranteed;
    /// use [`Loop::depth`]).
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// One loop.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<LoopId> {
        self.innermost.get(b.index()).copied().flatten()
    }

    /// The loop headed exactly at `b`, if any.
    pub fn loop_with_header(&self, b: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == b)
    }
}

#[cfg(test)]
mod tests {
    use crate::CfgBuilder;
    use stamp_isa::asm::assemble;

    #[test]
    fn single_loop_detected() {
        let src = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let lf = cfg.loop_forest(cfg.functions()[0].id).unwrap();
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.depth, 1);
        assert_eq!(l.back_edges.len(), 1);
        assert_eq!(l.entry_edges.len(), 1);
        assert_eq!(l.exit_edges.len(), 1);
        assert_eq!(l.body.len(), 1); // header == latch
    }

    #[test]
    fn nested_loops_have_depths() {
        let src = "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let lf = cfg.loop_forest(cfg.functions()[0].id).unwrap();
        assert_eq!(lf.loops().len(), 2);
        let inner_hdr = cfg.block_at(p.symbols.addr_of("inner").unwrap()).unwrap();
        let outer_hdr = cfg.block_at(p.symbols.addr_of("outer").unwrap()).unwrap();
        let inner = lf.loop_with_header(inner_hdr).unwrap();
        let outer = lf.loop_with_header(outer_hdr).unwrap();
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.body.is_superset(&inner.body));
        assert_eq!(lf.innermost(inner_hdr), Some(inner.id));
    }

    #[test]
    fn no_loops_in_dag() {
        let src = ".text\nmain: beq r1, r0, a\nb: halt\na: halt\n";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let lf = cfg.loop_forest(cfg.functions()[0].id).unwrap();
        assert!(lf.loops().is_empty());
    }

    #[test]
    fn irreducible_graph_rejected() {
        // Two blocks jumping into each other's middle without a dominating
        // header: entry branches to a or b; a → b; b → a.
        let src = "\
            .text
            main: beq r1, r0, a
            b:    beq r2, r0, a
                  halt
            a:    beq r3, r0, b
                  halt
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let err = cfg.loop_forest(cfg.functions()[0].id).unwrap_err();
        assert!(matches!(err, crate::CfgError::Irreducible { .. }));
    }

    #[test]
    fn do_while_shape() {
        // Loop whose header is also the body start (classic do-while).
        let src = "\
            .text
            main: li r1, 8
            body: addi r1, r1, -1
                  mul r2, r1, r1
                  bnez r1, body
                  halt
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let lf = cfg.loop_forest(cfg.functions()[0].id).unwrap();
        assert_eq!(lf.loops().len(), 1);
        assert_eq!(lf.loops()[0].body.len(), 1);
    }
}
