//! The precise (supergraph-replay) stack analysis.

use std::collections::BTreeMap;
use std::rc::Rc;

use stamp_ai::Icfg;
use stamp_cfg::Cfg;
use stamp_hw::HwConfig;
use stamp_isa::{Program, Reg};
use stamp_value::{DomainKind, ValueAnalysis, ValueTransfer};

use crate::{StackError, StackResult};

/// Computes the task's worst-case stack usage by replaying the value
/// analysis and minimizing `sp` over every instruction of every
/// `(block, context)` instance.
///
/// # Errors
///
/// [`StackError::UnknownStackPointer`] if `sp` escapes the analysis at
/// some instruction (its interval widens to the whole address space).
///
/// # Example
///
/// ```
/// use stamp_isa::asm::assemble;
/// use stamp_cfg::CfgBuilder;
/// use stamp_ai::{Icfg, VivuConfig};
/// use stamp_hw::HwConfig;
/// use stamp_value::{ValueAnalysis, ValueOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble(".text\nmain: addi sp, sp, -48\naddi sp, sp, 48\nhalt\n")?;
/// let hw = HwConfig::default();
/// let cfg = CfgBuilder::new(&p).build()?;
/// let icfg = Icfg::build(&cfg, &VivuConfig::default())?;
/// let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
/// let r = stamp_stack::analyze_icfg(&p, &hw, &cfg, &icfg, &va)?;
/// assert_eq!(r.total, 48);
/// # Ok(())
/// # }
/// ```
pub fn analyze_icfg(
    program: &Program,
    hw: &HwConfig,
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
) -> Result<StackResult, StackError> {
    let stack_top = hw.mem.stack_top();
    let transfer = ValueTransfer::new(program, hw, cfg, DomainKind::Strided, Rc::new(vec![0]));
    let mut worst: u32 = 0;

    for nd in icfg.nodes() {
        let Some(entry) = va.entry_state(nd.id) else { continue };
        let mut s = entry.clone();
        let block = cfg.block(nd.block);
        for &(addr, insn) in &block.insns {
            transfer.step(&mut s, addr, &insn);
            let sp = s.reg(Reg::SP);
            if sp.is_top() {
                return Err(StackError::UnknownStackPointer { addr });
            }
            // The deepest possible stack extent at this point.
            let usage = stack_top.saturating_sub(sp.lo());
            if usage > worst {
                // Sanity: a "usage" beyond the RAM size means sp escaped
                // downwards — treat like an unknown stack pointer.
                if usage > hw.mem.ram_size {
                    return Err(StackError::UnknownStackPointer { addr });
                }
                worst = usage;
            }
        }
    }

    Ok(StackResult { total: worst, per_function: BTreeMap::new() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    fn run(src: &str) -> Result<StackResult, StackError> {
        let p = assemble(src).expect("assembles");
        let hw = HwConfig::default();
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        analyze_icfg(&p, &hw, &cfg, &icfg, &va)
    }

    #[test]
    fn nested_calls_accumulate() {
        let r = run("\
            .text
            main: addi sp, sp, -16
                  call f
                  addi sp, sp, 16
                  halt
            f:    addi sp, sp, -32
                  sw lr, 0(sp)
                  call g
                  lw lr, 0(sp)
                  addi sp, sp, 32
                  ret
            g:    addi sp, sp, -8
                  addi sp, sp, 8
                  ret
        ")
        .unwrap();
        assert_eq!(r.total, 16 + 32 + 8);
    }

    #[test]
    fn branch_takes_deeper_arm() {
        let r = run("\
            .text
            main: beq r1, r0, small
                  addi sp, sp, -64
                  addi sp, sp, 64
                  halt
            small:
                  addi sp, sp, -8
                  addi sp, sp, 8
                  halt
        ")
        .unwrap();
        assert_eq!(r.total, 64);
    }

    #[test]
    fn leaf_task_uses_zero() {
        let r = run(".text\nmain: nop\nhalt\n").unwrap();
        assert_eq!(r.total, 0);
    }

    #[test]
    fn sp_in_loop_stays_tracked() {
        // Stack-neutral loop body: sp constant through iterations.
        let r = run("\
            .text
            main: li r1, 10
            loop: addi sp, sp, -16
                  addi sp, sp, 16
                  addi r1, r1, -1
                  bnez r1, loop
                  halt
        ")
        .unwrap();
        assert_eq!(r.total, 16);
    }

    #[test]
    fn computed_sp_rejected() {
        let err = run("\
            .text
            main: lw r1, 0(r2)
                  sub sp, sp, r1
                  halt
        ")
        .unwrap_err();
        assert!(matches!(err, StackError::UnknownStackPointer { .. }));
    }
}
