//! The compositional (call-graph) stack analysis with recursion support.

use std::collections::BTreeMap;

use stamp_cfg::{BlockId, Cfg, FuncId};
use stamp_isa::{AluOp, Insn, Program, Reg};

use crate::{StackError, StackOptions, StackResult};

/// Per-function stack facts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FunctionStack {
    /// Deepest local extent below the function's entry `sp`, in bytes
    /// (not counting callees).
    pub local: u32,
    /// Worst-case usage including all callees.
    pub usage: u32,
}

/// Computes worst-case stack usage compositionally: a local frame
/// analysis per function, then a longest-path traversal of the call
/// graph. Recursive cycles require [`StackOptions::recursion_depths`]
/// annotations (keyed by function entry address); the cycle bound is
/// `depth × Σ member frames`, which is conservative for mutual
/// recursion.
///
/// # Errors
///
/// * [`StackError::VariableAdjustment`] if `sp` is modified by anything
///   but `addi sp, sp, ±c`;
/// * [`StackError::Recursion`] for unannotated cycles.
pub fn analyze_callgraph(
    program: &Program,
    cfg: &Cfg,
    options: &StackOptions,
) -> Result<StackResult, StackError> {
    let _ = program;
    // ---- Per-function local frame analysis.
    let mut local: BTreeMap<FuncId, i64> = BTreeMap::new(); // deepest (≥ 0)
    let mut call_disp: BTreeMap<BlockId, i64> = BTreeMap::new(); // at call insn
    for f in cfg.functions() {
        let mut deltas: BTreeMap<BlockId, i64> = BTreeMap::new();
        deltas.insert(f.entry, 0);
        let mut deepest: i64 = 0;
        // Blocks in reverse post-order ensures predecessors first
        // (reducible CFGs; sp must be loop-invariant anyway).
        for b in cfg.rpo(f.id) {
            let mut d = deltas.get(&b).copied().unwrap_or(0);
            let block = cfg.block(b);
            for &(addr, insn) in &block.insns {
                match insn {
                    Insn::AluImm { op: AluOp::Add, rd, rs1, imm }
                        if rd == Reg::SP && rs1 == Reg::SP =>
                    {
                        d += imm as i64;
                        deepest = deepest.min(d);
                    }
                    _ if insn.def() == Some(Reg::SP) => {
                        return Err(StackError::VariableAdjustment { addr });
                    }
                    _ => {}
                }
            }
            if cfg.call_site_of(b).is_some() {
                call_disp.insert(b, d);
            }
            for (_, e) in cfg.succs(b) {
                match deltas.get(&e.to) {
                    None => {
                        deltas.insert(e.to, d);
                    }
                    Some(&prev) => {
                        // Joins with differing sp are possible in odd
                        // code; take the deeper one (sound for usage).
                        if d < prev {
                            deltas.insert(e.to, d);
                        }
                    }
                }
            }
        }
        local.insert(f.id, -deepest);
    }

    // ---- Call-graph SCCs (Tarjan).
    let n = cfg.functions().len();
    let callees: Vec<Vec<FuncId>> = cfg.functions().iter().map(|f| cfg.callees(f.id)).collect();
    let sccs = tarjan(n, &callees);
    let scc_of: BTreeMap<FuncId, usize> = sccs
        .iter()
        .enumerate()
        .flat_map(|(i, members)| members.iter().map(move |&f| (f, i)))
        .collect();

    // ---- Usage per function, processing SCCs in reverse topological
    // order (Tarjan emits them callee-first).
    let mut usage: BTreeMap<FuncId, u64> = BTreeMap::new();
    for members in &sccs {
        let cyclic = members.len() > 1 || callees[members[0].index()].contains(&members[0]);
        // Worst external contribution from any member's call site.
        let mut external: u64 = 0;
        for &f in members {
            for cs in cfg.call_sites().iter().filter(|c| cfg.block(c.block).func == f) {
                let disp = (-call_disp.get(&cs.block).copied().unwrap_or(0)).max(0) as u64;
                for &g in cs.callee.targets() {
                    if scc_of[&g] != scc_of[&f] {
                        external = external.max(disp + usage[&g]);
                    }
                }
            }
        }
        if !cyclic {
            let f = members[0];
            let mut u = local[&f] as u64;
            for cs in cfg.call_sites().iter().filter(|c| cfg.block(c.block).func == f) {
                let disp = (-call_disp.get(&cs.block).copied().unwrap_or(0)).max(0) as u64;
                for &g in cs.callee.targets() {
                    u = u.max(disp + usage[&g]);
                }
            }
            usage.insert(f, u);
        } else {
            // Recursive cycle: needs a depth annotation on some member.
            let depth = members
                .iter()
                .filter_map(|&f| options.recursion_depths.get(&cfg.func(f).entry_addr).copied())
                .max()
                .ok_or_else(|| StackError::Recursion {
                    function: cfg.func(members[0]).name.clone(),
                })?;
            let per_level: u64 = members.iter().map(|&f| local[&f] as u64).sum();
            let bound = depth as u64 * per_level + external;
            for &f in members {
                usage.insert(f, bound);
            }
        }
    }

    let entry = cfg.entry_func();
    let per_function = cfg
        .functions()
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                FunctionStack { local: local[&f.id] as u32, usage: usage[&f.id] as u32 },
            )
        })
        .collect();
    Ok(StackResult { total: usage[&entry] as u32, per_function })
}

/// Tarjan's SCC algorithm; emits components callee-first.
fn tarjan(n: usize, succs: &[Vec<FuncId>]) -> Vec<Vec<FuncId>> {
    struct St<'a> {
        succs: &'a [Vec<FuncId>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        out: Vec<Vec<FuncId>>,
    }
    fn visit(st: &mut St<'_>, v: usize) {
        st.index[v] = Some(st.next);
        st.low[v] = st.next;
        st.next += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for w in st.succs[v].clone() {
            let w = w.index();
            match st.index[w] {
                None => {
                    visit(st, w);
                    st.low[v] = st.low[v].min(st.low[w]);
                }
                Some(wi) if st.on_stack[w] => st.low[v] = st.low[v].min(wi),
                _ => {}
            }
        }
        if Some(st.low[v]) == st.index[v] {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().expect("non-empty");
                st.on_stack[w] = false;
                comp.push(FuncId(w as u32));
                if w == v {
                    break;
                }
            }
            st.out.push(comp);
        }
    }
    let mut st = St {
        succs,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            visit(&mut st, v);
        }
    }
    st.out
}

impl stamp_codec::Codec for FunctionStack {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.local);
        e.u32(self.usage);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<FunctionStack, stamp_codec::CodecError> {
        Ok(FunctionStack { local: d.u32()?, usage: d.u32()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;

    fn run(src: &str, opts: &StackOptions) -> Result<StackResult, StackError> {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        analyze_callgraph(&p, &cfg, opts)
    }

    #[test]
    fn chain_of_calls() {
        let r = run(
            "\
            .text
            main: addi sp, sp, -16
                  call f
                  addi sp, sp, 16
                  halt
            f:    addi sp, sp, -32
                  sw lr, 0(sp)
                  call g
                  lw lr, 0(sp)
                  addi sp, sp, 32
                  ret
            g:    addi sp, sp, -8
                  addi sp, sp, 8
                  ret
        ",
            &StackOptions::default(),
        )
        .unwrap();
        assert_eq!(r.total, 56);
        assert_eq!(r.per_function["g"].usage, 8);
        assert_eq!(r.per_function["f"].usage, 40);
        assert_eq!(r.per_function["f"].local, 32);
    }

    #[test]
    fn recursion_needs_annotation() {
        let src = "\
            .text
            main: call fac
                  halt
            fac:  addi sp, sp, -16
                  sw lr, 4(sp)
                  beqz r1, base
                  addi r1, r1, -1
                  call fac
            base: lw lr, 4(sp)
                  addi sp, sp, 16
                  ret
        ";
        let err = run(src, &StackOptions::default()).unwrap_err();
        assert!(matches!(err, StackError::Recursion { .. }));

        let p = assemble(src).unwrap();
        let fac = p.symbols.addr_of("fac").unwrap();
        let mut opts = StackOptions::default();
        opts.recursion_depths.insert(fac, 10);
        let r = run(src, &opts).unwrap();
        assert_eq!(r.total, 160);
    }

    #[test]
    fn variable_sp_rejected() {
        let err = run(".text\nmain: sub sp, sp, r1\nhalt\n", &StackOptions::default()).unwrap_err();
        assert!(matches!(err, StackError::VariableAdjustment { .. }));
    }

    #[test]
    fn diamond_takes_deeper_side() {
        let r = run(
            "\
            .text
            main: beq r1, r0, b
                  call big
                  halt
            b:    call small
                  halt
            big:  addi sp, sp, -128
                  addi sp, sp, 128
                  ret
            small: addi sp, sp, -16
                  addi sp, sp, 16
                  ret
        ",
            &StackOptions::default(),
        )
        .unwrap();
        assert_eq!(r.total, 128);
    }

    #[test]
    fn matches_icfg_mode_on_nonrecursive_code() {
        use stamp_ai::{Icfg, VivuConfig};
        use stamp_hw::HwConfig;
        use stamp_value::{ValueAnalysis, ValueOptions};
        let src = "\
            .text
            main: addi sp, sp, -24
                  call f
                  call f
                  addi sp, sp, 24
                  halt
            f:    addi sp, sp, -40
                  addi sp, sp, 40
                  ret
        ";
        let p = assemble(src).unwrap();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let cg = analyze_callgraph(&p, &cfg, &StackOptions::default()).unwrap();
        let hw = HwConfig::default();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        let precise = crate::analyze_icfg(&p, &hw, &cfg, &icfg, &va).unwrap();
        assert_eq!(cg.total, precise.total);
        assert_eq!(cg.total, 64);
    }
}
