//! Whole-ECU stack analysis for OSEK/VDX-style systems (paper ref [3]).
//!
//! In an OSEK BCC1 system all basic tasks share one stack: when a
//! higher-priority task preempts, its frames pile on top of the
//! preempted task's. The worst-case *system* stack is therefore the
//! maximum, over all admissible preemption chains, of the sum of the
//! chained tasks' bounds — usually far below the naive "sum of all
//! tasks" reservation, which is the saving ref [3] reports.

/// One task (or ISR category) of the system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Static priority; only strictly higher priorities preempt.
    pub priority: u32,
    /// Worst-case stack usage of the task body (from the per-task
    /// analysis).
    pub stack_bound: u32,
    /// `false` for tasks that run with preemption disabled (internal
    /// resource / non-preemptable): they can end a chain but never be
    /// preempted inside it.
    pub preemptable: bool,
}

impl Task {
    /// Creates a preemptable task.
    pub fn new(name: impl Into<String>, priority: u32, stack_bound: u32) -> Task {
        Task { name: name.into(), priority, stack_bound, preemptable: true }
    }

    /// Creates a non-preemptable task.
    pub fn non_preemptable(name: impl Into<String>, priority: u32, stack_bound: u32) -> Task {
        Task { name: name.into(), priority, stack_bound, preemptable: false }
    }
}

/// An OSEK-style task system sharing one stack.
///
/// # Example
///
/// ```
/// use stamp_stack::{OsekSystem, Task};
///
/// let sys = OsekSystem::new(vec![
///     Task::new("background", 1, 200),
///     Task::new("control", 2, 150),
///     Task::non_preemptable("comm", 3, 120),
///     Task::new("alarm", 4, 80),
/// ]);
/// // background ← control ← alarm chain plus comm cannot all nest:
/// // comm is non-preemptable, so it only ever ends a chain.
/// assert_eq!(sys.system_bound(), 200 + 150 + 120);
/// assert_eq!(sys.naive_bound(), 550);
/// ```
#[derive(Clone, Debug)]
pub struct OsekSystem {
    tasks: Vec<Task>,
}

impl OsekSystem {
    /// Creates a system from its task set.
    pub fn new(tasks: Vec<Task>) -> OsekSystem {
        OsekSystem { tasks }
    }

    /// The tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The naive reservation: every task gets its own worst case
    /// simultaneously (what a designer without chain analysis must
    /// reserve).
    pub fn naive_bound(&self) -> u32 {
        self.tasks.iter().map(|t| t.stack_bound).sum()
    }

    /// The worst-case system stack over all admissible preemption
    /// chains: a chain is a strictly-priority-increasing sequence of
    /// tasks in which every task except the last is preemptable (a
    /// non-preemptable task is never interrupted). Tasks of equal
    /// priority never preempt each other.
    pub fn system_bound(&self) -> u32 {
        // Dynamic programming over tasks sorted by priority: best[i] =
        // largest chain sum ending at task i with i preemptable-chained.
        let mut order: Vec<&Task> = self.tasks.iter().collect();
        order.sort_by_key(|t| t.priority);
        let n = order.len();
        let mut best_pre: Vec<u64> = vec![0; n]; // chain of preemptable tasks ending at i (i included, preemptable)
        let mut answer: u64 = 0;
        for i in 0..n {
            // Best preemptable prefix strictly below this priority.
            let prefix = (0..i)
                .filter(|&j| order[j].priority < order[i].priority && order[j].preemptable)
                .map(|j| best_pre[j])
                .max()
                .unwrap_or(0);
            let total = prefix + order[i].stack_bound as u64;
            if order[i].preemptable {
                best_pre[i] = total;
            }
            answer = answer.max(total);
        }
        answer.min(u32::MAX as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_preemptable_chain_is_full_sum() {
        let sys = OsekSystem::new(vec![
            Task::new("a", 1, 100),
            Task::new("b", 2, 50),
            Task::new("c", 3, 25),
        ]);
        assert_eq!(sys.system_bound(), 175);
        assert_eq!(sys.naive_bound(), 175);
    }

    #[test]
    fn equal_priorities_do_not_stack() {
        let sys = OsekSystem::new(vec![
            Task::new("a", 1, 100),
            Task::new("b", 1, 90),
            Task::new("c", 2, 10),
        ]);
        // Only one of a/b can be on the stack below c.
        assert_eq!(sys.system_bound(), 110);
        assert_eq!(sys.naive_bound(), 200);
    }

    #[test]
    fn non_preemptable_ends_chains() {
        let sys = OsekSystem::new(vec![
            Task::non_preemptable("np", 1, 500),
            Task::new("a", 2, 10),
            Task::new("b", 3, 10),
        ]);
        // np can never have a/b stacked on top of it.
        assert_eq!(sys.system_bound(), 500);
    }

    #[test]
    fn chain_prefers_heavier_branch() {
        let sys = OsekSystem::new(vec![
            Task::new("l1a", 1, 10),
            Task::new("l1b", 1, 300),
            Task::new("l2", 2, 20),
            Task::new("l3", 3, 30),
        ]);
        assert_eq!(sys.system_bound(), 350);
    }

    #[test]
    fn empty_system_is_zero() {
        let sys = OsekSystem::new(Vec::new());
        assert_eq!(sys.system_bound(), 0);
        assert_eq!(sys.naive_bound(), 0);
    }
}
