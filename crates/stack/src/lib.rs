//! # stamp-stack — StackAnalyzer: worst-case stack usage
//!
//! Implements §2 of the paper. "By concentrating on the value of the
//! stack pointer during value analysis, the tool can figure out how the
//! stack increases and decreases along the various control-flow paths" —
//! yielding a per-task worst-case stack bound that neither under-estimates
//! (stack overflow) nor grossly over-estimates (wasted RAM).
//!
//! Two analysis modes are provided:
//!
//! * [`analyze_icfg`] — the precise mode: replays the value analysis over
//!   the context-expanded supergraph and takes the minimum possible `sp`
//!   at any instruction. Exact for non-recursive tasks.
//! * [`analyze_callgraph`] — the compositional mode: per-function frame
//!   effects plus a longest-path traversal of the call graph, with
//!   user-annotated recursion depths (recursion is rejected otherwise,
//!   as in the commercial tool).
//!
//! The whole-ECU analysis of ref \[3\] (OSEK/VDX systems) is in
//! [`OsekSystem`]: given per-task bounds and priorities it computes the
//! worst-case *system* stack over all admissible preemption chains,
//! which is what the single shared stack of an OSEK BCC1 system must
//! accommodate.

mod callgraph;
mod icfg_mode;
mod osek;

pub use callgraph::{analyze_callgraph, FunctionStack};
pub use icfg_mode::analyze_icfg;
pub use osek::{OsekSystem, Task};

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from the stack analyses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// The stack pointer could not be tracked at an instruction (e.g. it
    /// was computed from unknown data).
    UnknownStackPointer {
        /// Address of the offending instruction.
        addr: u32,
    },
    /// A recursive cycle without a depth annotation.
    Recursion {
        /// Name of a function in the cycle.
        function: String,
    },
    /// The program modifies `sp` by a non-constant amount.
    VariableAdjustment {
        /// Address of the offending instruction.
        addr: u32,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::UnknownStackPointer { addr } => {
                write!(f, "stack pointer unknown at {addr:#010x}")
            }
            StackError::Recursion { function } => {
                write!(f, "recursion through `{function}` needs a depth annotation")
            }
            StackError::VariableAdjustment { addr } => {
                write!(f, "non-constant stack adjustment at {addr:#010x}")
            }
        }
    }
}

impl Error for StackError {}

/// Options for the stack analyses.
#[derive(Clone, Debug, Default)]
pub struct StackOptions {
    /// Maximum recursion depth per function entry address (callgraph
    /// mode only).
    pub recursion_depths: BTreeMap<u32, u32>,
}

/// Result of a per-task stack analysis.
#[derive(Clone, Debug)]
pub struct StackResult {
    /// Worst-case stack usage of the task, in bytes.
    pub total: u32,
    /// Per-function breakdown (callgraph mode; the ICFG mode reports
    /// only the total).
    pub per_function: BTreeMap<String, FunctionStack>,
}
