//! Properties of the OSEK preemption-chain computation.

use proptest::prelude::*;
use stamp_stack::{OsekSystem, Task};

fn tasks() -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec(
        (1u32..8, 0u32..512, any::<bool>()).prop_map(|(prio, stack, pre)| Task {
            name: format!("t{prio}_{stack}"),
            priority: prio,
            stack_bound: stack,
            preemptable: pre,
        }),
        0..10,
    )
}

/// Brute force: enumerate all admissible chains (strictly increasing
/// priorities, all but the last preemptable) and take the max sum.
fn brute_force(tasks: &[Task]) -> u32 {
    fn extend(tasks: &[Task], current_sum: u64, min_prio: u32, best: &mut u64) {
        for t in tasks {
            if t.priority > min_prio {
                let total = current_sum + t.stack_bound as u64;
                *best = (*best).max(total);
                if t.preemptable {
                    extend(tasks, total, t.priority, best);
                }
            }
        }
    }
    let mut best = 0u64;
    extend(tasks, 0, 0, &mut best);
    best as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn system_bound_matches_brute_force(ts in tasks()) {
        let sys = OsekSystem::new(ts.clone());
        prop_assert_eq!(sys.system_bound(), brute_force(&ts));
    }

    #[test]
    fn system_bound_never_exceeds_naive(ts in tasks()) {
        let sys = OsekSystem::new(ts);
        prop_assert!(sys.system_bound() <= sys.naive_bound());
    }

    #[test]
    fn adding_a_task_is_monotone(ts in tasks(), extra in (1u32..8, 0u32..512)) {
        let base = OsekSystem::new(ts.clone()).system_bound();
        let mut more = ts;
        more.push(Task::new("extra", extra.0, extra.1));
        prop_assert!(OsekSystem::new(more).system_bound() >= base);
    }

    #[test]
    fn making_a_task_non_preemptable_never_raises_the_bound(ts in tasks(), idx in any::<prop::sample::Index>()) {
        if ts.is_empty() {
            return Ok(());
        }
        let i = idx.index(ts.len());
        let base = OsekSystem::new(ts.clone()).system_bound();
        let mut locked = ts;
        locked[i].preemptable = false;
        prop_assert!(OsekSystem::new(locked).system_bound() <= base);
    }
}
