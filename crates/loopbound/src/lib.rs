//! # stamp-loopbound — loop bound analysis
//!
//! Implements the paper's "loop bound analysis \[which\] determines upper
//! bounds for the number of iterations of simple loops", using the value
//! analysis results as input.
//!
//! For every natural loop and every VIVU call-context instance the
//! analysis:
//!
//! 1. identifies the loop's unique *induction register* — exactly one
//!    instruction in the body updates it, by a constant (`addi r, r, c`);
//! 2. finds exit branches that execute on every iteration (their blocks
//!    dominate the latch) and compares the induction register against a
//!    loop-invariant bound;
//! 3. abstractly iterates the induction sequence from the value-analysis
//!    entry state until the continue-condition becomes unsatisfiable,
//!    yielding a sound upper bound on header executions per loop entry.
//!
//! Loops that do not fit the pattern (e.g. binary search, data-dependent
//! exits) fall back to **user annotations**, exactly as aiT does; without
//! either, the loop is reported unbounded and WCET analysis refuses to
//! produce a bound.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_cfg::CfgBuilder;
//! use stamp_ai::{Icfg, VivuConfig};
//! use stamp_hw::HwConfig;
//! use stamp_value::{ValueAnalysis, ValueOptions};
//! use stamp_loopbound::LoopBoundAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(
//!     ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n",
//! )?;
//! let cfg = CfgBuilder::new(&p).build()?;
//! let icfg = Icfg::build(&cfg, &VivuConfig::default())?;
//! let va = ValueAnalysis::run(&p, &HwConfig::default(), &cfg, &icfg, &ValueOptions::default());
//! let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &Default::default());
//! assert_eq!(lb.bounds().values().next(), Some(&10));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;

use stamp_ai::{Ctx, Frame, IEdgeKind, Icfg};
use stamp_cfg::{BlockId, Cfg, FuncId, Loop};
use stamp_isa::{AluOp, Cond, Insn, Program, Reg};
use stamp_value::{effective_cond, CondRhs, SInt, ValueAnalysis};

/// Identifies one loop *instance*: a loop header together with the
/// context surrounding the loop (call string and outer-loop frames).
pub type LoopKey = (BlockId, Vec<Frame>);

/// Options for the loop-bound analysis.
#[derive(Clone, Debug)]
pub struct LoopBoundOptions {
    /// Per-header-address user annotations: "this loop executes its
    /// header at most N times per entry".
    pub annotations: BTreeMap<u32, u64>,
    /// Abstract-iteration cap; loops that survive this many iterations
    /// are reported unbounded.
    pub max_iterations: u64,
}

impl Default for LoopBoundOptions {
    fn default() -> LoopBoundOptions {
        LoopBoundOptions { annotations: BTreeMap::new(), max_iterations: 1 << 20 }
    }
}

/// Loop bounds per loop instance. Build with [`LoopBoundAnalysis::run`].
#[derive(Clone, Debug)]
pub struct LoopBoundAnalysis {
    bounds: BTreeMap<LoopKey, u64>,
    unbounded: Vec<LoopKey>,
}

impl LoopBoundAnalysis {
    /// Computes bounds for every loop instance in the supergraph.
    pub fn run(
        program: &Program,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
        options: &LoopBoundOptions,
    ) -> LoopBoundAnalysis {
        let mut bounds = BTreeMap::new();
        let mut unbounded = Vec::new();
        let _ = program;

        for func in cfg.functions() {
            let forest = match cfg.loop_forest(func.id) {
                Ok(f) => f,
                Err(_) => continue, // irreducible: reported by the ICFG stage
            };
            for l in forest.loops() {
                let pattern = InductionPattern::detect(cfg, func.id, l);
                // Every context instance of this loop.
                for key in loop_instances(icfg, l.header) {
                    let annotated = options.annotations.get(&cfg.block(l.header).start).copied();
                    let computed = pattern
                        .as_ref()
                        .and_then(|p| p.bound(cfg, icfg, va, l, &key.1, options.max_iterations));
                    match (computed, annotated) {
                        (Some(c), Some(a)) => {
                            bounds.insert(key, c.min(a));
                        }
                        (Some(c), None) => {
                            bounds.insert(key, c);
                        }
                        (None, Some(a)) => {
                            bounds.insert(key, a);
                        }
                        (None, None) => unbounded.push(key),
                    }
                }
            }
        }
        LoopBoundAnalysis { bounds, unbounded }
    }

    /// Bounds per loop instance (max header executions per loop entry).
    pub fn bounds(&self) -> &BTreeMap<LoopKey, u64> {
        &self.bounds
    }

    /// The bound for a loop instance.
    pub fn bound(&self, header: BlockId, outer: &[Frame]) -> Option<u64> {
        self.bounds.get(&(header, outer.to_vec())).copied()
    }

    /// Loop instances for which no bound could be established; these
    /// require annotations before WCET analysis can proceed.
    pub fn unbounded(&self) -> &[LoopKey] {
        &self.unbounded
    }
}

impl stamp_codec::Codec for LoopBoundAnalysis {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.bounds.enc(e);
        self.unbounded.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<LoopBoundAnalysis, stamp_codec::CodecError> {
        Ok(LoopBoundAnalysis { bounds: BTreeMap::dec(d)?, unbounded: Vec::dec(d)? })
    }
}

/// Enumerates the context instances of a loop: for every header node,
/// the context with the trailing own-loop frame stripped.
fn loop_instances(icfg: &Icfg, header: BlockId) -> Vec<LoopKey> {
    let mut keys: Vec<LoopKey> = Vec::new();
    for &n in icfg.nodes_of_block(header) {
        let ctx = icfg.ctxs().get(icfg.node(n).ctx);
        let mut frames = ctx.frames().to_vec();
        if matches!(frames.last(), Some(Frame::Loop { header: h, .. }) if *h == header) {
            frames.pop();
        }
        let key = (header, frames);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    keys
}

/// The detected shape of a simple counted loop.
struct InductionPattern {
    /// The induction register.
    reg: Reg,
    /// Its per-iteration constant step.
    step: i32,
    /// Block containing the unique increment.
    step_block: BlockId,
    /// Index of the increment instruction within its block.
    step_idx: usize,
    /// Exit branches usable for bounding: `(block, continue-cond, rhs,
    /// increment-executes-before-branch)`.
    exits: Vec<(BlockId, Cond, CondRhs, bool)>,
}

impl InductionPattern {
    fn detect(cfg: &Cfg, func: FuncId, l: &Loop) -> Option<InductionPattern> {
        // Find registers updated exactly once in the body, by `addi r, r, c`.
        let mut updates: BTreeMap<Reg, Vec<(BlockId, usize, Option<i32>)>> = BTreeMap::new();
        for &b in &l.body {
            for (idx, (_, insn)) in cfg.block(b).insns.iter().enumerate() {
                if let Some(rd) = insn.def() {
                    let step = match *insn {
                        Insn::AluImm { op: AluOp::Add, rd: d, rs1, imm }
                            if d == rs1 && imm != 0 =>
                        {
                            Some(imm)
                        }
                        _ => None,
                    };
                    updates.entry(rd).or_default().push((b, idx, step));
                }
            }
        }
        let dom = cfg.dominators(func);
        let latches: Vec<BlockId> = l.back_edges.iter().map(|&e| cfg.edge(e).from).collect();

        // Candidate induction registers: single self-increment update.
        for (reg, ups) in &updates {
            let [(step_block, step_idx, Some(step))] = ups.as_slice() else { continue };
            // The increment must run every iteration.
            if !latches.iter().all(|&lb| dom.dominates(*step_block, lb)) {
                continue;
            }
            // Collect usable exit branches comparing `reg`.
            let mut exits = Vec::new();
            for &eid in &l.exit_edges {
                let e = cfg.edge(eid);
                let b = e.from;
                if !latches.iter().all(|&lb| dom.dominates(b, lb)) && !latches.contains(&b) {
                    continue; // branch not executed every iteration
                }
                let Some(eff) = effective_cond(cfg.block(b)) else { continue };
                // The continue direction is the one staying in the loop.
                let exit_taken = matches!(e.kind, stamp_cfg::EdgeKind::Taken);
                let cont_cond = if exit_taken { eff.cond.negate() } else { eff.cond };
                // Normalize so that `reg` is on the left.
                let (cond, rhs) = if eff.lhs == *reg {
                    (cont_cond, eff.rhs)
                } else if let CondRhs::Reg(r) = eff.rhs {
                    if r == *reg {
                        (swap_sides(cont_cond)?, CondRhs::Reg(eff.lhs))
                    } else {
                        continue;
                    }
                } else {
                    continue;
                };
                // The rhs must be loop-invariant.
                if let CondRhs::Reg(r) = rhs {
                    if updates.contains_key(&r) && !r.is_zero() {
                        continue;
                    }
                }
                // Does the increment run before this branch each iteration?
                let inc_before = if *step_block == b {
                    *step_idx < cfg.block(b).insns.len() - 1
                } else if dom.dominates(*step_block, b) {
                    true
                } else if dom.dominates(b, *step_block) {
                    false
                } else {
                    continue;
                };
                exits.push((b, cond, rhs, inc_before));
            }
            if !exits.is_empty() {
                return Some(InductionPattern {
                    reg: *reg,
                    step: *step,
                    step_block: *step_block,
                    step_idx: *step_idx,
                    exits,
                });
            }
        }
        None
    }

    /// Bounds one context instance by abstract iteration.
    fn bound(
        &self,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
        l: &Loop,
        outer: &[Frame],
        cap: u64,
    ) -> Option<u64> {
        // Initial value of the induction register and of every invariant
        // rhs: joined over the loop's entry edges for this instance.
        let mut init: Option<SInt> = None;
        let mut rhs_vals: BTreeMap<Reg, SInt> = BTreeMap::new();
        for e in icfg.edges() {
            // An entry of this instance: any supergraph edge into one of
            // its header nodes that is not a back edge of this loop.
            // (This uniformly covers intra entry edges and call edges
            // into functions whose entry block heads a loop.)
            if matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(h), .. } if h == l.header) {
                continue;
            }
            let to = icfg.node(e.to);
            if to.block != l.header || !ctx_matches(icfg.ctxs().get(to.ctx), l.header, outer) {
                continue;
            }
            let src_state = va.exit_state(e.from)?;
            let v = src_state.reg(self.reg);
            init = Some(match init {
                None => v,
                Some(p) => p.join(&v),
            });
            for &(_, _, rhs, _) in &self.exits {
                if let CondRhs::Reg(r) = rhs {
                    let rv = src_state.reg(r);
                    rhs_vals.entry(r).and_modify(|p| *p = p.join(&rv)).or_insert(rv);
                }
            }
        }
        let init = init?;
        let _ = (self.step_block, self.step_idx);

        // Take the tightest bound over the usable exits.
        let mut best: Option<u64> = None;
        for &(_, cont, rhs, inc_before) in &self.exits {
            let limit = match rhs {
                CondRhs::Imm(v) => Some(SInt::cst(v)),
                CondRhs::Reg(r) if r.is_zero() => Some(SInt::cst(0)),
                CondRhs::Reg(r) => rhs_vals.get(&r).copied(),
            };
            // Value of the induction register at the branch in iteration
            // k (1-based): init + (k-1)·step (+ step if the increment ran).
            let interval_bound = limit.and_then(|limit| {
                let x = if inc_before { init.add_i32(self.step) } else { init };
                abstract_iterate(cont, x, &limit, self.step, cap)
            });
            // Relational path (paper §1: "upper and lower bounds for
            // their differences"): a pointer-range loop
            // `end = p + N; while (p < end)` over an unknown `p` has an
            // exact limit − induction difference at loop entry even when
            // both intervals are useless; where both paths succeed the
            // relational one is often tighter, so take the minimum.
            let relational_bound = match rhs {
                CondRhs::Reg(limit_reg) => {
                    self.relational_bound(cfg, icfg, va, l, outer, cont, limit_reg, inc_before, cap)
                }
                CondRhs::Imm(_) => None,
            };
            let bound = match (interval_bound, relational_bound) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(b) = bound {
                best = Some(best.map_or(b, |p: u64| p.min(b)));
            }
        }
        best
    }

    /// Bounds the loop through the entry-point difference
    /// `limit − induction`, when it is exact and the condition is a
    /// strict less-than with a positive step.
    #[allow(clippy::too_many_arguments)]
    fn relational_bound(
        &self,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
        l: &Loop,
        outer: &[Frame],
        cont: Cond,
        limit_reg: Reg,
        inc_before: bool,
        cap: u64,
    ) -> Option<u64> {
        if !matches!(cont, Cond::Lt | Cond::Ltu) || self.step <= 0 {
            return None;
        }
        // Gap at loop entry, joined over all entry edges of the instance.
        let mut gap: Option<i64> = None;
        for e in icfg.edges() {
            if matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(h), .. } if h == l.header) {
                continue;
            }
            let to = icfg.node(e.to);
            if to.block != l.header || !ctx_matches(icfg.ctxs().get(to.ctx), l.header, outer) {
                continue;
            }
            let src = icfg.node(e.from);
            let entry_state = va.entry_state(e.from)?;
            let block = cfg.block(src.block);
            let d = stamp_value::register_delta(block, entry_state, limit_reg, self.reg)?;
            let d = d.is_const()? as i32 as i64; // signed gap
            gap = Some(match gap {
                None => d,
                Some(p) => p.max(d),
            });
        }
        let gap = gap?;
        // 0-based reformulation: induction' starts at 0 (or step, if the
        // increment runs before the check), limit' = gap; both fit the
        // signed non-negative range where Lt and Ltu agree.
        if gap < 0 {
            return Some(1); // the continue condition fails immediately
        }
        let limit = SInt::cst(gap as u32);
        let x = SInt::cst(if inc_before { self.step as u32 } else { 0 });
        abstract_iterate(Cond::Lt, x, &limit, self.step, cap)
    }
}

/// Iterates `x ← refine(cont, x, limit) + step` until the continue
/// condition becomes unsatisfiable; returns the number of header
/// executions, or `None` past `cap`.
fn abstract_iterate(cont: Cond, mut x: SInt, limit: &SInt, step: i32, cap: u64) -> Option<u64> {
    let mut k: u64 = 1;
    loop {
        match SInt::refine(cont, &x, limit) {
            None => break Some(k), // cannot continue: ≤ k headers
            Some((rx, _)) => {
                k += 1;
                if k > cap {
                    break None;
                }
                x = rx.add_i32(step);
                if x.is_top() {
                    break None;
                }
            }
        }
    }
}

/// `a cond b` rewritten as `b cond' a`.
fn swap_sides(c: Cond) -> Option<Cond> {
    Some(match c {
        Cond::Eq => Cond::Eq,
        Cond::Ne => Cond::Ne,
        // a < b  ⇔  b > a, which is not directly expressible; callers
        // treat these as unusable.
        Cond::Lt | Cond::Ge | Cond::Ltu | Cond::Geu => return None,
    })
}

/// Does this header-node context belong to the instance `outer`?
fn ctx_matches(ctx: &Ctx, header: BlockId, outer: &[Frame]) -> bool {
    let mut frames = ctx.frames().to_vec();
    if matches!(frames.last(), Some(Frame::Loop { header: h, .. }) if *h == header) {
        frames.pop();
    }
    frames == outer
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_hw::HwConfig;
    use stamp_isa::asm::assemble;
    use stamp_value::ValueOptions;

    fn bounds_of(src: &str, opts: &LoopBoundOptions) -> LoopBoundAnalysis {
        let p = assemble(src).expect("assembles");
        let hw = HwConfig::default();
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, opts)
    }

    #[test]
    fn down_counting_loop() {
        let lb = bounds_of(
            ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(lb.bounds().len(), 1);
        assert_eq!(*lb.bounds().values().next().unwrap(), 10);
    }

    #[test]
    fn up_counting_loop_with_slt() {
        let lb = bounds_of(
            "\
            .text
            main: li r1, 0
            loop: addi r1, r1, 1
                  slti r5, r1, 100
                  bnez r5, loop
                  halt
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(*lb.bounds().values().next().unwrap(), 100);
    }

    #[test]
    fn up_counting_branch_compare_register() {
        // Bound held in a register set before the loop.
        let lb = bounds_of(
            "\
            .text
            main: li r1, 0
                  li r2, 25
            loop: addi r1, r1, 1
                  blt r1, r2, loop
                  halt
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(*lb.bounds().values().next().unwrap(), 25);
    }

    #[test]
    fn nested_loops_bound_separately() {
        let lb = bounds_of(
            "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        let values: Vec<u64> = lb.bounds().values().copied().collect();
        // Outer bound 3; inner bound 4 in both outer iteration contexts.
        assert!(values.contains(&3));
        assert!(values.contains(&4));
        assert!(lb.bounds().len() >= 3);
    }

    #[test]
    fn data_dependent_loop_needs_annotation() {
        // Binary-search-like halving loop: no ±c induction.
        let src = "\
            .text
            main: li r1, 1024
            loop: srli r1, r1, 1
                  bnez r1, loop
                  halt
        ";
        let lb = bounds_of(src, &LoopBoundOptions::default());
        assert_eq!(lb.unbounded().len(), 1);
        // With an annotation on the header the loop is bounded.
        let p = assemble(src).unwrap();
        let header = p.symbols.addr_of("loop").unwrap();
        let mut opts = LoopBoundOptions::default();
        opts.annotations.insert(header, 10);
        let lb = bounds_of(src, &opts);
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(*lb.bounds().values().next().unwrap(), 10);
    }

    #[test]
    fn annotation_tightens_computed_bound() {
        let src = ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let header = p.symbols.addr_of("loop").unwrap();
        let mut opts = LoopBoundOptions::default();
        opts.annotations.insert(header, 5);
        let lb = bounds_of(src, &opts);
        assert_eq!(*lb.bounds().values().next().unwrap(), 5);
    }

    #[test]
    fn pointer_range_loop_bounded_relationally() {
        // `end = p + 64; while (p < end) p += 4` over an unknown p:
        // intervals alone cannot bound this (p is input data), the
        // difference end − p = 64 can (paper §1's relational extension).
        let lb = bounds_of(
            "\
            .text
            main: la   r1, pbuf
                  lw   r1, 0(r1)      ; p: unknown input word
                  addi r2, r1, 64     ; end = p + 64
            loop: addi r1, r1, 4
                  blt  r1, r2, loop
                  halt
            .data
            pbuf: .space 4
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0, "relational bound should apply");
        assert_eq!(*lb.bounds().values().next().unwrap(), 16);
    }

    #[test]
    fn relational_beats_interval_difference() {
        // Base bounded to [buf, buf+28] and end = base + 64: the interval
        // difference would allow up to (64+28)/4 iterations, the exact
        // relational gap gives 16.
        let lb = bounds_of(
            "\
            .text
            main: la   r9, off
                  lw   r9, 0(r9)
                  andi r9, r9, 0x1c   ; 0..28, word aligned
                  la   r1, buf
                  add  r1, r1, r9     ; p = buf + off
                  addi r2, r1, 64     ; end = p + 64
            loop: addi r1, r1, 4
                  blt  r1, r2, loop
                  halt
            .data
            off:  .space 4
            buf:  .space 96
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(*lb.bounds().values().next().unwrap(), 16);
    }

    #[test]
    fn negative_gap_means_no_reentry() {
        // end below the start pointer: the loop body runs exactly once
        // (do-while shape), so the header bound is 1.
        let lb = bounds_of(
            "\
            .text
            main: la   r1, pbuf
                  lw   r1, 0(r1)
                  addi r2, r1, -8     ; end < p
            loop: addi r1, r1, 4
                  blt  r1, r2, loop
                  halt
            .data
            pbuf: .space 4
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        assert_eq!(*lb.bounds().values().next().unwrap(), 1);
    }

    #[test]
    fn loop_in_called_function_bound_per_context() {
        let lb = bounds_of(
            "\
            .text
            main: li r1, 7
                  call spin
                  li r1, 3
                  call spin
                  halt
            spin: addi r1, r1, -1
                  bnez r1, spin
                  ret
            ",
            &LoopBoundOptions::default(),
        );
        assert_eq!(lb.unbounded().len(), 0);
        let values: Vec<u64> = lb.bounds().values().copied().collect();
        // Two inlined instances with different bounds.
        assert!(values.contains(&7), "{values:?}");
        assert!(values.contains(&3), "{values:?}");
    }
}
