//! Abstract memory: a finite map of known RAM words.

use std::collections::BTreeMap;
use std::rc::Rc;

use stamp_isa::MemWidth;

use crate::interval::SInt;

/// Abstract RAM contents at word granularity.
///
/// Absent addresses are unknown (⊤) — RAM starts completely unknown, as
/// the analysis must hold for *all inputs* ("results valid for every
/// program run and all inputs"). Knowledge accumulates through stores at
/// (sufficiently) known addresses; reads from ROM are handled separately
/// by the transfer function, since ROM contents are constant.
///
/// The map uses word-aligned addresses as keys. Sub-word stores are
/// merged into the containing word when everything relevant is constant;
/// otherwise they conservatively invalidate it.
///
/// The map is shared copy-on-write (`Rc`): cloning a state — which the
/// solver does once per node entry and transfer functions once per
/// evaluation — is a pointer bump, and the map is copied only when a
/// store or a growing join actually mutates it. The common "state
/// unchanged through a block" case therefore allocates nothing, and
/// joining a state with its own descendant short-circuits on pointer
/// identity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AMem {
    words: Rc<BTreeMap<u32, SInt>>,
}

impl AMem {
    /// Completely unknown memory.
    pub fn unknown() -> AMem {
        AMem::default()
    }

    /// The shared word map (for freezing states into thread-shareable
    /// artifacts; the `Rc` identity doubles as the structural-sharing
    /// key).
    pub(crate) fn words_rc(&self) -> &Rc<BTreeMap<u32, SInt>> {
        &self.words
    }

    /// Rebuilds a memory from a (possibly shared) word map — the
    /// inverse of [`AMem::words_rc`].
    pub(crate) fn from_words(words: Rc<BTreeMap<u32, SInt>>) -> AMem {
        AMem { words }
    }

    /// Number of words with non-⊤ knowledge.
    pub fn known_words(&self) -> usize {
        self.words.len()
    }

    /// Reads an access of `width` at the *constant* word-aligned-or-not
    /// address `addr`. Returns ⊤ when nothing is known.
    pub fn read(&self, addr: u32, width: MemWidth) -> SInt {
        let word_addr = addr & !3;
        let within = addr & 3;
        let word = match self.words.get(&word_addr) {
            Some(v) => *v,
            None => return SInt::top(),
        };
        match width {
            MemWidth::W => word,
            MemWidth::H | MemWidth::B => match word.is_const() {
                Some(w) => {
                    let shift = 8 * within;
                    let mask = if width == MemWidth::H { 0xffff } else { 0xff };
                    SInt::cst((w >> shift) & mask)
                }
                // A non-constant word still bounds its sub-fields only
                // loosely; give up rather than track bit slices.
                None => SInt::top(),
            },
        }
    }

    /// Reads a range of possible addresses: the join over all members.
    /// Falls back to ⊤ when the set is large.
    pub fn read_range(&self, addrs: &SInt, width: MemWidth) -> SInt {
        if let Some(a) = addrs.is_const() {
            return self.read(a, width);
        }
        if addrs.count() <= 64 {
            let mut acc: Option<SInt> = None;
            for a in addrs.iter() {
                let v = self.read(a, width);
                acc = Some(match acc {
                    None => v,
                    Some(prev) => prev.join(&v),
                });
                if acc.as_ref().is_some_and(SInt::is_top) {
                    break;
                }
            }
            acc.unwrap_or_else(SInt::top)
        } else {
            SInt::top()
        }
    }

    /// Stores `value` of `width` at the constant address `addr`
    /// (strong update).
    pub fn write(&mut self, addr: u32, width: MemWidth, value: &SInt) {
        let word_addr = addr & !3;
        let within = addr & 3;
        match width {
            MemWidth::W => {
                if value.is_top() {
                    if self.words.contains_key(&word_addr) {
                        Rc::make_mut(&mut self.words).remove(&word_addr);
                    }
                } else if self.words.get(&word_addr) != Some(value) {
                    Rc::make_mut(&mut self.words).insert(word_addr, *value);
                }
            }
            MemWidth::H | MemWidth::B => {
                let old = self.words.get(&word_addr).copied();
                let merged = match (old.and_then(|o| o.is_const()), value.is_const()) {
                    (Some(o), Some(v)) => {
                        let shift = 8 * within;
                        let mask: u32 = if width == MemWidth::H { 0xffff } else { 0xff };
                        Some(SInt::cst((o & !(mask << shift)) | ((v & mask) << shift)))
                    }
                    _ => None,
                };
                match merged {
                    Some(m) => {
                        if old != Some(m) {
                            Rc::make_mut(&mut self.words).insert(word_addr, m);
                        }
                    }
                    None => {
                        if old.is_some() {
                            Rc::make_mut(&mut self.words).remove(&word_addr);
                        }
                    }
                }
            }
        }
    }

    /// Weak update over a *range* of possible store addresses: all words
    /// the store might touch lose their knowledge (or, when the range is
    /// small, are joined with the stored value).
    pub fn write_range(&mut self, addrs: &SInt, width: MemWidth, value: &SInt) {
        if let Some(a) = addrs.is_const() {
            self.write(a, width, value);
            return;
        }
        if addrs.is_top() {
            if !self.words.is_empty() {
                self.words = Rc::new(BTreeMap::new());
            }
            return;
        }
        if addrs.count() <= 64 && width == MemWidth::W {
            // Weak update: join the stored value into each candidate.
            for a in addrs.iter() {
                let word_addr = a & !3;
                if let Some(old) = self.words.get(&word_addr).copied() {
                    let joined = old.join(value);
                    if joined == old {
                        continue;
                    }
                    let words = Rc::make_mut(&mut self.words);
                    if joined.is_top() {
                        words.remove(&word_addr);
                    } else {
                        words.insert(word_addr, joined);
                    }
                }
                // Unknown stays unknown — already ⊤.
            }
            return;
        }
        // Invalidate every word in the touched byte range.
        let first = addrs.lo() & !3;
        let last = (addrs.hi().saturating_add(width.bytes() - 1)) | 3;
        if self.words.range(first..=last).next().is_none() {
            return;
        }
        Rc::make_mut(&mut self.words).retain(|&a, _| !(first..=last).contains(&a));
    }

    /// Lattice join: keep only words known on both sides (pointwise join).
    /// Returns `true` if `self` changed.
    ///
    /// A read-only pass decides whether anything changes before the
    /// shared map is copied, so the steady-state no-op join neither
    /// allocates nor writes.
    pub fn join_from(&mut self, other: &AMem) -> bool {
        if Rc::ptr_eq(&self.words, &other.words) {
            return false;
        }
        let grows = self.words.iter().any(|(k, sv)| match other.words.get(k) {
            None => true,
            Some(ov) => sv.join(ov) != *sv,
        });
        if !grows {
            return false;
        }
        Rc::make_mut(&mut self.words).retain(|k, sv| match other.words.get(k) {
            None => false,
            Some(ov) => {
                let j = sv.join(ov);
                if j.is_top() {
                    false
                } else {
                    *sv = j;
                    true
                }
            }
        });
        true
    }

    /// Widening: like join but with per-word interval widening.
    pub fn widen_from(&mut self, other: &AMem, thresholds: &[u32]) -> bool {
        if Rc::ptr_eq(&self.words, &other.words) {
            return false;
        }
        let grows = self.words.iter().any(|(k, sv)| match other.words.get(k) {
            None => true,
            Some(ov) => !ov.subset_of(sv),
        });
        if !grows {
            return false;
        }
        Rc::make_mut(&mut self.words).retain(|k, sv| match other.words.get(k) {
            None => false,
            Some(ov) => {
                if !ov.subset_of(sv) {
                    let w = sv.widen(ov, thresholds);
                    if w.is_top() {
                        return false;
                    }
                    *sv = w;
                }
                true
            }
        });
        true
    }

    /// Partial-order test (`self ⊑ other` means `self` knows at least as
    /// much: every word known in `other` is at least as precisely known
    /// in `self`).
    pub fn le(&self, other: &AMem) -> bool {
        Rc::ptr_eq(&self.words, &other.words)
            || other
                .words
                .iter()
                .all(|(k, ov)| self.words.get(k).is_some_and(|sv| sv.subset_of(ov)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unknown() {
        let m = AMem::unknown();
        assert!(m.read(0x1000_0000, MemWidth::W).is_top());
        assert_eq!(m.known_words(), 0);
    }

    #[test]
    fn strong_update_roundtrip() {
        let mut m = AMem::unknown();
        m.write(0x1000_0010, MemWidth::W, &SInt::cst(42));
        assert_eq!(m.read(0x1000_0010, MemWidth::W).is_const(), Some(42));
        assert_eq!(m.read(0x1000_0010, MemWidth::B).is_const(), Some(42));
        assert_eq!(m.read(0x1000_0011, MemWidth::B).is_const(), Some(0));
    }

    #[test]
    fn subword_store_merges_constants() {
        let mut m = AMem::unknown();
        m.write(0x1000_0000, MemWidth::W, &SInt::cst(0x1122_3344));
        m.write(0x1000_0001, MemWidth::B, &SInt::cst(0xaa));
        assert_eq!(m.read(0x1000_0000, MemWidth::W).is_const(), Some(0x1122_aa44));
        // Non-constant sub-word store invalidates the word.
        m.write(0x1000_0002, MemWidth::H, &SInt::range(0, 5));
        assert!(m.read(0x1000_0000, MemWidth::W).is_top());
    }

    #[test]
    fn range_write_invalidates_only_touched_words() {
        let mut m = AMem::unknown();
        m.write(0x1000_0000, MemWidth::W, &SInt::cst(1));
        m.write(0x1000_0100, MemWidth::W, &SInt::cst(2));
        // A store somewhere in [0x10000000, 0x10000080] with a large range.
        m.write_range(&SInt::strided(0x1000_0000, 0x1000_0080, 1), MemWidth::W, &SInt::top());
        assert!(m.read(0x1000_0000, MemWidth::W).is_top());
        assert_eq!(m.read(0x1000_0100, MemWidth::W).is_const(), Some(2));
    }

    #[test]
    fn small_range_write_is_weak_join() {
        let mut m = AMem::unknown();
        m.write(0x1000_0000, MemWidth::W, &SInt::cst(4));
        m.write(0x1000_0004, MemWidth::W, &SInt::cst(4));
        m.write_range(&SInt::strided(0x1000_0000, 0x1000_0004, 4), MemWidth::W, &SInt::cst(8));
        let v = m.read(0x1000_0000, MemWidth::W);
        assert!(v.contains(4) && v.contains(8));
    }

    #[test]
    fn read_range_joins_values() {
        let mut m = AMem::unknown();
        m.write(0x1000_0000, MemWidth::W, &SInt::cst(10));
        m.write(0x1000_0004, MemWidth::W, &SInt::cst(20));
        let v = m.read_range(&SInt::strided(0x1000_0000, 0x1000_0004, 4), MemWidth::W);
        assert!(v.contains(10) && v.contains(20));
        assert_eq!(v.count(), 2);
        // Huge ranges degrade to ⊤.
        assert!(m.read_range(&SInt::range(0x1000_0000, 0x100f_0000), MemWidth::W).is_top());
    }

    #[test]
    fn join_drops_one_sided_knowledge() {
        let mut a = AMem::unknown();
        a.write(0x1000_0000, MemWidth::W, &SInt::cst(1));
        a.write(0x1000_0004, MemWidth::W, &SInt::cst(2));
        let mut b = AMem::unknown();
        b.write(0x1000_0000, MemWidth::W, &SInt::cst(3));
        assert!(a.join_from(&b));
        let v = a.read(0x1000_0000, MemWidth::W);
        assert!(v.contains(1) && v.contains(3));
        assert!(a.read(0x1000_0004, MemWidth::W).is_top());
        assert!(b.le(&a));
    }
}
