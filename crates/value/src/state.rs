//! The abstract machine state: register file × abstract memory.

use std::rc::Rc;

use stamp_ai::Domain;
use stamp_isa::Reg;

use crate::amem::AMem;
use crate::interval::SInt;

/// Abstract state at a program point: one [`SInt`] per register plus the
/// abstract RAM.
///
/// The widening-threshold ladder is shared by reference so cloning a
/// state (which the solver does constantly) stays cheap.
#[derive(Clone, Debug)]
pub struct AState {
    regs: [SInt; Reg::COUNT],
    /// Abstract RAM.
    pub mem: AMem,
    thresholds: Rc<Vec<u32>>,
}

impl AState {
    /// The task-entry state: `r0 = 0`, `sp = stack_top`, all other
    /// registers and all RAM unknown.
    pub fn entry(stack_top: u32, thresholds: Rc<Vec<u32>>) -> AState {
        let mut regs = [SInt::top(); Reg::COUNT];
        regs[Reg::ZERO.index()] = SInt::cst(0);
        regs[Reg::SP.index()] = SInt::cst(stack_top);
        AState { regs, mem: AMem::unknown(), thresholds }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> SInt {
        self.regs[r.index()]
    }

    /// Writes a register (`r0` stays pinned at zero).
    pub fn set_reg(&mut self, r: Reg, v: SInt) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Meets a register with a refinement; returns `false` if the
    /// register becomes empty (the path is infeasible).
    #[must_use]
    pub fn refine_reg(&mut self, r: Reg, v: &SInt) -> bool {
        if r.is_zero() {
            return v.contains(0);
        }
        match self.regs[r.index()].meet(v) {
            Some(m) => {
                self.regs[r.index()] = m;
                true
            }
            None => false,
        }
    }

    /// The shared widening thresholds.
    pub fn thresholds(&self) -> &[u32] {
        &self.thresholds
    }

    /// The register file (for freezing states into thread-shareable
    /// artifacts).
    pub(crate) fn regs(&self) -> &[SInt; Reg::COUNT] {
        &self.regs
    }

    /// The shared threshold ladder, by reference count.
    pub(crate) fn thresholds_rc(&self) -> &Rc<Vec<u32>> {
        &self.thresholds
    }

    /// Reassembles a state from raw parts — the inverse of
    /// [`AState::regs`] / [`AState::thresholds_rc`] plus the memory.
    pub(crate) fn from_parts(
        regs: [SInt; Reg::COUNT],
        mem: AMem,
        thresholds: Rc<Vec<u32>>,
    ) -> AState {
        AState { regs, mem, thresholds }
    }
}

impl Domain for AState {
    fn join_from(&mut self, other: &AState) -> bool {
        let mut changed = false;
        for i in 0..Reg::COUNT {
            let j = self.regs[i].join(&other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        changed |= self.mem.join_from(&other.mem);
        changed
    }

    fn widen_from(&mut self, other: &AState) -> bool {
        let mut changed = false;
        let thr = Rc::clone(&self.thresholds);
        for i in 0..Reg::COUNT {
            if !other.regs[i].subset_of(&self.regs[i]) {
                let w = self.regs[i].widen(&other.regs[i], &thr);
                if w != self.regs[i] {
                    self.regs[i] = w;
                    changed = true;
                }
            }
        }
        changed |= self.mem.widen_from(&other.mem, &thr);
        changed
    }

    fn le(&self, other: &AState) -> bool {
        self.regs.iter().zip(other.regs.iter()).all(|(a, b)| a.subset_of(b))
            && self.mem.le(&other.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st() -> AState {
        AState::entry(0x1010_0000, Rc::new(vec![0, 16, 256]))
    }

    #[test]
    fn entry_state_pins_special_registers() {
        let s = st();
        assert_eq!(s.reg(Reg::ZERO).is_const(), Some(0));
        assert_eq!(s.reg(Reg::SP).is_const(), Some(0x1010_0000));
        assert!(s.reg(Reg::new(1)).is_top());
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut s = st();
        s.set_reg(Reg::ZERO, SInt::cst(5));
        assert_eq!(s.reg(Reg::ZERO).is_const(), Some(0));
    }

    #[test]
    fn join_is_pointwise() {
        let mut a = st();
        let mut b = st();
        a.set_reg(Reg::new(1), SInt::cst(1));
        b.set_reg(Reg::new(1), SInt::cst(3));
        assert!(a.join_from(&b));
        let v = a.reg(Reg::new(1));
        assert!(v.contains(1) && v.contains(3));
        assert!(b.le(&a));
        assert!(!a.le(&b));
    }

    #[test]
    fn widen_uses_shared_thresholds() {
        let mut a = st();
        let mut b = st();
        a.set_reg(Reg::new(2), SInt::cst(0));
        b.set_reg(Reg::new(2), SInt::range(0, 3));
        assert!(a.widen_from(&b));
        assert_eq!(a.reg(Reg::new(2)).hi(), 16); // jumped to threshold
    }

    #[test]
    fn refine_to_empty_reports_infeasible() {
        let mut a = st();
        a.set_reg(Reg::new(1), SInt::cst(5));
        assert!(!a.refine_reg(Reg::new(1), &SInt::cst(6)));
        assert!(a.refine_reg(Reg::ZERO, &SInt::range(0, 10)));
        assert!(!a.refine_reg(Reg::ZERO, &SInt::range(1, 10)));
    }
}
