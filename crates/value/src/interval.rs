//! Strided intervals over the unsigned 32-bit universe.
//!
//! [`SInt`] represents the set `{lo, lo+s, …, hi}`. With `s = 0` it is a
//! single constant (constant propagation); with `s = 1` a plain interval
//! (interval analysis); larger strides capture the congruence information
//! produced by array indexing (`base + 4*i`), which the data-cache
//! analysis depends on. This realizes the domain hierarchy sketched in
//! §1 of the paper; [`DomainKind`] selects weaker members of the
//! hierarchy for the ablation experiment (E7).

use std::fmt;

/// Which member of the value-domain hierarchy to use (experiment E7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Constant propagation: any non-singleton becomes ⊤.
    Const,
    /// Plain intervals: strides collapse to 1.
    Interval,
    /// Full strided intervals.
    Strided,
}

impl DomainKind {
    /// Degrades `v` to this domain's precision.
    pub fn degrade(self, v: SInt) -> SInt {
        match self {
            DomainKind::Strided => v,
            DomainKind::Interval => {
                if v.stride() > 1 {
                    SInt::range(v.lo(), v.hi())
                } else {
                    v
                }
            }
            DomainKind::Const => {
                if v.is_const().is_some() {
                    v
                } else {
                    SInt::top()
                }
            }
        }
    }
}

/// A non-empty strided interval `{lo + k·stride | 0 ≤ k ≤ (hi-lo)/stride}`.
///
/// Invariants: `lo ≤ hi`; `stride == 0` iff `lo == hi`; otherwise
/// `(hi - lo) % stride == 0`.
///
/// # Example
///
/// ```
/// use stamp_value::SInt;
///
/// let idx = SInt::strided(0, 36, 4); // i ∈ {0, 4, …, 36}
/// assert_eq!(idx.count(), 10);
/// assert!(idx.contains(8));
/// assert!(!idx.contains(9));
/// let addr = idx.add(&SInt::cst(0x1000_0000));
/// assert_eq!(addr.lo(), 0x1000_0000);
/// assert_eq!(addr.stride(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SInt {
    lo: u32,
    hi: u32,
    stride: u32,
}

const BIAS: u32 = 0x8000_0000;

fn gcd(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl SInt {
    /// A single constant.
    pub fn cst(v: u32) -> SInt {
        SInt { lo: v, hi: v, stride: 0 }
    }

    /// The full unsigned range (⊤).
    pub fn top() -> SInt {
        SInt { lo: 0, hi: u32::MAX, stride: 1 }
    }

    /// A contiguous range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: u32, hi: u32) -> SInt {
        SInt::strided(lo, hi, 1)
    }

    /// A strided range; `hi` is aligned down onto the grid.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn strided(lo: u32, hi: u32, stride: u32) -> SInt {
        assert!(lo <= hi, "empty strided interval [{lo}, {hi}]");
        if lo == hi {
            return SInt { lo, hi, stride: 0 };
        }
        let s = stride.max(1);
        let hi = lo + (hi - lo) / s * s;
        if lo == hi {
            SInt { lo, hi, stride: 0 }
        } else {
            SInt { lo, hi, stride: s }
        }
    }

    /// Smallest member.
    pub fn lo(&self) -> u32 {
        self.lo
    }

    /// Largest member.
    pub fn hi(&self) -> u32 {
        self.hi
    }

    /// Grid stride (0 for constants).
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Returns the constant if the set is a singleton.
    pub fn is_const(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Returns `true` for the full range.
    pub fn is_top(&self) -> bool {
        self.lo == 0 && self.hi == u32::MAX && self.stride == 1
    }

    /// Number of members.
    pub fn count(&self) -> u64 {
        if self.stride == 0 {
            1
        } else {
            (self.hi - self.lo) as u64 / self.stride as u64 + 1
        }
    }

    /// Membership test.
    pub fn contains(&self, v: u32) -> bool {
        v >= self.lo
            && v <= self.hi
            && (self.stride == 0 || (v - self.lo).is_multiple_of(self.stride))
    }

    /// Iterates the members (ascending). Intended for small sets — check
    /// [`SInt::count`] first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        let s = self.stride.max(1);
        (0..self.count()).map(move |k| self.lo + (k as u32) * s)
    }

    /// Returns `true` if every member of `self` is a member of `other`.
    pub fn subset_of(&self, other: &SInt) -> bool {
        if self.lo < other.lo || self.hi > other.hi {
            return false;
        }
        if other.stride <= 1 {
            return true;
        }
        // Every element must satisfy other's congruence.
        (self.lo - other.lo).is_multiple_of(other.stride)
            && (self.stride.is_multiple_of(other.stride) || self.stride == 0)
    }

    // ------------------------------------------------------ lattice ops

    /// Least upper bound.
    pub fn join(&self, other: &SInt) -> SInt {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        if lo == hi {
            return SInt::cst(lo);
        }
        let g = gcd(gcd(self.stride, other.stride), self.lo.abs_diff(other.lo));
        SInt::strided(lo, hi, if g == 0 { 1 } else { g })
    }

    /// Widening with a sorted threshold ladder: descending bounds jump to
    /// the next threshold below (else 0), ascending bounds to the next
    /// threshold above (else `u32::MAX`). Congruence is preserved.
    pub fn widen(&self, other: &SInt, thresholds: &[u32]) -> SInt {
        let joined = self.join(other);
        let mut lo = self.lo;
        let mut hi = self.hi;
        if joined.lo < self.lo {
            lo = thresholds.iter().rev().copied().find(|&t| t <= joined.lo).unwrap_or(0);
        }
        if joined.hi > self.hi {
            hi = thresholds.iter().copied().find(|&t| t >= joined.hi).unwrap_or(u32::MAX);
        }
        if lo == hi {
            return SInt::cst(lo);
        }
        // Keep the joined congruence by aligning the new endpoints onto
        // the grid anchored at joined.lo.
        let g = joined.stride.max(1);
        let lo_aligned = if lo <= joined.lo { joined.lo - (joined.lo - lo) / g * g } else { lo };
        let hi_aligned = if hi >= joined.lo { joined.lo + (hi - joined.lo) / g * g } else { hi };
        if lo_aligned > hi_aligned {
            return joined;
        }
        SInt::strided(lo_aligned, hi_aligned.max(joined.hi), g)
    }

    /// Sound over-approximation of the intersection; `None` when provably
    /// empty (used for branch refinement / infeasible-path detection).
    pub fn meet(&self, other: &SInt) -> Option<SInt> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return None;
        }
        // Constants: membership check.
        if let Some(c) = self.is_const() {
            return other.contains(c).then_some(*self);
        }
        if let Some(c) = other.is_const() {
            return self.contains(c).then_some(*other);
        }
        let (s1, s2) = (self.stride, other.stride);
        let g = gcd(s1, s2);
        if !(self.lo.abs_diff(other.lo)).is_multiple_of(g) {
            return None; // incompatible congruences
        }
        // Try the exact combined congruence (CRT); fall back to gcd.
        let (anchor, stride) = match crt_residue(self.lo, s1, other.lo, s2) {
            Some((r, m)) => (r as u64, m),
            None => (self.lo as u64, g),
        };
        // First member ≥ lo congruent to anchor (mod stride).
        let s = stride.max(1) as u64;
        let (lo64, hi64) = (lo as u64, hi as u64);
        let lo_adj = if lo64 <= anchor {
            anchor - (anchor - lo64) / s * s
        } else {
            anchor + (lo64 - anchor).div_ceil(s) * s
        };
        if lo_adj > hi64 {
            return None;
        }
        let hi_adj = lo_adj + (hi64 - lo_adj) / s * s;
        Some(SInt::strided(lo_adj as u32, hi_adj as u32, stride))
    }

    /// Removes `v` if it is an endpoint (refinement under `≠ v`);
    /// `None` when the set becomes empty.
    pub fn remove(&self, v: u32) -> Option<SInt> {
        if let Some(c) = self.is_const() {
            return (c != v).then_some(*self);
        }
        if v == self.lo {
            Some(SInt::strided(self.lo + self.stride, self.hi, self.stride))
        } else if v == self.hi {
            Some(SInt::strided(self.lo, self.hi - self.stride, self.stride))
        } else {
            Some(*self)
        }
    }

    // -------------------------------------------------- signed views

    /// The set as a contiguous signed range, if it does not straddle the
    /// signed boundary.
    pub fn signed_range(&self) -> Option<(i32, i32)> {
        if self.hi <= i32::MAX as u32 || self.lo >= BIAS {
            Some((self.lo as i32, self.hi as i32))
        } else {
            None
        }
    }

    /// Maps through `x ↦ x ⊕ 0x8000_0000` (order-preserving from signed
    /// to unsigned), when the set is signed-contiguous.
    fn biased(&self) -> Option<SInt> {
        self.signed_range()?;
        Some(SInt { lo: self.lo ^ BIAS, hi: self.hi ^ BIAS, stride: self.stride })
    }

    fn unbiased(&self) -> SInt {
        SInt { lo: self.lo ^ BIAS, hi: self.hi ^ BIAS, stride: self.stride }
    }

    // -------------------------------------------------- arithmetic

    /// Abstract wrapping addition. Exact when no member wraps *or* every
    /// member wraps (the common `x + (-1 as u32)` down-count shape);
    /// ⊤ only when the sum straddles 2³².
    pub fn add(&self, other: &SInt) -> SInt {
        let lo = self.lo as u64 + other.lo as u64;
        let hi = self.hi as u64 + other.hi as u64;
        const WRAP: u64 = 1 << 32;
        if hi < WRAP {
            SInt::strided(lo as u32, hi as u32, gcd(self.stride, other.stride))
        } else if lo >= WRAP {
            // Every member wraps exactly once: shift back down.
            SInt::strided((lo - WRAP) as u32, (hi - WRAP) as u32, gcd(self.stride, other.stride))
        } else {
            SInt::top()
        }
    }

    /// Abstract wrapping subtraction (same exactness as [`SInt::add`]).
    pub fn sub(&self, other: &SInt) -> SInt {
        let lo = self.lo as i64 - other.hi as i64;
        let hi = self.hi as i64 - other.lo as i64;
        const WRAP: i64 = 1 << 32;
        if lo >= 0 {
            SInt::strided(lo as u32, hi as u32, gcd(self.stride, other.stride))
        } else if hi < 0 {
            SInt::strided((lo + WRAP) as u32, (hi + WRAP) as u32, gcd(self.stride, other.stride))
        } else {
            SInt::top()
        }
    }

    /// Abstract addition of a signed constant (the `addi` transfer).
    pub fn add_i32(&self, k: i32) -> SInt {
        if k >= 0 {
            self.add(&SInt::cst(k as u32))
        } else {
            self.sub(&SInt::cst(k.unsigned_abs()))
        }
    }

    /// Abstract multiplication (overflow ⇒ ⊤).
    pub fn mul(&self, other: &SInt) -> SInt {
        let hi = self.hi as u64 * other.hi as u64;
        if hi > u32::MAX as u64 {
            return SInt::top();
        }
        let lo = self.lo as u64 * other.lo as u64;
        let stride = if let Some(k) = other.is_const() {
            self.stride as u64 * k as u64
        } else if let Some(k) = self.is_const() {
            other.stride as u64 * k as u64
        } else {
            1
        };
        SInt::strided(lo as u32, hi as u32, stride.min(u32::MAX as u64) as u32)
    }

    /// Abstract bitwise and.
    pub fn and(&self, other: &SInt) -> SInt {
        match (self.is_const(), other.is_const()) {
            (Some(a), Some(b)) => SInt::cst(a & b),
            // Masking with a constant bounds the result by the mask; if
            // the mask is low-bits-only the value is also bounded by the
            // operand's maximum.
            (_, Some(m)) => SInt::range(0, m.min(self.hi)),
            (Some(m), _) => SInt::range(0, m.min(other.hi)),
            _ => SInt::range(0, self.hi.min(other.hi)),
        }
    }

    /// Abstract bitwise or (can only raise bits below the joint maximum).
    pub fn or(&self, other: &SInt) -> SInt {
        match (self.is_const(), other.is_const()) {
            (Some(a), Some(b)) => SInt::cst(a | b),
            _ => {
                let max = ones_cover(self.hi | other.hi);
                SInt::range(self.lo.max(other.lo), max)
            }
        }
    }

    /// Abstract bitwise xor.
    pub fn xor(&self, other: &SInt) -> SInt {
        match (self.is_const(), other.is_const()) {
            (Some(a), Some(b)) => SInt::cst(a ^ b),
            _ => SInt::range(0, ones_cover(self.hi | other.hi)),
        }
    }

    /// Abstract logical shift left (shift amounts use the low 5 bits).
    pub fn sll(&self, amount: &SInt) -> SInt {
        match amount.is_const() {
            Some(k) => {
                let k = k & 31;
                let hi = (self.hi as u64) << k;
                if hi > u32::MAX as u64 {
                    return SInt::top();
                }
                SInt::strided(
                    self.lo << k,
                    hi as u32,
                    (self.stride << k).max((self.stride > 0) as u32),
                )
            }
            None => SInt::top(),
        }
    }

    /// Abstract logical shift right.
    pub fn srl(&self, amount: &SInt) -> SInt {
        match amount.is_const() {
            Some(k) => {
                let k = k & 31;
                let s = if self.stride > 0 && self.stride.is_multiple_of(1u32 << k.min(31)) {
                    self.stride >> k
                } else {
                    1
                };
                SInt::strided(self.lo >> k, self.hi >> k, s)
            }
            None => SInt::range(0, self.hi),
        }
    }

    /// Abstract arithmetic shift right.
    pub fn sra(&self, amount: &SInt) -> SInt {
        match (amount.is_const(), self.signed_range()) {
            (Some(k), Some((lo, hi))) => {
                let k = k & 31;
                let (a, b) = (lo >> k, hi >> k); // monotone in signed order
                if a >= 0 || b < 0 {
                    // Entirely non-negative or entirely negative: also
                    // contiguous (and ordered) in the unsigned view.
                    SInt::range(a as u32, b as u32)
                } else {
                    SInt::top()
                }
            }
            _ => SInt::top(),
        }
    }

    /// Abstract signed `slt` (0/1 result, exact when the order is decided).
    pub fn slt(&self, other: &SInt) -> SInt {
        match (self.signed_range(), other.signed_range()) {
            (Some((alo, ahi)), Some((blo, bhi))) => {
                if ahi < blo {
                    SInt::cst(1)
                } else if alo >= bhi {
                    SInt::cst(0)
                } else {
                    SInt::range(0, 1)
                }
            }
            _ => SInt::range(0, 1),
        }
    }

    /// Abstract unsigned `sltu`.
    pub fn sltu(&self, other: &SInt) -> SInt {
        if self.hi < other.lo {
            SInt::cst(1)
        } else if self.lo >= other.hi {
            SInt::cst(0)
        } else {
            SInt::range(0, 1)
        }
    }

    /// Abstract signed division (precise only for non-negative ranges and
    /// constant positive divisors — the common strength-reduction shapes).
    pub fn div(&self, other: &SInt) -> SInt {
        match (self.signed_range(), other.is_const()) {
            (Some((lo, hi)), Some(d)) if lo >= 0 && (1..=i32::MAX as u32).contains(&d) => {
                SInt::range((lo as u32) / d, (hi as u32) / d)
            }
            _ => SInt::top(),
        }
    }

    /// Abstract signed remainder (same precise cases as [`SInt::div`]).
    pub fn rem(&self, other: &SInt) -> SInt {
        match (self.signed_range(), other.is_const()) {
            (Some((lo, _hi)), Some(d)) if lo >= 0 && (1..=i32::MAX as u32).contains(&d) => {
                if self.hi < d {
                    *self
                } else {
                    SInt::range(0, d - 1)
                }
            }
            _ => SInt::top(),
        }
    }

    /// Word-aligns every member (`x & !3`, the `jalr` target rule).
    pub fn align4(&self) -> SInt {
        let lo = self.lo & !3;
        let hi = self.hi & !3;
        let s = if self.stride == 0 {
            0
        } else if self.stride.is_multiple_of(4) && self.lo.is_multiple_of(4) {
            self.stride
        } else {
            4
        };
        SInt::strided(lo, hi, s)
    }

    // -------------------------------------------------- refinement

    /// Refines `(a, b)` under the assumption `a cond b`; `None` when the
    /// condition is unsatisfiable (an infeasible branch direction).
    pub fn refine(cond: stamp_isa::Cond, a: &SInt, b: &SInt) -> Option<(SInt, SInt)> {
        use stamp_isa::Cond;
        match cond {
            Cond::Eq => {
                let m = a.meet(b)?;
                Some((m, m))
            }
            Cond::Ne => {
                if let (Some(x), Some(y)) = (a.is_const(), b.is_const()) {
                    if x == y {
                        return None;
                    }
                }
                let a2 = match b.is_const() {
                    Some(v) => a.remove(v)?,
                    None => *a,
                };
                let b2 = match a.is_const() {
                    Some(v) => b.remove(v)?,
                    None => *b,
                };
                Some((a2, b2))
            }
            Cond::Ltu => {
                if b.hi == 0 {
                    return None;
                }
                let a2 = a.meet(&SInt::range(0, b.hi - 1))?;
                let b2 = b.meet(&SInt::range(a.lo.checked_add(1)?, u32::MAX))?;
                Some((a2, b2))
            }
            Cond::Geu => {
                let a2 = a.meet(&SInt::range(b.lo, u32::MAX))?;
                let b2 = b.meet(&SInt::range(0, a.hi))?;
                Some((a2, b2))
            }
            Cond::Lt | Cond::Ge => {
                let (ab, bb) = match (a.biased(), b.biased()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Some((*a, *b)), // straddling: no refinement
                };
                let sub = if cond == Cond::Lt { Cond::Ltu } else { Cond::Geu };
                let (ra, rb) = SInt::refine(sub, &ab, &bb)?;
                Some((ra.unbiased(), rb.unbiased()))
            }
        }
    }
}

/// Smallest all-ones value covering `v` (e.g. `0b1010 → 0b1111`).
fn ones_cover(v: u32) -> u32 {
    if v == 0 {
        0
    } else {
        u32::MAX >> v.leading_zeros()
    }
}

/// Solves `x ≡ r1 (mod s1) ∧ x ≡ r2 (mod s2)` via the Chinese remainder
/// theorem. Returns the canonical residue and the combined modulus
/// `lcm(s1, s2)` when the system is solvable and the modulus fits in u32.
fn crt_residue(r1: u32, s1: u32, r2: u32, s2: u32) -> Option<(u32, u32)> {
    if s1 == 0 || s2 == 0 {
        return None;
    }
    let (g, p, _q) = ext_gcd(s1 as i128, s2 as i128); // s1·p + s2·q = g
    let diff = r2 as i128 - r1 as i128;
    if diff % g != 0 {
        return None;
    }
    let lcm = (s1 as i128 / g) * s2 as i128;
    if lcm > u32::MAX as i128 {
        return None;
    }
    let m = s2 as i128 / g;
    let t = ((diff / g) % m * (p % m)) % m;
    let x = r1 as i128 + s1 as i128 * t;
    let x = ((x % lcm) + lcm) % lcm;
    Some((x as u32, lcm as u32))
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

impl fmt::Debug for SInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(c) = self.is_const() {
            if c > 0xffff {
                write!(f, "{c:#x}")
            } else {
                write!(f, "{c}")
            }
        } else if self.is_top() {
            f.write_str("⊤")
        } else if self.stride <= 1 {
            write!(f, "[{:#x}, {:#x}]", self.lo, self.hi)
        } else {
            write!(f, "[{:#x}, {:#x}]/{}", self.lo, self.hi, self.stride)
        }
    }
}

impl stamp_codec::Codec for DomainKind {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(match self {
            DomainKind::Const => 0,
            DomainKind::Interval => 1,
            DomainKind::Strided => 2,
        });
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<DomainKind, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(DomainKind::Const),
            1 => Ok(DomainKind::Interval),
            2 => Ok(DomainKind::Strided),
            _ => Err(stamp_codec::CodecError::Invalid("domain kind")),
        }
    }
}

impl stamp_codec::Codec for SInt {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.lo);
        e.u32(self.hi);
        e.u32(self.stride);
    }
    // Checks the type invariants explicitly so corrupt bytes yield a
    // decode error rather than a panicking constructor call.
    fn dec(d: &mut stamp_codec::Dec) -> Result<SInt, stamp_codec::CodecError> {
        let (lo, hi, stride) = (d.u32()?, d.u32()?, d.u32()?);
        let ok =
            lo <= hi && ((stride == 0) == (lo == hi)) && (stride == 0 || (hi - lo) % stride == 0);
        if ok {
            Ok(SInt { lo, hi, stride })
        } else {
            Err(stamp_codec::CodecError::Invalid("strided interval"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::Cond;

    #[test]
    fn construction_normalizes() {
        let v = SInt::strided(0, 10, 4);
        assert_eq!(v.hi(), 8); // aligned down
        assert_eq!(v.count(), 3);
        let c = SInt::strided(5, 5, 4);
        assert_eq!(c.stride(), 0);
        assert_eq!(c.is_const(), Some(5));
    }

    #[test]
    fn join_keeps_congruence() {
        let a = SInt::cst(0x100);
        let b = SInt::cst(0x108);
        let j = a.join(&b);
        assert_eq!(j.stride(), 8);
        assert!(j.contains(0x100) && j.contains(0x108) && !j.contains(0x104));
        let k = j.join(&SInt::cst(0x104));
        assert_eq!(k.stride(), 4);
    }

    #[test]
    fn meet_detects_empty_and_congruence() {
        let a = SInt::range(0, 10);
        let b = SInt::range(20, 30);
        assert_eq!(a.meet(&b), None);
        // Congruence-incompatible.
        let a = SInt::strided(0, 40, 4);
        let b = SInt::strided(2, 42, 4);
        assert_eq!(a.meet(&b), None);
        // Compatible with CRT: x ≡ 0 mod 4 and x ≡ 0 mod 6 → mod 12.
        let a = SInt::strided(0, 48, 4);
        let b = SInt::strided(0, 48, 6);
        let m = a.meet(&b).unwrap();
        assert_eq!(m.stride(), 12);
        assert_eq!(m.lo(), 0);
        assert_eq!(m.hi(), 48);
    }

    #[test]
    fn meet_keeps_stride_against_plain_range() {
        let idx = SInt::strided(0x1000, 0x1100, 16);
        let m = idx.meet(&SInt::range(0, 0x10f0)).unwrap();
        assert_eq!(m.stride(), 16);
        assert_eq!(m.hi(), 0x10f0);
    }

    #[test]
    fn add_sub_wrap_exact_or_top() {
        // Uniform wrap: exact result shifted by 2³².
        let a = SInt::range(0xffff_fff0, 0xffff_ffff);
        assert_eq!(a.add(&SInt::cst(0x20)), SInt::range(0x10, 0x1f));
        let b = SInt::range(0, 4);
        assert_eq!(b.sub(&SInt::cst(8)), SInt::range(0xffff_fff8, 0xffff_fffc));
        // Down-counting on an interval stays exact (the addi -1 shape).
        assert_eq!(SInt::range(2, 9).add(&SInt::cst(u32::MAX)), SInt::range(1, 8));
        // Straddling wrap: ⊤.
        assert!(a.add(&SInt::range(0, 0x20)).is_top());
        assert!(SInt::range(0, 4).sub(&SInt::range(0, 8)).is_top());
        assert_eq!(SInt::cst(8).add_i32(-3), SInt::cst(5));
        assert_eq!(SInt::cst(8).add_i32(3), SInt::cst(11));
    }

    #[test]
    fn mul_scales_stride() {
        let i = SInt::range(0, 9);
        let scaled = i.mul(&SInt::cst(4));
        assert_eq!(scaled, SInt::strided(0, 36, 4));
    }

    #[test]
    fn and_bounds_by_mask() {
        let x = SInt::top();
        let masked = x.and(&SInt::cst(0xff));
        assert_eq!(masked, SInt::range(0, 0xff));
        assert_eq!(SInt::cst(0b1100).and(&SInt::cst(0b1010)), SInt::cst(0b1000));
    }

    #[test]
    fn shifts() {
        assert_eq!(SInt::range(0, 9).sll(&SInt::cst(2)), SInt::strided(0, 36, 4));
        assert_eq!(SInt::strided(0, 64, 8).srl(&SInt::cst(2)), SInt::strided(0, 16, 2));
        assert_eq!(SInt::cst(0x8000_0000).sra(&SInt::cst(31)), SInt::cst(u32::MAX));
        assert!(SInt::range(1, 2).sll(&SInt::range(0, 1)).is_top());
    }

    #[test]
    fn comparisons_decided() {
        assert_eq!(SInt::range(0, 3).sltu(&SInt::range(5, 9)), SInt::cst(1));
        assert_eq!(SInt::range(5, 9).sltu(&SInt::range(0, 3)), SInt::cst(0));
        assert_eq!(SInt::range(0, 9).sltu(&SInt::range(5, 9)), SInt::range(0, 1));
        // Signed: -1 < 0.
        assert_eq!(SInt::cst(u32::MAX).slt(&SInt::cst(0)), SInt::cst(1));
    }

    #[test]
    fn div_rem_positive_cases() {
        assert_eq!(SInt::range(0, 100).div(&SInt::cst(10)), SInt::range(0, 10));
        assert_eq!(SInt::range(0, 100).rem(&SInt::cst(8)), SInt::range(0, 7));
        assert_eq!(SInt::range(0, 5).rem(&SInt::cst(8)), SInt::range(0, 5));
        assert!(SInt::top().div(&SInt::top()).is_top());
    }

    #[test]
    fn refine_unsigned_less() {
        let i = SInt::range(0, 100);
        let n = SInt::cst(10);
        let (ri, _) = SInt::refine(Cond::Ltu, &i, &n).unwrap();
        assert_eq!(ri, SInt::range(0, 9));
        // Infeasible: nothing is < 0.
        assert!(SInt::refine(Cond::Ltu, &i, &SInt::cst(0)).is_none());
    }

    #[test]
    fn refine_signed_less() {
        // x ∈ [-5, -1]: all-negative ranges are signed-contiguous.
        let x = SInt::range(-5i32 as u32, -1i32 as u32);
        let (rx, _) = SInt::refine(Cond::Lt, &x, &SInt::cst(0)).unwrap();
        assert_eq!(rx.signed_range().unwrap(), (-5, -1));
        // x ≥ 0 is infeasible for an all-negative range.
        assert!(SInt::refine(Cond::Ge, &x, &SInt::cst(0)).is_none());
        // Refinement narrows: x < -2 → [-5, -3].
        let (rx, _) = SInt::refine(Cond::Lt, &x, &SInt::cst(-2i32 as u32)).unwrap();
        assert_eq!(rx.signed_range().unwrap(), (-5, -3));
    }

    #[test]
    fn refine_eq_ne() {
        let a = SInt::range(0, 10);
        let (ra, rb) = SInt::refine(Cond::Eq, &a, &SInt::cst(7)).unwrap();
        assert_eq!(ra, SInt::cst(7));
        assert_eq!(rb, SInt::cst(7));
        assert!(SInt::refine(Cond::Eq, &SInt::cst(1), &SInt::cst(2)).is_none());
        let (ra, _) = SInt::refine(Cond::Ne, &SInt::range(0, 4), &SInt::cst(4)).unwrap();
        assert_eq!(ra, SInt::range(0, 3));
        assert!(SInt::refine(Cond::Ne, &SInt::cst(3), &SInt::cst(3)).is_none());
    }

    #[test]
    fn widen_uses_thresholds() {
        let thresholds = [0u32, 16, 100, 1000];
        let a = SInt::cst(0);
        let b = SInt::range(0, 2);
        let w = a.widen(&b, &thresholds);
        assert_eq!(w.hi(), 16); // jumped to the threshold, not MAX
        assert!(b.subset_of(&w));
        let w2 = w.widen(&SInt::range(0, 120), &thresholds);
        assert_eq!(w2.hi(), 1000);
        let w3 = w2.widen(&SInt::range(0, 5000), &thresholds);
        assert_eq!(w3.hi(), u32::MAX);
    }

    #[test]
    fn widen_preserves_stride() {
        let thresholds = [0u32, 0x1000_0400];
        let a = SInt::strided(0x1000_0000, 0x1000_0010, 4);
        let b = SInt::strided(0x1000_0000, 0x1000_0020, 4);
        let w = a.widen(&b, &thresholds);
        assert_eq!(w.stride(), 4);
        assert!(b.subset_of(&w));
        assert!(w.hi() <= 0x1000_0400);
    }

    #[test]
    fn align4_is_sound() {
        let v = SInt::range(0x101, 0x10a);
        let a = v.align4();
        for x in v.iter() {
            assert!(a.contains(x & !3), "{:x} missing", x & !3);
        }
        assert_eq!(a.stride(), 4);
    }

    #[test]
    fn subset_of_checks_congruence() {
        let fine = SInt::strided(0, 16, 4);
        let coarse = SInt::strided(0, 16, 2);
        assert!(fine.subset_of(&coarse));
        assert!(!coarse.subset_of(&fine));
        assert!(SInt::cst(8).subset_of(&fine));
        assert!(!SInt::cst(6).subset_of(&fine));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SInt::cst(5).to_string(), "5");
        assert_eq!(SInt::top().to_string(), "⊤");
        assert_eq!(SInt::strided(0, 8, 4).to_string(), "[0x0, 0x8]/4");
    }
}
