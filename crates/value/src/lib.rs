//! # stamp-value — value analysis by abstract interpretation
//!
//! The paper's central auxiliary analysis: it "tries to determine the
//! values stored in the processor's memory for every program point",
//! producing
//!
//! * **value ranges for registers** ([`SInt`] — strided intervals, which
//!   subsume constant propagation and plain interval analysis, the domain
//!   hierarchy of §1),
//! * **address ranges for instructions accessing memory** (input to the
//!   data-cache analysis),
//! * **loop-bound inputs** (register states at loop entries, consumed by
//!   `stamp-loopbound`),
//! * **infeasible paths**: "certain conditions always evaluate to true or
//!   always evaluate to false; as a consequence, certain paths controlled
//!   by such conditions are never executed" — discovered here via branch
//!   refinement and exported as edge facts to the path analysis,
//! * **resolved indirect jumps**: loads from jump tables in ROM are
//!   folded, closing the CFG-reconstruction ↔ value-analysis loop.
//!
//! The analysis runs on the context-expanded supergraph (`stamp-ai`), so
//! every result is per *(instruction, context)*.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_cfg::CfgBuilder;
//! use stamp_ai::{Icfg, VivuConfig};
//! use stamp_hw::HwConfig;
//! use stamp_value::{ValueAnalysis, ValueOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(".text\nmain: li r1, 7\nadd r2, r1, r1\nhalt\n")?;
//! let cfg = CfgBuilder::new(&p).build()?;
//! let icfg = Icfg::build(&cfg, &VivuConfig::default())?;
//! let va = ValueAnalysis::run(&p, &HwConfig::default(), &cfg, &icfg, &ValueOptions::default());
//! let exit = icfg.exits()[0];
//! let state = va.exit_state(exit).unwrap();
//! assert_eq!(state.reg(stamp_isa::Reg::new(2)).is_const(), Some(14));
//! # Ok(())
//! # }
//! ```

mod amem;
mod analysis;
mod interval;
mod state;
mod transfer;

pub use amem::AMem;
pub use analysis::PrecisionSummary;
pub use analysis::{AccessInfo, BranchOutcome, FrozenValueAnalysis, ValueAnalysis, ValueOptions};
pub use interval::{DomainKind, SInt};
pub use state::AState;
pub use transfer::{effective_cond, register_delta, CondRhs, EffCond, ValueTransfer};
