//! The value-analysis driver: fixpoint + result collection.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

use stamp_ai::{solve, CtxId, Fixpoint, IEdgeId, Icfg, NodeId};
use stamp_cfg::Cfg;
use stamp_hw::HwConfig;
use stamp_isa::{Flow, Insn, MemWidth, Program, Reg};

use crate::interval::{DomainKind, SInt};
use crate::state::AState;
use crate::transfer::ValueTransfer;

/// Options for [`ValueAnalysis::run`].
#[derive(Clone, Debug)]
pub struct ValueOptions {
    /// Which member of the value-domain hierarchy to use (E7 ablation).
    pub domain: DomainKind,
    /// Number of joins at a widening point before widening kicks in.
    pub widen_delay: u32,
    /// Address sets with at most this many members count as "determined"
    /// in the precision statistics (paper: "only a few indirect accesses
    /// cannot be determined exactly"). Indirect-jump target enumeration
    /// uses a separate fixed limit of 64.
    pub small_set: u64,
}

impl Default for ValueOptions {
    fn default() -> ValueOptions {
        ValueOptions { domain: DomainKind::Strided, widen_delay: 2, small_set: 4096 }
    }
}

/// The address information of one memory-accessing instruction in one
/// context.
#[derive(Clone, Debug)]
pub struct AccessInfo {
    /// The abstract address set.
    pub addrs: SInt,
    /// Access width.
    pub width: MemWidth,
    /// `true` for loads.
    pub is_load: bool,
}

/// Outcome of a conditional branch in one context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchOutcome {
    /// The condition always holds — the fall-through edge is dead.
    AlwaysTaken,
    /// The condition never holds — the taken edge is dead.
    NeverTaken,
    /// Both directions are possible.
    Unknown,
}

/// Results of the value analysis over the supergraph.
///
/// See the crate documentation for the role each field plays in the
/// downstream analyses.
pub struct ValueAnalysis {
    fixpoint: Fixpoint<AState>,
    accesses: HashMap<(u32, CtxId), AccessInfo>,
    branches: HashMap<(u32, CtxId), BranchOutcome>,
    indirect_targets: BTreeMap<u32, BTreeSet<u32>>,
    unresolved: Vec<(u32, CtxId)>,
    options: ValueOptions,
    /// Solver node evaluations (scaling experiment).
    pub evaluations: u64,
}

/// Precision statistics for experiment E3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrecisionSummary {
    /// Accesses with a single possible address.
    pub exact: usize,
    /// Accesses with a small bounded address set.
    pub bounded: usize,
    /// Accesses with large or unknown address sets.
    pub unknown: usize,
}

impl PrecisionSummary {
    /// Total number of classified accesses.
    pub fn total(&self) -> usize {
        self.exact + self.bounded + self.unknown
    }
}

impl ValueAnalysis {
    /// Runs the value analysis.
    pub fn run(
        program: &Program,
        hw: &HwConfig,
        cfg: &Cfg,
        icfg: &Icfg,
        options: &ValueOptions,
    ) -> ValueAnalysis {
        let thresholds = Rc::new(collect_thresholds(program, hw));
        let mut transfer =
            ValueTransfer::new(program, hw, cfg, options.domain, Rc::clone(&thresholds));
        let fixpoint = solve(icfg, &mut transfer, options.widen_delay);

        // Post-pass: replay each node to collect per-instruction facts.
        let mut accesses = HashMap::new();
        let mut branches = HashMap::new();
        let mut indirect_targets: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut unresolved = Vec::new();
        let (text_lo, text_hi) = program.text_range();

        for node in icfg.nodes() {
            let Some(input) = fixpoint.input(node.id) else { continue };
            let block = cfg.block(node.block);
            let mut s = input.clone();
            for &(addr, insn) in &block.insns {
                match insn {
                    Insn::Load { width, base, offset, .. } => {
                        let addrs = s.reg(base).add_i32(offset);
                        accesses
                            .insert((addr, node.ctx), AccessInfo { addrs, width, is_load: true });
                    }
                    Insn::Store { width, base, offset, .. } => {
                        let addrs = s.reg(base).add_i32(offset);
                        accesses
                            .insert((addr, node.ctx), AccessInfo { addrs, width, is_load: false });
                    }
                    Insn::Branch { cond, rs1, rs2, .. } => {
                        let (a, b) = (s.reg(rs1), s.reg(rs2));
                        let taken_possible = SInt::refine(cond, &a, &b).is_some();
                        let fall_possible = SInt::refine(cond.negate(), &a, &b).is_some();
                        let outcome = match (taken_possible, fall_possible) {
                            (true, false) => BranchOutcome::AlwaysTaken,
                            (false, true) => BranchOutcome::NeverTaken,
                            _ => BranchOutcome::Unknown,
                        };
                        branches.insert((addr, node.ctx), outcome);
                    }
                    Insn::Jalr { .. }
                        if matches!(insn.flow(addr), Flow::IndirectJump | Flow::IndirectCall) =>
                    {
                        let transfer_ref = ValueTransfer::new(
                            program,
                            hw,
                            cfg,
                            options.domain,
                            Rc::clone(&thresholds),
                        );
                        let targets =
                            transfer_ref.jalr_targets(&s, &insn).expect("jalr has targets");
                        let in_text = targets.lo() >= text_lo && targets.hi() < text_hi;
                        if in_text && targets.count() <= 64 {
                            indirect_targets.entry(addr).or_default().extend(targets.iter());
                        } else {
                            unresolved.push((addr, node.ctx));
                        }
                    }
                    _ => {}
                }
                let transfer_ref =
                    ValueTransfer::new(program, hw, cfg, options.domain, Rc::clone(&thresholds));
                transfer_ref.step(&mut s, addr, &insn);
            }
        }

        let evaluations = fixpoint.evaluations;
        ValueAnalysis {
            fixpoint,
            accesses,
            branches,
            indirect_targets,
            unresolved,
            options: options.clone(),
            evaluations,
        }
    }

    /// The abstract state at a node's entry (per block × context).
    pub fn entry_state(&self, node: NodeId) -> Option<&AState> {
        self.fixpoint.input(node)
    }

    /// The abstract state after a node.
    pub fn exit_state(&self, node: NodeId) -> Option<&AState> {
        self.fixpoint.output(node)
    }

    /// Supergraph edges the analysis proved infeasible ("certain paths
    /// … are never executed").
    pub fn infeasible_edges(&self) -> &[IEdgeId] {
        &self.fixpoint.infeasible_edges
    }

    /// Per-(instruction, context) memory-access address sets.
    pub fn accesses(&self) -> &HashMap<(u32, CtxId), AccessInfo> {
        &self.accesses
    }

    /// The address set of the access at `addr` in context `ctx`.
    pub fn access(&self, addr: u32, ctx: CtxId) -> Option<&AccessInfo> {
        self.accesses.get(&(addr, ctx))
    }

    /// Per-(branch, context) condition outcomes.
    pub fn branches(&self) -> &HashMap<(u32, CtxId), BranchOutcome> {
        &self.branches
    }

    /// Resolved targets of indirect jumps/calls, for feeding back into
    /// [`stamp_cfg::CfgBuilder::indirect_targets`].
    pub fn indirect_targets(&self) -> &BTreeMap<u32, BTreeSet<u32>> {
        &self.indirect_targets
    }

    /// Indirect jumps whose target sets could not be bounded; these
    /// require annotations, as in aiT.
    pub fn unresolved_indirects(&self) -> &[(u32, CtxId)] {
        &self.unresolved
    }

    /// Classification of all data accesses by address precision (E3).
    pub fn precision_summary(&self) -> PrecisionSummary {
        let mut s = PrecisionSummary::default();
        for info in self.accesses.values() {
            if info.addrs.is_const().is_some() {
                s.exact += 1;
            } else if info.addrs.count() <= self.options.small_set {
                s.bounded += 1;
            } else {
                s.unknown += 1;
            }
        }
        s
    }

    /// Count of branch instances decided to be constant (E4).
    pub fn constant_branches(&self) -> usize {
        self.branches.values().filter(|o| !matches!(o, BranchOutcome::Unknown)).count()
    }

    /// Deep-freezes the analysis into a `Send + Sync` artifact that can
    /// be shared across threads (the kernel's `Rc`-based copy-on-write
    /// state is thread-local by design; see [`FrozenValueAnalysis`]).
    ///
    /// Structural sharing survives the round trip: word maps shared
    /// between abstract states (the common case after copy-on-write)
    /// are stored once, keyed by `Rc` identity, and re-shared on thaw.
    pub fn freeze(&self) -> FrozenValueAnalysis {
        let mut word_maps: Vec<BTreeMap<u32, SInt>> = Vec::new();
        let mut by_ptr: HashMap<*const BTreeMap<u32, SInt>, usize> = HashMap::new();
        let mut freeze_state = |s: &AState| -> FrozenState {
            let rc = s.mem.words_rc();
            let idx = *by_ptr.entry(Rc::as_ptr(rc)).or_insert_with(|| {
                word_maps.push((**rc).clone());
                word_maps.len() - 1
            });
            FrozenState { regs: *s.regs(), words: idx }
        };
        let (ins, outs) = self.fixpoint.states();
        let frozen_ins: Vec<Option<FrozenState>> =
            ins.iter().map(|s| s.as_ref().map(&mut freeze_state)).collect();
        let frozen_outs: Vec<Option<FrozenState>> =
            outs.iter().map(|s| s.as_ref().map(&mut freeze_state)).collect();
        let ladder = ins.iter().chain(outs).flatten().next().map(|s| s.thresholds_rc());
        // Every state descends from the single entry state, so they all
        // share one ladder; freezing stores it once. Make the invariant
        // loud if a future change ever breaks it — a silently wrong
        // ladder after thaw would diverge widening across jobs.
        debug_assert!(
            ins.iter()
                .chain(outs)
                .flatten()
                .all(|s| { Rc::ptr_eq(s.thresholds_rc(), ladder.expect("some state exists")) }),
            "freeze assumes one shared threshold ladder per analysis"
        );
        let thresholds = ladder.map(|t| (**t).clone()).unwrap_or_default();

        let mut accesses: Vec<((u32, CtxId), AccessInfo)> =
            self.accesses.iter().map(|(k, v)| (*k, v.clone())).collect();
        accesses.sort_by_key(|(k, _)| *k);
        let mut branches: Vec<((u32, CtxId), BranchOutcome)> =
            self.branches.iter().map(|(k, v)| (*k, *v)).collect();
        branches.sort_by_key(|(k, _)| *k);

        FrozenValueAnalysis {
            thresholds,
            word_maps,
            ins: frozen_ins,
            outs: frozen_outs,
            infeasible_edges: self.fixpoint.infeasible_edges.clone(),
            accesses,
            branches,
            indirect_targets: self.indirect_targets.clone(),
            unresolved: self.unresolved.clone(),
            options: self.options.clone(),
            evaluations: self.evaluations,
        }
    }
}

/// An abstract register file plus an index into the frozen word-map
/// pool — one abstract state with its sharing made explicit.
#[derive(Clone, Debug)]
struct FrozenState {
    regs: [SInt; Reg::COUNT],
    words: usize,
}

/// A deep-frozen [`ValueAnalysis`]: plain owned data, no `Rc`, hence
/// `Send + Sync` — the form in which value-analysis results live in a
/// cross-job artifact store. [`FrozenValueAnalysis::thaw`] reconstructs
/// a job-local `ValueAnalysis` with fresh `Rc`s, restoring the original
/// structural sharing, and is exact: every downstream phase observes
/// the same states, accesses, branches and statistics as on the
/// original.
#[derive(Clone, Debug)]
pub struct FrozenValueAnalysis {
    thresholds: Vec<u32>,
    /// Unique word maps, deduplicated by `Rc` identity at freeze time.
    word_maps: Vec<BTreeMap<u32, SInt>>,
    ins: Vec<Option<FrozenState>>,
    outs: Vec<Option<FrozenState>>,
    infeasible_edges: Vec<IEdgeId>,
    accesses: Vec<((u32, CtxId), AccessInfo)>,
    branches: Vec<((u32, CtxId), BranchOutcome)>,
    indirect_targets: BTreeMap<u32, BTreeSet<u32>>,
    unresolved: Vec<(u32, CtxId)>,
    options: ValueOptions,
    evaluations: u64,
}

impl FrozenValueAnalysis {
    /// Reconstructs a job-local [`ValueAnalysis`] (see the type docs).
    pub fn thaw(&self) -> ValueAnalysis {
        let thresholds = Rc::new(self.thresholds.clone());
        let word_rcs: Vec<Rc<BTreeMap<u32, SInt>>> =
            self.word_maps.iter().map(|m| Rc::new(m.clone())).collect();
        let thaw_state = |f: &FrozenState| -> AState {
            AState::from_parts(
                f.regs,
                crate::amem::AMem::from_words(Rc::clone(&word_rcs[f.words])),
                Rc::clone(&thresholds),
            )
        };
        let ins: Vec<Option<AState>> =
            self.ins.iter().map(|s| s.as_ref().map(thaw_state)).collect();
        let outs: Vec<Option<AState>> =
            self.outs.iter().map(|s| s.as_ref().map(thaw_state)).collect();
        ValueAnalysis {
            fixpoint: Fixpoint::from_parts(
                ins,
                outs,
                self.infeasible_edges.clone(),
                self.evaluations,
            ),
            accesses: self.accesses.iter().cloned().collect(),
            branches: self.branches.iter().copied().collect(),
            indirect_targets: self.indirect_targets.clone(),
            unresolved: self.unresolved.clone(),
            options: self.options.clone(),
            evaluations: self.evaluations,
        }
    }
}

impl stamp_codec::Codec for ValueOptions {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.domain.enc(e);
        e.u32(self.widen_delay);
        e.u64(self.small_set);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<ValueOptions, stamp_codec::CodecError> {
        Ok(ValueOptions { domain: DomainKind::dec(d)?, widen_delay: d.u32()?, small_set: d.u64()? })
    }
}

impl stamp_codec::Codec for AccessInfo {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.addrs.enc(e);
        self.width.enc(e);
        self.is_load.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<AccessInfo, stamp_codec::CodecError> {
        Ok(AccessInfo {
            addrs: SInt::dec(d)?,
            width: stamp_codec::Codec::dec(d)?,
            is_load: bool::dec(d)?,
        })
    }
}

impl stamp_codec::Codec for BranchOutcome {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(match self {
            BranchOutcome::AlwaysTaken => 0,
            BranchOutcome::NeverTaken => 1,
            BranchOutcome::Unknown => 2,
        });
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<BranchOutcome, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(BranchOutcome::AlwaysTaken),
            1 => Ok(BranchOutcome::NeverTaken),
            2 => Ok(BranchOutcome::Unknown),
            _ => Err(stamp_codec::CodecError::Invalid("branch outcome")),
        }
    }
}

impl stamp_codec::Codec for FrozenState {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        for r in &self.regs {
            r.enc(e);
        }
        self.words.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<FrozenState, stamp_codec::CodecError> {
        let mut regs = [SInt::top(); Reg::COUNT];
        for r in regs.iter_mut() {
            *r = SInt::dec(d)?;
        }
        Ok(FrozenState { regs, words: usize::dec(d)? })
    }
}

impl stamp_codec::Codec for FrozenValueAnalysis {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.thresholds.enc(e);
        self.word_maps.enc(e);
        self.ins.enc(e);
        self.outs.enc(e);
        self.infeasible_edges.enc(e);
        self.accesses.enc(e);
        self.branches.enc(e);
        self.indirect_targets.enc(e);
        self.unresolved.enc(e);
        self.options.enc(e);
        e.u64(self.evaluations);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<FrozenValueAnalysis, stamp_codec::CodecError> {
        let f = FrozenValueAnalysis {
            thresholds: Vec::dec(d)?,
            word_maps: Vec::dec(d)?,
            ins: Vec::dec(d)?,
            outs: Vec::dec(d)?,
            infeasible_edges: Vec::dec(d)?,
            accesses: Vec::dec(d)?,
            branches: Vec::dec(d)?,
            indirect_targets: BTreeMap::dec(d)?,
            unresolved: Vec::dec(d)?,
            options: ValueOptions::dec(d)?,
            evaluations: d.u64()?,
        };
        // Word-map indices must stay inside the deduplicated pool, or
        // `thaw` would panic on a corrupt artifact.
        for s in f.ins.iter().chain(&f.outs).flatten() {
            if s.words >= f.word_maps.len() {
                return Err(stamp_codec::CodecError::Invalid("word-map index"));
            }
        }
        Ok(f)
    }
}

/// Builds the widening-threshold ladder: immediates appearing in the
/// program (and their neighbours), section boundaries, and the stack top.
/// Widened intervals jump onto this ladder instead of straight to ±∞,
/// which keeps loop-counter and address ranges useful.
fn collect_thresholds(program: &Program, hw: &HwConfig) -> Vec<u32> {
    let mut t: BTreeSet<u32> = BTreeSet::new();
    t.insert(0);
    for (_, insn) in program.insns() {
        match insn {
            Insn::AluImm { imm, .. } => {
                let v = imm as u32;
                t.insert(v);
                t.insert(v.wrapping_add(1));
                t.insert(v.wrapping_sub(1));
            }
            Insn::Lui { imm, .. } => {
                t.insert((imm as u32) << 16);
            }
            _ => {}
        }
    }
    for s in &program.sections {
        t.insert(s.base);
        t.insert(s.end());
    }
    t.insert(hw.mem.stack_top());
    t.insert(hw.mem.ram_base);
    t.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cfg::CfgBuilder;
    use stamp_isa::asm::assemble;
    use stamp_isa::Reg;

    fn analyze(src: &str) -> (Program, Cfg, Icfg, ValueAnalysis) {
        let p = assemble(src).expect("assembles");
        let hw = HwConfig::default();
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        (p, cfg, icfg, va)
    }

    #[test]
    fn constants_propagate_through_calls() {
        let src = "\
            .text
            main: li r1, 5
                  call double
                  halt
            double: add r2, r1, r1
                  ret
        ";
        let (_p, _cfg, icfg, va) = analyze(src);
        let exit = icfg.exits()[0];
        let s = va.entry_state(exit).unwrap();
        assert_eq!(s.reg(Reg::new(2)).is_const(), Some(10));
    }

    #[test]
    fn loop_counter_bounded_by_refinement() {
        let src = "\
            .text
            main: li r1, 0
            loop: addi r1, r1, 1
                  blt r1, r2, cont      ; r2 unknown — but exit refines
            cont: bne r1, r3, next
            next: slti r4, r1, 100
                  blt r1, r4, loop
                  halt
        ";
        // Mostly a smoke test: analysis terminates with tops involved.
        let (_p, _cfg, icfg, va) = analyze(src);
        assert!(va.entry_state(icfg.exits()[0]).is_some());
    }

    #[test]
    fn counted_loop_exit_value_is_exact() {
        let src = "\
            .text
            main: li r1, 10
            loop: addi r1, r1, -1
                  bnez r1, loop
                  halt
        ";
        let (_p, _cfg, icfg, va) = analyze(src);
        let exit = icfg.exits()[0];
        let s = va.entry_state(exit).unwrap();
        // After the loop, refinement of `bnez` pins r1 to 0.
        assert_eq!(s.reg(Reg::new(1)).is_const(), Some(0));
    }

    #[test]
    fn dead_branch_detected() {
        // r1 = 3 always, so `beq r1, r0, dead` never fires.
        let src = "\
            .text
            main: li r1, 3
                  beq r1, r0, dead
                  halt
            dead: mul r9, r9, r9
                  halt
        ";
        let (_p, _cfg, icfg, va) = analyze(src);
        assert_eq!(va.constant_branches(), 1);
        assert!(!va.infeasible_edges().is_empty());
        // The dead block is unreachable in the fixpoint.
        let dead_nodes: Vec<_> =
            icfg.nodes().iter().filter(|n| va.entry_state(n.id).is_none()).collect();
        assert!(!dead_nodes.is_empty());
    }

    #[test]
    fn array_walk_has_strided_addresses() {
        let src = "\
            .text
            main: li r1, 0            ; i = 0
                  la r2, arr
            loop: slli r3, r1, 2
                  add r3, r2, r3
                  lw r4, 0(r3)        ; arr[i]
                  addi r1, r1, 1
                  slti r5, r1, 10
                  bnez r5, loop
                  halt
            .data
            arr:  .space 40
        ";
        let (p, _cfg, _icfg, va) = analyze(src);
        let arr = p.symbols.addr_of("arr").unwrap();
        // Find the load's access info in some context.
        let loads: Vec<&AccessInfo> = va.accesses().values().filter(|a| a.is_load).collect();
        assert!(!loads.is_empty());
        for info in loads {
            assert!(info.addrs.lo() >= arr, "{} under arr", info.addrs);
            assert!(
                info.addrs.hi() <= arr + 36,
                "addr {} beyond arr[9] ({:#x})",
                info.addrs,
                arr + 36
            );
            if info.addrs.is_const().is_none() {
                assert_eq!(info.addrs.stride(), 4, "stride retained: {}", info.addrs);
            }
        }
    }

    #[test]
    fn jump_table_resolved_from_rom() {
        let src = "\
            .text
            main: li r1, 1            ; selector ∈ {0,1,2} after masking
                  andi r1, r1, 3
                  slti r2, r1, 3
                  bnez r2, ok
                  halt
            ok:   slli r2, r1, 2
                  la r3, table
                  add r3, r3, r2
                  lw r4, 0(r3)
                  jalr r0, r4, 0
            c0:   halt
            c1:   halt
            c2:   halt
            .rodata
            table: .word c0, c1, c2
        ";
        let (p, _cfg, _icfg, va) = analyze(src);
        // The jalr targets should be resolved (li makes it exactly c1,
        // but even the masked range folds through the ROM table).
        assert!(!va.indirect_targets().is_empty());
        let targets: Vec<u32> =
            va.indirect_targets().values().next().unwrap().iter().copied().collect();
        let c1 = p.symbols.addr_of("c1").unwrap();
        assert!(targets.contains(&c1));
    }

    #[test]
    fn frozen_value_analysis_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenValueAnalysis>();
    }

    #[test]
    fn freeze_thaw_round_trips_exactly() {
        // A program exercising every frozen field: memory knowledge
        // (store + load), a decidable branch, strided accesses, and a
        // resolvable jump table.
        let src = "\
            .text
            main: la r1, v
                  li r2, 7
                  sw r2, 0(r1)
                  lw r3, 0(r1)
                  li r4, 0
            loop: addi r4, r4, 1
                  slti r5, r4, 10
                  bnez r5, loop
                  halt
            .data
            v:    .space 8
        ";
        let (_p, _cfg, icfg, va) = analyze(src);
        let thawed = va.freeze().thaw();

        // The fixpoint: same reachability, registers, and memory words
        // at every node entry and exit.
        for n in icfg.nodes() {
            for (a, b) in [
                (va.entry_state(n.id), thawed.entry_state(n.id)),
                (va.exit_state(n.id), thawed.exit_state(n.id)),
            ] {
                match (a, b) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        for r in 0..Reg::COUNT {
                            let r = Reg::new(r as u8);
                            assert_eq!(a.reg(r), b.reg(r), "reg {r:?} at node {:?}", n.id);
                        }
                        assert_eq!(a.mem, b.mem, "memory at node {:?}", n.id);
                        assert_eq!(a.thresholds(), b.thresholds());
                    }
                    _ => panic!("reachability differs at node {:?}", n.id),
                }
            }
        }

        // Every derived fact and statistic.
        assert_eq!(va.evaluations, thawed.evaluations);
        assert_eq!(va.infeasible_edges(), thawed.infeasible_edges());
        assert_eq!(va.indirect_targets(), thawed.indirect_targets());
        assert_eq!(va.unresolved_indirects(), thawed.unresolved_indirects());
        assert_eq!(va.precision_summary(), thawed.precision_summary());
        assert_eq!(va.constant_branches(), thawed.constant_branches());
        assert_eq!(va.accesses().len(), thawed.accesses().len());
        for (k, info) in va.accesses() {
            let t = thawed.accesses().get(k).expect("access present after thaw");
            assert_eq!(info.addrs, t.addrs);
            assert_eq!(info.width, t.width);
            assert_eq!(info.is_load, t.is_load);
        }
        assert_eq!(va.branches(), thawed.branches());
    }

    #[test]
    fn freeze_preserves_structural_sharing() {
        // States that never touch memory all share one word map: the
        // frozen pool must stay small rather than cloning per state.
        let (_p, _cfg, icfg, va) =
            analyze(".text\nmain: li r1, 3\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n");
        let frozen = va.freeze();
        let states = icfg.nodes().iter().filter(|n| va.entry_state(n.id).is_some()).count();
        assert!(states > 2, "expected several reachable states");
        assert!(
            frozen.word_maps.len() <= 2,
            "untouched memory should freeze into a shared map, got {}",
            frozen.word_maps.len()
        );
    }

    #[test]
    fn frozen_analysis_round_trips_byte_exactly() {
        let src = "\
            .text
            main: la r1, v
                  li r2, 7
                  sw r2, 0(r1)
                  lw r3, 0(r1)
                  li r4, 0
            loop: addi r4, r4, 1
                  slti r5, r4, 10
                  bnez r5, loop
                  halt
            .data
            v:    .space 8
        ";
        let (_p, _cfg, icfg, va) = analyze(src);
        let frozen = va.freeze();
        let bytes = stamp_codec::encode_value(&frozen);
        let back: FrozenValueAnalysis = stamp_codec::decode_value(&bytes).unwrap();
        assert_eq!(stamp_codec::encode_value(&back), bytes);
        // A decoded artifact thaws into the same analysis.
        let thawed = back.thaw();
        assert_eq!(va.evaluations, thawed.evaluations);
        assert_eq!(va.branches(), thawed.branches());
        assert_eq!(va.precision_summary(), thawed.precision_summary());
        for n in icfg.nodes() {
            assert_eq!(va.entry_state(n.id).is_some(), thawed.entry_state(n.id).is_some());
        }
        assert!(
            stamp_codec::decode_value::<FrozenValueAnalysis>(&bytes[..bytes.len() - 1]).is_err()
        );
    }

    #[test]
    fn precision_summary_counts() {
        let src = "\
            .text
            main: la r1, v
                  lw r2, 0(r1)        ; exact
                  lw r3, 0(r2)        ; unknown (r2 is input data)
                  halt
            .data
            v:    .word 0
        ";
        let (_p, _cfg, _icfg, va) = analyze(src);
        let s = va.precision_summary();
        assert_eq!(s.exact, 1);
        assert_eq!(s.unknown, 1);
        assert_eq!(s.total(), 2);
    }
}
