//! The abstract transfer function for EVA32 instructions.

use std::rc::Rc;

use stamp_ai::{IEdge, IEdgeKind, Icfg, NodeId, Transfer};
use stamp_cfg::{Cfg, EdgeKind};
use stamp_hw::HwConfig;
use stamp_isa::{AluOp, Insn, MemWidth, Program, Reg};

use crate::interval::{DomainKind, SInt};
use crate::state::AState;

/// The value-analysis dataflow problem: abstract execution of every
/// instruction plus branch refinement along edges.
pub struct ValueTransfer<'a> {
    program: &'a Program,
    cfg: &'a Cfg,
    stack_top: u32,
    domain: DomainKind,
    thresholds: Rc<Vec<u32>>,
}

impl<'a> ValueTransfer<'a> {
    /// Creates the transfer function.
    pub fn new(
        program: &'a Program,
        hw: &'a HwConfig,
        cfg: &'a Cfg,
        domain: DomainKind,
        thresholds: Rc<Vec<u32>>,
    ) -> ValueTransfer<'a> {
        ValueTransfer { program, cfg, stack_top: hw.mem.stack_top(), domain, thresholds }
    }

    /// Abstract value loaded by an access of `width` from the address set
    /// `addrs`: ROM reads fold to image constants, RAM reads consult the
    /// abstract memory.
    pub fn read_mem(&self, state: &AState, addrs: &SInt, width: MemWidth) -> SInt {
        let one = |a: u32| -> SInt {
            match self.program.rom_value(a, width) {
                Some(v) => SInt::cst(v),
                None => state.mem.read(a, width),
            }
        };
        if let Some(a) = addrs.is_const() {
            return one(a);
        }
        if addrs.count() <= 64 {
            let mut acc: Option<SInt> = None;
            for a in addrs.iter() {
                let v = one(a);
                acc = Some(match acc {
                    None => v,
                    Some(p) => p.join(&v),
                });
                if acc.as_ref().is_some_and(SInt::is_top) {
                    return SInt::top();
                }
            }
            acc.unwrap_or_else(SInt::top)
        } else {
            SInt::top()
        }
    }

    /// Applies the sign/zero extension of a load to the raw abstract value.
    fn extend(raw: SInt, width: MemWidth, signed: bool) -> SInt {
        if width == MemWidth::W || !signed {
            return raw;
        }
        let sign_bit: u32 = match width {
            MemWidth::B => 0x80,
            MemWidth::H => 0x8000,
            MemWidth::W => unreachable!(),
        };
        let ext: u32 = match width {
            MemWidth::B => 0xffff_ff00,
            MemWidth::H => 0xffff_0000,
            MemWidth::W => unreachable!(),
        };
        if raw.hi() < sign_bit {
            raw // all non-negative: extension is the identity
        } else if raw.lo() >= sign_bit && raw.hi() < 2 * sign_bit {
            raw.add(&SInt::cst(ext)) // all negative: shift up en bloc
        } else {
            SInt::top()
        }
    }

    /// Abstractly executes one instruction at `addr` on `state`.
    pub fn step(&self, state: &mut AState, addr: u32, insn: &Insn) {
        match *insn {
            Insn::Alu { op, rd, rs1, rs2 } => {
                let v = self.alu(op, &state.reg(rs1), &state.reg(rs2));
                state.set_reg(rd, self.domain.degrade(v));
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let v = self.alu(op, &state.reg(rs1), &SInt::cst(imm as u32));
                state.set_reg(rd, self.domain.degrade(v));
            }
            Insn::Lui { rd, imm } => state.set_reg(rd, SInt::cst((imm as u32) << 16)),
            Insn::Load { width, signed, rd, base, offset } => {
                let addrs = state.reg(base).add_i32(offset);
                let raw = self.read_mem(state, &addrs, width);
                state.set_reg(rd, self.domain.degrade(Self::extend(raw, width, signed)));
            }
            Insn::Store { width, src, base, offset } => {
                let addrs = state.reg(base).add_i32(offset);
                let v = state.reg(src);
                state.mem.write_range(&addrs, width, &v);
            }
            Insn::Branch { .. } | Insn::Jump { .. } | Insn::Halt => {}
            Insn::Jal { .. } => state.set_reg(Reg::LR, SInt::cst(addr.wrapping_add(4))),
            Insn::Jalr { rd, .. } => state.set_reg(rd, SInt::cst(addr.wrapping_add(4))),
        }
    }

    fn alu(&self, op: AluOp, a: &SInt, b: &SInt) -> SInt {
        if let (Some(x), Some(y)) = (a.is_const(), b.is_const()) {
            return SInt::cst(op.eval(x, y)); // exact, shared with the simulator
        }
        match op {
            AluOp::Add => a.add(b),
            AluOp::Sub => a.sub(b),
            AluOp::And => a.and(b),
            AluOp::Or => a.or(b),
            AluOp::Xor => a.xor(b),
            AluOp::Sll => a.sll(b),
            AluOp::Srl => a.srl(b),
            AluOp::Sra => a.sra(b),
            AluOp::Slt => a.slt(b),
            AluOp::Sltu => a.sltu(b),
            AluOp::Mul => a.mul(b),
            AluOp::Mulh => SInt::top(),
            AluOp::Div => a.div(b),
            AluOp::Rem => a.rem(b),
        }
    }

    /// The address-set of the `jalr` at `addr` under `state`
    /// (word-aligned, as the hardware clears the low bits).
    pub fn jalr_targets(&self, state: &AState, insn: &Insn) -> Option<SInt> {
        match *insn {
            Insn::Jalr { rs1, offset, .. } => Some(state.reg(rs1).add_i32(offset).align4()),
            _ => None,
        }
    }
}

/// Computes a bound on the *difference* `ra − rb` at the end of `block`,
/// given the abstract state at the block's entry — the lightweight
/// relational extension the paper sketches in §1 ("upper and lower
/// bounds for their differences").
///
/// The walk tracks both registers backwards through the block as affine
/// expressions `base-register + constant`; if they resolve to the same
/// base, the difference is exact even when both values are unknown
/// (e.g. `end = start + 64` with `start` an arbitrary input).
///
/// Returns `None` when no relation can be established.
pub fn register_delta(
    block: &stamp_cfg::BasicBlock,
    entry: &AState,
    ra: Reg,
    rb: Reg,
) -> Option<SInt> {
    // Affine view of each register at the current point: an abstract
    // *symbol* plus a constant offset. Symbols 0..16 denote the register
    // values at block entry; every non-affine definition mints a fresh
    // symbol, so two registers derived from the same unknown stay
    // related no matter where in the block that unknown was produced.
    #[derive(Clone, Copy, PartialEq)]
    struct Affine {
        sym: u32,
        offset: i64,
    }
    let mut forms: [Affine; Reg::COUNT] = [Affine { sym: 0, offset: 0 }; Reg::COUNT];
    for r in Reg::all() {
        forms[r.index()] = Affine { sym: r.index() as u32, offset: 0 };
    }
    let mut next_sym = Reg::COUNT as u32;
    // A symbol's concrete value is known only for entry symbols whose
    // register is constant in the entry state.
    let const_of = |forms: &[Affine; Reg::COUNT], r: Reg| -> Option<i64> {
        let f = forms[r.index()];
        if f.sym < Reg::COUNT as u32 {
            let base = entry.reg(Reg::new(f.sym as u8)).is_const()? as i64;
            Some(base + f.offset)
        } else {
            None
        }
    };
    for &(_, insn) in &block.insns {
        let new_form: Option<(Reg, Option<Affine>)> = match insn {
            Insn::AluImm { op: AluOp::Add, rd, rs1, imm } => {
                let f = forms[rs1.index()];
                Some((rd, Some(Affine { sym: f.sym, offset: f.offset + imm as i64 })))
            }
            Insn::Alu { op: AluOp::Add, rd, rs1, rs2 } => {
                // One constant operand keeps the other's symbol.
                if let Some(k) = const_of(&forms, rs2) {
                    let f = forms[rs1.index()];
                    Some((rd, Some(Affine { sym: f.sym, offset: f.offset + k })))
                } else if let Some(k) = const_of(&forms, rs1) {
                    let f = forms[rs2.index()];
                    Some((rd, Some(Affine { sym: f.sym, offset: f.offset + k })))
                } else {
                    insn.def().map(|rd| (rd, None))
                }
            }
            Insn::Alu { op: AluOp::Sub, rd, rs1, rs2 } => {
                if let Some(k) = const_of(&forms, rs2) {
                    let f = forms[rs1.index()];
                    Some((rd, Some(Affine { sym: f.sym, offset: f.offset - k })))
                } else {
                    insn.def().map(|rd| (rd, None))
                }
            }
            _ => insn.def().map(|rd| (rd, None)),
        };
        if let Some((rd, form)) = new_form {
            if !rd.is_zero() {
                forms[rd.index()] = form.unwrap_or_else(|| {
                    next_sym += 1;
                    Affine { sym: next_sym, offset: 0 }
                });
            }
        }
    }
    let fa = forms[ra.index()];
    let fb = forms[rb.index()];
    if fa.sym == fb.sym {
        // Same symbol: the unknown cancels and the difference is an
        // exact (possibly negative, two's-complement) constant.
        return Some(SInt::cst((fa.offset - fb.offset) as u32));
    }
    // Different symbols: fall back to the interval difference when both
    // trace back to entry registers and the result is finite.
    if fa.sym < Reg::COUNT as u32 && fb.sym < Reg::COUNT as u32 {
        let va = entry.reg(Reg::new(fa.sym as u8)).add_i32(i32::try_from(fa.offset).ok()?);
        let vb = entry.reg(Reg::new(fb.sym as u8)).add_i32(i32::try_from(fb.offset).ok()?);
        let d = va.sub(&vb);
        return (!d.is_top()).then_some(d);
    }
    None
}

/// The right-hand operand of an effective branch condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondRhs {
    /// A register operand.
    Reg(Reg),
    /// A constant (from a compare-immediate).
    Imm(u32),
}

/// The comparison a block's terminating branch *effectively* performs in
/// its taken direction, seeing through the `slt rc, a, b; bnez rc` idiom.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EffCond {
    /// Condition that holds on the taken edge.
    pub cond: stamp_isa::Cond,
    /// Left operand register.
    pub lhs: Reg,
    /// Right operand.
    pub rhs: CondRhs,
}

/// Extracts the effective taken-direction comparison of `block`'s
/// terminating branch, if any. Used by the loop-bound analysis to find
/// exit conditions.
pub fn effective_cond(block: &stamp_cfg::BasicBlock) -> Option<EffCond> {
    use stamp_isa::Cond;
    let (_, Insn::Branch { cond, rs1, rs2, .. }) = block.last()? else {
        return None;
    };
    // Direct comparison of two registers.
    let flag = match (cond, rs1, rs2) {
        (Cond::Ne, rc, z) | (Cond::Ne, z, rc) if z.is_zero() && !rc.is_zero() => Some((rc, true)),
        (Cond::Eq, rc, z) | (Cond::Eq, z, rc) if z.is_zero() && !rc.is_zero() => Some((rc, false)),
        _ => None,
    };
    if let Some((rc, flag_set)) = flag {
        let body = &block.insns[..block.insns.len() - 1];
        if let Some(def_idx) = body.iter().rposition(|(_, i)| i.def() == Some(rc)) {
            let found = match body[def_idx].1 {
                Insn::Alu { op: op @ (AluOp::Slt | AluOp::Sltu), rs1: a, rs2: b, .. } => {
                    Some((op == AluOp::Slt, a, CondRhs::Reg(b), Some(b)))
                }
                Insn::AluImm { op: op @ (AluOp::Slt | AluOp::Sltu), rs1: a, imm, .. } => {
                    Some((op == AluOp::Slt, a, CondRhs::Imm(imm as u32), None))
                }
                _ => None,
            };
            if let Some((signed, a, rhs, b_reg)) = found {
                let clobbered = body[def_idx + 1..]
                    .iter()
                    .any(|(_, i)| i.def() == Some(a) || b_reg.is_some_and(|b| i.def() == Some(b)));
                if !clobbered && a != rc && b_reg != Some(rc) {
                    let base = if signed { Cond::Lt } else { Cond::Ltu };
                    let eff = if flag_set { base } else { base.negate() };
                    return Some(EffCond { cond: eff, lhs: a, rhs });
                }
            }
        }
    }
    Some(EffCond { cond, lhs: rs1, rhs: CondRhs::Reg(rs2) })
}

impl Transfer for ValueTransfer<'_> {
    type State = AState;

    fn boundary(&self) -> AState {
        AState::entry(self.stack_top, Rc::clone(&self.thresholds))
    }

    fn transfer(&mut self, icfg: &Icfg, node: NodeId, input: &AState) -> AState {
        let block = self.cfg.block(icfg.node(node).block);
        let mut s = input.clone();
        for &(addr, insn) in &block.insns {
            self.step(&mut s, addr, &insn);
        }
        s
    }

    fn edge<'s>(
        &mut self,
        icfg: &Icfg,
        edge: &IEdge,
        state: &'s AState,
    ) -> Option<std::borrow::Cow<'s, AState>> {
        let _ = icfg;
        let cfg_eid = match edge.kind {
            IEdgeKind::Intra { cfg_edge, .. } => cfg_edge,
            // Call and return edges pass the state through unchanged; the
            // context expansion keeps call sites separate.
            IEdgeKind::Call { .. } | IEdgeKind::Return { .. } => {
                return Some(std::borrow::Cow::Borrowed(state))
            }
        };
        let cfg_edge = self.cfg.edge(cfg_eid);
        let from = self.cfg.block(cfg_edge.from);
        let taken = match cfg_edge.kind {
            EdgeKind::Taken => true,
            EdgeKind::Fall => false,
            EdgeKind::CallFall => return Some(std::borrow::Cow::Borrowed(state)),
        };
        self.refine_branch(from, taken, state)
    }
}

impl ValueTransfer<'_> {
    /// Refines `state` under the branch at the end of `block` going in
    /// the `taken` direction; `None` marks the edge infeasible. Blocks
    /// without a conditional branch pass the state through by reference.
    ///
    /// Beyond the branch's own comparison, this recognizes the
    /// compare-then-branch idiom `slt rc, a, b; bnez rc, …` and refines
    /// the *underlying* comparison's operands, provided nothing clobbers
    /// them between the compare and the branch.
    fn refine_branch<'s>(
        &self,
        block: &stamp_cfg::BasicBlock,
        taken: bool,
        state: &'s AState,
    ) -> Option<std::borrow::Cow<'s, AState>> {
        use stamp_isa::Cond;
        use std::borrow::Cow;
        let Some((_, Insn::Branch { cond, rs1, rs2, .. })) = block.last() else {
            return Some(Cow::Borrowed(state));
        };
        let assumed = if taken { cond } else { cond.negate() };
        let mut s = state.clone();
        let (ra, rb) = SInt::refine(assumed, &s.reg(rs1), &s.reg(rs2))?;
        if !s.refine_reg(rs1, &ra) || !s.refine_reg(rs2, &rb) {
            return None;
        }

        // Compare-then-branch idiom: the branch tests a 0/1 flag.
        let (rc, flag_set) = match (assumed, rs1, rs2) {
            (Cond::Ne, rc, z) | (Cond::Ne, z, rc) if z.is_zero() && !rc.is_zero() => (rc, true),
            (Cond::Eq, rc, z) | (Cond::Eq, z, rc) if z.is_zero() && !rc.is_zero() => (rc, false),
            _ => return Some(Cow::Owned(s)),
        };
        // Find the instruction defining the flag within this block; if
        // it is not here, there is simply nothing further to refine.
        let body = &block.insns[..block.insns.len() - 1];
        let Some(def_idx) = body.iter().rposition(|(_, i)| i.def() == Some(rc)) else {
            return Some(Cow::Owned(s));
        };
        let (signed, a, b_val, b_reg) = match body[def_idx].1 {
            Insn::Alu { op: op @ (AluOp::Slt | AluOp::Sltu), rs1: a, rs2: b, .. } => {
                (op == AluOp::Slt, a, s.reg(b), Some(b))
            }
            Insn::AluImm { op: op @ (AluOp::Slt | AluOp::Sltu), rs1: a, imm, .. } => {
                (op == AluOp::Slt, a, SInt::cst(imm as u32), None)
            }
            _ => return Some(Cow::Owned(s)),
        };
        // The operands must still hold their compared values at the branch.
        let clobbered = body[def_idx + 1..]
            .iter()
            .any(|(_, i)| i.def() == Some(a) || b_reg.is_some_and(|b| i.def() == Some(b)));
        if clobbered || a == rc || b_reg == Some(rc) {
            return Some(Cow::Owned(s));
        }
        let base = if signed { Cond::Lt } else { Cond::Ltu };
        let effective = if flag_set { base } else { base.negate() };
        let (ra, rb) = SInt::refine(effective, &s.reg(a), &b_val)?;
        if !s.refine_reg(a, &ra) {
            return None;
        }
        if let Some(b) = b_reg {
            if !s.refine_reg(b, &rb) {
                return None;
            }
        }
        Some(Cow::Owned(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::asm::assemble;

    fn setup(src: &str) -> (Program, HwConfig) {
        (assemble(src).expect("assembles"), HwConfig::default())
    }

    fn fresh_state(hw: &HwConfig) -> AState {
        AState::entry(hw.mem.stack_top(), Rc::new(vec![0]))
    }

    #[test]
    fn constant_folding_matches_hardware() {
        let (p, hw) = setup(".text\nmain: halt\n");
        let cfg = stamp_cfg::CfgBuilder::new(&p).build().unwrap();
        let t = ValueTransfer::new(&p, &hw, &cfg, DomainKind::Strided, Rc::new(vec![0]));
        let mut s = fresh_state(&hw);
        s.set_reg(Reg::new(1), SInt::cst(7));
        s.set_reg(Reg::new(2), SInt::cst(0));
        // div by zero folds to the architected result, not a crash.
        t.step(
            &mut s,
            0,
            &Insn::Alu { op: AluOp::Div, rd: Reg::new(3), rs1: Reg::new(1), rs2: Reg::new(2) },
        );
        assert_eq!(s.reg(Reg::new(3)).is_const(), Some(u32::MAX));
    }

    #[test]
    fn rom_load_folds_to_constant() {
        let (p, hw) = setup(".text\nmain: halt\n.rodata\ntbl: .word 0xcafe\n");
        let cfg = stamp_cfg::CfgBuilder::new(&p).build().unwrap();
        let t = ValueTransfer::new(&p, &hw, &cfg, DomainKind::Strided, Rc::new(vec![0]));
        let mut s = fresh_state(&hw);
        let tbl = p.symbols.addr_of("tbl").unwrap();
        s.set_reg(Reg::new(1), SInt::cst(tbl));
        t.step(
            &mut s,
            0,
            &Insn::Load {
                width: MemWidth::W,
                signed: true,
                rd: Reg::new(2),
                base: Reg::new(1),
                offset: 0,
            },
        );
        assert_eq!(s.reg(Reg::new(2)).is_const(), Some(0xcafe));
    }

    #[test]
    fn stack_store_load_roundtrip() {
        let (p, hw) = setup(".text\nmain: halt\n");
        let cfg = stamp_cfg::CfgBuilder::new(&p).build().unwrap();
        let t = ValueTransfer::new(&p, &hw, &cfg, DomainKind::Strided, Rc::new(vec![0]));
        let mut s = fresh_state(&hw);
        s.set_reg(Reg::new(1), SInt::cst(99));
        // addi sp, sp, -8 ; sw r1, 4(sp) ; lw r2, 4(sp)
        t.step(&mut s, 0, &Insn::AluImm { op: AluOp::Add, rd: Reg::SP, rs1: Reg::SP, imm: -8 });
        t.step(
            &mut s,
            4,
            &Insn::Store { width: MemWidth::W, src: Reg::new(1), base: Reg::SP, offset: 4 },
        );
        t.step(
            &mut s,
            8,
            &Insn::Load {
                width: MemWidth::W,
                signed: true,
                rd: Reg::new(2),
                base: Reg::SP,
                offset: 4,
            },
        );
        assert_eq!(s.reg(Reg::new(2)).is_const(), Some(99));
        assert_eq!(s.reg(Reg::SP).is_const(), Some(hw.mem.stack_top() - 8));
    }

    #[test]
    fn signed_byte_load_extends() {
        let (p, hw) = setup(".text\nmain: halt\n.rodata\nb: .byte 0xff, 0x7f\n");
        let cfg = stamp_cfg::CfgBuilder::new(&p).build().unwrap();
        let t = ValueTransfer::new(&p, &hw, &cfg, DomainKind::Strided, Rc::new(vec![0]));
        let mut s = fresh_state(&hw);
        let b = p.symbols.addr_of("b").unwrap();
        s.set_reg(Reg::new(1), SInt::cst(b));
        t.step(
            &mut s,
            0,
            &Insn::Load {
                width: MemWidth::B,
                signed: true,
                rd: Reg::new(2),
                base: Reg::new(1),
                offset: 0,
            },
        );
        assert_eq!(s.reg(Reg::new(2)).is_const(), Some(u32::MAX)); // -1
    }

    #[test]
    fn domain_degradation() {
        let (p, hw) = setup(".text\nmain: halt\n");
        let cfg = stamp_cfg::CfgBuilder::new(&p).build().unwrap();
        let t = ValueTransfer::new(&p, &hw, &cfg, DomainKind::Const, Rc::new(vec![0]));
        let mut s = fresh_state(&hw);
        s.set_reg(Reg::new(1), SInt::range(0, 10));
        t.step(
            &mut s,
            0,
            &Insn::AluImm { op: AluOp::Add, rd: Reg::new(2), rs1: Reg::new(1), imm: 1 },
        );
        // Under constant propagation a non-constant result is ⊤.
        assert!(s.reg(Reg::new(2)).is_top());
    }
}
