//! Property-based soundness of the strided-interval domain: every
//! abstract operation over-approximates its concrete counterpart, and
//! the lattice operations satisfy their laws.

use proptest::prelude::*;
use stamp_isa::{AluOp, Cond};
use stamp_value::SInt;

/// Generates an arbitrary well-formed strided interval together with a
/// concrete member.
fn sint_with_member() -> impl Strategy<Value = (SInt, u32)> {
    // Build from (lo, count, stride) to keep the set small enough to
    // pick members, with occasional extreme anchors.
    (
        prop_oneof![
            0u32..1000,
            0x1000_0000u32..0x1000_1000,
            0x7fff_ff00u32..0x8000_0100,
            0xffff_ff00u32..=0xffff_ffff,
        ],
        0u64..40,
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8), 1u32..40],
        any::<prop::sample::Index>(),
    )
        .prop_map(|(lo, count, stride, pick)| {
            let stride = stride.max(1);
            let max_count = ((u32::MAX - lo) as u64 / stride as u64).min(count);
            let hi = lo + (max_count as u32) * stride;
            let v = SInt::strided(lo, hi, stride);
            let k = pick.index(v.count() as usize) as u32;
            let member = lo + k * stride.min(v.stride().max(1));
            // Ensure membership even after normalization.
            let member = if v.contains(member) { member } else { v.lo() };
            (v, member)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn join_contains_both((a, x) in sint_with_member(), (b, y) in sint_with_member()) {
        let j = a.join(&b);
        prop_assert!(j.contains(x), "join {j} lost {x} from {a}");
        prop_assert!(j.contains(y), "join {j} lost {y} from {b}");
        prop_assert!(a.subset_of(&j) && b.subset_of(&j));
    }

    #[test]
    fn meet_overapproximates_intersection((a, x) in sint_with_member(), (b, _) in sint_with_member()) {
        if b.contains(x) {
            let m = a.meet(&b);
            prop_assert!(m.is_some(), "meet empty but {x} in both {a} and {b}");
            prop_assert!(m.unwrap().contains(x), "meet {} lost {x}", m.unwrap());
        }
    }

    #[test]
    fn widen_covers_join((a, x) in sint_with_member(), (b, y) in sint_with_member()) {
        let thresholds = [0u32, 16, 256, 65536, 0x1000_0000];
        let w = a.widen(&b, &thresholds);
        prop_assert!(w.contains(x), "widen {w} lost {x} of {a}");
        prop_assert!(w.contains(y), "widen {w} lost {y} of {b}");
    }

    #[test]
    fn alu_ops_sound((a, x) in sint_with_member(), (b, y) in sint_with_member()) {
        // Every binary ALU operation: concrete result ∈ abstract result.
        for op in AluOp::ALL {
            let abs = match op {
                AluOp::Add => a.add(&b),
                AluOp::Sub => a.sub(&b),
                AluOp::And => a.and(&b),
                AluOp::Or => a.or(&b),
                AluOp::Xor => a.xor(&b),
                AluOp::Sll => a.sll(&b),
                AluOp::Srl => a.srl(&b),
                AluOp::Sra => a.sra(&b),
                AluOp::Slt => a.slt(&b),
                AluOp::Sltu => a.sltu(&b),
                AluOp::Mul => a.mul(&b),
                AluOp::Mulh => SInt::top(),
                AluOp::Div => a.div(&b),
                AluOp::Rem => a.rem(&b),
            };
            let conc = op.eval(x, y);
            prop_assert!(
                abs.contains(conc),
                "{op:?}: {x} op {y} = {conc:#x} not in {abs} (from {a}, {b})"
            );
        }
    }

    #[test]
    fn add_i32_sound((a, x) in sint_with_member(), k in -5000i32..5000) {
        let abs = a.add_i32(k);
        let conc = x.wrapping_add(k as u32);
        prop_assert!(abs.contains(conc), "{x} + {k} = {conc:#x} not in {abs}");
    }

    #[test]
    fn align4_sound((a, x) in sint_with_member()) {
        prop_assert!(a.align4().contains(x & !3));
    }

    #[test]
    fn refine_keeps_satisfying_pairs((a, x) in sint_with_member(), (b, y) in sint_with_member()) {
        for cond in Cond::ALL {
            if cond.eval(x, y) {
                match SInt::refine(cond, &a, &b) {
                    None => prop_assert!(
                        false,
                        "refine({cond:?}) claims infeasible but {x} {cond:?} {y} holds"
                    ),
                    Some((ra, rb)) => {
                        prop_assert!(ra.contains(x), "refined {ra} lost lhs {x:#x}");
                        prop_assert!(rb.contains(y), "refined {rb} lost rhs {y:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn count_and_iter_agree((a, _) in sint_with_member()) {
        if a.count() <= 512 {
            let items: Vec<u32> = a.iter().collect();
            prop_assert_eq!(items.len() as u64, a.count());
            prop_assert!(items.iter().all(|&v| a.contains(v)));
            // Ascending, on-grid.
            prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn subset_of_is_a_partial_order((a, _) in sint_with_member(), (b, _) in sint_with_member()) {
        prop_assert!(a.subset_of(&a));
        if a.subset_of(&b) && b.subset_of(&a) {
            // Antisymmetry up to representation: same bounds.
            prop_assert_eq!(a.lo(), b.lo());
            prop_assert_eq!(a.hi(), b.hi());
        }
        let j = a.join(&b);
        prop_assert!(a.subset_of(&j) && b.subset_of(&j));
    }
}

/// Exhaustive mini-universe check: all operations over every interval of
/// a tiny value space, compared against concrete set semantics.
#[test]
fn exhaustive_small_universe() {
    let mut sets: Vec<SInt> = Vec::new();
    for lo in 0u32..8 {
        for hi in lo..8 {
            for stride in 1..=4u32 {
                sets.push(SInt::strided(lo, hi, stride));
            }
        }
    }
    for a in &sets {
        for b in &sets {
            let sum = a.add(b);
            let diff = a.sub(b);
            let prod = a.mul(b);
            for x in a.iter() {
                for y in b.iter() {
                    assert!(sum.contains(x.wrapping_add(y)), "{a}+{b} misses {x}+{y}");
                    assert!(diff.contains(x.wrapping_sub(y)), "{a}-{b} misses {x}-{y}");
                    assert!(prod.contains(x.wrapping_mul(y)), "{a}*{b} misses {x}*{y}");
                }
            }
            // Meet is exact on this tiny universe up to over-approximation:
            // it must contain the true intersection.
            match a.meet(b) {
                Some(m) => {
                    for x in a.iter().filter(|x| b.contains(*x)) {
                        assert!(m.contains(x), "meet({a},{b}) = {m} misses {x}");
                    }
                }
                None => {
                    assert!(
                        a.iter().all(|x| !b.contains(x)),
                        "meet({a},{b}) empty but intersection is not"
                    );
                }
            }
        }
    }
}
