//! Transports: line-delimited JSON over stdio or a unix socket, plus
//! SIGTERM-driven graceful drain.
//!
//! Both transports poll a process-wide termination flag at a short
//! interval instead of blocking indefinitely, so a SIGTERM (or stdin
//! EOF) always reaches the same orderly path: stop admission, finish
//! every admitted job, flush the disk store, exit 0.

use std::io::{self, BufRead, BufReader, BufWriter, ErrorKind, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use stamp_core::Json;

use crate::Engine;

/// How often blocked transports wake to check the termination flag.
const POLL: Duration = Duration::from_millis(50);

static TERM: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM has been received. Once set, transports stop
/// admitting work and drain.
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

#[cfg(test)]
pub(crate) fn request_term_for_tests() {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler. The handler only stores to an
/// `AtomicBool` (async-signal-safe); the transports observe the flag
/// on their next poll. Raw `signal(2)` via the C runtime keeps the
/// daemon free of any ffi dependency.
#[cfg(unix)]
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

/// Serves requests from stdin, one JSON object per line, writing one
/// response line to stdout per request (completion order, matched by
/// `id`). Returns the process exit code: `0` after a graceful drain on
/// EOF or SIGTERM.
pub fn serve_stdio(engine: &Engine) -> i32 {
    install_term_handler();

    let (reply_tx, reply_rx) = mpsc::channel::<Json>();
    let writer = thread::spawn(move || {
        let stdout = io::stdout();
        for response in reply_rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{response}");
            let _ = out.flush();
        }
    });

    // A blocking stdin read cannot be interrupted portably, so the
    // reader thread is detached: on SIGTERM the main loop drains and the
    // process exits without waiting for it.
    let (line_tx, line_rx) = mpsc::channel::<String>();
    thread::spawn(move || {
        for line in io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if line_tx.send(line).is_err() {
                break;
            }
        }
    });

    loop {
        if term_requested() {
            break;
        }
        match line_rx.recv_timeout(POLL) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                engine.submit(&line, "stdin", reply_tx.clone());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        }
    }

    engine.shutdown_and_drain();
    drop(reply_tx);
    writer.join().expect("stdout writer exits once the last reply is written");
    0
}

/// Serves requests over a unix socket at `path`, accepting any number
/// of concurrent connections; each connection speaks the same
/// line-delimited protocol as stdio. Returns the exit code (`0` after
/// a SIGTERM drain).
///
/// # Errors
///
/// Binding the socket can fail; everything after that degrades
/// per-connection instead of killing the daemon.
#[cfg(unix)]
pub fn serve_unix(engine: &Engine, path: &std::path::Path) -> io::Result<i32> {
    use std::os::unix::net::UnixListener;

    install_term_handler();
    // A stale socket file from an unclean previous shutdown would make
    // bind fail; replacing it is the daemon-restart behavior operators
    // expect.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;

    thread::scope(|scope| {
        let mut next_conn = 0u64;
        while !term_requested() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let conn_id = next_conn;
                    next_conn += 1;
                    scope.spawn(move || handle_connection(engine, stream, conn_id));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    // Accept faults are transient (fd pressure, aborted
                    // connects): log and keep serving.
                    eprintln!("serve: accept failed: {e}");
                    thread::sleep(POLL);
                }
            }
        }
        engine.shutdown_and_drain();
        // Leaving the scope joins the connection threads; they observe
        // the termination flag on their next read timeout.
    });
    let _ = std::fs::remove_file(path);
    Ok(0)
}

#[cfg(not(unix))]
pub fn serve_unix(_engine: &Engine, _path: &std::path::Path) -> io::Result<i32> {
    Err(io::Error::other("unix sockets are not available on this platform"))
}

#[cfg(unix)]
fn handle_connection(engine: &Engine, stream: std::os::unix::net::UnixStream, conn_id: u64) {
    let client = format!("conn-{conn_id}");
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // The read timeout doubles as the termination-flag poll interval.
    let _ = stream.set_read_timeout(Some(POLL));

    let (reply_tx, reply_rx) = mpsc::channel::<Json>();
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for response in reply_rx {
            let _ = writeln!(out, "{response}");
            let _ = out.flush();
        }
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if term_requested() {
            break;
        }
        // On timeout `read_line` keeps any partial line in `line`; the
        // next call appends to it, so slow writers are never corrupted.
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed the connection
            Ok(_) => {
                let text = line.trim();
                if !text.is_empty() {
                    engine.submit(text, &client, reply_tx.clone());
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(_) => break, // connection reset: drop the client, keep the daemon
        }
    }
    // In-flight jobs hold their own reply senders; the writer exits
    // after the last of them completes, so nothing this client admitted
    // is lost to the disconnect.
    drop(reply_tx);
    let _ = writer.join();
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use stamp_core::ArtifactStore;
    use std::os::unix::net::UnixStream;

    /// One end-to-end pass over the unix transport: connect, analyze,
    /// ping, then terminate and observe exit code 0. (The stdio
    /// transport and real SIGTERM delivery are covered by the
    /// `serve_daemon` integration tests against the built binary.)
    #[test]
    fn unix_socket_serves_and_drains_on_term() {
        let path =
            std::env::temp_dir().join(format!("stamp-serve-test-{}.sock", std::process::id()));
        let engine = Engine::new(ArtifactStore::new(), EngineConfig::default());
        let code = thread::scope(|scope| {
            let server = scope.spawn(|| serve_unix(&engine, &path).unwrap());

            let mut stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(_) => thread::sleep(Duration::from_millis(10)),
                }
            };
            stream
                .write_all(b"{\"id\": \"u1\", \"job\": {\"benchmark\": \"crc\"}}\n{\"id\": \"u2\", \"op\": \"ping\"}\n")
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut statuses = Vec::new();
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let resp = Json::parse(line.trim()).unwrap();
                statuses.push(resp.get("status").and_then(Json::as_str).unwrap().to_string());
            }
            assert_eq!(statuses, ["ok", "ok"]);

            request_term_for_tests();
            server.join().expect("server thread exits cleanly")
        });
        assert_eq!(code, 0);
        assert!(!path.exists(), "the socket file is removed on shutdown");
    }
}
