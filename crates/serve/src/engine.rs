//! The daemon's core: a bounded admission queue feeding a fixed worker
//! pool, with per-client fairness caps, admission-measured deadlines,
//! per-job panic isolation, and a drain protocol for shutdown.
//!
//! The engine is transport-agnostic: `submit` takes a raw request line
//! and a reply channel, so the stdio and unix-socket front ends (and
//! the in-process benchmark driver) share every robustness decision.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use stamp_core::{run_job_guarded, ArtifactStore, BatchJob, JobOutcome, Json};

use crate::protocol::{self, Request};

/// Engine tuning knobs, one per CLI flag.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Admission queue capacity; a full queue rejects with `overloaded`.
    pub queue: usize,
    /// Max queued+running jobs per client (`0` = unlimited); exceeding
    /// it rejects with `overloaded` so one client cannot starve others.
    pub per_client: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline: Option<Duration>,
    /// Base directory for resolving relative `file` targets.
    pub base: PathBuf,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue: 64,
            per_client: 0,
            workers: 2,
            default_deadline: None,
            base: PathBuf::from("."),
        }
    }
}

/// One admitted analysis job, parked in the queue until a worker picks
/// it up.
struct Admitted {
    id: String,
    client: String,
    job: BatchJob,
    deadline: Option<Duration>,
    admitted_at: Instant,
    reply: mpsc::Sender<Json>,
}

/// Queue state guarded by the engine mutex. `per_client` counts
/// queued *and* running jobs, so the fairness cap bounds a client's
/// total footprint, not just its backlog.
#[derive(Default)]
struct QueueState {
    queue: VecDeque<Admitted>,
    running: usize,
    per_client: HashMap<String, usize>,
    shutting_down: bool,
}

struct Shared {
    store: ArtifactStore,
    config: EngineConfig,
    state: Mutex<QueueState>,
    /// Wakes workers when work arrives or shutdown starts.
    work_cv: Condvar,
    /// Wakes the drainer when the last job finishes.
    idle_cv: Condvar,
    /// Test-only fault injection: a worker that dequeues a job with
    /// this id panics on the spot, simulating a worker-thread bug
    /// outside the per-job panic guard.
    #[cfg(test)]
    kill_worker_on: Mutex<Option<String>>,
}

/// The long-lived analysis engine: warm artifact store + admission
/// queue + worker pool.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Engine {
    /// Starts the worker pool around a warm artifact store.
    pub fn new(store: ArtifactStore, config: EngineConfig) -> Engine {
        let shared = Arc::new(Shared {
            store,
            config,
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            #[cfg(test)]
            kill_worker_on: Mutex::new(None),
        });
        let count = shared.config.workers.max(1);
        let workers = (0..count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("stamp-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a daemon worker thread")
            })
            .collect();
        Engine { shared, workers: Mutex::new(workers) }
    }

    /// The warm artifact store (exposed for the benchmark driver's
    /// hit-rate gate).
    pub fn store(&self) -> &ArtifactStore {
        &self.shared.store
    }

    /// Parses and admits one request line. Every line produces exactly
    /// one response on `reply`: ping/stats/rejections immediately,
    /// analysis results when a worker finishes the job. A dropped
    /// receiver is tolerated (the client hung up; the work's artifacts
    /// stay warm either way).
    pub fn submit(&self, line: &str, default_client: &str, reply: mpsc::Sender<Json>) {
        let request = match protocol::parse_request(line, &self.shared.config.base) {
            Ok(r) => r,
            Err(e) => {
                let _ =
                    reply.send(protocol::error_response(e.id.as_deref(), "bad_request", &e.error));
                return;
            }
        };
        let analyze = match request {
            Request::Ping { id } => {
                let _ = reply.send(Json::obj([("id", Json::str(id)), ("status", Json::str("ok"))]));
                return;
            }
            Request::Stats { id } => {
                let stats = self.shared.store.stats();
                let _ = reply.send(Json::obj([
                    ("id", Json::str(id)),
                    ("status", Json::str("ok")),
                    ("stats", stats.to_json()),
                ]));
                return;
            }
            Request::Analyze(a) => a,
        };

        let client = analyze.client.unwrap_or_else(|| default_client.to_string());
        let deadline = match analyze.deadline_ms {
            Some(ms) => Some(Duration::from_millis(ms)),
            None => self.shared.config.default_deadline,
        };
        let admitted = Admitted {
            id: analyze.id,
            client,
            job: analyze.job,
            deadline,
            admitted_at: Instant::now(),
            reply,
        };

        let mut state = self.shared.state.lock().expect("engine state lock");
        if state.shutting_down {
            let _ = admitted.reply.send(protocol::error_response(
                Some(&admitted.id),
                "overloaded",
                "daemon is draining; not accepting new jobs",
            ));
            return;
        }
        if state.queue.len() >= self.shared.config.queue {
            let _ = admitted.reply.send(protocol::error_response(
                Some(&admitted.id),
                "overloaded",
                &format!("admission queue full ({} jobs)", self.shared.config.queue),
            ));
            return;
        }
        let cap = self.shared.config.per_client;
        let in_flight = state.per_client.get(&admitted.client).copied().unwrap_or(0);
        if cap != 0 && in_flight >= cap {
            let _ = admitted.reply.send(protocol::error_response(
                Some(&admitted.id),
                "overloaded",
                &format!("client `{}` already has {in_flight} jobs in flight", admitted.client),
            ));
            return;
        }
        *state.per_client.entry(admitted.client.clone()).or_insert(0) += 1;
        state.queue.push_back(admitted);
        self.shared.work_cv.notify_one();
    }

    /// Blocking convenience wrapper: submit one line, wait for its
    /// response. Used by the benchmark driver and tests.
    pub fn request(&self, line: &str) -> Json {
        let (tx, rx) = mpsc::channel();
        self.submit(line, "local", tx);
        rx.recv().expect("the engine always sends exactly one response")
    }

    /// Stops admission, completes every queued and running job, flushes
    /// the disk store, and joins the workers. Idempotent.
    pub fn shutdown_and_drain(&self) {
        {
            let mut state = self.shared.state.lock().expect("engine state lock");
            state.shutting_down = true;
            self.shared.work_cv.notify_all();
            while !state.queue.is_empty() || state.running > 0 {
                state = self.shared.idle_cv.wait(state).expect("engine state lock");
            }
        }
        self.shared.store.flush_disk();
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker handle lock"));
        for handle in handles {
            // A dead worker is a degraded daemon, not a failed drain:
            // the surviving workers finished the queue above, so losing
            // a thread costs one warning line — never the exit status.
            if handle.join().is_err() {
                eprintln!("serve: a worker thread panicked; its in-flight job was lost");
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_and_drain();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let admitted = {
            let mut state = shared.state.lock().expect("engine state lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work_cv.wait(state).expect("engine state lock");
            }
        };

        // The guard restores the queue accounting even if the execution
        // path panics outside the per-job guard in `run_job_guarded`: a
        // dying worker must not leave `running` stuck above zero, or
        // `shutdown_and_drain` would wait on it forever.
        let _finish = FinishGuard { shared, client: admitted.client.clone() };

        #[cfg(test)]
        {
            // Bind the verdict first so the lock guard is released
            // before the panic — a poisoned hook would kill every
            // *later* worker at this check, not just this one.
            let kill = shared.kill_worker_on.lock().expect("fault injection lock").as_deref()
                == Some(admitted.id.as_str());
            if kill {
                panic!("injected worker fault for job `{}`", admitted.id);
            }
        }

        let response = run_admitted(shared, &admitted);
        let _ = admitted.reply.send(response);
    }
}

/// Decrements one job's queue accounting on scope exit — including
/// panic unwinding, so a worker dying mid-job still releases its
/// `running` slot and its client's fairness count.
struct FinishGuard<'a> {
    shared: &'a Shared,
    client: String,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        // Recover from poisoning: the panic that poisoned the lock is
        // exactly the situation this guard exists to clean up after.
        let mut state = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.running -= 1;
        if let Some(count) = state.per_client.get_mut(&self.client) {
            *count -= 1;
            if *count == 0 {
                state.per_client.remove(&self.client);
            }
        }
        if state.queue.is_empty() && state.running == 0 {
            self.shared.idle_cv.notify_all();
        }
    }
}

/// Runs one admitted job to a response. The deadline is measured from
/// *admission*, so time spent queued counts against the budget — a
/// request that waited out its whole deadline in the queue reports
/// `timeout` without ever running.
fn run_admitted(shared: &Shared, admitted: &Admitted) -> Json {
    let queued = admitted.admitted_at.elapsed();
    let queue_ms = queued.as_secs_f64() * 1e3;
    let configured_ms = admitted.deadline.map(|d| d.as_millis() as u64);

    let budget = match admitted.deadline {
        Some(deadline) => {
            let remaining = deadline.saturating_sub(queued);
            if remaining.is_zero() {
                return protocol::timeout_response(
                    &admitted.id,
                    configured_ms.expect("deadline is set on this arm"),
                    queue_ms,
                    0.0,
                );
            }
            Some(remaining)
        }
        None => None,
    };

    let started = Instant::now();
    let outcome = run_job_guarded(&admitted.job, &shared.store, budget);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    // A disk fault mid-job degrades the store to in-memory-only; the
    // daemon keeps serving and reports the (single) warning on stderr.
    if let Some(warning) = shared.store.take_disk_warning() {
        eprintln!("serve: {warning}");
    }
    match outcome {
        JobOutcome::Completed(result) => {
            protocol::ok_response(&admitted.id, result.result_json(), queue_ms, wall_ms)
        }
        JobOutcome::DeadlineExceeded => protocol::timeout_response(
            &admitted.id,
            configured_ms.expect("only deadline jobs can exceed a deadline"),
            queue_ms,
            wall_ms,
        ),
        JobOutcome::Panicked { message } => protocol::error_response(
            Some(&admitted.id),
            "job_panicked",
            &format!("job `{}` panicked: {message}", admitted.job.name()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(config: EngineConfig) -> Engine {
        Engine::new(ArtifactStore::new(), config)
    }

    fn analyze_line(id: &str, benchmark: &str, extra: &str) -> String {
        format!(r#"{{"id": "{id}", "job": {{"benchmark": "{benchmark}"}}{extra}}}"#)
    }

    #[test]
    fn serves_analysis_results_and_pings() {
        let engine = engine(EngineConfig::default());
        let pong = engine.request(r#"{"id": "p", "op": "ping"}"#);
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));

        let resp = engine.request(&analyze_line("a1", "crc", ""));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"), "{resp}");
        let result = resp.get("result").expect("ok responses carry a result");
        assert!(result.get("wcet").is_some(), "{result}");

        let stats = engine.request(r#"{"id": "st", "op": "stats"}"#);
        assert!(stats.get("stats").is_some(), "{stats}");
    }

    #[test]
    fn served_results_are_byte_identical_to_batch() {
        let engine = engine(EngineConfig::default());
        let served = engine.request(&analyze_line("b1", "fir", ""));
        let served_result = served.get("result").expect("result").to_string();

        let request = stamp_suite::manifest::parse_manifest(
            r#"{"targets": [{"benchmark": "fir"}]}"#,
            std::path::Path::new("."),
        )
        .unwrap();
        let report = stamp_core::run_batch(&request, 1).unwrap();
        assert_eq!(served_result, report.results[0].result_json().to_string());
    }

    #[test]
    fn full_queue_rejects_with_overloaded_and_recovers() {
        // One worker wedged behind real jobs, queue depth 1: the third
        // concurrent submission must be rejected, not buffered.
        let engine = engine(EngineConfig { queue: 1, workers: 1, ..EngineConfig::default() });
        let (tx, rx) = mpsc::channel();
        for i in 0..8 {
            engine.submit(&analyze_line(&format!("q{i}"), "crc", ""), "burst", tx.clone());
        }
        drop(tx);
        let responses: Vec<Json> = rx.iter().collect();
        assert_eq!(responses.len(), 8, "every submission gets exactly one response");
        let overloaded = responses
            .iter()
            .filter(|r| r.get("status").and_then(Json::as_str) == Some("overloaded"))
            .count();
        assert!(overloaded > 0, "a burst past queue capacity must shed load");
        assert!(overloaded < 8, "the queue still serves what it admitted");
        for r in &responses {
            if r.get("status").and_then(Json::as_str) == Some("overloaded") {
                assert!(
                    r.get("error").and_then(Json::as_str).unwrap().contains("queue full"),
                    "{r}"
                );
            }
        }
        // The daemon recovers once the burst drains.
        let after = engine.request(&analyze_line("after", "crc", ""));
        assert_eq!(after.get("status").and_then(Json::as_str), Some("ok"), "{after}");
    }

    #[test]
    fn per_client_cap_protects_other_clients() {
        let engine = engine(EngineConfig {
            queue: 64,
            per_client: 1,
            workers: 1,
            ..EngineConfig::default()
        });
        let (tx, rx) = mpsc::channel();
        // Wedge the single worker behind a third client's job first, so
        // the greedy client's g1 is necessarily still queued — not
        // racing the worker to completion — when g2 arrives.
        engine.submit(&analyze_line("w0", "crc", ""), "wedge", tx.clone());
        // Two jobs from the same client: the cap of one rejects the second.
        engine.submit(&analyze_line("g1", "crc", ""), "greedy", tx.clone());
        engine.submit(&analyze_line("g2", "crc", ""), "greedy", tx.clone());
        // A different client is unaffected.
        engine.submit(&analyze_line("m1", "crc", ""), "modest", tx.clone());
        drop(tx);
        let responses: Vec<Json> = rx.iter().collect();
        let status_of = |id: &str| {
            responses
                .iter()
                .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
                .and_then(|r| r.get("status"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(status_of("w0").as_deref(), Some("ok"));
        assert_eq!(status_of("g1").as_deref(), Some("ok"));
        assert_eq!(status_of("g2").as_deref(), Some("overloaded"));
        assert_eq!(status_of("m1").as_deref(), Some("ok"));
    }

    #[test]
    fn zero_deadline_times_out_and_later_requests_still_complete() {
        let engine = engine(EngineConfig::default());
        let resp = engine.request(&analyze_line("t1", "crc", r#", "deadline_ms": 0"#));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("timeout"), "{resp}");
        assert_eq!(
            resp.get("error").and_then(Json::as_str),
            Some("deadline of 0 ms exceeded"),
            "the error quotes the configured deadline, not measured time"
        );
        let after = engine.request(&analyze_line("t2", "crc", ""));
        assert_eq!(after.get("status").and_then(Json::as_str), Some("ok"), "{after}");
    }

    #[test]
    fn default_deadline_applies_when_the_request_names_none() {
        let engine = engine(EngineConfig {
            default_deadline: Some(Duration::ZERO),
            ..EngineConfig::default()
        });
        let resp = engine.request(&analyze_line("d1", "crc", ""));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("timeout"), "{resp}");
        // An explicit (generous) per-request deadline overrides the default.
        let resp = engine.request(&analyze_line("d2", "crc", r#", "deadline_ms": 60000"#));
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"), "{resp}");
    }

    #[test]
    fn bad_requests_answer_immediately_without_touching_the_queue() {
        let engine = engine(EngineConfig { workers: 1, ..EngineConfig::default() });
        let resp = engine.request(r#"{"id": "x", "job": {"benchmark": "no-such"}}"#);
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("bad_request"), "{resp}");
        let resp = engine.request("garbage");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("bad_request"), "{resp}");
        assert_eq!(resp.get("id"), Some(&Json::Null));
    }

    #[test]
    fn drain_completes_admitted_work_then_rejects_new_jobs() {
        let engine = engine(EngineConfig { workers: 2, ..EngineConfig::default() });
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            engine.submit(&analyze_line(&format!("w{i}"), "crc", ""), "drain", tx.clone());
        }
        engine.shutdown_and_drain();
        // All four admitted jobs completed during the drain.
        let mut ok = 0;
        for _ in 0..4 {
            let r = rx.try_recv().expect("drained jobs have already replied");
            assert_eq!(r.get("status").and_then(Json::as_str), Some("ok"), "{r}");
            ok += 1;
        }
        assert_eq!(ok, 4);
        // Post-drain submissions are refused, not queued forever.
        engine.submit(&analyze_line("late", "crc", ""), "drain", tx.clone());
        let late = rx.try_recv().expect("rejections are immediate");
        assert_eq!(late.get("status").and_then(Json::as_str), Some("overloaded"), "{late}");
        assert!(late.get("error").and_then(Json::as_str).unwrap().contains("draining"));
        // Idempotent: a second drain (and the Drop drain) are no-ops.
        engine.shutdown_and_drain();
    }

    #[test]
    fn a_dying_worker_degrades_the_daemon_instead_of_killing_it() {
        let engine = engine(EngineConfig { workers: 2, ..EngineConfig::default() });
        *engine.shared.kill_worker_on.lock().unwrap() = Some("boom".into());
        let (tx, rx) = mpsc::channel();
        engine.submit(&analyze_line("boom", "crc", ""), "faulty", tx.clone());
        engine.submit(&analyze_line("ok1", "crc", ""), "fine", tx.clone());
        drop(tx);
        // The drain must terminate (the dead worker released its
        // `running` slot) and must not panic on the failed join.
        engine.shutdown_and_drain();
        let responses: Vec<Json> = rx.iter().collect();
        assert_eq!(responses.len(), 1, "the poisoned job died with its worker: {responses:?}");
        assert_eq!(responses[0].get("id").and_then(Json::as_str), Some("ok1"));
        assert_eq!(responses[0].get("status").and_then(Json::as_str), Some("ok"));
    }
}
