//! # stamp-serve — the fault-tolerant long-lived analysis daemon
//!
//! `stamp serve` keeps one warm [`stamp_core::ArtifactStore`] (optionally
//! disk-backed) alive across many analysis requests, amortizing process
//! startup and artifact computation the way an aiT-style certification
//! service would be deployed: as a daemon fed by build and CI jobs, not
//! as a per-task process.
//!
//! The robustness layer is the point of this crate. An industrial
//! analyzer must degrade *predictably* — reject or bound work, never
//! hang or crash:
//!
//! * **Backpressure.** Admission is a bounded queue; a full queue
//!   rejects with a structured `overloaded` response instead of growing
//!   without bound ([`EngineConfig::queue`]).
//! * **Fairness.** Per-client in-flight caps keep one chatty client
//!   from monopolizing the queue ([`EngineConfig::per_client`]).
//! * **Deadlines.** Each request may carry `deadline_ms`, measured from
//!   admission; the budget is threaded through the phase DAG as a
//!   cooperative cancellation token (`stamp_exec::cancel`), so a
//!   runaway fixpoint reports `timeout` instead of wedging a worker.
//! * **Panic isolation.** A job that panics yields one `job_panicked`
//!   response; the daemon keeps serving.
//! * **Graceful drain.** SIGTERM or EOF stops admission, completes every
//!   admitted job, flushes the disk store, and exits 0.
//! * **Storage degradation.** Disk-store write faults degrade to
//!   in-memory-only operation with a single warning (`stamp_core`'s
//!   store handles this; the daemon surfaces the warning once).
//!
//! Served results are **byte-identical** to `stamp batch` over the same
//! jobs: an `ok` response embeds the exact deterministic
//! `JobResult::result_json()` object, and everything the daemon adds —
//! queue waits, wall times, rejections, timeouts — lives strictly in
//! the timing layer of the protocol, never inside `result`.
//!
//! See `protocol` for the request/response schema, `engine` for the
//! queue and workers, and `server` for the stdio/unix-socket
//! transports.

mod engine;
pub mod protocol;
mod server;

pub use engine::{Engine, EngineConfig};
pub use server::{serve_stdio, serve_unix, term_requested};
