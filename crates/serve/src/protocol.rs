//! The daemon's wire protocol: one JSON object per line, in both
//! directions.
//!
//! # Requests
//!
//! ```json
//! {"id": "r1", "job": {"benchmark": "crc"},
//!  "variant": {"hw": "no-cache"}, "deadline_ms": 5000, "client": "ci"}
//! {"id": "r2", "op": "ping"}
//! {"id": "r3", "op": "stats"}
//! ```
//!
//! Keys: `id` (required, echoed in the response), `op` (`"analyze"`,
//! the default, or `"ping"` / `"stats"`), `client` (fairness key,
//! defaulting to the connection), `deadline_ms` (budget measured from
//! admission), `job` (a batch-manifest *target* object: exactly one of
//! `benchmark` / `file` / `source`+`name`, plus `loop_bounds`,
//! `recursion`, `wcet`), and `variant` (a manifest *variant* object:
//! `hw`, `peel`, `max_call_depth`, `max_contexts`, `domain`,
//! `widen_delay`, `small_set`, `use_infeasible`, `uarch_summaries`,
//! `sampling`; `name`
//! defaults to `"default"`). The job vocabulary *is* the `stamp batch`
//! manifest vocabulary — requests are parsed through the same
//! `stamp_suite::manifest` code path, so unknown keys are rejected
//! identically and a served job can never drift from its batch twin.
//!
//! # Responses
//!
//! | `status`       | meaning                                            |
//! |----------------|----------------------------------------------------|
//! | `ok`           | `result` holds the job's deterministic result      |
//! | `overloaded`   | queue full / client at cap / daemon draining       |
//! | `timeout`      | the deadline expired (in queue or mid-analysis)    |
//! | `job_panicked` | the job crashed; the daemon keeps serving          |
//! | `bad_request`  | unparseable line or invalid job description        |
//!
//! The `result` object of an `ok` response is byte-identical to the
//! corresponding entry of `stamp batch --no-timing`'s `jobs` array.
//! `queue_ms` / `wall_ms` are the response's *timing layer* — like
//! batch wall times they are nondeterministic and live outside
//! `result`; `error` carries a deterministic message for every
//! non-`ok` status.

use std::path::Path;

use stamp_core::{BatchJob, Json};
use stamp_suite::manifest;

/// A parsed, validated request line.
#[derive(Debug)]
pub enum Request {
    /// Run one analysis job.
    Analyze(Box<AnalyzeRequest>),
    /// Liveness probe.
    Ping {
        /// Request id to echo.
        id: String,
    },
    /// Artifact-store statistics snapshot.
    Stats {
        /// Request id to echo.
        id: String,
    },
}

/// The payload of an `analyze` request.
#[derive(Debug)]
pub struct AnalyzeRequest {
    /// Request id, echoed in the response.
    pub id: String,
    /// Fairness key; `None` falls back to the transport's connection id.
    pub client: Option<String>,
    /// Deadline budget in milliseconds, measured from admission.
    pub deadline_ms: Option<u64>,
    /// The job, identical in meaning to a one-job batch manifest.
    pub job: BatchJob,
}

/// A request rejection: the id to echo (when one was parseable) and
/// the message for the `bad_request` response.
#[derive(Debug)]
pub struct RequestError {
    /// The request's id, if the line got far enough to carry one.
    pub id: Option<String>,
    /// What was wrong.
    pub error: String,
}

fn reject<T>(id: Option<String>, error: impl Into<String>) -> Result<T, RequestError> {
    Err(RequestError { id, error: error.into() })
}

/// Parses one request line. `base` resolves relative `file` targets
/// (the daemon's working directory).
///
/// # Errors
///
/// [`RequestError`] on malformed JSON, a missing/invalid `id`, an
/// unknown `op`, unknown keys anywhere, or an invalid job description
/// — every error names the problem, echoing the id when possible.
pub fn parse_request(line: &str, base: &Path) -> Result<Request, RequestError> {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => return reject(None, e.to_string()),
    };
    if doc.as_obj().is_none() {
        return reject(None, "request must be a JSON object");
    }
    let id = match doc.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return reject(None, "`id` must be a string"),
        None => return reject(None, "missing `id`"),
    };
    for key in doc.as_obj().expect("checked above").keys() {
        if !["id", "op", "client", "deadline_ms", "job", "variant"].contains(&key.as_str()) {
            return reject(Some(id), format!("unknown request key `{key}`"));
        }
    }
    let op = match doc.get("op") {
        None => "analyze",
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return reject(Some(id), "`op` must be a string"),
    };
    match op {
        "ping" => return Ok(Request::Ping { id }),
        "stats" => return Ok(Request::Stats { id }),
        "analyze" => {}
        other => return reject(Some(id), format!("unknown op `{other}`")),
    }

    let client = match doc.get("client") {
        None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return reject(Some(id), "`client` must be a string"),
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => match v.as_u64() {
            Some(ms) => Some(ms),
            None => return reject(Some(id), "`deadline_ms` must be a non-negative integer"),
        },
    };
    let Some(job) = doc.get("job") else {
        return reject(Some(id), "analyze requests need a `job` object");
    };

    // Reuse the batch-manifest parser wholesale: build a one-target,
    // one-variant manifest from the request and run it through the same
    // validation `stamp batch` applies. Identical vocabulary, identical
    // rejections, identical resulting `BatchJob`.
    let variant = match doc.get("variant") {
        None => Json::obj([("name", Json::str("default"))]),
        Some(v) => match v.as_obj() {
            Some(map) => {
                let mut map = map.clone();
                map.entry("name".to_string()).or_insert_with(|| Json::str("default"));
                Json::Obj(map)
            }
            None => return reject(Some(id), "`variant` must be an object"),
        },
    };
    let manifest_doc = Json::obj([
        ("targets", Json::Arr(vec![job.clone()])),
        ("variants", Json::Arr(vec![variant])),
    ]);
    let request = match manifest::parse_manifest(&manifest_doc.to_string(), base) {
        Ok(r) => r,
        Err(e) => return reject(Some(id), e.to_string()),
    };
    let [job] = <[BatchJob; 1]>::try_from(request.jobs)
        .expect("one target and one variant make exactly one job");
    Ok(Request::Analyze(Box::new(AnalyzeRequest { id, client, deadline_ms, job })))
}

/// The `ok` response for a completed job. `result` is the job's
/// deterministic [`stamp_core::JobResult::result_json`] object,
/// embedded verbatim; the timing fields are the serve layer's own.
pub fn ok_response(id: &str, result: Json, queue_ms: f64, wall_ms: f64) -> Json {
    Json::obj([
        ("id", Json::str(id)),
        ("status", Json::str("ok")),
        ("result", result),
        ("queue_ms", Json::Num(queue_ms)),
        ("wall_ms", Json::Num(wall_ms)),
    ])
}

/// The `timeout` response. The error string quotes the *configured*
/// deadline (deterministic), never a measured elapsed time.
pub fn timeout_response(id: &str, deadline_ms: u64, queue_ms: f64, wall_ms: f64) -> Json {
    Json::obj([
        ("id", Json::str(id)),
        ("status", Json::str("timeout")),
        ("error", Json::str(format!("deadline of {deadline_ms} ms exceeded"))),
        ("queue_ms", Json::Num(queue_ms)),
        ("wall_ms", Json::Num(wall_ms)),
    ])
}

/// A non-`ok`, non-`timeout` response (`overloaded`, `job_panicked`,
/// `bad_request`).
pub fn error_response(id: Option<&str>, status: &str, error: &str) -> Json {
    Json::obj([
        ("id", id.map(Json::str).unwrap_or(Json::Null)),
        ("status", Json::str(status)),
        ("error", Json::str(error)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> &'static Path {
        Path::new(".")
    }

    #[test]
    fn analyze_requests_parse_to_batch_jobs() {
        let req = parse_request(
            r#"{"id": "r1", "job": {"benchmark": "crc"},
                "variant": {"hw": "no-cache"}, "deadline_ms": 250, "client": "ci"}"#,
            base(),
        )
        .unwrap();
        let Request::Analyze(a) = req else { panic!("expected analyze") };
        assert_eq!(a.id, "r1");
        assert_eq!(a.client.as_deref(), Some("ci"));
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.job.name(), "crc", "variant name defaults to `default`");
        assert!(a.job.config.hw.icache.is_none());
    }

    #[test]
    fn sampling_variants_reach_the_served_job() {
        let req = parse_request(
            r#"{"id": "r1", "job": {"benchmark": "crc"},
                "variant": {"sampling": {"samples": 16, "seed": 3}}}"#,
            base(),
        )
        .unwrap();
        let Request::Analyze(a) = req else { panic!("expected analyze") };
        assert_eq!(a.job.sampling, Some(stamp_core::SampleParams { samples: 16, seed: 3 }));
        let e = parse_request(
            r#"{"id": "r2", "job": {"benchmark": "crc"},
                "variant": {"sampling": {"walks": 1}}}"#,
            base(),
        )
        .unwrap_err();
        assert!(e.error.contains("unknown sampling key"), "{}", e.error);
    }

    #[test]
    fn ops_parse_and_unknown_ops_reject() {
        assert!(matches!(
            parse_request(r#"{"id": "p", "op": "ping"}"#, base()).unwrap(),
            Request::Ping { .. }
        ));
        assert!(matches!(
            parse_request(r#"{"id": "s", "op": "stats"}"#, base()).unwrap(),
            Request::Stats { .. }
        ));
        let e = parse_request(r#"{"id": "x", "op": "explode"}"#, base()).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x"));
        assert!(e.error.contains("unknown op"), "{}", e.error);
    }

    #[test]
    fn rejections_are_specific_and_echo_the_id_when_present() {
        let cases: &[(&str, Option<&str>, &str)] = &[
            ("not json", None, "syntax"),
            ("[1]", None, "object"),
            (r#"{"job": {"benchmark": "crc"}}"#, None, "missing `id`"),
            (r#"{"id": 7}"#, None, "`id` must be a string"),
            (r#"{"id": "a", "jobs": {}}"#, Some("a"), "unknown request key `jobs`"),
            (r#"{"id": "b"}"#, Some("b"), "need a `job`"),
            (r#"{"id": "c", "job": {"benchmark": "nope"}}"#, Some("c"), "unknown benchmark"),
            (r#"{"id": "d", "job": {"benchmark": "crc", "peel": 1}}"#, Some("d"), "unknown"),
            (
                r#"{"id": "e", "job": {"benchmark": "crc"}, "variant": {"hw": "turbo"}}"#,
                Some("e"),
                "unknown hw",
            ),
            (r#"{"id": "f", "job": {"benchmark": "crc"}, "deadline_ms": -1}"#, Some("f"), "dead"),
        ];
        for (line, id, needle) in cases {
            let e = parse_request(line, base()).unwrap_err();
            assert_eq!(e.id.as_deref(), *id, "line {line:?}");
            assert!(e.error.contains(needle), "line {line:?} gave `{}`", e.error);
        }
    }

    #[test]
    fn responses_render_with_stable_shapes() {
        let ok = ok_response("r1", Json::obj([("wcet", Json::int(7))]), 0.5, 1.5).to_string();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        assert!(ok.contains("\"result\":{\"wcet\":7}"), "{ok}");
        let to = timeout_response("r2", 5, 1.0, 5.0).to_string();
        assert!(to.contains("\"deadline of 5 ms exceeded\""), "{to}");
        let over = error_response(Some("r3"), "overloaded", "queue full (2)").to_string();
        assert!(over.contains("\"status\":\"overloaded\""), "{over}");
        let bad = error_response(None, "bad_request", "missing `id`").to_string();
        assert!(bad.contains("\"id\":null"), "{bad}");
    }
}
