//! Criterion series: analysis time vs. program size (experiment E6,
//! "figure" — plot time against instruction count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_core::WcetAnalysis;
use stamp_isa::asm::assemble;
use stamp_suite::{generate, GenConfig};
use std::time::Duration;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_vs_size");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for constructs in [2usize, 8, 24, 48] {
        // Deterministic program per size class.
        let mut rng = StdRng::seed_from_u64(42 + constructs as u64);
        let src = generate(&mut rng, &GenConfig { constructs, ..GenConfig::default() });
        let program = assemble(&src).expect("generated");
        let insns = program.insn_count();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{insns}_insns")),
            &program,
            |bench, p| bench.iter(|| WcetAnalysis::new(p).run().expect("analysis").wcet),
        );
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
