//! Criterion benchmarks of the analysis phases on corpus tasks
//! (experiment E6 companion: "reasonable time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stamp_ai::{Icfg, VivuConfig};
use stamp_cache::CacheAnalysis;
use stamp_cfg::CfgBuilder;
use stamp_core::{AnalysisConfig, WcetAnalysis};
use stamp_hw::HwConfig;
use stamp_loopbound::{LoopBoundAnalysis, LoopBoundOptions};
use stamp_pipeline::PipelineAnalysis;
use stamp_suite::benchmarks;
use stamp_value::{ValueAnalysis, ValueOptions};
use std::time::Duration;

fn full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for name in ["fibcall", "crc", "insertsort", "matmult", "switchcase"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let program = b.program();
        let ann = b.annotations();
        group.bench_with_input(BenchmarkId::from_parameter(name), &program, |bench, p| {
            bench.iter(|| {
                WcetAnalysis::new(p)
                    .config(AnalysisConfig::default())
                    .annotations(ann.clone())
                    .run()
                    .expect("analysis")
                    .wcet
            })
        });
    }
    group.finish();
}

fn individual_phases(c: &mut Criterion) {
    let b = benchmarks().into_iter().find(|b| b.name == "matmult").unwrap();
    let program = b.program();
    let hw = HwConfig::default();
    let cfg = CfgBuilder::new(&program).build().unwrap();
    let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
    let va = ValueAnalysis::run(&program, &hw, &cfg, &icfg, &ValueOptions::default());
    let ca = CacheAnalysis::run(&hw, &cfg, &icfg, &va);
    let pa = PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va);
    let lb = LoopBoundAnalysis::run(&program, &cfg, &icfg, &va, &LoopBoundOptions::default());

    let mut group = c.benchmark_group("phases_matmult");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("cfg_building", |bench| {
        bench.iter(|| CfgBuilder::new(&program).build().unwrap().blocks().len())
    });
    group.bench_function("context_expansion", |bench| {
        bench.iter(|| Icfg::build(&cfg, &VivuConfig::default()).unwrap().nodes().len())
    });
    group.bench_function("value_analysis", |bench| {
        bench.iter(|| {
            ValueAnalysis::run(&program, &hw, &cfg, &icfg, &ValueOptions::default())
                .precision_summary()
                .total()
        })
    });
    group.bench_function("loop_bounds", |bench| {
        bench.iter(|| {
            LoopBoundAnalysis::run(&program, &cfg, &icfg, &va, &LoopBoundOptions::default())
                .bounds()
                .len()
        })
    });
    group.bench_function("cache_analysis", |bench| {
        bench.iter(|| CacheAnalysis::run(&hw, &cfg, &icfg, &va).fetch_stats().total())
    });
    group.bench_function("pipeline_analysis", |bench| {
        bench.iter(|| PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va).times().len())
    });
    group.bench_function("path_analysis_ilp", |bench| {
        bench.iter(|| {
            stamp_path::analyze(&cfg, &icfg, &va, &lb, &pa, &Default::default()).expect("path").wcet
        })
    });
    group.finish();
}

criterion_group!(benches, full_pipeline, individual_phases);
criterion_main!(benches);
