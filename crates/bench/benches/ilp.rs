//! Criterion benchmarks of the exact ILP solver on IPET-shaped problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stamp_ilp::{CmpOp, LpProblem};
use std::time::Duration;

/// Builds a chain-of-diamonds flow problem with `n` diamonds — the
/// structural skeleton of an IPET instance.
fn diamond_chain(n: usize) -> LpProblem {
    let mut lp = LpProblem::new();
    let source = lp.add_var("source", 0);
    lp.add_constraint([(source, 1)], CmpOp::Eq, 1);
    let mut incoming = source;
    for i in 0..n {
        let left = lp.add_var(format!("l{i}"), 3 + (i % 5) as i64);
        let right = lp.add_var(format!("r{i}"), 7 - (i % 3) as i64);
        let out = lp.add_var(format!("o{i}"), 1);
        // split: incoming = left + right; join: left + right = out.
        lp.add_constraint([(incoming, 1), (left, -1), (right, -1)], CmpOp::Eq, 0);
        lp.add_constraint([(left, 1), (right, 1), (out, -1)], CmpOp::Eq, 0);
        incoming = out;
    }
    lp
}

/// A loop-bound-style instance: `n` nested counters with multiplying
/// bounds.
fn loop_nest(n: usize) -> LpProblem {
    let mut lp = LpProblem::new();
    let entry = lp.add_var("entry", 0);
    lp.add_constraint([(entry, 1)], CmpOp::Eq, 1);
    let mut outer = entry;
    for i in 0..n {
        let body = lp.add_var(format!("body{i}"), 2 + i as i64);
        // body ≤ 10 × outer.
        lp.add_constraint([(body, 1), (outer, -10)], CmpOp::Le, 0);
        outer = body;
    }
    lp
}

fn ilp_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for n in [4usize, 16, 48] {
        let lp = diamond_chain(n);
        group.bench_with_input(BenchmarkId::new("diamond_chain", n), &lp, |bench, lp| {
            bench.iter(|| lp.maximize_integer().expect("solvable").objective)
        });
    }
    for n in [2usize, 4, 8] {
        let lp = loop_nest(n);
        group.bench_with_input(BenchmarkId::new("loop_nest", n), &lp, |bench, lp| {
            bench.iter(|| lp.maximize_integer().expect("solvable").objective)
        });
    }
    group.finish();
}

criterion_group!(benches, ilp_bench);
criterion_main!(benches);
