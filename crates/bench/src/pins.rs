//! Pinned analysis results for the whole corpus.
//!
//! These values were recorded with the **pre-refactor** kernel (commit
//! 848c9d7, `BTreeSet` worklist, per-edge `State::clone`, `BTreeMap`
//! cache sets) and gate every later kernel change: the solver rework of
//! the allocation-lean kernel must reproduce them **bit-identically** —
//! same WCET and stack bounds, same cache classification counts, same
//! solver `evaluations` — or the worklist reordering changed analysis
//! semantics rather than just its speed.
//!
//! Checked by the `corpus_pins` regression test and by
//! `kernel_bench --check` (the CI `bench-smoke` job). Regenerate with
//! `cargo run -p stamp_bench --release --bin kernel_bench -- --print-pins`
//! — but only after convincing yourself the drift is an intended
//! precision change, not an accident.

/// Pinned per-benchmark analysis invariants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusPin {
    /// Benchmark name (`stamp_suite::benchmarks`).
    pub name: &'static str,
    /// WCET bound in cycles; `None` for stack-only (recursive) tasks.
    pub wcet: Option<u64>,
    /// Stack bound in bytes.
    pub stack: u32,
    /// Total solver node evaluations (value + cache + pipeline), 0 for
    /// stack-only tasks.
    pub evaluations: u64,
    /// I-cache classifications `[always-hit, always-miss, persistent,
    /// not-classified]`.
    pub fetch: [usize; 4],
    /// D-cache classifications, same order.
    pub data: [usize; 4],
}

/// The pinned corpus results (see module docs for provenance).
#[rustfmt::skip] // table: one pin per line, matching --print-pins output
pub const CORPUS: &[CorpusPin] = &[
    CorpusPin { name: "fibcall", wcet: Some(242), stack: 0, evaluations: 20, fetch: [11, 3, 0, 0], data: [0, 0, 0, 0] },
    CorpusPin { name: "insertsort", wcet: Some(1090), stack: 0, evaluations: 75, fetch: [42, 6, 1, 0], data: [1, 1, 3, 0] },
    CorpusPin { name: "bsort", wcet: Some(1468), stack: 0, evaluations: 96, fetch: [42, 5, 0, 0], data: [3, 1, 4, 0] },
    CorpusPin { name: "matmult", wcet: Some(4680), stack: 0, evaluations: 142, fetch: [212, 10, 0, 0], data: [2, 2, 12, 0] },
    CorpusPin { name: "crc", wcet: Some(443), stack: 0, evaluations: 15, fetch: [22, 5, 0, 0], data: [1, 2, 1, 0] },
    CorpusPin { name: "fir", wcet: Some(1824), stack: 0, evaluations: 58, fetch: [79, 7, 0, 0], data: [1, 2, 5, 0] },
    CorpusPin { name: "bs", wcet: Some(299), stack: 0, evaluations: 64, fetch: [28, 7, 1, 0], data: [0, 2, 0, 1] },
    CorpusPin { name: "cnt", wcet: Some(286), stack: 0, evaluations: 55, fetch: [20, 4, 0, 0], data: [0, 1, 1, 0] },
    CorpusPin { name: "switchcase", wcet: Some(279), stack: 0, evaluations: 66, fetch: [30, 8, 3, 0], data: [2, 2, 0, 0] },
    CorpusPin { name: "prime", wcet: Some(385), stack: 0, evaluations: 57, fetch: [14, 3, 0, 0], data: [0, 0, 0, 0] },
    CorpusPin { name: "statemate", wcet: Some(284), stack: 0, evaluations: 43, fetch: [22, 6, 0, 0], data: [0, 1, 1, 0] },
    CorpusPin { name: "nested", wcet: Some(134), stack: 112, evaluations: 34, fetch: [18, 6, 0, 0], data: [0, 2, 0, 0] },
    CorpusPin { name: "arraysum", wcet: Some(3243), stack: 0, evaluations: 18, fetch: [16, 3, 0, 0], data: [0, 1, 1, 0] },
    CorpusPin { name: "fdct", wcet: Some(195), stack: 0, evaluations: 16, fetch: [31, 7, 0, 0], data: [4, 1, 3, 0] },
    CorpusPin { name: "ns", wcet: Some(1735), stack: 0, evaluations: 184, fetch: [127, 8, 1, 0], data: [1, 1, 6, 0] },
    CorpusPin { name: "memcpy", wcet: Some(308), stack: 0, evaluations: 19, fetch: [17, 4, 0, 0], data: [0, 1, 1, 1] },
    CorpusPin { name: "fac", wcet: None, stack: 88, evaluations: 0, fetch: [0, 0, 0, 0], data: [0, 0, 0, 0] },
];

/// Pinned solver evaluations of the E6 scaling series
/// `(constructs, evaluations)`.
pub const SCALING_EVALS: &[(usize, u64)] = &[
    (2, 84),
    (4, 42),
    (8, 133),
    (16, 124),
    (32, 538),
    (64, 824),
    (128, 2042),
    (256, 4423),
    (640, 10418),
];

/// One task's measured invariants, in pin-comparable form. `stack` is
/// an `Option` because a failed stack analysis measures as "absent"
/// (and must therefore drift against any pin).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasuredTask {
    /// Task name (matched against [`CorpusPin::name`]).
    pub name: String,
    /// Measured WCET bound.
    pub wcet: Option<u64>,
    /// Measured stack bound.
    pub stack: Option<u32>,
    /// Measured solver evaluations.
    pub evaluations: u64,
    /// Measured I-cache classifications.
    pub fetch: [usize; 4],
    /// Measured D-cache classifications.
    pub data: [usize; 4],
}

impl MeasuredTask {
    fn matches(&self, pin: &CorpusPin) -> bool {
        self.wcet == pin.wcet
            && self.stack == Some(pin.stack)
            && self.evaluations == pin.evaluations
            && self.fetch == pin.fetch
            && self.data == pin.data
    }
}

/// Compares measured corpus results against [`CORPUS`], returning one
/// human-readable drift line per divergence (empty means green). The
/// single comparison used by every pin gate — `kernel_bench --check`
/// and `stamp batch --check-pins` — so a pin-field change cannot make
/// the two gates diverge.
pub fn check_corpus(measured: &[MeasuredTask]) -> Vec<String> {
    let mut drift = Vec::new();
    for pin in CORPUS {
        match measured.iter().find(|m| m.name == pin.name) {
            None => drift.push(format!("{}: pinned but not measured", pin.name)),
            Some(m) if !m.matches(pin) => {
                drift.push(format!("{}: pinned {pin:?} != measured {m:?}", pin.name))
            }
            _ => {}
        }
    }
    for m in measured {
        if !CORPUS.iter().any(|p| p.name == m.name) {
            drift.push(format!("{}: no pin recorded", m.name));
        }
    }
    drift
}
