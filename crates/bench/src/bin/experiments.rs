//! Regenerates every experiment table/figure E1–E10 (see DESIGN.md for
//! the index and EXPERIMENTS.md for recorded results).
//!
//! ```sh
//! cargo run -p stamp-bench --release --bin experiments
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stamp_ai::VivuConfig;
use stamp_bench::{analyze, observed, ratio, try_analyze};
use stamp_core::{AnalysisConfig, StackAnalysis, WcetAnalysis};
use stamp_hw::HwConfig;
use stamp_isa::asm::assemble;
use stamp_stack::{OsekSystem, Task};
use stamp_suite::{benchmarks, generate, GenConfig};
use stamp_value::{DomainKind, ValueOptions};

fn main() {
    let hw = HwConfig::default();
    e1_wcet_vs_observed(&hw);
    e2_stack_vs_observed(&hw);
    e3_value_precision();
    e4_infeasible_paths();
    e5_cache_classification(&hw);
    e6_scaling();
    e7_domain_ablation();
    e8_osek();
    e9_cache_sweep();
    e10_vivu_ablation();
}

fn header(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// E1: WCET bound vs worst observed execution.
fn e1_wcet_vs_observed(hw: &HwConfig) {
    header(
        "E1",
        "WCET bounds vs. simulated worst case (\"tight upper bounds … in reasonable time\")",
    );
    println!("| benchmark | WCET bound | worst observed | ratio | analysis time |");
    println!("|---|---:|---:|---:|---:|");
    for b in benchmarks().iter().filter(|b| b.supports_wcet) {
        let report = analyze(b, AnalysisConfig::default());
        let (obs, _) = observed(b, hw, 50, 0xE1);
        println!(
            "| {} | {} | {} | {} | {:.1} ms |",
            b.name,
            report.wcet,
            obs,
            ratio(report.wcet, obs),
            report.analysis_seconds() * 1e3
        );
    }
}

/// E2: stack bound vs observed watermark.
fn e2_stack_vs_observed(hw: &HwConfig) {
    header("E2", "stack bounds vs. simulated watermark (StackAnalyzer, §2)");
    println!("| benchmark | stack bound | observed | exact? | mode |");
    println!("|---|---:|---:|---|---|");
    for b in benchmarks() {
        let program = b.program();
        let report = StackAnalysis::new(&program)
            .hw(*hw)
            .annotations(b.annotations())
            .run()
            .expect("stack analysis");
        let (_, obs) = observed(&b, hw, 20, 0xE2);
        println!(
            "| {} | {} | {} | {} | {} |",
            b.name,
            report.bound,
            obs,
            if report.bound == obs { "yes" } else { "no" },
            report.mode
        );
    }
}

/// E3: value-analysis address precision.
fn e3_value_precision() {
    header(
        "E3",
        "address precision (\"only a few indirect accesses cannot be determined exactly\")",
    );
    println!("| benchmark | exact | bounded | unknown | % determined |");
    println!("|---|---:|---:|---:|---:|");
    let mut tot = (0usize, 0usize, 0usize);
    for b in benchmarks().iter().filter(|b| b.supports_wcet) {
        let r = analyze(b, AnalysisConfig::default());
        let p = r.precision;
        tot = (tot.0 + p.exact, tot.1 + p.bounded, tot.2 + p.unknown);
        let pct = 100.0 * (p.exact + p.bounded) as f64 / p.total().max(1) as f64;
        println!("| {} | {} | {} | {} | {pct:.0}% |", b.name, p.exact, p.bounded, p.unknown);
    }
    let total = tot.0 + tot.1 + tot.2;
    println!(
        "| **all** | {} | {} | {} | {:.0}% |",
        tot.0,
        tot.1,
        tot.2,
        100.0 * (tot.0 + tot.1) as f64 / total.max(1) as f64
    );
}

/// E4: infeasible-path pruning.
fn e4_infeasible_paths() {
    header(
        "E4",
        "constant conditions and infeasible paths (\"need not be determined in the first place\")",
    );
    println!("| benchmark | constant conds | infeasible edges | WCET (pruned) | WCET (no pruning) | saved |");
    println!("|---|---:|---:|---:|---:|---:|");
    for name in ["statemate", "insertsort", "switchcase", "crc", "matmult"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let pruned = analyze(&b, AnalysisConfig::default());
        let cfg = AnalysisConfig { use_infeasible: false, ..AnalysisConfig::default() };
        let loose = analyze(&b, cfg);
        let saved = 100.0 * (loose.wcet as f64 - pruned.wcet as f64) / loose.wcet as f64;
        println!(
            "| {} | {} | {} | {} | {} | {saved:.0}% |",
            name, pruned.constant_branches, pruned.infeasible_edges, pruned.wcet, loose.wcet
        );
    }
}

/// E5: cache classification rates and the all-miss comparison.
fn e5_cache_classification(hw: &HwConfig) {
    header("E5", "cache classification (AH/AM/PS/NC) and WCET vs. the all-miss assumption");
    println!("| benchmark | fetch AH | fetch AM | fetch PS | fetch NC | data AH | data AM | data PS | data NC | WCET | WCET all-miss |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for b in benchmarks().iter().filter(|b| b.supports_wcet) {
        let r = analyze(b, AnalysisConfig::default());
        // All-miss: analyze against a cache-less model. Because the flat
        // penalty covers both hit and miss costs of the real hardware,
        // this is exactly the sound bound one gets without cache analysis.
        let allmiss_cfg = AnalysisConfig {
            hw: HwConfig { icache: None, dcache: None, ..*hw },
            ..AnalysisConfig::default()
        };
        let allmiss = analyze(b, allmiss_cfg);
        let (f, d) = (r.fetch_stats, r.data_stats);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            b.name,
            f.hit,
            f.miss,
            f.persistent,
            f.unclassified,
            d.hit,
            d.miss,
            d.persistent,
            d.unclassified,
            r.wcet,
            allmiss.wcet
        );
    }
}

/// E6: analysis time vs. program size (figure series).
fn e6_scaling() {
    header("E6", "analysis time vs. program size (\"efficient method\", figure series)");
    println!("| instructions | supergraph nodes | solver evaluations | analysis time |");
    println!("|---:|---:|---:|---:|");
    let mut rng = StdRng::seed_from_u64(0xE6);
    for constructs in [2usize, 4, 8, 16, 32, 64] {
        let cfg = GenConfig { constructs, functions: 2, ..GenConfig::default() };
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).expect("generated");
        let report = WcetAnalysis::new(&program).run().expect("analysis");
        println!(
            "| {} | {} | {} | {:.1} ms |",
            report.insns,
            report.nodes,
            report.evaluations,
            report.analysis_seconds() * 1e3
        );
    }
}

/// E7: value-domain hierarchy ablation.
fn e7_domain_ablation() {
    header("E7", "domain hierarchy (constants ⊂ intervals ⊂ strided intervals, §1)");
    println!("| benchmark | const-prop WCET | interval WCET | strided WCET |");
    println!("|---|---:|---:|---:|");
    for name in ["fibcall", "crc", "cnt", "fir", "insertsort", "arraysum"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let mut row = format!("| {name} |");
        for domain in [DomainKind::Const, DomainKind::Interval, DomainKind::Strided] {
            let cfg = AnalysisConfig {
                value: ValueOptions { domain, ..ValueOptions::default() },
                ..AnalysisConfig::default()
            };
            match try_analyze(&b, cfg) {
                Ok(r) => row.push_str(&format!(" {} |", r.wcet)),
                Err(_) => row.push_str(" fails (no loop bound) |"),
            }
        }
        println!("{row}");
    }
}

/// E8: OSEK whole-system stack.
fn e8_osek() {
    header("E8", "whole-ECU stack over preemption chains (ref [3])");
    let image = r#"
        .text
main:   halt
t_bg:   addi sp, sp, -192
        addi sp, sp, 192
        ret
t_ctl:  addi sp, sp, -96
        sw   lr, 0(sp)
        call helper
        lw   lr, 0(sp)
        addi sp, sp, 96
        ret
t_comm: addi sp, sp, -120
        addi sp, sp, 120
        ret
t_alarm: addi sp, sp, -40
        addi sp, sp, 40
        ret
helper: addi sp, sp, -64
        addi sp, sp, 64
        ret
"#;
    let program = assemble(image).expect("assembles");
    let mut tasks = Vec::new();
    println!("| task | priority | preemptable | stack bound |");
    println!("|---|---:|---|---:|");
    for (entry, prio, preempt) in
        [("t_bg", 1, true), ("t_ctl", 2, true), ("t_comm", 3, false), ("t_alarm", 4, true)]
    {
        let bound = StackAnalysis::new(&program).run_task(entry).expect("task").bound;
        println!("| {entry} | {prio} | {} | {bound} |", if preempt { "yes" } else { "no" });
        tasks.push(if preempt {
            Task::new(entry, prio, bound)
        } else {
            Task::non_preemptable(entry, prio, bound)
        });
    }
    let sys = OsekSystem::new(tasks);
    println!();
    println!("naive reservation (Σ tasks): **{} bytes**", sys.naive_bound());
    println!("preemption-chain bound:      **{} bytes**", sys.system_bound());
    println!(
        "saving: **{} bytes ({:.0}%)**",
        sys.naive_bound() - sys.system_bound(),
        100.0 * (sys.naive_bound() - sys.system_bound()) as f64 / sys.naive_bound() as f64
    );
}

/// E9: WCET vs cache size (figure series).
fn e9_cache_sweep() {
    header("E9", "WCET bound vs. cache size (\"most cost-efficient hardware\", §4; figure series)");
    println!("| cache bytes | matmult | fir | bsort |");
    println!("|---:|---:|---:|---:|");
    for bytes in [64u32, 128, 256, 512, 1024, 4096] {
        let mut row = format!("| {bytes} |");
        for name in ["matmult", "fir", "bsort"] {
            let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
            let cfg = AnalysisConfig {
                hw: HwConfig::with_cache_bytes(bytes),
                ..AnalysisConfig::default()
            };
            let r = analyze(&b, cfg);
            row.push_str(&format!(" {} |", r.wcet));
        }
        println!("{row}");
    }
    // The uncached endpoint for reference.
    let mut row = String::from("| none |");
    for name in ["matmult", "fir", "bsort"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let cfg = AnalysisConfig { hw: HwConfig::no_cache(), ..AnalysisConfig::default() };
        row.push_str(&format!(" {} |", analyze(&b, cfg).wcet));
    }
    println!("{row}");
}

/// E10: VIVU context ablation.
fn e10_vivu_ablation() {
    header("E10", "VIVU contexts (virtual unrolling) ablation");
    println!("| benchmark | contexts off (peel 0) | full VIVU (peel 1) | nodes off/on |");
    println!("|---|---:|---:|---|");
    for name in ["fibcall", "insertsort", "bsort", "matmult", "crc"] {
        let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let full = analyze(&b, AnalysisConfig::default());
        let cfg = AnalysisConfig { vivu: VivuConfig::no_unrolling(), ..AnalysisConfig::default() };
        let flat = analyze(&b, cfg);
        println!("| {} | {} | {} | {}/{} |", name, flat.wcet, full.wcet, flat.nodes, full.nodes);
    }
    // Keep rng alive for reproducibility notes.
    let _ = StdRng::seed_from_u64(0).gen::<u8>();
}
