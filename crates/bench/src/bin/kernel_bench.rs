//! The analysis-kernel benchmark: measures wall time, solver
//! `evaluations` and result invariants of the whole corpus, the
//! per-phase breakdown on `matmult`, and the E6 scaling series, then
//! writes the machine-readable `BENCH_kernel.json`.
//!
//! ```sh
//! cargo run -p stamp_bench --release --bin kernel_bench -- --out BENCH_kernel.json
//! ```
//!
//! Flags:
//!
//! * `--quick`      — best of two repetitions per workload instead of
//!   seven (CI smoke mode);
//! * `--check`      — compare WCET/stack bounds, `evaluations` and cache
//!   classification counts against the pinned values in
//!   [`stamp_bench::pins`], and the parallel batch report against the
//!   serial one (byte-for-byte), exiting non-zero on any drift;
//! * `--out PATH`   — where to write the JSON (default `BENCH_kernel.json`);
//! * `--diff PATH`  — read a previously committed `BENCH_kernel.json`
//!   and print a markdown wall-time delta table (current vs committed)
//!   to stdout, flagging — but never failing on — workloads past a
//!   1.5× regression tolerance (the CI job appends this to
//!   `$GITHUB_STEP_SUMMARY`);
//! * `--print-pins` — regenerate the source of the pin table.
//!
//! Besides the serial workloads, the harness measures the **batch
//! engine**: the corpus × {default, no-cache, ideal} job matrix run
//! through `stamp_core::run_batch` at 1/2/4/8 workers, reported as
//! aggregate throughput (jobs/s) and scaling-per-core under a `batch`
//! key. The `cores` field records the machine's available parallelism —
//! speedup is bounded by it, so a 1-core CI container shows ~1.0×
//! while the numbers in a multi-core run show the real scaling.
//!
//! The **artifact store** is measured separately under an `artifacts`
//! key: the same corpus matrix run cold (fresh store) versus warm
//! (store primed by a previous pass), with per-phase hit/miss counts.
//! `--check` additionally gates on the warm-pass hit rate (≥ 50%;
//! structurally it is 100%) and on cached results being byte-identical
//! to a `--no-artifact-cache` run.
//!
//! The **durable store** (`stamp batch --store DIR`) is measured under
//! an `artifacts_disk` key: the same matrix run by a cold process
//! (empty directory) versus a warm process (fresh in-memory store over
//! a primed directory — a reopened log, exactly what a second `stamp
//! batch` invocation sees). `--check` gates on the warm-process disk
//! hit rate (≥ 50%) and on its results being byte-identical to a
//! storeless run.
//!
//! The **fuzz engine** (`stamp fuzz`) is measured under a `fuzz` key: a
//! fixed-seed differential campaign (generate → analyze → simulate →
//! compare) at 1 and 4 workers, reported as programs analyzed+simulated
//! per second. `--check` gates on the campaign being green (zero
//! violations — a violation here is a soundness bug, not a perf
//! regression) and on serial/parallel reports being byte-identical.
//!
//! The **sampling engine** (`stamp sample`) is measured under a
//! `sampling` key: the corpus with every WCET job walking 64
//! seed-pinned loop-bound-weighted paths, run cold (fresh store)
//! versus artifact-warm (store primed by a *plain* batch pass — the
//! sampler reuses the batch's value/cache/pipeline artifacts and only
//! adds the walks), reported as completed samples/s. `--check` gates
//! on serial/4-worker sampling reports being byte-identical, on every
//! observed-max staying ≤ its job's WCET bound (the soundness
//! invariant the sampler shares with `stamp fuzz`), and on the warm
//! hit rate (≥ 50%).
//!
//! The **serve engine** (`stamp serve`) is measured under a `serve`
//! key: the corpus × 3-variant request mix pushed through an in-process
//! daemon engine (admission queue + workers over one warm store), run
//! by a cold engine versus a warm one, reported as sustained requests/s
//! and the warm-pass artifact hit rate. `--check` gates on the warm hit
//! rate (≥ 50%; structurally ~100%) and on every served result being
//! byte-identical to `run_batch` over the same job matrix.
//!
//! The **procedure-summary path solver** is measured under a
//! `summaries` key: the E6 scaling series (extended to 640 constructs)
//! analyzed twice per size — once with the monolithic whole-iCFG ILP
//! (`summaries: false`) and once with the per-segment summary solver —
//! comparing the path-phase wall time alone. `--check` gates on the
//! WCET bounds being identical in both modes at every size (the
//! summary decomposition is exact, not an approximation), on the
//! summarized solver beating the monolithic one by ≥ 25× at the
//! largest size, and on its wall time growing no faster than the ILP
//! itself across the 64 → 640 decade (sub-linear in solver terms —
//! the monolithic solve grows super-linearly over the same span).
//!
//! The **microarchitectural summaries** are measured under a `uarch`
//! key: the E6 series with the cache phase timed in three forms — the
//! executable-specification reference analysis, the optimized
//! monolithic fixpoint, and the per-procedure region-summary
//! composition — plus a corpus-wide batch identity check. `--check`
//! gates on WCET and classification identity at every size, on the
//! corpus results being byte-identical between summarized and
//! monolithic modes, on the summarized path actually engaging at the
//! largest size, and on it beating the reference analysis by ≥ 5×
//! there.
//!
//! The emitted JSON carries a `before` section: wall times recorded with
//! this same harness at the pre-refactor kernel (commit 848c9d7, full
//! `State::clone`-per-edge solver, `BTreeMap` cache sets), so the file
//! documents the measured speedup, not an assertion of one.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_bench::pins::{self, CorpusPin};
use stamp_core::{
    run_batch, run_batch_with, AnalysisConfig, ArtifactStats, ArtifactStore, BatchVariant, Json,
    PhaseId, SampleParams, StackAnalysis, WcetAnalysis, WcetReport,
};
use stamp_hw::HwConfig;
use stamp_isa::asm::assemble;
use stamp_suite::{benchmarks, corpus_matrix, generate, GenConfig};

/// Wall times recorded at the pre-refactor kernel (commit 848c9d7) with
/// this harness in `--full` mode on the same machine that produced the
/// committed `BENCH_kernel.json`. Times in milliseconds, best of 7.
mod baseline {
    pub const COMMIT: &str = "848c9d7";
    pub const CORPUS_MS: &[(&str, f64)] = &[
        ("fibcall", 0.129),
        ("insertsort", 2.232),
        ("bsort", 1.971),
        ("matmult", 5.822),
        ("crc", 0.280),
        ("fir", 0.936),
        ("bs", 1.362),
        ("cnt", 0.437),
        ("switchcase", 0.914),
        ("prime", 0.502),
        ("statemate", 1.091),
        ("nested", 0.483),
        ("arraysum", 0.966),
        ("fdct", 0.177),
        ("ns", 12.896),
        ("memcpy", 0.237),
    ];
    pub const SCALING_MS: &[(usize, f64)] =
        &[(2, 1.441), (4, 0.844), (8, 9.230), (16, 10.432), (32, 321.593), (64, 1770.884)];
    pub const PHASES_MS: &[(&str, f64)] = &[
        ("cfg_building", 0.005),
        ("context_expansion", 0.017),
        ("value_analysis", 0.056),
        ("loop_bounds", 0.009),
        ("cache_analysis", 0.767),
        ("pipeline_analysis", 0.011),
        ("path_analysis_ilp", 4.770),
    ];
}

struct Args {
    quick: bool,
    check: bool,
    print_pins: bool,
    out: String,
    diff: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        print_pins: false,
        out: "BENCH_kernel.json".to_string(),
        diff: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--print-pins" => args.print_pins = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--diff" => args.diff = Some(it.next().expect("--diff needs a path")),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Best-of-`reps` wall time of `f`, in milliseconds, plus the last result.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
    }
    (best, last.expect("at least one rep"))
}

struct CorpusRow {
    pin: CorpusPin,
    best_ms: f64,
    phase_ms: Vec<(String, f64)>,
}

fn corpus_row(name: &'static str, reps: usize) -> CorpusRow {
    let b = benchmarks().into_iter().find(|b| b.name == name).expect("benchmark");
    let program = b.program();
    let stack = StackAnalysis::new(&program)
        .annotations(b.annotations())
        .run()
        .expect("stack analysis")
        .bound;
    if !b.supports_wcet {
        return CorpusRow {
            pin: CorpusPin { name, wcet: None, stack, evaluations: 0, fetch: [0; 4], data: [0; 4] },
            best_ms: 0.0,
            phase_ms: Vec::new(),
        };
    }
    let run = || -> WcetReport {
        WcetAnalysis::new(&program)
            .config(AnalysisConfig::default())
            .annotations(b.annotations())
            .run()
            .expect("wcet analysis")
    };
    let (best, report) = best_ms(reps, run);
    let mut phase_ms: Vec<(String, f64)> = Vec::new();
    for p in &report.phases {
        match phase_ms.iter_mut().find(|(n, _)| n == p.name()) {
            Some((_, s)) => *s += p.seconds * 1e3,
            None => phase_ms.push((p.name().to_string(), p.seconds * 1e3)),
        }
    }
    let (f, d) = (report.fetch_stats, report.data_stats);
    CorpusRow {
        pin: CorpusPin {
            name,
            wcet: Some(report.wcet),
            stack,
            evaluations: report.evaluations,
            fetch: [f.hit, f.miss, f.persistent, f.unclassified],
            data: [d.hit, d.miss, d.persistent, d.unclassified],
        },
        best_ms: best,
        phase_ms,
    }
}

struct ScalingRow {
    constructs: usize,
    insns: usize,
    nodes: usize,
    evaluations: u64,
    best_ms: f64,
}

/// The E6 scaling series sizes. The tail past 64 exists because the
/// procedure-summary path solver made the whole-series run affordable —
/// the monolithic ILP alone took ~21 s at 640 constructs. The prefix
/// draws of the shared rng are unchanged by appending sizes, so the
/// pinned evaluations for the original sizes stay valid.
const SCALING_SIZES: &[usize] = &[2, 4, 8, 16, 32, 64, 128, 256, 640];

fn scaling_rows(reps: usize) -> Vec<ScalingRow> {
    // Same seed discipline as experiment E6: one rng across the series.
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut rows = Vec::new();
    for &constructs in SCALING_SIZES {
        let cfg = GenConfig { constructs, functions: 2, ..GenConfig::default() };
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).expect("generated");
        let (best, report) = best_ms(reps, || WcetAnalysis::new(&program).run().expect("analysis"));
        rows.push(ScalingRow {
            constructs,
            insns: report.insns,
            nodes: report.nodes,
            evaluations: report.evaluations,
            best_ms: best,
        });
    }
    rows
}

/// One E6 program analyzed in both path-solver modes: the monolithic
/// whole-iCFG ILP versus the per-segment procedure-summary solver.
struct SummaryRow {
    constructs: usize,
    nodes: usize,
    ilp_vars: usize,
    inlined_path_ms: f64,
    summarized_path_ms: f64,
    inlined_wcet: u64,
    summarized_wcet: u64,
    summaries_computed: u64,
    summaries_reused: u64,
}

/// Best-of-`reps` *path-phase* wall time in milliseconds, plus the last
/// report. Unlike [`best_ms`] this keys the minimum on the phase timer
/// inside the report, so jitter in the other phases cannot pick a rep
/// with a slow path solve.
fn best_path_ms(reps: usize, mut f: impl FnMut() -> WcetReport) -> (f64, WcetReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let report = f();
        let ms: f64 = report
            .phases
            .iter()
            .filter(|p| p.phase == PhaseId::Path)
            .map(|p| p.seconds * 1e3)
            .sum();
        best = best.min(ms);
        last = Some(report);
    }
    (best, last.expect("at least one rep"))
}

/// The procedure-summary workload: the E6 series (same rng discipline
/// as [`scaling_rows`], so the programs are identical) with the path
/// phase timed in both modes. The monolithic solve is super-linear —
/// at 640 constructs it runs for ~21 s — so past 64 constructs it is
/// measured once instead of `reps` times.
fn summaries_rows(reps: usize) -> Vec<SummaryRow> {
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut rows = Vec::new();
    for &constructs in SCALING_SIZES {
        let cfg = GenConfig { constructs, functions: 2, ..GenConfig::default() };
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).expect("generated");
        let (summarized_path_ms, summarized) =
            best_path_ms(reps, || WcetAnalysis::new(&program).run().expect("summarized analysis"));
        let inlined_reps = if constructs > 64 { 1 } else { reps };
        let (inlined_path_ms, inlined) = best_path_ms(inlined_reps, || {
            WcetAnalysis::new(&program).summaries(false).run().expect("inlined analysis")
        });
        rows.push(SummaryRow {
            constructs,
            nodes: summarized.nodes,
            ilp_vars: summarized.ilp_size.0,
            inlined_path_ms,
            summarized_path_ms,
            inlined_wcet: inlined.wcet,
            summarized_wcet: summarized.wcet,
            summaries_computed: summarized.summaries_computed,
            summaries_reused: summarized.summaries_reused,
        });
    }
    rows
}

/// One E6 program's cache phase in three implementations: the naive
/// executable-specification reference (`refdom`: `BTreeMap` domains
/// driven by the naive solver), the optimized monolithic fixpoint, and
/// the per-procedure region-summary composition.
struct UarchRow {
    constructs: usize,
    reference_cache_ms: f64,
    monolithic_cache_ms: f64,
    summarized_cache_ms: f64,
    /// fetch/data classification histograms identical across all three
    /// implementations.
    classes_identical: bool,
    /// Full-analysis WCET identical with uarch summaries on and off.
    wcet_identical: bool,
    /// The summarized path engaged (no validation fallback).
    engaged: bool,
    regions: usize,
    computed: usize,
    reused: usize,
}

/// The microarchitectural-summary workload: the E6 series (same rng
/// discipline as [`scaling_rows`], so the programs are identical) with
/// the cache phase timed in reference / monolithic / summarized form.
/// The reference analysis is deliberately naive, so past 64 constructs
/// it is measured once instead of `reps` times.
fn uarch_rows(reps: usize) -> Vec<UarchRow> {
    use stamp_ai::{Icfg, VivuConfig};
    use stamp_cache::{CacheAnalysis, LocalUarchMemo};
    use stamp_cfg::CfgBuilder;
    use stamp_value::{ValueAnalysis, ValueOptions};

    let classes = |c: &CacheAnalysis| (c.fetch_stats(), c.data_stats());
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut rows = Vec::new();
    for &constructs in SCALING_SIZES {
        let cfg = GenConfig { constructs, functions: 2, ..GenConfig::default() };
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).expect("generated");
        let hw = HwConfig::default();
        let cfg_b = CfgBuilder::new(&program).build().expect("cfg");
        let icfg = Icfg::build(&cfg_b, &VivuConfig::default()).expect("icfg");
        let va = ValueAnalysis::run(&program, &hw, &cfg_b, &icfg, &ValueOptions::default());

        let (summarized_cache_ms, summarized) = best_ms(reps, || {
            let mut memo = LocalUarchMemo::default();
            CacheAnalysis::run_summarized(&hw, &cfg_b, &icfg, &va, &mut memo)
        });
        let (monolithic_cache_ms, mono) =
            best_ms(reps, || CacheAnalysis::run(&hw, &cfg_b, &icfg, &va));
        let ref_reps = if constructs > 64 { 1 } else { reps };
        let (reference_cache_ms, reference) =
            best_ms(ref_reps, || CacheAnalysis::run_reference(&hw, &cfg_b, &icfg, &va));

        let (engaged, summarized_classes, stats) = match &summarized {
            Some((ca, stats)) => (true, classes(ca), *stats),
            None => (false, classes(&mono), Default::default()),
        };
        let classes_identical =
            summarized_classes == classes(&mono) && classes(&reference) == classes(&mono);

        let on = WcetAnalysis::new(&program).run().expect("summarized analysis");
        let off =
            WcetAnalysis::new(&program).uarch_summaries(false).run().expect("monolithic analysis");
        rows.push(UarchRow {
            constructs,
            reference_cache_ms,
            monolithic_cache_ms,
            summarized_cache_ms,
            classes_identical,
            wcet_identical: on.wcet == off.wcet,
            engaged,
            regions: stats.regions,
            computed: stats.computed,
            reused: stats.reused,
        });
    }
    rows
}

/// Corpus-wide identity: the deterministic batch results with uarch
/// summaries on versus off, byte-compared. The variant names match in
/// both requests, so the only possible difference is a summarization
/// bug that slipped past the validating fallback.
fn uarch_corpus_identity() -> bool {
    let on = run_batch(&corpus_matrix(&[BatchVariant::default()]), 4).expect("summarized corpus");
    let off = run_batch(
        &corpus_matrix(&[BatchVariant {
            name: "default".to_string(),
            config: AnalysisConfig { uarch_summaries: false, ..AnalysisConfig::default() },
            sampling: None,
        }]),
        4,
    )
    .expect("monolithic corpus");
    on.results_json().to_string() == off.results_json().to_string()
}

/// Per-phase wall times on `matmult` (the criterion `phases` bench,
/// replayed here so the numbers land in the JSON).
fn phase_rows(reps: usize) -> Vec<(&'static str, f64)> {
    use stamp_ai::{Icfg, VivuConfig};
    use stamp_cache::CacheAnalysis;
    use stamp_cfg::CfgBuilder;
    use stamp_hw::HwConfig;
    use stamp_loopbound::{LoopBoundAnalysis, LoopBoundOptions};
    use stamp_pipeline::PipelineAnalysis;
    use stamp_value::{ValueAnalysis, ValueOptions};

    let b = benchmarks().into_iter().find(|b| b.name == "matmult").expect("matmult");
    let program = b.program();
    let hw = HwConfig::default();
    let cfg = CfgBuilder::new(&program).build().expect("cfg");
    let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("icfg");
    let va = ValueAnalysis::run(&program, &hw, &cfg, &icfg, &ValueOptions::default());
    let ca = CacheAnalysis::run(&hw, &cfg, &icfg, &va);
    let pa = PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va);
    let lb = LoopBoundAnalysis::run(&program, &cfg, &icfg, &va, &LoopBoundOptions::default());

    let mut rows = Vec::new();
    rows.push((
        "cfg_building",
        best_ms(reps, || CfgBuilder::new(&program).build().unwrap().blocks().len()).0,
    ));
    rows.push((
        "context_expansion",
        best_ms(reps, || Icfg::build(&cfg, &VivuConfig::default()).unwrap().nodes().len()).0,
    ));
    rows.push((
        "value_analysis",
        best_ms(reps, || {
            ValueAnalysis::run(&program, &hw, &cfg, &icfg, &ValueOptions::default())
                .precision_summary()
                .total()
        })
        .0,
    ));
    rows.push((
        "loop_bounds",
        best_ms(reps, || {
            LoopBoundAnalysis::run(&program, &cfg, &icfg, &va, &LoopBoundOptions::default())
                .bounds()
                .len()
        })
        .0,
    ));
    rows.push((
        "cache_analysis",
        best_ms(reps, || CacheAnalysis::run(&hw, &cfg, &icfg, &va).fetch_stats().total()).0,
    ));
    rows.push((
        "pipeline_analysis",
        best_ms(reps, || PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va).times().len()).0,
    ));
    rows.push((
        "path_analysis_ilp",
        best_ms(reps, || {
            stamp_path::analyze(&cfg, &icfg, &va, &lb, &pa, &Default::default()).expect("path").wcet
        })
        .0,
    ));
    rows
}

/// The batch-engine workload: the whole corpus under three hardware
/// variants, enough jobs (17 × 3) to keep several workers busy.
fn batch_request() -> stamp_core::BatchRequest {
    corpus_matrix(&[
        BatchVariant::default(),
        BatchVariant {
            name: "no-cache".to_string(),
            config: AnalysisConfig { hw: HwConfig::no_cache(), ..AnalysisConfig::default() },
            sampling: None,
        },
        BatchVariant {
            name: "ideal".to_string(),
            config: AnalysisConfig { hw: HwConfig::ideal(), ..AnalysisConfig::default() },
            sampling: None,
        },
    ])
}

struct BatchRow {
    workers: usize,
    wall_ms: f64,
    throughput_per_s: f64,
}

struct BatchBench {
    cores: usize,
    jobs_total: usize,
    variants: Vec<String>,
    rows: Vec<BatchRow>,
    /// Deterministic results of the serial and the 4-worker run, for
    /// the `--check` bit-identity gate.
    serial_results: String,
    parallel_results: String,
}

fn batch_rows(reps: usize) -> BatchBench {
    let request = batch_request();
    let jobs_total = request.jobs.len();
    // Derived from the request, not restated, so the emitted JSON stays
    // truthful if the workload matrix changes (first-seen order; the
    // matrix interleaves variants per target).
    let mut variants: Vec<String> = Vec::new();
    for j in &request.jobs {
        if !variants.contains(&j.variant) {
            variants.push(j.variant.clone());
        }
    }
    let mut rows = Vec::new();
    let mut serial_results = String::new();
    let mut parallel_results = String::new();
    for workers in [1usize, 2, 4, 8] {
        let (wall_ms, report) =
            best_ms(reps, || run_batch(&request, workers).expect("batch run panicked"));
        if workers == 1 {
            serial_results = report.results_json().to_string();
        }
        if workers == 4 {
            parallel_results = report.results_json().to_string();
        }
        rows.push(BatchRow {
            workers,
            wall_ms,
            throughput_per_s: jobs_total as f64 / (wall_ms / 1e3),
        });
    }
    BatchBench {
        cores: stamp_exec::default_workers(),
        jobs_total,
        variants,
        rows,
        serial_results,
        parallel_results,
    }
}

/// The artifact-store workload: the corpus matrix run cold (fresh
/// store, within-run sharing only) versus warm (store primed by a full
/// previous pass), plus a no-store run for the bit-identity gate.
struct ArtifactBench {
    workers: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_stats: ArtifactStats,
    warm_stats: ArtifactStats,
    /// Deterministic results of the cached and the uncached run — the
    /// `--check` gate compares them byte-for-byte (artifact reuse must
    /// be invisible in `results_json`).
    cached_results: String,
    uncached_results: String,
}

impl ArtifactBench {
    fn warm_speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            f64::NAN
        }
    }
}

fn artifact_rows(reps: usize) -> ArtifactBench {
    let request = batch_request();
    let workers = 4;
    // Cold: a fresh store per rep — jobs share artifacts within the
    // pass, but every unique fingerprint is computed once.
    let mut cold_stats = None;
    let mut cached_results = String::new();
    let (cold_ms, _) = best_ms(reps, || {
        let store = ArtifactStore::new();
        let report = run_batch_with(&request, workers, &store).expect("cold batch");
        cold_stats = Some(report.artifacts);
        cached_results = report.results_json().to_string();
    });
    // Warm: one long-lived store primed by a full pass; each measured
    // pass should be ~all hits.
    let store = ArtifactStore::new();
    run_batch_with(&request, workers, &store).expect("priming batch");
    let mut warm_stats = None;
    let (warm_ms, _) = best_ms(reps, || {
        let report = run_batch_with(&request, workers, &store).expect("warm batch");
        warm_stats = Some(report.artifacts);
    });
    // No store at all: the determinism reference.
    let uncached =
        run_batch_with(&request, workers, &ArtifactStore::disabled()).expect("uncached batch");
    ArtifactBench {
        workers,
        cold_ms,
        warm_ms,
        cold_stats: cold_stats.expect("at least one cold rep"),
        warm_stats: warm_stats.expect("at least one warm rep"),
        cached_results,
        uncached_results: uncached.results_json().to_string(),
    }
}

/// The durable-store workload (`stamp batch --store DIR`): the corpus
/// matrix run by a *cold process* (empty directory, every artifact
/// computed and written through) versus a *warm process* (a fresh
/// in-memory store over a directory primed by a previous process —
/// modeled by reopening the log with a second `with_disk` store, which
/// is exactly what a new `stamp batch` invocation does).
struct ArtifactDiskBench {
    workers: usize,
    cold_ms: f64,
    warm_ms: f64,
    cold_stats: ArtifactStats,
    warm_stats: ArtifactStats,
    /// Artifacts in the log after the cold pass.
    artifacts_on_disk: usize,
    /// Deterministic results of the warm-process and the storeless run —
    /// the `--check` gate compares them byte-for-byte.
    warm_results: String,
    storeless_results: String,
}

impl ArtifactDiskBench {
    fn warm_speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            f64::NAN
        }
    }
}

fn artifact_disk_rows(reps: usize) -> ArtifactDiskBench {
    let request = batch_request();
    let workers = 4;
    let dir = std::env::temp_dir().join(format!("stamp-bench-disk-{}", std::process::id()));

    // Cold process: an empty directory per rep — everything is computed
    // and the wall time includes the write-through cost.
    let mut cold_stats = None;
    let (cold_ms, _) = best_ms(reps, || {
        let _ = std::fs::remove_dir_all(&dir);
        let (store, warnings) = ArtifactStore::with_disk(&dir).expect("disk store opens");
        assert!(warnings.is_empty(), "{warnings:?}");
        let report = run_batch_with(&request, workers, &store).expect("cold batch");
        cold_stats = Some(report.artifacts);
    });
    let artifacts_on_disk = {
        let (store, _) = ArtifactStore::with_disk(&dir).expect("disk store reopens");
        store.disk_artifact_count()
    };

    // Warm process: each rep opens a *fresh* store over the primed
    // directory, so the in-memory map is empty and every fill is
    // answered from disk — the cross-process incremental path.
    let mut warm_stats = None;
    let mut warm_results = String::new();
    let (warm_ms, _) = best_ms(reps, || {
        let (store, warnings) = ArtifactStore::with_disk(&dir).expect("disk store reopens");
        assert!(warnings.is_empty(), "{warnings:?}");
        let report = run_batch_with(&request, workers, &store).expect("warm batch");
        warm_stats = Some(report.artifacts);
        warm_results = report.results_json().to_string();
    });
    let storeless =
        run_batch_with(&request, workers, &ArtifactStore::disabled()).expect("storeless batch");
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactDiskBench {
        workers,
        cold_ms,
        warm_ms,
        cold_stats: cold_stats.expect("at least one cold rep"),
        warm_stats: warm_stats.expect("at least one warm rep"),
        artifacts_on_disk,
        warm_results,
        storeless_results: storeless.results_json().to_string(),
    }
}

/// The fuzz-engine workload: a fixed-seed differential campaign at 1
/// and 4 workers. Shrinking is off and no reproducers are written —
/// the campaign is expected green, and the measurement is pure
/// generate→analyze→simulate→compare throughput.
struct FuzzBenchRow {
    workers: usize,
    wall_ms: f64,
    programs_per_s: f64,
}

struct FuzzBench {
    iterations: usize,
    sim_runs: u64,
    rows: Vec<FuzzBenchRow>,
    /// Serial vs 4-worker deterministic reports, for the `--check`
    /// bit-identity gate.
    deterministic: bool,
    violations: usize,
}

fn fuzz_rows(reps: usize) -> FuzzBench {
    use stamp_suite::fuzz::{run_campaign, FuzzConfig};
    let cfg = FuzzConfig {
        iterations: 48,
        seed: 0xF0,
        rounds: 2,
        shrink: false,
        repro_dir: None,
        ..FuzzConfig::default()
    };
    let mut rows = Vec::new();
    let mut serial_results = String::new();
    let mut parallel_results = String::new();
    let mut sim_runs = 0;
    let mut violations = 0;
    for workers in [1usize, 4] {
        let (wall_ms, report) =
            best_ms(reps, || run_campaign(&cfg, workers).expect("fuzz campaign panicked"));
        if workers == 1 {
            serial_results = report.results_json().to_string();
        } else {
            parallel_results = report.results_json().to_string();
        }
        sim_runs = report.sim_runs;
        violations = report.violations();
        rows.push(FuzzBenchRow {
            workers,
            wall_ms,
            programs_per_s: cfg.iterations as f64 / (wall_ms / 1e3),
        });
    }
    FuzzBench {
        iterations: cfg.iterations,
        sim_runs,
        rows,
        deterministic: serial_results == parallel_results,
        violations,
    }
}

/// The sampling-engine workload (`stamp sample`): the single-variant
/// corpus with every WCET job walking 64 seed-pinned paths, cold
/// (fresh store) versus artifact-warm (store primed by a *plain*
/// batch pass — the walks ride on the batch's phase artifacts).
struct SamplingBench {
    workers: usize,
    samples: usize,
    cold_ms: f64,
    warm_ms: f64,
    /// Completed walks across the matrix (one measured pass).
    walks_total: u64,
    /// Whether the serial run's deterministic results were
    /// byte-identical to the warm 4-worker run's — the `--check`
    /// determinism gate (covers worker count *and* cache state).
    deterministic: bool,
    /// Whether every sampled observed-max stayed ≤ its job's WCET
    /// bound — the `--check` soundness gate.
    sound: bool,
    /// Artifact statistics of the measured warm pass alone.
    warm_stats: ArtifactStats,
}

impl SamplingBench {
    fn warm_speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            f64::NAN
        }
    }

    fn warm_samples_per_s(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.walks_total as f64 / (self.warm_ms / 1e3)
        } else {
            f64::NAN
        }
    }
}

fn sampling_request(samples: usize) -> stamp_core::BatchRequest {
    let mut request = corpus_matrix(&[BatchVariant::default()]);
    for job in &mut request.jobs {
        if job.wcet {
            job.sampling = Some(SampleParams { samples, seed: 0 });
        }
    }
    request
}

fn sampling_rows(reps: usize) -> SamplingBench {
    let samples = 64;
    let request = sampling_request(samples);
    let workers = 4;

    // Cold: a fresh store per rep — phases computed, then walked.
    let (cold_ms, _) = best_ms(reps, || {
        run_batch_with(&request, workers, &ArtifactStore::new()).expect("cold sampling batch")
    });

    // Warm: the store primed by a *plain* (non-sampling) batch pass —
    // the measured pass must answer every phase request from the store
    // and spend its time on the walks alone.
    let store = ArtifactStore::new();
    run_batch_with(&corpus_matrix(&[BatchVariant::default()]), workers, &store)
        .expect("priming batch");
    let mut warm_stats = None;
    let mut warm_results = String::new();
    let mut walks_total = 0u64;
    let mut sound = true;
    let (warm_ms, _) = best_ms(reps, || {
        let report = run_batch_with(&request, workers, &store).expect("warm sampling batch");
        warm_stats = Some(report.artifacts);
        warm_results = report.results_json().to_string();
        walks_total = 0;
        sound = true;
        for r in &report.results {
            if let Some(s) = &r.sampling {
                walks_total += s.completed as u64;
                if let (Some(observed), Some(bound)) = (s.observed_max, r.wcet) {
                    sound &= observed <= bound;
                }
            }
        }
    });

    // The determinism reference: serial workers, fresh in-memory store.
    let serial = run_batch(&request, 1).expect("serial sampling batch");

    SamplingBench {
        workers,
        samples,
        cold_ms,
        warm_ms,
        walks_total,
        deterministic: serial.results_json().to_string() == warm_results,
        sound,
        warm_stats: warm_stats.expect("at least one warm rep"),
    }
}

/// The serve-engine workload: the corpus × 3-variant request mix as
/// protocol lines through an in-process daemon [`Engine`], cold (fresh
/// engine and store) versus warm (same engine, store primed by a full
/// previous pass) — the steady state a long-lived daemon reaches.
struct ServeBench {
    workers: usize,
    requests_total: usize,
    cold_ms: f64,
    warm_ms: f64,
    /// Artifact statistics of the measured warm pass alone.
    warm_stats: ArtifactStats,
    /// Whether every served `result` was byte-identical to the
    /// corresponding `run_batch` job — the `--check` identity gate.
    identical_to_batch: bool,
}

impl ServeBench {
    fn warm_requests_per_s(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.requests_total as f64 / (self.warm_ms / 1e3)
        } else {
            f64::NAN
        }
    }
}

fn serve_rows(reps: usize) -> ServeBench {
    use stamp_serve::{Engine, EngineConfig};

    let request = batch_request();
    let workers = 4;
    let config = EngineConfig { workers, ..EngineConfig::default() };
    // One protocol line per batch job, with the request id set to the
    // job's display name so served results can be matched to `run_batch`
    // results one-to-one.
    let lines: Vec<String> = request
        .jobs
        .iter()
        .map(|j| {
            let variant = match j.variant.as_str() {
                "default" => String::new(),
                name => format!(r#", "variant": {{"name": "{name}", "hw": "{name}"}}"#),
            };
            format!(r#"{{"id": "{}", "job": {{"benchmark": "{}"}}{variant}}}"#, j.name(), j.target)
        })
        .collect();
    let pump = |engine: &Engine| -> Vec<Json> {
        let (tx, rx) = std::sync::mpsc::channel();
        for line in &lines {
            engine.submit(line, "bench", tx.clone());
        }
        drop(tx);
        rx.iter().collect()
    };

    // Cold: a fresh engine (and store) per rep, drained inside the
    // measurement — daemon startup to last response.
    let (cold_ms, _) = best_ms(reps, || {
        let engine = Engine::new(ArtifactStore::new(), config.clone());
        let responses = pump(&engine);
        assert_eq!(responses.len(), lines.len(), "every request is answered");
    });

    // Warm: one long-lived engine primed by a full pass; each measured
    // pass runs against the fully warm store.
    let engine = Engine::new(ArtifactStore::new(), config.clone());
    let served = pump(&engine);
    let mut warm_stats = None;
    let (warm_ms, _) = best_ms(reps, || {
        let before = engine.store().stats();
        let responses = pump(&engine);
        assert_eq!(responses.len(), lines.len(), "every request is answered");
        warm_stats = Some(engine.store().stats().since(&before));
    });

    // The identity reference: the same job matrix through `run_batch`.
    let report = run_batch(&request, workers).expect("reference batch");
    let reference: std::collections::BTreeMap<String, String> =
        report.results.iter().map(|r| (r.name.clone(), r.result_json().to_string())).collect();
    let identical_to_batch = served.len() == reference.len()
        && served.iter().all(|resp| {
            let id = resp.get("id").and_then(Json::as_str).unwrap_or("");
            resp.get("status").and_then(Json::as_str) == Some("ok")
                && resp.get("result").map(|r| r.to_string()).as_deref()
                    == reference.get(id).map(String::as_str)
        });

    ServeBench {
        workers,
        requests_total: lines.len(),
        cold_ms,
        warm_ms,
        warm_stats: warm_stats.expect("at least one warm rep"),
        identical_to_batch,
    }
}

/// The wall-time delta table: freshly measured numbers against a
/// previously committed `BENCH_kernel.json`, as markdown on stdout.
/// Purely informational — regressions warn, never fail.
#[allow(clippy::too_many_arguments)] // one parameter per report section
fn print_diff_table(
    committed_path: &str,
    corpus: &[CorpusRow],
    scaling: &[ScalingRow],
    summaries: &[SummaryRow],
    uarch: &[UarchRow],
    phases: &[(&'static str, f64)],
    batch: &BatchBench,
    artifacts: &ArtifactBench,
    artifacts_disk: &ArtifactDiskBench,
    fuzz: &FuzzBench,
    sampling: &SamplingBench,
    serve: &ServeBench,
) {
    let text = match std::fs::read_to_string(committed_path) {
        Ok(t) => t,
        Err(e) => {
            println!("_no committed bench file at `{committed_path}` ({e}); skipping delta table_");
            return;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            println!("_could not parse `{committed_path}` ({e}); skipping delta table_");
            return;
        }
    };
    let after = doc.get("after");
    let committed_ms = |path: &[&str]| -> Option<f64> {
        let mut v = after?;
        for k in path {
            v = v.get(k)?;
        }
        v.as_f64()
    };

    const TOLERANCE: f64 = 1.5;
    let mut lines = Vec::new();
    let mut regressed = 0usize;
    let mut row = |name: String, committed: Option<f64>, current: f64| {
        let Some(committed) = committed else {
            lines.push(format!("| {name} | — | {current:.3} | — |  |"));
            return;
        };
        let ratio = if committed > 0.0 { current / committed } else { f64::NAN };
        let flag = if ratio > TOLERANCE {
            regressed += 1;
            "⚠️"
        } else {
            ""
        };
        lines.push(format!("| {name} | {committed:.3} | {current:.3} | {ratio:.2}× | {flag} |"));
    };

    for r in corpus {
        if r.pin.wcet.is_some() {
            row(
                format!("corpus/{}", r.pin.name),
                committed_ms(&["corpus", r.pin.name, "best_ms"]),
                r.best_ms,
            );
        }
    }
    for r in scaling {
        let committed = after
            .and_then(|a| a.get("scaling"))
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter().find(|e| {
                    e.get("constructs").and_then(Json::as_u64) == Some(r.constructs as u64)
                })
            })
            .and_then(|e| e.get("best_ms"))
            .and_then(Json::as_f64);
        row(format!("scaling/{}", r.constructs), committed, r.best_ms);
    }
    for r in summaries {
        let committed = doc
            .get("summaries")
            .and_then(|s| s.get("series"))
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter().find(|e| {
                    e.get("constructs").and_then(Json::as_u64) == Some(r.constructs as u64)
                })
            })
            .and_then(|e| e.get("summarized_path_ms"))
            .and_then(Json::as_f64);
        row(format!("summaries/{}", r.constructs), committed, r.summarized_path_ms);
    }
    for r in uarch {
        let committed = doc
            .get("uarch")
            .and_then(|s| s.get("series"))
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter().find(|e| {
                    e.get("constructs").and_then(Json::as_u64) == Some(r.constructs as u64)
                })
            })
            .and_then(|e| e.get("summarized_cache_ms"))
            .and_then(Json::as_f64);
        row(format!("uarch/{}", r.constructs), committed, r.summarized_cache_ms);
    }
    for (name, ms) in phases {
        row(format!("phases/{name}"), committed_ms(&["phases_ms", name]), *ms);
    }
    for r in &batch.rows {
        let committed = doc
            .get("batch")
            .and_then(|b| b.get("workers"))
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter()
                    .find(|e| e.get("workers").and_then(Json::as_u64) == Some(r.workers as u64))
            })
            .and_then(|e| e.get("wall_ms"))
            .and_then(Json::as_f64);
        row(format!("batch/{}-workers", r.workers), committed, r.wall_ms);
    }
    let committed_artifact =
        |key: &str| doc.get("artifacts").and_then(|a| a.get(key)).and_then(Json::as_f64);
    row("artifacts/cold".to_string(), committed_artifact("cold_ms"), artifacts.cold_ms);
    row("artifacts/warm".to_string(), committed_artifact("warm_ms"), artifacts.warm_ms);
    let committed_disk =
        |key: &str| doc.get("artifacts_disk").and_then(|a| a.get(key)).and_then(Json::as_f64);
    row("artifacts_disk/cold".to_string(), committed_disk("cold_ms"), artifacts_disk.cold_ms);
    row("artifacts_disk/warm".to_string(), committed_disk("warm_ms"), artifacts_disk.warm_ms);
    for r in &fuzz.rows {
        let committed = doc
            .get("fuzz")
            .and_then(|b| b.get("workers"))
            .and_then(Json::as_arr)
            .and_then(|arr| {
                arr.iter()
                    .find(|e| e.get("workers").and_then(Json::as_u64) == Some(r.workers as u64))
            })
            .and_then(|e| e.get("wall_ms"))
            .and_then(Json::as_f64);
        row(format!("fuzz/{}-workers", r.workers), committed, r.wall_ms);
    }
    let committed_sampling =
        |key: &str| doc.get("sampling").and_then(|s| s.get(key)).and_then(Json::as_f64);
    row("sampling/cold".to_string(), committed_sampling("cold_ms"), sampling.cold_ms);
    row("sampling/warm".to_string(), committed_sampling("warm_ms"), sampling.warm_ms);
    let committed_serve =
        |key: &str| doc.get("serve").and_then(|s| s.get(key)).and_then(Json::as_f64);
    row("serve/cold".to_string(), committed_serve("cold_ms"), serve.cold_ms);
    row("serve/warm".to_string(), committed_serve("warm_ms"), serve.warm_ms);

    println!("### kernel bench wall-time delta (current vs committed)\n");
    println!("| workload | committed ms | current ms | ratio | |");
    println!("|---|---:|---:|---:|---|");
    for l in &lines {
        println!("{l}");
    }
    println!();
    if regressed > 0 {
        println!(
            "⚠️ **{regressed} workload(s) regressed past the {TOLERANCE}× wall-time \
             tolerance** (informational — wall time varies with runner load; the hard \
             gates are the pinned evaluations and batch determinism)."
        );
    } else {
        println!("All workloads within the {TOLERANCE}× wall-time tolerance.");
    }
}

fn pin_json(p: &CorpusPin) -> Json {
    Json::obj([
        ("wcet", p.wcet.map(Json::int).unwrap_or(Json::Null)),
        ("stack", Json::int(p.stack as u64)),
        ("evaluations", Json::int(p.evaluations)),
        ("fetch", Json::Arr(p.fetch.iter().map(|&v| Json::int(v as u64)).collect())),
        ("data", Json::Arr(p.data.iter().map(|&v| Json::int(v as u64)).collect())),
    ])
}

fn main() {
    let args = parse_args();
    let reps = if args.quick { 2 } else { 7 };

    eprintln!("kernel_bench: corpus ({} reps each)...", reps);
    let corpus: Vec<CorpusRow> = benchmarks().iter().map(|b| corpus_row(b.name, reps)).collect();
    eprintln!("kernel_bench: scaling series...");
    let scaling = scaling_rows(reps);
    eprintln!("kernel_bench: procedure summaries (monolithic vs summarized path solver)...");
    let summaries = summaries_rows(reps);
    eprintln!("kernel_bench: uarch summaries (reference vs monolithic vs summarized cache)...");
    let uarch = uarch_rows(reps);
    let uarch_corpus_identical = uarch_corpus_identity();
    eprintln!("kernel_bench: matmult phase breakdown...");
    let phases = phase_rows(reps);
    eprintln!("kernel_bench: batch engine (corpus × 3 variants at 1/2/4/8 workers)...");
    let batch = batch_rows(reps);
    eprintln!("kernel_bench: artifact store (corpus matrix, cold vs warm)...");
    let artifacts = artifact_rows(reps);
    eprintln!("kernel_bench: durable store (corpus matrix, cold vs warm process)...");
    let artifacts_disk = artifact_disk_rows(reps);
    eprintln!("kernel_bench: fuzz engine (48-program differential campaign at 1/4 workers)...");
    let fuzz = fuzz_rows(reps);
    eprintln!("kernel_bench: sampling engine (corpus × 64 walks, cold vs artifact-warm)...");
    let sampling = sampling_rows(reps);
    eprintln!("kernel_bench: serve engine (corpus request mix, cold vs warm daemon)...");
    let serve = serve_rows(reps);

    if args.print_pins {
        println!("pub const CORPUS: &[CorpusPin] = &[");
        for r in &corpus {
            let p = &r.pin;
            println!(
                "    CorpusPin {{ name: {:?}, wcet: {:?}, stack: {}, evaluations: {}, fetch: {:?}, data: {:?} }},",
                p.name, p.wcet, p.stack, p.evaluations, p.fetch, p.data
            );
        }
        println!("];");
        println!("pub const SCALING_EVALS: &[(usize, u64)] = &[");
        for r in &scaling {
            println!("    ({}, {}),", r.constructs, r.evaluations);
        }
        println!("];");
    }

    // ---- Derived procedure-summary figures (shared by the gates, the
    // JSON and the stderr summary). The series endpoints frame the
    // 64 → 640 decade the tentpole claims.
    let sum_base = summaries.iter().find(|r| r.constructs == 64).expect("64 in series");
    let sum_top = summaries.last().expect("nonempty series");
    let endpoint_speedup = sum_top.inlined_path_ms / sum_top.summarized_path_ms.max(1e-9);
    let summarized_growth = sum_top.summarized_path_ms / sum_base.summarized_path_ms.max(1e-9);
    let ilp_growth = sum_top.ilp_vars as f64 / sum_base.ilp_vars as f64;

    // ---- Derived uarch-summary figures: the headline ratio is the
    // executable-specification reference against the summarized cache
    // phase at the largest size.
    let uarch_top = uarch.last().expect("nonempty uarch series");
    let uarch_speedup = uarch_top.reference_cache_ms / uarch_top.summarized_cache_ms.max(1e-9);

    // ---- Drift check against the pinned corpus (CI bench-smoke gate).
    let mut drift = Vec::new();
    if args.check {
        let measured: Vec<pins::MeasuredTask> = corpus
            .iter()
            .map(|r| pins::MeasuredTask {
                name: r.pin.name.to_string(),
                wcet: r.pin.wcet,
                stack: Some(r.pin.stack),
                evaluations: r.pin.evaluations,
                fetch: r.pin.fetch,
                data: r.pin.data,
            })
            .collect();
        drift.extend(pins::check_corpus(&measured));
        for r in &scaling {
            match pins::SCALING_EVALS.iter().find(|(c, _)| *c == r.constructs) {
                Some((_, e)) if *e != r.evaluations => drift.push(format!(
                    "scaling/{}: pinned {} evaluations != measured {}",
                    r.constructs, e, r.evaluations
                )),
                None => drift.push(format!("scaling/{}: no pin recorded", r.constructs)),
                _ => {}
            }
        }
        // The procedure-summary gates: the segment decomposition must be
        // exact — the summarized WCET bound byte-identical to the
        // monolithic one at every size — must beat the monolithic
        // solver by ≥ 25× at the largest size (measured ~2000×), and
        // its wall time must grow no faster than the ILP itself across
        // the 64 → 640 decade (3× slack for timer noise on the sub-ms
        // base; the monolithic solve grows ~20× faster than its ILP
        // over the same span).
        for r in &summaries {
            if r.inlined_wcet != r.summarized_wcet {
                drift.push(format!(
                    "summaries/{}: summarized WCET {} != monolithic WCET {}",
                    r.constructs, r.summarized_wcet, r.inlined_wcet
                ));
            }
        }
        if endpoint_speedup < 25.0 {
            drift.push(format!(
                "summaries: summarized path solve only {endpoint_speedup:.1}x faster than \
                 monolithic at {} constructs (floor 25x)",
                sum_top.constructs
            ));
        }
        if summarized_growth > 3.0 * ilp_growth {
            drift.push(format!(
                "summaries: path wall time grew {summarized_growth:.1}x over 64→{} constructs \
                 while the ILP grew {ilp_growth:.1}x (super-linear; ceiling is 3x the ILP growth)",
                sum_top.constructs
            ));
        }
        // The uarch-summary gates: the composition must be exact — the
        // WCET and classification histograms identical to the direct
        // analyses at every E6 size and the corpus results byte-identical
        // to a monolithic batch — it must actually engage at the
        // largest size (a silent fallback would make the timing moot),
        // and the summarized cache phase must beat the
        // executable-specification reference by ≥ 5× there.
        for r in &uarch {
            if !r.wcet_identical {
                drift.push(format!(
                    "uarch/{}: WCET differs between summarized and monolithic analysis",
                    r.constructs
                ));
            }
            if !r.classes_identical {
                drift.push(format!(
                    "uarch/{}: classification histograms differ across \
                     reference/monolithic/summarized",
                    r.constructs
                ));
            }
        }
        if !uarch_corpus_identical {
            drift.push(
                "uarch: corpus batch results differ between summarized and monolithic modes"
                    .to_string(),
            );
        }
        if !uarch_top.engaged {
            drift.push(format!(
                "uarch: summarized cache analysis fell back to monolithic at {} constructs",
                uarch_top.constructs
            ));
        }
        if uarch_speedup < 5.0 {
            drift.push(format!(
                "uarch: summarized cache phase only {uarch_speedup:.1}x faster than the \
                 reference analysis at {} constructs (floor 5x)",
                uarch_top.constructs
            ));
        }
        // The batch determinism gate: the 4-worker merged report must be
        // bit-identical to the serial one.
        if batch.serial_results != batch.parallel_results {
            drift.push("batch: parallel (4-worker) results differ from serial results".to_string());
        }
        // The artifact-store gates: reuse must be invisible in the
        // deterministic results, and a warm pass must actually reuse
        // (structurally ~100%; ≥50% is the acceptance floor).
        if artifacts.cached_results != artifacts.uncached_results {
            drift.push(
                "artifacts: cached batch results differ from --no-artifact-cache results"
                    .to_string(),
            );
        }
        if artifacts.warm_stats.hit_rate() < 0.5 {
            drift.push(format!(
                "artifacts: warm-pass hit rate {:.0}% below the 50% floor",
                artifacts.warm_stats.hit_rate() * 100.0
            ));
        }
        // The durable-store gates: a warm *process* (fresh in-memory
        // store over a primed directory) must be answered mostly from
        // disk (structurally ~100%; ≥50% is the acceptance floor) and
        // its deterministic results must be byte-identical to a
        // storeless run.
        if artifacts_disk.warm_results != artifacts_disk.storeless_results {
            drift.push(
                "artifacts_disk: warm-process batch results differ from storeless results"
                    .to_string(),
            );
        }
        if artifacts_disk.warm_stats.disk_hit_rate() < 0.5 {
            drift.push(format!(
                "artifacts_disk: warm-process disk hit rate {:.0}% below the 50% floor",
                artifacts_disk.warm_stats.disk_hit_rate() * 100.0
            ));
        }
        // The fuzz-engine gates: the fixed-seed campaign must be green
        // (a violation is a soundness bug) and byte-identical across
        // worker counts.
        if fuzz.violations > 0 {
            drift.push(format!(
                "fuzz: {} soundness violation(s) in the fixed-seed campaign",
                fuzz.violations
            ));
        }
        if !fuzz.deterministic {
            drift.push("fuzz: parallel (4-worker) results differ from serial results".to_string());
        }
        // The sampling-engine gates: seed-pinned walks must be
        // byte-identical across worker counts and cache states, every
        // observed-max must stay under its job's WCET bound (a sampled
        // path above the bound is a soundness counterexample), and the
        // artifact-warm pass must reuse the plain batch's phases
        // (structurally ~100%; ≥50% is the acceptance floor).
        if !sampling.deterministic {
            drift.push(
                "sampling: warm 4-worker results differ from serial cold-store results".to_string(),
            );
        }
        if !sampling.sound {
            drift.push("sampling: an observed-max exceeded its job's WCET bound".to_string());
        }
        if sampling.warm_stats.hit_rate() < 0.5 {
            drift.push(format!(
                "sampling: artifact-warm hit rate {:.0}% below the 50% floor",
                sampling.warm_stats.hit_rate() * 100.0
            ));
        }
        // The serve-engine gates: a warm daemon must answer mostly from
        // its artifact store (structurally ~100%; ≥50% is the acceptance
        // floor) and every served result must be byte-identical to
        // `run_batch` over the same job matrix.
        if !serve.identical_to_batch {
            drift.push("serve: served results differ from run_batch results".to_string());
        }
        if serve.warm_stats.hit_rate() < 0.5 {
            drift.push(format!(
                "serve: warm-daemon hit rate {:.0}% below the 50% floor",
                serve.warm_stats.hit_rate() * 100.0
            ));
        }
    }

    // ---- The before/after comparison on shared workloads.
    let sum_current_corpus: f64 = corpus
        .iter()
        .filter(|r| baseline::CORPUS_MS.iter().any(|(n, _)| *n == r.pin.name))
        .map(|r| r.best_ms)
        .sum();
    let sum_before_corpus: f64 = baseline::CORPUS_MS.iter().map(|(_, ms)| ms).sum();
    // Only the sizes the pre-refactor baseline measured — the series
    // has since been extended to 640 constructs, and summing the new
    // sizes against the old six would fabricate a slowdown.
    let sum_current_scaling: f64 = scaling
        .iter()
        .filter(|r| baseline::SCALING_MS.iter().any(|(c, _)| *c == r.constructs))
        .map(|r| r.best_ms)
        .sum();
    let sum_before_scaling: f64 = baseline::SCALING_MS.iter().map(|(_, ms)| ms).sum();
    let sum_current_phases: f64 = phases.iter().map(|(_, ms)| ms).sum();
    let sum_before_phases: f64 = baseline::PHASES_MS.iter().map(|(_, ms)| ms).sum();
    let ratio = |before: f64, after: f64| {
        if after > 0.0 {
            Json::Num(before / after)
        } else {
            Json::Null
        }
    };

    let json = Json::obj([
        ("schema", Json::str("stamp-bench-kernel/1")),
        ("generated_by", Json::str("cargo run -p stamp_bench --release --bin kernel_bench")),
        ("mode", Json::str(if args.quick { "quick" } else { "full" })),
        (
            "before",
            Json::obj([
                ("commit", Json::str(baseline::COMMIT)),
                (
                    "corpus_ms",
                    Json::Obj(
                        baseline::CORPUS_MS
                            .iter()
                            .map(|(n, ms)| (n.to_string(), Json::Num(*ms)))
                            .collect(),
                    ),
                ),
                (
                    "scaling_ms",
                    Json::Obj(
                        baseline::SCALING_MS
                            .iter()
                            .map(|(c, ms)| (c.to_string(), Json::Num(*ms)))
                            .collect(),
                    ),
                ),
                (
                    "phases_ms",
                    Json::Obj(
                        baseline::PHASES_MS
                            .iter()
                            .map(|(n, ms)| (n.to_string(), Json::Num(*ms)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "after",
            Json::obj([
                (
                    "corpus",
                    Json::Obj(
                        corpus
                            .iter()
                            .map(|r| {
                                let mut o = match pin_json(&r.pin) {
                                    Json::Obj(o) => o,
                                    _ => unreachable!(),
                                };
                                if r.pin.wcet.is_some() {
                                    o.insert("best_ms".into(), Json::Num(r.best_ms));
                                    o.insert(
                                        "phases_ms".into(),
                                        Json::Obj(
                                            r.phase_ms
                                                .iter()
                                                .map(|(n, ms)| (n.clone(), Json::Num(*ms)))
                                                .collect(),
                                        ),
                                    );
                                }
                                (r.pin.name.to_string(), Json::Obj(o))
                            })
                            .collect(),
                    ),
                ),
                (
                    "scaling",
                    Json::Arr(
                        scaling
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("constructs", Json::int(r.constructs as u64)),
                                    ("insns", Json::int(r.insns as u64)),
                                    ("nodes", Json::int(r.nodes as u64)),
                                    ("evaluations", Json::int(r.evaluations)),
                                    ("best_ms", Json::Num(r.best_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "phases_ms",
                    Json::Obj(
                        phases.iter().map(|(n, ms)| (n.to_string(), Json::Num(*ms))).collect(),
                    ),
                ),
            ]),
        ),
        (
            "speedup",
            Json::obj([
                ("corpus", ratio(sum_before_corpus, sum_current_corpus)),
                ("scaling", ratio(sum_before_scaling, sum_current_scaling)),
                ("phases", ratio(sum_before_phases, sum_current_phases)),
            ]),
        ),
        (
            "summaries",
            Json::obj([
                (
                    "series",
                    Json::Arr(
                        summaries
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("constructs", Json::int(r.constructs as u64)),
                                    ("nodes", Json::int(r.nodes as u64)),
                                    ("ilp_vars", Json::int(r.ilp_vars as u64)),
                                    ("inlined_path_ms", Json::Num(r.inlined_path_ms)),
                                    ("summarized_path_ms", Json::Num(r.summarized_path_ms)),
                                    (
                                        "wcet_identical",
                                        Json::Bool(r.inlined_wcet == r.summarized_wcet),
                                    ),
                                    ("summaries_computed", Json::int(r.summaries_computed)),
                                    ("summaries_reused", Json::int(r.summaries_reused)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("endpoint_speedup", Json::Num(endpoint_speedup)),
                ("summarized_growth_64_to_max", Json::Num(summarized_growth)),
                ("ilp_growth_64_to_max", Json::Num(ilp_growth)),
            ]),
        ),
        (
            "uarch",
            Json::obj([
                (
                    "series",
                    Json::Arr(
                        uarch
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("constructs", Json::int(r.constructs as u64)),
                                    ("reference_cache_ms", Json::Num(r.reference_cache_ms)),
                                    ("monolithic_cache_ms", Json::Num(r.monolithic_cache_ms)),
                                    ("summarized_cache_ms", Json::Num(r.summarized_cache_ms)),
                                    ("classes_identical", Json::Bool(r.classes_identical)),
                                    ("wcet_identical", Json::Bool(r.wcet_identical)),
                                    ("engaged", Json::Bool(r.engaged)),
                                    ("regions", Json::int(r.regions as u64)),
                                    ("computed", Json::int(r.computed as u64)),
                                    ("reused", Json::int(r.reused as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("endpoint_speedup_vs_reference", Json::Num(uarch_speedup)),
                ("corpus_identical", Json::Bool(uarch_corpus_identical)),
            ]),
        ),
        (
            "batch",
            Json::obj([
                ("cores", Json::int(batch.cores as u64)),
                ("jobs_total", Json::int(batch.jobs_total as u64)),
                (
                    "variants",
                    Json::Arr(batch.variants.iter().map(|v| Json::str(v.clone())).collect()),
                ),
                ("deterministic", Json::Bool(batch.serial_results == batch.parallel_results)),
                (
                    "workers",
                    Json::Arr(
                        batch
                            .rows
                            .iter()
                            .map(|r| {
                                let serial = batch.rows[0].wall_ms;
                                Json::obj([
                                    ("workers", Json::int(r.workers as u64)),
                                    ("wall_ms", Json::Num(r.wall_ms)),
                                    ("throughput_jobs_per_s", Json::Num(r.throughput_per_s)),
                                    (
                                        "speedup_vs_serial",
                                        if r.wall_ms > 0.0 {
                                            Json::Num(serial / r.wall_ms)
                                        } else {
                                            Json::Null
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "artifacts",
            Json::obj([
                ("workers", Json::int(artifacts.workers as u64)),
                ("cold_ms", Json::Num(artifacts.cold_ms)),
                ("warm_ms", Json::Num(artifacts.warm_ms)),
                ("warm_speedup", Json::Num(artifacts.warm_speedup())),
                (
                    "deterministic",
                    Json::Bool(artifacts.cached_results == artifacts.uncached_results),
                ),
                ("cold", artifacts.cold_stats.to_json()),
                ("warm", artifacts.warm_stats.to_json()),
            ]),
        ),
        (
            "artifacts_disk",
            Json::obj([
                ("workers", Json::int(artifacts_disk.workers as u64)),
                ("cold_ms", Json::Num(artifacts_disk.cold_ms)),
                ("warm_ms", Json::Num(artifacts_disk.warm_ms)),
                ("warm_speedup", Json::Num(artifacts_disk.warm_speedup())),
                ("artifacts_on_disk", Json::int(artifacts_disk.artifacts_on_disk as u64)),
                (
                    "deterministic",
                    Json::Bool(artifacts_disk.warm_results == artifacts_disk.storeless_results),
                ),
                ("cold", artifacts_disk.cold_stats.to_json()),
                ("warm", artifacts_disk.warm_stats.to_json()),
            ]),
        ),
        (
            "fuzz",
            Json::obj([
                ("iterations", Json::int(fuzz.iterations as u64)),
                ("sim_runs", Json::int(fuzz.sim_runs)),
                ("deterministic", Json::Bool(fuzz.deterministic)),
                ("violations", Json::int(fuzz.violations as u64)),
                (
                    "workers",
                    Json::Arr(
                        fuzz.rows
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("workers", Json::int(r.workers as u64)),
                                    ("wall_ms", Json::Num(r.wall_ms)),
                                    ("programs_per_s", Json::Num(r.programs_per_s)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "sampling",
            Json::obj([
                ("workers", Json::int(sampling.workers as u64)),
                ("samples_per_job", Json::int(sampling.samples as u64)),
                ("walks_total", Json::int(sampling.walks_total)),
                ("cold_ms", Json::Num(sampling.cold_ms)),
                ("warm_ms", Json::Num(sampling.warm_ms)),
                ("warm_speedup", Json::Num(sampling.warm_speedup())),
                ("warm_samples_per_s", Json::Num(sampling.warm_samples_per_s())),
                ("deterministic", Json::Bool(sampling.deterministic)),
                ("sound", Json::Bool(sampling.sound)),
                ("warm", sampling.warm_stats.to_json()),
            ]),
        ),
        (
            "serve",
            Json::obj([
                ("workers", Json::int(serve.workers as u64)),
                ("requests_total", Json::int(serve.requests_total as u64)),
                ("cold_ms", Json::Num(serve.cold_ms)),
                ("warm_ms", Json::Num(serve.warm_ms)),
                ("warm_requests_per_s", Json::Num(serve.warm_requests_per_s())),
                ("identical_to_batch", Json::Bool(serve.identical_to_batch)),
                ("warm", serve.warm_stats.to_json()),
            ]),
        ),
        ("drift", Json::Arr(drift.iter().map(|d| Json::str(d.clone())).collect())),
    ]);

    std::fs::write(&args.out, format!("{json}\n")).expect("write BENCH_kernel.json");
    if let Some(committed) = &args.diff {
        print_diff_table(
            committed,
            &corpus,
            &scaling,
            &summaries,
            &uarch,
            &phases,
            &batch,
            &artifacts,
            &artifacts_disk,
            &fuzz,
            &sampling,
            &serve,
        );
    }
    eprintln!(
        "kernel_bench: artifact store: cold {:.1} ms, warm {:.1} ms ({:.1}x), warm hit rate {:.0}%",
        artifacts.cold_ms,
        artifacts.warm_ms,
        artifacts.warm_speedup(),
        artifacts.warm_stats.hit_rate() * 100.0,
    );
    eprintln!(
        "kernel_bench: durable store: cold {:.1} ms, warm process {:.1} ms ({:.1}x), \
         disk hit rate {:.0}%, {} artifacts on disk",
        artifacts_disk.cold_ms,
        artifacts_disk.warm_ms,
        artifacts_disk.warm_speedup(),
        artifacts_disk.warm_stats.disk_hit_rate() * 100.0,
        artifacts_disk.artifacts_on_disk,
    );
    eprintln!(
        "kernel_bench: fuzz engine: {} programs, {:.0} programs/s serial, {} violation(s)",
        fuzz.iterations,
        fuzz.rows.first().map(|r| r.programs_per_s).unwrap_or(0.0),
        fuzz.violations,
    );
    eprintln!(
        "kernel_bench: sampling engine: {} walks, cold {:.1} ms, artifact-warm {:.1} ms \
         ({:.1}x, {:.0} samples/s), deterministic: {}, sound: {}",
        sampling.walks_total,
        sampling.cold_ms,
        sampling.warm_ms,
        sampling.warm_speedup(),
        sampling.warm_samples_per_s(),
        sampling.deterministic,
        sampling.sound,
    );
    eprintln!(
        "kernel_bench: serve engine: {} requests, cold {:.1} ms, warm {:.1} ms \
         ({:.0} requests/s), warm hit rate {:.0}%, identical to batch: {}",
        serve.requests_total,
        serve.cold_ms,
        serve.warm_ms,
        serve.warm_requests_per_s(),
        serve.warm_stats.hit_rate() * 100.0,
        serve.identical_to_batch,
    );
    eprintln!(
        "kernel_bench: procedure summaries: path solve at {} constructs {:.1} ms monolithic vs \
         {:.2} ms summarized ({:.0}x); wall grew {:.1}x over 64→{} vs ILP {:.1}x",
        sum_top.constructs,
        sum_top.inlined_path_ms,
        sum_top.summarized_path_ms,
        endpoint_speedup,
        summarized_growth,
        sum_top.constructs,
        ilp_growth,
    );
    eprintln!(
        "kernel_bench: uarch summaries: cache phase at {} constructs {:.1} ms reference vs \
         {:.2} ms summarized ({:.0}x, monolithic {:.2} ms); corpus identical: {}",
        uarch_top.constructs,
        uarch_top.reference_cache_ms,
        uarch_top.summarized_cache_ms,
        uarch_speedup,
        uarch_top.monolithic_cache_ms,
        uarch_corpus_identical,
    );
    eprintln!(
        "kernel_bench: corpus {:.1} ms (before {:.1}), scaling {:.1} ms (before {:.1}), phases {:.1} ms (before {:.1})",
        sum_current_corpus,
        sum_before_corpus,
        sum_current_scaling,
        sum_before_scaling,
        sum_current_phases,
        sum_before_phases,
    );
    eprintln!("kernel_bench: wrote {}", args.out);

    if !drift.is_empty() {
        eprintln!("kernel_bench: DRIFT from pinned values:");
        for d in &drift {
            eprintln!("  {d}");
        }
        std::process::exit(1);
    }
}
