//! # stamp-bench — the evaluation harness
//!
//! Shared machinery for the experiment tables (see `src/bin/experiments.rs`
//! and EXPERIMENTS.md) and the Criterion benchmarks (`benches/`).
//!
//! The experiment index lives in DESIGN.md: each table/figure E1–E10
//! reproduces one quantitative claim of the paper. Run
//!
//! ```sh
//! cargo run -p stamp-bench --release --bin experiments
//! ```
//!
//! to regenerate all of them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_core::{AnalysisConfig, WcetAnalysis, WcetReport};
use stamp_hw::HwConfig;
use stamp_suite::Benchmark;

pub mod pins;

/// Runs the full WCET pipeline on a benchmark under `config`.
///
/// # Panics
///
/// Panics when the analysis fails — experiment tables treat failures as
/// reportable results and should use [`try_analyze`] instead.
pub fn analyze(bench: &Benchmark, config: AnalysisConfig) -> WcetReport {
    try_analyze(bench, config).unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// Runs the full WCET pipeline, returning analysis errors (used by the
/// ablation tables where weaker domains legitimately fail).
pub fn try_analyze(
    bench: &Benchmark,
    config: AnalysisConfig,
) -> Result<WcetReport, stamp_core::AnalysisError> {
    let program = bench.program();
    WcetAnalysis::new(&program).config(config).annotations(bench.annotations()).run()
}

/// Worst observed cycles/stack over `runs` random runs plus adversarial
/// patterns, with a fixed seed for reproducibility.
pub fn observed(bench: &Benchmark, hw: &HwConfig, runs: usize, seed: u64) -> (u64, u32) {
    let program = bench.program();
    let mut rng = StdRng::seed_from_u64(seed);
    bench.worst_observed(&program, hw, runs, &mut rng)
}

/// Formats a ratio as e.g. `1.27x`.
pub fn ratio(bound: u64, observed: u64) -> String {
    if observed == 0 {
        "-".to_string()
    } else {
        format!("{:.2}x", bound as f64 / observed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_suite::benchmarks;

    #[test]
    fn harness_runs_one_benchmark() {
        let b = benchmarks().into_iter().find(|b| b.name == "fibcall").unwrap();
        let report = analyze(&b, AnalysisConfig::default());
        let (obs, _) = observed(&b, &HwConfig::default(), 3, 1);
        assert!(report.wcet >= obs);
        assert_eq!(ratio(10, 5), "2.00x");
        assert_eq!(ratio(10, 0), "-");
    }
}
