//! Regression pins for the whole corpus: WCET and stack bounds, solver
//! `evaluations` and cache classification counts must match the values
//! recorded with the pre-refactor kernel exactly. Guards against
//! accidental precision or termination changes from worklist reordering,
//! state-sharing bugs, or cache-set representation drift.

use stamp_bench::pins::{CorpusPin, CORPUS, SCALING_EVALS};
use stamp_core::{AnalysisConfig, StackAnalysis, WcetAnalysis};
use stamp_suite::benchmarks;

#[test]
fn every_corpus_benchmark_is_pinned() {
    let names: Vec<&str> = benchmarks().iter().map(|b| b.name).collect();
    for b in &names {
        assert!(CORPUS.iter().any(|p| p.name == *b), "benchmark {b} has no pin");
    }
    for p in CORPUS {
        assert!(names.contains(&p.name), "pin {} has no benchmark", p.name);
    }
}

#[test]
fn corpus_results_match_pins_bit_for_bit() {
    for b in benchmarks() {
        let pin = CORPUS.iter().find(|p| p.name == b.name).expect("pinned");
        let program = b.program();
        let stack = StackAnalysis::new(&program)
            .annotations(b.annotations())
            .run()
            .expect("stack analysis")
            .bound;
        let measured = if b.supports_wcet {
            let r = WcetAnalysis::new(&program)
                .config(AnalysisConfig::default())
                .annotations(b.annotations())
                .run()
                .expect("wcet analysis");
            CorpusPin {
                name: b.name,
                wcet: Some(r.wcet),
                stack,
                evaluations: r.evaluations,
                fetch: [
                    r.fetch_stats.hit,
                    r.fetch_stats.miss,
                    r.fetch_stats.persistent,
                    r.fetch_stats.unclassified,
                ],
                data: [
                    r.data_stats.hit,
                    r.data_stats.miss,
                    r.data_stats.persistent,
                    r.data_stats.unclassified,
                ],
            }
        } else {
            CorpusPin {
                name: b.name,
                wcet: None,
                stack,
                evaluations: 0,
                fetch: [0; 4],
                data: [0; 4],
            }
        };
        assert_eq!(
            *pin, measured,
            "{}: drift from pinned kernel results — if intended, regenerate \
             with `kernel_bench --print-pins`",
            b.name
        );
    }
}

#[test]
fn scaling_series_evaluations_match_pins() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stamp_isa::asm::assemble;
    use stamp_suite::{generate, GenConfig};

    let mut rng = StdRng::seed_from_u64(0xE6);
    for &(constructs, pinned) in SCALING_EVALS {
        let cfg = GenConfig { constructs, functions: 2, ..GenConfig::default() };
        let src = generate(&mut rng, &cfg);
        let program = assemble(&src).expect("generated");
        let report = WcetAnalysis::new(&program).run().expect("analysis");
        assert_eq!(report.evaluations, pinned, "scaling/{constructs}: solver evaluations drifted");
    }
}
