//! Assembler edge cases: diagnostics, layout rules, and pseudo-expansion
//! corner cases.

use stamp_isa::asm::{assemble, assemble_with, AsmOptions};
use stamp_isa::{AluOp, Insn, MemWidth, Reg};

fn err_of(src: &str) -> String {
    assemble(src).unwrap_err().to_string()
}

#[test]
fn diagnostics_name_the_line() {
    assert!(err_of(".text\nmain: frob r1\n").contains("line 2"));
    assert!(err_of(".text\nmain: nop\n\n\nbad r1, r2\n").contains("line 5"));
}

#[test]
fn branch_out_of_range_reported() {
    // Build a branch to a label > 32767 words away.
    let mut src = String::from(".text\nmain: beq r0, r0, far\n");
    src.push_str(".align 16\n");
    for _ in 0..33000 {
        src.push_str("nop\n");
    }
    src.push_str("far: halt\n");
    let err = err_of(&src);
    assert!(err.contains("out of range"), "{err}");
}

#[test]
fn immediate_range_diagnostics() {
    assert!(err_of(".text\nmain: addi r1, r1, 40000\n").contains("out of range"));
    assert!(err_of(".text\nmain: andi r1, r1, -1\n").contains("out of range"));
    assert!(err_of(".text\nmain: slli r1, r1, 32\n").contains("out of range"));
    assert!(err_of(".text\nmain: lui r1, 0x10000\n").contains("range"));
}

#[test]
fn li_accepts_full_32bit_range() {
    let p =
        assemble(".text\nmain: li r1, -2147483648\nli r2, 4294967295\nli r3, 0\nhalt\n").unwrap();
    // -2^31 = 0x80000000: lui only.
    assert_eq!(p.decode_at(0).unwrap(), Insn::Lui { rd: Reg::new(1), imm: 0x8000 });
    // 0xffffffff fits signed 16 (-1): single addi.
    assert_eq!(
        p.decode_at(4).unwrap(),
        Insn::AluImm { op: AluOp::Add, rd: Reg::new(2), rs1: Reg::ZERO, imm: -1 }
    );
    assert!(err_of(".text\nmain: li r1, 4294967296\n").contains("out of 32-bit range"));
}

#[test]
fn equ_chains_and_expressions() {
    let p = assemble(
        "\
        .equ A, 4\n\
        .equ B, A + 4\n\
        .equ C, B - A\n\
        .text\nmain: li r1, C\nhalt\n",
    )
    .unwrap();
    assert_eq!(
        p.decode_at(0).unwrap(),
        Insn::AluImm { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::ZERO, imm: 4 }
    );
    // Forward .equ references are rejected (defined in file order).
    assert!(err_of(".equ X, Y\n.equ Y, 1\n.text\nmain: halt\n").contains("undefined"));
}

#[test]
fn data_directives_layout() {
    let p = assemble(
        "\
        .text\nmain: halt\n\
        .data\n\
        a: .byte 1, 2\n\
        .align 4\n\
        b: .half 0x1234\n\
        c: .asciiz \"ok\"\n\
        .align 8\n\
        d: .word 9\n\
        e:\n",
    )
    .unwrap();
    let sym = |n: &str| p.symbols.addr_of(n).unwrap();
    assert_eq!(sym("a"), 0x1000_0000);
    assert_eq!(sym("b"), 0x1000_0004); // aligned
    assert_eq!(sym("c"), 0x1000_0006);
    assert_eq!(sym("d"), 0x1000_0010); // 'ok\0' then align 8
    assert_eq!(sym("e"), 0x1000_0014);
    assert_eq!(p.initial_value(sym("b"), MemWidth::H), Some(0x1234));
    assert_eq!(p.initial_value(sym("c"), MemWidth::B), Some(b'o' as u32));
}

#[test]
fn bss_takes_no_image_bytes() {
    let p =
        assemble(".text\nmain: halt\n.data\nx: .word 1\n.bss\nbig: .space 4096\nend_:\n").unwrap();
    let bss = p.sections.iter().find(|s| s.name == ".bss").unwrap();
    assert_eq!(bss.size, 4096);
    assert!(bss.data.is_empty());
    // Initial value of bss is zero.
    let big = p.symbols.addr_of("big").unwrap();
    assert_eq!(p.initial_value(big, MemWidth::W), Some(0));
    // Data directives with bytes are rejected in .bss.
    assert!(err_of(".text\nmain: halt\n.bss\nv: .word 1\n").contains(".bss"));
}

#[test]
fn rodata_is_rom_data_is_not() {
    let p = assemble(".text\nmain: halt\n.rodata\nk: .word 7\n.data\nv: .word 8\n").unwrap();
    let k = p.symbols.addr_of("k").unwrap();
    let v = p.symbols.addr_of("v").unwrap();
    assert_eq!(p.rom_value(k, MemWidth::W), Some(7));
    assert_eq!(p.rom_value(v, MemWidth::W), None); // RAM: not constant
    assert_eq!(p.initial_value(v, MemWidth::W), Some(8));
}

#[test]
fn custom_layout_moves_sections() {
    let opts = AsmOptions { text_base: 0x100, data_base: 0x1008_0000 };
    let p =
        assemble_with(".text\nmain: j main\n.rodata\nt: .word main\n.data\nv: .word t\n", &opts)
            .unwrap();
    assert_eq!(p.entry, 0x100);
    let t = p.symbols.addr_of("t").unwrap();
    assert!(t >= 0x104 && t.is_multiple_of(16));
    assert_eq!(p.rom_value(t, MemWidth::W), Some(0x100)); // points at main
    assert_eq!(p.symbols.addr_of("v"), Some(0x1008_0000));
}

#[test]
fn comment_styles_and_blank_labels() {
    let p = assemble(
        "\
        ; full-line comment\n\
        # another\n\
        // and another\n\
        .text\n\
        main:\n\
        only_label_line:\n\
        nop ; trailing\n\
        halt # trailing\n",
    )
    .unwrap();
    assert_eq!(p.insn_count(), 2);
    assert_eq!(p.symbols.addr_of("only_label_line"), Some(0));
}

#[test]
fn string_escapes_and_hash_in_string() {
    let p = assemble(".text\nmain: halt\n.rodata\ns: .ascii \"a#b;c\\\"d\\n\"\n").unwrap();
    let s = p.symbols.addr_of("s").unwrap();
    let bytes: Vec<u8> = (0..8).map(|i| p.initial_byte(s + i).unwrap()).collect();
    assert_eq!(&bytes, b"a#b;c\"d\n");
}

#[test]
fn jalr_forms() {
    let p = assemble(".text\nmain: jalr r5\njalr r1, r5\njalr r1, r5, 8\nhalt\n").unwrap();
    assert_eq!(p.decode_at(0).unwrap(), Insn::Jalr { rd: Reg::LR, rs1: Reg::new(5), offset: 0 });
    assert_eq!(
        p.decode_at(4).unwrap(),
        Insn::Jalr { rd: Reg::new(1), rs1: Reg::new(5), offset: 0 }
    );
    assert_eq!(
        p.decode_at(8).unwrap(),
        Insn::Jalr { rd: Reg::new(1), rs1: Reg::new(5), offset: 8 }
    );
}

#[test]
fn entry_fallbacks() {
    // No main/_start/.entry: entry = start of .text.
    let p = assemble(".text\nstart_here: halt\n").unwrap();
    assert_eq!(p.entry, 0);
    // _start works as a fallback.
    let p = assemble(".text\nnop\n_start: halt\n").unwrap();
    assert_eq!(p.entry, 4);
}

#[test]
fn missing_text_section_rejected() {
    assert!(err_of(".data\nv: .word 1\n").contains(".text"));
}
