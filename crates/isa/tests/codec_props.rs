//! Property-based round-trip of the binary codec and assembler text.

use proptest::prelude::*;
use stamp_isa::codec::{decode, encode};
use stamp_isa::{AluOp, Cond, Insn, MemWidth, Reg};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Halt),
        (0usize..AluOp::ALL.len(), reg(), reg(), reg())
            .prop_map(|(op, rd, rs1, rs2)| { Insn::Alu { op: AluOp::ALL[op], rd, rs1, rs2 } }),
        // Arithmetic immediates: sign-extended range.
        (reg(), reg(), -0x8000i32..=0x7fff).prop_map(|(rd, rs1, imm)| Insn::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        // Logical immediates: zero-extended range.
        (reg(), reg(), 0i32..=0xffff).prop_map(|(rd, rs1, imm)| Insn::AluImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm
        }),
        // Shift immediates.
        (reg(), reg(), 0i32..=31).prop_map(|(rd, rs1, imm)| Insn::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm
        }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| Insn::Lui { rd, imm }),
        (reg(), reg(), -0x8000i32..=0x7fff, 0usize..5).prop_map(|(rd, base, offset, w)| {
            let (width, signed) = [
                (MemWidth::B, true),
                (MemWidth::B, false),
                (MemWidth::H, true),
                (MemWidth::H, false),
                (MemWidth::W, true),
            ][w];
            Insn::Load { width, signed, rd, base, offset }
        }),
        (reg(), reg(), -0x8000i32..=0x7fff, 0usize..3).prop_map(|(src, base, offset, w)| {
            Insn::Store { width: [MemWidth::B, MemWidth::H, MemWidth::W][w], src, base, offset }
        }),
        (0usize..6, reg(), reg(), -0x8000i32..=0x7fff).prop_map(|(c, rs1, rs2, offset)| {
            Insn::Branch { cond: Cond::ALL[c], rs1, rs2, offset }
        }),
        (-(1i32 << 23)..(1i32 << 23)).prop_map(|offset| Insn::Jump { offset }),
        (-(1i32 << 23)..(1i32 << 23)).prop_map(|offset| Insn::Jal { offset }),
        (reg(), reg(), -0x8000i32..=0x7fff).prop_map(|(rd, rs1, offset)| Insn::Jalr {
            rd,
            rs1,
            offset
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn encode_decode_roundtrip(i in insn()) {
        let word = encode(&i).expect("generated instructions are encodable");
        let back = decode(word).expect("decodes");
        prop_assert_eq!(i, back);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Arbitrary words either decode or produce a structured error.
        let _ = decode(word);
    }

    #[test]
    fn decode_encode_is_identity_on_valid_words(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            let re = encode(&i).expect("decoded instructions re-encode");
            prop_assert_eq!(word, re, "{:?}", i);
        }
    }

    #[test]
    fn static_properties_are_consistent(i in insn()) {
        // def() never returns r0; uses() has at most 2 registers.
        if let Some(d) = i.def() {
            prop_assert!(!d.is_zero());
        }
        prop_assert!(i.uses().iter().count() <= 2);
        // Control-flow classification agrees with terminator-ness.
        let term = i.is_terminator();
        let seq = matches!(i.flow(0x1000), stamp_isa::Flow::Seq);
        let is_call = matches!(
            i.flow(0x1000),
            stamp_isa::Flow::Call { .. } | stamp_isa::Flow::IndirectCall
        );
        let is_linkish = matches!(i, Insn::Jal { .. } | Insn::Jalr { .. });
        if seq {
            prop_assert!(!term || is_linkish);
        } else {
            prop_assert!(term || is_call);
        }
    }
}

/// The disassembly shown in reports must be stable and parseable-looking
/// (no panics, non-empty) for every instruction.
#[test]
fn display_is_total() {
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..512 {
        let i = insn().new_tree(&mut runner).unwrap().current();
        assert!(!i.to_string().is_empty());
    }
}
