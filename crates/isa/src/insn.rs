//! The decoded EVA32 instruction set and its static properties.

use std::fmt;

use crate::Reg;

/// Binary ALU operations (register-register and, for a subset,
/// register-immediate forms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Wrapping 32-bit addition.
    Add,
    /// Wrapping 32-bit subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left by the low 5 bits of the second operand.
    Sll,
    /// Logical shift right by the low 5 bits of the second operand.
    Srl,
    /// Arithmetic shift right by the low 5 bits of the second operand.
    Sra,
    /// Signed less-than comparison producing 0 or 1.
    Slt,
    /// Unsigned less-than comparison producing 0 or 1.
    Sltu,
    /// Low 32 bits of the 64-bit product.
    Mul,
    /// High 32 bits of the signed 64-bit product.
    Mulh,
    /// Signed division; division by zero yields `-1` (no trap).
    Div,
    /// Signed remainder; remainder by zero yields the dividend (no trap).
    Rem,
}

impl AluOp {
    /// All ALU operations, in opcode order.
    pub const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Div,
        AluOp::Rem,
    ];

    /// Returns `true` if the operation has an immediate form
    /// (`addi`, `andi`, …).
    pub fn has_imm_form(self) -> bool {
        !matches!(self, AluOp::Mul | AluOp::Mulh | AluOp::Div | AluOp::Rem)
    }

    /// Returns `true` for the multi-cycle multiplier ops (`mul`, `mulh`).
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh)
    }

    /// Returns `true` for the multi-cycle divider ops (`div`, `rem`).
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }

    /// Returns `true` if the immediate of the `*i` form is zero-extended
    /// (logical ops) rather than sign-extended (arithmetic ops).
    ///
    /// EVA32 follows the MIPS convention: `andi`/`ori`/`xori` zero-extend,
    /// everything else sign-extends.
    pub fn imm_zero_extends(self) -> bool {
        matches!(self, AluOp::And | AluOp::Or | AluOp::Xor)
    }

    /// Returns `true` for the shift operations, whose immediate form is
    /// restricted to `0..32`.
    pub fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }

    /// Evaluates the operation on concrete 32-bit values — the single
    /// source of truth for EVA32 ALU semantics, shared by the simulator
    /// and the value analysis's constant folding.
    ///
    /// Shift amounts use the low 5 bits of `b`; division by zero yields
    /// all-ones (`div`) / the dividend (`rem`) without trapping;
    /// `i32::MIN / -1` wraps.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
        }
    }

    /// The assembly mnemonic of the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }
}

/// Branch comparison conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed greater or equal.
    Ge,
    /// Unsigned less than.
    Ltu,
    /// Unsigned greater or equal.
    Geu,
}

impl Cond {
    /// All conditions in opcode order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// The condition that holds exactly when `self` does not.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// The condition with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Ge, // a < b  ⇔ ¬(b ≤ a); not expressible, callers avoid
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// Evaluates the condition on concrete 32-bit values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// The assembly mnemonic (`beq`, `bne`, …) without the `b` prefix.
    pub fn suffix(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        }
    }
}

/// Width of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes (halfword).
    H,
    /// Four bytes (word).
    W,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
        }
    }
}

/// A decoded EVA32 instruction.
///
/// All immediates are stored in already-extended form (sign- or
/// zero-extended according to the operation); branch and jump offsets are
/// in *words* relative to the instruction's own address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Register-register ALU operation: `rd = rs1 op rs2`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// Register-immediate ALU operation: `rd = rs1 op imm`.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i32 },
    /// Load upper immediate: `rd = imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// Memory load: `rd = mem[rs1 + offset]`, optionally sign-extended.
    Load { width: MemWidth, signed: bool, rd: Reg, base: Reg, offset: i32 },
    /// Memory store: `mem[rs1 + offset] = rs2`.
    Store { width: MemWidth, src: Reg, base: Reg, offset: i32 },
    /// Conditional branch to `pc + 4*offset` when `rs1 cond rs2` holds.
    Branch { cond: Cond, rs1: Reg, rs2: Reg, offset: i32 },
    /// Unconditional jump to `pc + 4*offset`.
    Jump { offset: i32 },
    /// Call: `lr = pc + 4; pc = pc + 4*offset`.
    Jal { offset: i32 },
    /// Indirect jump: `rd = pc + 4; pc = (rs1 + offset) & !3`.
    ///
    /// `jalr r0, lr, 0` is the return idiom; `jalr lr, rN, 0` is an
    /// indirect call; any other form is a computed jump.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Stop execution of the task.
    Halt,
}

/// Classification of an instruction's effect on control flow, as used by
/// CFG reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Flow {
    /// Falls through to the next instruction.
    Seq,
    /// Two-way conditional branch; `target` is the taken destination.
    Branch { target: u32 },
    /// Unconditional direct jump.
    Jump { target: u32 },
    /// Direct call (returns to the instruction after the call).
    Call { target: u32 },
    /// Indirect call through a register (`jalr` writing `lr`).
    IndirectCall,
    /// Function return (`jalr r0, lr, 0`).
    Return,
    /// Computed jump through a register (e.g. a jump table).
    IndirectJump,
    /// End of the task.
    Halt,
}

/// A small set of registers backed by a 16-bit mask.
///
/// Used for the `uses`/`defs` sets of instructions without heap
/// allocation.
///
/// # Example
///
/// ```
/// use stamp_isa::{Reg, RegSet};
///
/// let mut s = RegSet::EMPTY;
/// s.insert(Reg::SP);
/// s.insert(Reg::new(1));
/// assert!(s.contains(Reg::SP));
/// assert_eq!(s.iter().count(), 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegSet(pub u16);

impl RegSet {
    /// The empty register set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Inserts a register into the set.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Returns `true` if `r` is in the set.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the members in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        (0..16u8).filter(move |i| self.0 & (1 << i) != 0).map(Reg::new)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl Insn {
    /// The register written by this instruction, if any.
    ///
    /// Writes to `r0` are discarded by the hardware and reported as `None`.
    pub fn def(&self) -> Option<Reg> {
        let rd = match *self {
            Insn::Alu { rd, .. }
            | Insn::AluImm { rd, .. }
            | Insn::Lui { rd, .. }
            | Insn::Load { rd, .. }
            | Insn::Jalr { rd, .. } => rd,
            Insn::Jal { .. } => Reg::LR,
            Insn::Store { .. } | Insn::Branch { .. } | Insn::Jump { .. } | Insn::Halt => {
                return None
            }
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The set of registers read by this instruction.
    ///
    /// The zero register is included when named (its value is well defined).
    pub fn uses(&self) -> RegSet {
        let mut s = RegSet::EMPTY;
        match *self {
            Insn::Alu { rs1, rs2, .. } => {
                s.insert(rs1);
                s.insert(rs2);
            }
            Insn::AluImm { rs1, .. } => s.insert(rs1),
            Insn::Lui { .. } | Insn::Jump { .. } | Insn::Jal { .. } | Insn::Halt => {}
            Insn::Load { base, .. } => s.insert(base),
            Insn::Store { src, base, .. } => {
                s.insert(src);
                s.insert(base);
            }
            Insn::Branch { rs1, rs2, .. } => {
                s.insert(rs1);
                s.insert(rs2);
            }
            Insn::Jalr { rs1, .. } => s.insert(rs1),
        }
        s
    }

    /// Returns `true` if this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Load { .. })
    }

    /// Returns `true` if this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::Store { .. })
    }

    /// Returns the width of the memory access, if this is a load or store.
    pub fn mem_width(&self) -> Option<MemWidth> {
        match *self {
            Insn::Load { width, .. } | Insn::Store { width, .. } => Some(width),
            _ => None,
        }
    }

    /// Returns `true` if the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        !matches!(self.flow(0), Flow::Seq | Flow::Call { .. } | Flow::IndirectCall)
            || matches!(self, Insn::Jal { .. } | Insn::Jalr { .. })
    }

    /// Classifies the control-flow effect of this instruction located at
    /// address `pc`.
    pub fn flow(&self, pc: u32) -> Flow {
        match *self {
            Insn::Branch { offset, .. } => {
                Flow::Branch { target: pc.wrapping_add((offset as u32).wrapping_mul(4)) }
            }
            Insn::Jump { offset } => {
                Flow::Jump { target: pc.wrapping_add((offset as u32).wrapping_mul(4)) }
            }
            Insn::Jal { offset } => {
                Flow::Call { target: pc.wrapping_add((offset as u32).wrapping_mul(4)) }
            }
            Insn::Jalr { rd, rs1, offset } => {
                if rd.is_zero() && rs1 == Reg::LR && offset == 0 {
                    Flow::Return
                } else if rd == Reg::LR {
                    Flow::IndirectCall
                } else {
                    Flow::IndirectJump
                }
            }
            Insn::Halt => Flow::Halt,
            _ => Flow::Seq,
        }
    }

    /// Returns the branch/jump/call target for direct control transfers at
    /// address `pc`.
    pub fn direct_target(&self, pc: u32) -> Option<u32> {
        match self.flow(pc) {
            Flow::Branch { target } | Flow::Jump { target } | Flow::Call { target } => Some(target),
            _ => None,
        }
    }

    /// The canonical `nop` encoding (`addi r0, r0, 0`).
    pub fn nop() -> Insn {
        Insn::AluImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Insn::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm),
            Insn::Load { width, signed, rd, base, offset } => {
                let m = match (width, signed) {
                    (MemWidth::B, true) => "lb",
                    (MemWidth::B, false) => "lbu",
                    (MemWidth::H, true) => "lh",
                    (MemWidth::H, false) => "lhu",
                    (MemWidth::W, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Insn::Store { width, src, base, offset } => {
                let m = match width {
                    MemWidth::B => "sb",
                    MemWidth::H => "sh",
                    MemWidth::W => "sw",
                };
                write!(f, "{m} {src}, {offset}({base})")
            }
            Insn::Branch { cond, rs1, rs2, offset } => {
                write!(f, "b{} {rs1}, {rs2}, {:+}", cond.suffix(), offset)
            }
            Insn::Jump { offset } => write!(f, "j {:+}", offset),
            Insn::Jal { offset } => write!(f, "jal {:+}", offset),
            Insn::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {rs1}, {offset}"),
            Insn::Halt => f.write_str("halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_discards_zero_register() {
        let i = Insn::AluImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.def(), None);
        let i = Insn::AluImm { op: AluOp::Add, rd: Reg::new(3), rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.def(), Some(Reg::new(3)));
    }

    #[test]
    fn jal_defines_lr() {
        let i = Insn::Jal { offset: 4 };
        assert_eq!(i.def(), Some(Reg::LR));
    }

    #[test]
    fn uses_collects_operands() {
        let i = Insn::Store { width: MemWidth::W, src: Reg::new(2), base: Reg::SP, offset: 8 };
        let u = i.uses();
        assert!(u.contains(Reg::new(2)));
        assert!(u.contains(Reg::SP));
        assert_eq!(u.iter().count(), 2);
    }

    #[test]
    fn flow_classification() {
        assert_eq!(
            Insn::Branch { cond: Cond::Eq, rs1: Reg::ZERO, rs2: Reg::ZERO, offset: -2 }.flow(0x100),
            Flow::Branch { target: 0xf8 }
        );
        assert_eq!(Insn::Jump { offset: 3 }.flow(0x100), Flow::Jump { target: 0x10c });
        assert_eq!(Insn::Jal { offset: 1 }.flow(0), Flow::Call { target: 4 });
        assert_eq!(Insn::Jalr { rd: Reg::ZERO, rs1: Reg::LR, offset: 0 }.flow(0), Flow::Return);
        assert_eq!(
            Insn::Jalr { rd: Reg::LR, rs1: Reg::new(5), offset: 0 }.flow(0),
            Flow::IndirectCall
        );
        assert_eq!(
            Insn::Jalr { rd: Reg::ZERO, rs1: Reg::new(5), offset: 0 }.flow(0),
            Flow::IndirectJump
        );
        assert_eq!(Insn::Halt.flow(0), Flow::Halt);
        assert_eq!(Insn::nop().flow(0), Flow::Seq);
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0u32, 1u32), (5, 5), (u32::MAX, 0), (0x8000_0000, 1)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn display_formats() {
        let i = Insn::Load {
            width: MemWidth::W,
            signed: true,
            rd: Reg::new(1),
            base: Reg::SP,
            offset: -4,
        };
        assert_eq!(i.to_string(), "lw r1, -4(sp)");
        assert_eq!(Insn::Halt.to_string(), "halt");
    }

    #[test]
    fn regset_iterates_in_order() {
        let s: RegSet = [Reg::new(5), Reg::new(1), Reg::new(14)].into_iter().collect();
        let v: Vec<_> = s.iter().map(|r| r.index()).collect();
        assert_eq!(v, vec![1, 5, 14]);
    }
}
