//! # stamp-isa — the EVA32 instruction-set architecture
//!
//! This crate defines **EVA32**, the 32-bit embedded RISC architecture that
//! every other `stamp` crate analyses or executes. It plays the role that a
//! real target ISA (PowerPC, ARM, C16x, …) plays for AbsInt's aiT and
//! StackAnalyzer: analyses in `stamp` consume only the *binary image*
//! produced here, and must reconstruct everything else (control flow,
//! register values, loop bounds) from the machine code.
//!
//! The crate provides:
//!
//! * [`Reg`] — the sixteen architectural registers (`r0` is hard-wired to
//!   zero, `r13` is the stack pointer `sp`, `r14` the link register `lr`);
//! * [`Insn`] — the decoded instruction set (ALU, loads/stores, branches,
//!   jumps, calls) with static properties used by the analyses
//!   ([`Insn::def`], [`Insn::uses`], [`Insn::flow`]);
//! * [`codec`] — the fixed-width 32-bit binary encoding
//!   ([`encode`](codec::encode) / [`decode`](codec::decode));
//! * [`Program`] — a linked binary image (sections, symbols, entry point);
//! * [`asm`] — a two-pass assembler turning EVA32 assembly text into a
//!   [`Program`].
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!         .text
//!     main:
//!         li   r1, 10
//!         li   r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//!     "#,
//! )?;
//! let insn = program.decode_at(program.entry)?;
//! assert_eq!(insn.to_string(), "addi r1, r0, 10");
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod codec;
mod insn;
mod program;
mod reg;

pub use insn::{AluOp, Cond, Flow, Insn, MemWidth, RegSet};
pub use program::{Program, Section, SectionKind, SymbolTable};
pub use reg::Reg;

/// Size of every EVA32 instruction in bytes.
pub const INSN_BYTES: u32 = 4;

/// Sign-extend the low 16 bits of `v` to 32 bits.
#[inline]
pub fn sext16(v: u16) -> i32 {
    v as i16 as i32
}

/// Sign-extend the low 24 bits of `v` to 32 bits.
#[inline]
pub fn sext24(v: u32) -> i32 {
    ((v << 8) as i32) >> 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sext16_extends_sign() {
        assert_eq!(sext16(0x7fff), 0x7fff);
        assert_eq!(sext16(0x8000), -0x8000);
        assert_eq!(sext16(0xffff), -1);
    }

    #[test]
    fn sext24_extends_sign() {
        assert_eq!(sext24(0x7f_ffff), 0x7f_ffff);
        assert_eq!(sext24(0x80_0000), -0x80_0000);
        assert_eq!(sext24(0xff_ffff), -1);
    }
}
