//! Line-level parsing: source text → assembler statements.

use crate::{AluOp, Cond, Insn, MemWidth, Reg};

use super::expr::{parse_expr, Expr};
use super::AsmError;

/// Which output section a `.text`/`.data`/… directive selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum SectionSel {
    Text,
    RoData,
    Data,
    Bss,
}

/// Raw data emitted by a directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(super) enum DataItem {
    Word(Vec<Expr>),
    Half(Vec<Expr>),
    Byte(Vec<Expr>),
    Space(u32),
    Align(u32),
    Ascii(Vec<u8>),
}

/// One machine-instruction slot, possibly with unresolved expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(super) enum Slot {
    /// Fully resolved instruction.
    Fixed(Insn),
    /// ALU-immediate with a symbolic immediate.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: Expr },
    /// `lui` with a symbolic 16-bit immediate.
    Lui { rd: Reg, imm: Expr },
    /// `rd = hi16(expr) << 16` — first half of `la`.
    LuiHi { rd: Reg, value: Expr },
    /// `rd = rs | lo16(expr)` — second half of `la`.
    OriLo { rd: Reg, rs: Reg, value: Expr },
    /// Load with symbolic offset.
    Load { width: MemWidth, signed: bool, rd: Reg, base: Reg, offset: Expr },
    /// Store with symbolic offset.
    Store { width: MemWidth, src: Reg, base: Reg, offset: Expr },
    /// Conditional branch to an absolute target expression.
    Branch { cond: Cond, rs1: Reg, rs2: Reg, target: Expr },
    /// `j` (link = false) or `jal`/`call` (link = true) to a target.
    Jump { target: Expr, link: bool },
    /// Indirect jump with symbolic offset.
    Jalr { rd: Reg, rs1: Reg, offset: Expr },
}

/// A parsed statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(super) enum Stmt {
    Label {
        name: String,
        line: u32,
    },
    Section(SectionSel),
    Equ {
        name: String,
        value: Expr,
    },
    Data {
        item: DataItem,
        line: u32,
    },
    Entry {
        name: String,
        line: u32,
    },
    /// `li` is expanded by the driver, which knows `.equ` constants.
    Li {
        rd: Reg,
        value: Expr,
        line: u32,
    },
    Insn {
        slots: Vec<Slot>,
        line: u32,
    },
}

/// Parses one source line into zero or more statements.
pub(super) fn parse_line(raw: &str, line: u32) -> Result<Vec<Stmt>, AsmError> {
    let text = strip_comment(raw);
    let mut rest = text.trim();
    let mut out = Vec::new();

    // Leading labels: `name:`.
    while let Some(colon) = find_label_colon(rest) {
        let name = rest[..colon].trim();
        if !is_ident(name) {
            return Err(AsmError::new(line, format!("bad label `{name}`")));
        }
        out.push(Stmt::Label { name: name.to_string(), line });
        rest = rest[colon + 1..].trim();
    }
    if rest.is_empty() {
        return Ok(out);
    }

    if let Some(dir) = rest.strip_prefix('.') {
        out.extend(parse_directive(dir, line)?);
    } else {
        out.push(parse_insn(rest, line)?);
    }
    Ok(out)
}

/// Strips `;`, `#`, and `//` comments, respecting string literals.
fn strip_comment(s: &str) -> &str {
    let bytes = s.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b';' | b'#' if !in_str => return &s[..i],
            b'/' if !in_str && bytes.get(i + 1) == Some(&b'/') => return &s[..i],
            _ => {}
        }
        i += 1;
    }
    s
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if !head.is_empty() && is_ident(head.trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_directive(dir: &str, line: u32) -> Result<Vec<Stmt>, AsmError> {
    let (name, args) = match dir.find(char::is_whitespace) {
        Some(i) => (&dir[..i], dir[i..].trim()),
        None => (dir, ""),
    };
    let exprs = |args: &str| -> Result<Vec<Expr>, AsmError> {
        split_operands(args).iter().map(|a| parse_expr(a, line)).collect()
    };
    let stmt = match name {
        "text" => Stmt::Section(SectionSel::Text),
        "rodata" => Stmt::Section(SectionSel::RoData),
        "data" => Stmt::Section(SectionSel::Data),
        "bss" => Stmt::Section(SectionSel::Bss),
        "word" => Stmt::Data { item: DataItem::Word(exprs(args)?), line },
        "half" => Stmt::Data { item: DataItem::Half(exprs(args)?), line },
        "byte" => Stmt::Data { item: DataItem::Byte(exprs(args)?), line },
        "space" | "skip" => {
            let n = parse_expr(args, line)?
                .as_const()
                .filter(|&n| (0..=(1 << 24)).contains(&n))
                .ok_or_else(|| AsmError::new(line, ".space requires a constant size"))?;
            Stmt::Data { item: DataItem::Space(n as u32), line }
        }
        "align" => {
            let n = parse_expr(args, line)?
                .as_const()
                .filter(|&n| n > 0 && (n as u64).is_power_of_two() && n <= 4096)
                .ok_or_else(|| AsmError::new(line, ".align requires a power-of-two byte count"))?;
            Stmt::Data { item: DataItem::Align(n as u32), line }
        }
        "ascii" | "asciiz" | "string" => {
            let mut bytes = parse_string(args, line)?;
            if name != "ascii" {
                bytes.push(0);
            }
            Stmt::Data { item: DataItem::Ascii(bytes), line }
        }
        "equ" | "set" => {
            let ops = split_operands(args);
            if ops.len() != 2 || !is_ident(&ops[0]) {
                return Err(AsmError::new(line, ".equ expects `name, value`"));
            }
            Stmt::Equ { name: ops[0].clone(), value: parse_expr(&ops[1], line)? }
        }
        "entry" => {
            if !is_ident(args) {
                return Err(AsmError::new(line, ".entry expects a symbol"));
            }
            Stmt::Entry { name: args.to_string(), line }
        }
        "global" | "globl" => return Ok(Vec::new()), // informational only
        _ => return Err(AsmError::new(line, format!("unknown directive `.{name}`"))),
    };
    Ok(vec![stmt])
}

fn parse_string(s: &str, line: u32) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, "expected a double-quoted string"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let e = chars.next().ok_or_else(|| AsmError::new(line, "unterminated escape"))?;
            out.push(match e {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                _ => return Err(AsmError::new(line, format!("unknown escape `\\{e}`"))),
            });
        } else if c.is_ascii() {
            out.push(c as u8);
        } else {
            return Err(AsmError::new(line, "non-ASCII character in string"));
        }
    }
    Ok(out)
}

/// Splits an operand list on top-level commas.
fn split_operands(s: &str) -> Vec<String> {
    let s = s.trim();
    if s.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut start = 0;
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'(' if !in_str => depth += 1,
            b')' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                out.push(s[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(s[start..].trim().to_string());
    out
}

struct Ops<'a> {
    mnemonic: &'a str,
    ops: Vec<String>,
    line: u32,
}

impl Ops<'_> {
    fn expect(&self, n: usize) -> Result<(), AsmError> {
        if self.ops.len() == n {
            Ok(())
        } else {
            Err(AsmError::new(
                self.line,
                format!("`{}` expects {n} operand(s), got {}", self.mnemonic, self.ops.len()),
            ))
        }
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        self.ops[i].parse::<Reg>().map_err(|_| {
            AsmError::new(self.line, format!("expected register, got `{}`", self.ops[i]))
        })
    }

    fn expr(&self, i: usize) -> Result<Expr, AsmError> {
        parse_expr(&self.ops[i], self.line)
    }

    /// Parses a memory operand `offset(base)`, `(base)` or `expr` (base r0).
    fn mem(&self, i: usize) -> Result<(Expr, Reg), AsmError> {
        let s = self.ops[i].trim();
        if let Some(open) = s.rfind('(') {
            let close = s
                .rfind(')')
                .filter(|&c| c > open)
                .ok_or_else(|| AsmError::new(self.line, "unbalanced memory operand"))?;
            let base: Reg = s[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| AsmError::new(self.line, "bad base register"))?;
            let off = s[..open].trim();
            let offset =
                if off.is_empty() { Expr::num(0, self.line) } else { parse_expr(off, self.line)? };
            Ok((offset, base))
        } else {
            Ok((parse_expr(s, self.line)?, Reg::ZERO))
        }
    }
}

fn parse_insn(text: &str, line: u32) -> Result<Stmt, AsmError> {
    let (mnemonic, args) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let mnemonic_lc = mnemonic.to_ascii_lowercase();
    let o = Ops { mnemonic: &mnemonic_lc, ops: split_operands(args), line };

    let alu =
        |m: &str| -> Option<AluOp> { AluOp::ALL.iter().copied().find(|op| op.mnemonic() == m) };
    let cond = |m: &str| -> Option<Cond> {
        Cond::ALL.iter().copied().find(|c| format!("b{}", c.suffix()) == m)
    };

    let slots: Vec<Slot> = match mnemonic_lc.as_str() {
        // Register ALU: `add rd, rs1, rs2`.
        m if alu(m).is_some() => {
            o.expect(3)?;
            vec![Slot::Fixed(Insn::Alu {
                op: alu(m).unwrap(),
                rd: o.reg(0)?,
                rs1: o.reg(1)?,
                rs2: o.reg(2)?,
            })]
        }
        // Immediate ALU: `addi rd, rs1, imm`.
        m if m.ends_with('i') && alu(&m[..m.len() - 1]).is_some_and(|op| op.has_imm_form()) => {
            o.expect(3)?;
            let op = alu(&m[..m.len() - 1]).unwrap();
            vec![Slot::AluImm { op, rd: o.reg(0)?, rs1: o.reg(1)?, imm: o.expr(2)? }]
        }
        "lui" => {
            o.expect(2)?;
            vec![Slot::Lui { rd: o.reg(0)?, imm: o.expr(1)? }]
        }
        "lb" | "lbu" | "lh" | "lhu" | "lw" => {
            o.expect(2)?;
            let (width, signed) = match mnemonic_lc.as_str() {
                "lb" => (MemWidth::B, true),
                "lbu" => (MemWidth::B, false),
                "lh" => (MemWidth::H, true),
                "lhu" => (MemWidth::H, false),
                _ => (MemWidth::W, true),
            };
            let (offset, base) = o.mem(1)?;
            vec![Slot::Load { width, signed, rd: o.reg(0)?, base, offset }]
        }
        "sb" | "sh" | "sw" => {
            o.expect(2)?;
            let width = match mnemonic_lc.as_str() {
                "sb" => MemWidth::B,
                "sh" => MemWidth::H,
                _ => MemWidth::W,
            };
            let (offset, base) = o.mem(1)?;
            vec![Slot::Store { width, src: o.reg(0)?, base, offset }]
        }
        // Branches: `beq rs1, rs2, target`.
        m if cond(m).is_some() => {
            o.expect(3)?;
            vec![Slot::Branch {
                cond: cond(m).unwrap(),
                rs1: o.reg(0)?,
                rs2: o.reg(1)?,
                target: o.expr(2)?,
            }]
        }
        // Reversed-operand branch pseudos.
        "bgt" | "ble" | "bgtu" | "bleu" => {
            o.expect(3)?;
            let c = match mnemonic_lc.as_str() {
                "bgt" => Cond::Lt,
                "ble" => Cond::Ge,
                "bgtu" => Cond::Ltu,
                _ => Cond::Geu,
            };
            vec![Slot::Branch { cond: c, rs1: o.reg(1)?, rs2: o.reg(0)?, target: o.expr(2)? }]
        }
        // Compare-against-zero branch pseudos.
        "beqz" | "bnez" | "bltz" | "bgez" | "blez" | "bgtz" => {
            o.expect(2)?;
            let rs = o.reg(0)?;
            let target = o.expr(1)?;
            let (c, rs1, rs2) = match mnemonic_lc.as_str() {
                "beqz" => (Cond::Eq, rs, Reg::ZERO),
                "bnez" => (Cond::Ne, rs, Reg::ZERO),
                "bltz" => (Cond::Lt, rs, Reg::ZERO),
                "bgez" => (Cond::Ge, rs, Reg::ZERO),
                "blez" => (Cond::Ge, Reg::ZERO, rs),
                _ => (Cond::Lt, Reg::ZERO, rs),
            };
            vec![Slot::Branch { cond: c, rs1, rs2, target }]
        }
        "j" | "b" => {
            o.expect(1)?;
            vec![Slot::Jump { target: o.expr(0)?, link: false }]
        }
        "jal" | "call" => {
            o.expect(1)?;
            vec![Slot::Jump { target: o.expr(0)?, link: true }]
        }
        "jalr" => match o.ops.len() {
            1 => vec![Slot::Fixed(Insn::Jalr { rd: Reg::LR, rs1: o.reg(0)?, offset: 0 })],
            2 => vec![Slot::Jalr { rd: o.reg(0)?, rs1: o.reg(1)?, offset: Expr::num(0, line) }],
            3 => vec![Slot::Jalr { rd: o.reg(0)?, rs1: o.reg(1)?, offset: o.expr(2)? }],
            n => return Err(AsmError::new(line, format!("`jalr` expects 1-3 operands, got {n}"))),
        },
        "ret" => {
            o.expect(0)?;
            vec![Slot::Fixed(Insn::Jalr { rd: Reg::ZERO, rs1: Reg::LR, offset: 0 })]
        }
        "halt" => {
            o.expect(0)?;
            vec![Slot::Fixed(Insn::Halt)]
        }
        "nop" => {
            o.expect(0)?;
            vec![Slot::Fixed(Insn::nop())]
        }
        "mov" | "mv" => {
            o.expect(2)?;
            vec![Slot::Fixed(Insn::AluImm {
                op: AluOp::Add,
                rd: o.reg(0)?,
                rs1: o.reg(1)?,
                imm: 0,
            })]
        }
        "neg" => {
            o.expect(2)?;
            vec![Slot::Fixed(Insn::Alu {
                op: AluOp::Sub,
                rd: o.reg(0)?,
                rs1: Reg::ZERO,
                rs2: o.reg(1)?,
            })]
        }
        "seqz" => {
            o.expect(2)?;
            vec![Slot::Fixed(Insn::AluImm {
                op: AluOp::Sltu,
                rd: o.reg(0)?,
                rs1: o.reg(1)?,
                imm: 1,
            })]
        }
        "snez" => {
            o.expect(2)?;
            vec![Slot::Fixed(Insn::Alu {
                op: AluOp::Sltu,
                rd: o.reg(0)?,
                rs1: Reg::ZERO,
                rs2: o.reg(1)?,
            })]
        }
        "li" => {
            o.expect(2)?;
            return Ok(Stmt::Li { rd: o.reg(0)?, value: o.expr(1)?, line });
        }
        "la" => {
            o.expect(2)?;
            let rd = o.reg(0)?;
            let value = o.expr(1)?;
            vec![Slot::LuiHi { rd, value: value.clone() }, Slot::OriLo { rd, rs: rd, value }]
        }
        other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(Stmt::Insn { slots, line })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_comments() {
        let stmts = parse_line("loop: add r1, r2, r3 ; comment", 3).unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[0], Stmt::Label { name, .. } if name == "loop"));
        assert!(matches!(&stmts[1], Stmt::Insn { slots, .. } if slots.len() == 1));
    }

    #[test]
    fn comment_only_line() {
        assert!(parse_line("  # nothing here", 1).unwrap().is_empty());
        assert!(parse_line("// nothing", 1).unwrap().is_empty());
        assert!(parse_line("", 1).unwrap().is_empty());
    }

    #[test]
    fn memory_operands() {
        let s = parse_line("lw r1, -8(sp)", 1).unwrap();
        match &s[0] {
            Stmt::Insn { slots, .. } => match &slots[0] {
                Slot::Load { base, offset, .. } => {
                    assert_eq!(*base, Reg::SP);
                    assert_eq!(offset.as_const(), Some(-8));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Bare (reg) means offset 0.
        let s = parse_line("sw r2, (r5)", 1).unwrap();
        match &s[0] {
            Stmt::Insn { slots, .. } => match &slots[0] {
                Slot::Store { base, offset, .. } => {
                    assert_eq!(*base, Reg::new(5));
                    assert_eq!(offset.as_const(), Some(0));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn la_expands_to_two_slots() {
        let s = parse_line("la r4, buffer", 1).unwrap();
        match &s[0] {
            Stmt::Insn { slots, .. } => assert_eq!(slots.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn branch_pseudos_reverse_operands() {
        let s = parse_line("bgt r1, r2, somewhere", 1).unwrap();
        match &s[0] {
            Stmt::Insn { slots, .. } => match &slots[0] {
                Slot::Branch { cond, rs1, rs2, .. } => {
                    assert_eq!(*cond, Cond::Lt);
                    assert_eq!(*rs1, Reg::new(2));
                    assert_eq!(*rs2, Reg::new(1));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn directives() {
        assert!(matches!(parse_line(".text", 1).unwrap()[0], Stmt::Section(SectionSel::Text)));
        let s = parse_line(".word 1, 2, table+4", 1).unwrap();
        match &s[0] {
            Stmt::Data { item: DataItem::Word(es), .. } => assert_eq!(es.len(), 3),
            other => panic!("{other:?}"),
        }
        let s = parse_line(".asciiz \"hi\\n\"", 1).unwrap();
        match &s[0] {
            Stmt::Data { item: DataItem::Ascii(b), .. } => assert_eq!(b, &[b'h', b'i', b'\n', 0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_line("frobnicate r1", 42).unwrap_err();
        assert!(err.to_string().contains("line 42"));
        assert!(parse_line("add r1, r2", 1).is_err()); // wrong arity
        assert!(parse_line(".align 3", 1).is_err()); // not a power of two
    }
}
