//! A two-pass assembler for EVA32.
//!
//! The assembler turns textual assembly into a linked [`Program`] image:
//! pass 1 expands pseudo-instructions, lays out sections and assigns
//! addresses to labels; pass 2 resolves symbols and encodes machine words.
//!
//! # Syntax overview
//!
//! ```text
//!         .equ  N, 16            ; assembly-time constant
//!         .text
//! main:   addi  sp, sp, -8       ; comments: ';', '#', '//'
//!         li    r1, N*0 + 10     ; li/la/mov/ret/call/b..z pseudos
//!         la    r2, buf
//! loop:   sw    r1, 0(r2)
//!         addi  r1, r1, -1
//!         bnez  r1, loop
//!         halt
//!         .rodata
//! tbl:    .word main, loop       ; labels allowed in data
//!         .data
//! buf:    .space 64
//! ```
//!
//! Sections are laid out as `.text` then `.rodata` in ROM (from
//! [`AsmOptions::text_base`]) and `.data` then `.bss` in RAM (from
//! [`AsmOptions::data_base`]). The entry point is the `.entry` symbol,
//! else `main`, else `_start`, else the start of `.text`.

mod expr;
mod parse;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::codec::encode;
use crate::{AluOp, Insn, Program, Reg, Section, SectionKind, SymbolTable};

pub use expr::{parse_number, Atom, Expr};

use parse::{parse_line, DataItem, SectionSel, Slot, Stmt};

/// An assembly error with its source line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    /// Creates an error at `line` (0 means "no specific line").
    pub fn new(line: u32, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line, or 0 if not line-specific.
    pub fn line(&self) -> u32 {
        self.line
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl Error for AsmError {}

/// Layout options for [`assemble_with`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmOptions {
    /// Base address of `.text` (ROM). Default `0x0000_0000`.
    pub text_base: u32,
    /// Base address of `.data` (RAM). Default `0x1000_0000`.
    pub data_base: u32,
}

impl Default for AsmOptions {
    fn default() -> AsmOptions {
        AsmOptions { text_base: 0x0000_0000, data_base: 0x1000_0000 }
    }
}

/// Assembles `src` with default layout options.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (with its line number).
///
/// # Example
///
/// ```
/// let p = stamp_isa::asm::assemble(".text\nmain: halt\n")?;
/// assert_eq!(p.entry, 0);
/// # Ok::<(), stamp_isa::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_with(src, &AsmOptions::default())
}

#[derive(Debug)]
enum Placed {
    Slots { sel: SectionSel, offset: u32, slots: Vec<Slot>, line: u32 },
    Data { sel: SectionSel, offset: u32, item: DataItem, line: u32 },
}

/// Assembles `src` into a [`Program`] using explicit layout options.
///
/// # Errors
///
/// Returns an [`AsmError`] for syntax errors, duplicate or undefined
/// symbols, out-of-range immediates, or misplaced statements (e.g. code
/// outside `.text`).
pub fn assemble_with(src: &str, opts: &AsmOptions) -> Result<Program, AsmError> {
    // ------------------------------------------------------------ parse
    let mut stmts = Vec::new();
    for (i, line) in src.lines().enumerate() {
        stmts.extend(parse_line(line, (i + 1) as u32)?);
    }

    // ----------------------------------------------------------- pass 1
    let mut cur = SectionSel::Text;
    let mut offsets: BTreeMap<SectionSel, u32> = BTreeMap::new();
    let mut placed: Vec<Placed> = Vec::new();
    let mut labels: Vec<(String, SectionSel, u32, u32)> = Vec::new();
    let mut consts: BTreeMap<String, i64> = BTreeMap::new();
    let mut entry_sym: Option<(String, u32)> = None;

    for stmt in stmts {
        let off = offsets.entry(cur).or_insert(0);
        match stmt {
            Stmt::Section(sel) => cur = sel,
            Stmt::Label { name, line } => {
                if consts.contains_key(&name) || labels.iter().any(|(n, ..)| *n == name) {
                    return Err(AsmError::new(line, format!("duplicate symbol `{name}`")));
                }
                labels.push((name, cur, *off, line));
            }
            Stmt::Equ { name, value } => {
                let line = value.line;
                if consts.contains_key(&name) || labels.iter().any(|(n, ..)| *n == name) {
                    return Err(AsmError::new(line, format!("duplicate symbol `{name}`")));
                }
                let v = value.eval(&consts)?;
                consts.insert(name, v);
            }
            Stmt::Entry { name, line } => entry_sym = Some((name, line)),
            Stmt::Li { rd, value, line } => {
                if cur != SectionSel::Text {
                    return Err(AsmError::new(line, "instructions must be in .text"));
                }
                let v = value.eval(&consts).map_err(|_| {
                    AsmError::new(
                        line,
                        "`li` requires an assembly-time constant; use `la` for addresses",
                    )
                })?;
                if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                    return Err(AsmError::new(line, format!("`li` value {v} out of 32-bit range")));
                }
                let slots = expand_li(rd, v as u32);
                let n = slots.len() as u32;
                placed.push(Placed::Slots { sel: cur, offset: *off, slots, line });
                *off += 4 * n;
            }
            Stmt::Insn { slots, line } => {
                if cur != SectionSel::Text {
                    return Err(AsmError::new(line, "instructions must be in .text"));
                }
                let n = slots.len() as u32;
                placed.push(Placed::Slots { sel: cur, offset: *off, slots, line });
                *off += 4 * n;
            }
            Stmt::Data { item, line } => {
                if cur == SectionSel::Text && !matches!(item, DataItem::Align(_)) {
                    return Err(AsmError::new(
                        line,
                        "data directives are not allowed in .text (use .rodata)",
                    ));
                }
                if cur == SectionSel::Bss
                    && !matches!(item, DataItem::Space(_) | DataItem::Align(_))
                {
                    return Err(AsmError::new(line, "only .space/.align are allowed in .bss"));
                }
                let size = match &item {
                    DataItem::Word(es) => 4 * es.len() as u32,
                    DataItem::Half(es) => 2 * es.len() as u32,
                    DataItem::Byte(es) => es.len() as u32,
                    DataItem::Space(n) => *n,
                    DataItem::Ascii(b) => b.len() as u32,
                    DataItem::Align(n) => {
                        if cur == SectionSel::Text && *n % 4 != 0 {
                            return Err(AsmError::new(
                                line,
                                ".align in .text must be a multiple of 4",
                            ));
                        }
                        off.next_multiple_of(*n) - *off
                    }
                };
                placed.push(Placed::Data { sel: cur, offset: *off, item, line });
                *off += size;
            }
        }
    }

    // ------------------------------------------------- section layout
    let size = |sel: SectionSel| offsets.get(&sel).copied().unwrap_or(0);
    let text_base = opts.text_base;
    let rodata_base = (text_base + size(SectionSel::Text)).next_multiple_of(16);
    let data_base = opts.data_base;
    let bss_base = (data_base + size(SectionSel::Data)).next_multiple_of(16);
    if rodata_base + size(SectionSel::RoData) > data_base
        && size(SectionSel::RoData) + size(SectionSel::Text) > 0
    {
        // ROM running into RAM means the image is simply too large.
        if rodata_base.checked_add(size(SectionSel::RoData)).is_none_or(|end| end > data_base) {
            return Err(AsmError::new(0, "ROM image overlaps the RAM base; increase data_base"));
        }
    }
    let base_of = |sel: SectionSel| match sel {
        SectionSel::Text => text_base,
        SectionSel::RoData => rodata_base,
        SectionSel::Data => data_base,
        SectionSel::Bss => bss_base,
    };

    // ------------------------------------------------- symbol binding
    let mut symbols: BTreeMap<String, i64> = consts;
    let mut table = SymbolTable::new();
    for (name, sel, off, _line) in &labels {
        let addr = base_of(*sel) + off;
        symbols.insert(name.clone(), addr as i64);
        table.insert(name.clone(), addr);
    }

    // ----------------------------------------------------------- pass 2
    let mut bufs: BTreeMap<SectionSel, Vec<u8>> = BTreeMap::new();
    for p in &placed {
        match p {
            Placed::Slots { sel, offset, slots, line } => {
                let base = base_of(*sel);
                let buf = bufs.entry(*sel).or_default();
                pad_text(buf, *offset);
                for (k, slot) in slots.iter().enumerate() {
                    let pc = base + offset + 4 * k as u32;
                    let insn = resolve_slot(slot, pc, &symbols, *line)?;
                    let word = encode(&insn).map_err(|e| AsmError::new(*line, e.to_string()))?;
                    buf.extend_from_slice(&word.to_le_bytes());
                }
            }
            Placed::Data { sel, offset, item, line } => {
                if *sel == SectionSel::Bss {
                    continue; // no image bytes
                }
                let buf = bufs.entry(*sel).or_default();
                if *sel == SectionSel::Text {
                    pad_text(buf, *offset);
                } else {
                    buf.resize(*offset as usize, 0);
                }
                emit_data(buf, item, &symbols, *line)?;
            }
        }
    }

    // ------------------------------------------------- build sections
    let mut sections = Vec::new();
    let mut push = |sel: SectionSel, name: &str, kind: SectionKind| {
        let sz = size(sel);
        if sz == 0 {
            return;
        }
        let mut data = bufs.remove(&sel).unwrap_or_default();
        if kind != SectionKind::Bss {
            if sel == SectionSel::Text {
                pad_text(&mut data, sz);
            } else {
                data.resize(sz as usize, 0);
            }
        } else {
            data.clear();
        }
        sections.push(Section { name: name.into(), base: base_of(sel), kind, data, size: sz });
    };
    push(SectionSel::Text, ".text", SectionKind::Text);
    push(SectionSel::RoData, ".rodata", SectionKind::RoData);
    push(SectionSel::Data, ".data", SectionKind::Data);
    push(SectionSel::Bss, ".bss", SectionKind::Bss);
    if size(SectionSel::Text) == 0 {
        return Err(AsmError::new(0, "program has no .text section"));
    }

    // ---------------------------------------------------------- entry
    let entry = if let Some((name, line)) = entry_sym {
        table
            .addr_of(&name)
            .ok_or_else(|| AsmError::new(line, format!("undefined entry symbol `{name}`")))?
    } else {
        table.addr_of("main").or_else(|| table.addr_of("_start")).unwrap_or(text_base)
    };

    Ok(Program::new(entry, sections, table))
}

/// Pads a `.text` buffer with `nop` words up to `offset`.
fn pad_text(buf: &mut Vec<u8>, offset: u32) {
    let nop = encode(&Insn::nop()).expect("nop encodes");
    while (buf.len() as u32) < offset {
        buf.extend_from_slice(&nop.to_le_bytes());
    }
    debug_assert_eq!(buf.len() as u32, offset.max(buf.len() as u32));
}

fn expand_li(rd: Reg, v: u32) -> Vec<Slot> {
    let sv = v as i32;
    if (-0x8000..=0x7fff).contains(&sv) {
        vec![Slot::Fixed(Insn::AluImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: sv })]
    } else if v & 0xffff == 0 {
        vec![Slot::Fixed(Insn::Lui { rd, imm: (v >> 16) as u16 })]
    } else {
        vec![
            Slot::Fixed(Insn::Lui { rd, imm: (v >> 16) as u16 }),
            Slot::Fixed(Insn::AluImm { op: AluOp::Or, rd, rs1: rd, imm: (v & 0xffff) as i32 }),
        ]
    }
}

fn resolve_slot(
    slot: &Slot,
    pc: u32,
    symbols: &BTreeMap<String, i64>,
    line: u32,
) -> Result<Insn, AsmError> {
    let imm32 = |e: &Expr| -> Result<i32, AsmError> {
        let v = e.eval(symbols)?;
        i32::try_from(v)
            .or_else(|_| {
                // Allow unsigned 32-bit values to pass through unchanged.
                u32::try_from(v).map(|u| u as i32)
            })
            .map_err(|_| AsmError::new(line, format!("value {v} out of 32-bit range")))
    };
    let rel_words = |e: &Expr| -> Result<i32, AsmError> {
        let target = e.eval(symbols)?;
        let delta = target - pc as i64;
        if delta % 4 != 0 {
            return Err(AsmError::new(line, "branch target is not word-aligned"));
        }
        Ok((delta / 4) as i32)
    };
    let insn = match slot {
        Slot::Fixed(i) => *i,
        Slot::AluImm { op, rd, rs1, imm } => {
            Insn::AluImm { op: *op, rd: *rd, rs1: *rs1, imm: imm32(imm)? }
        }
        Slot::Lui { rd, imm } => {
            let v = imm32(imm)?;
            if !(0..=0xffff).contains(&v) {
                return Err(AsmError::new(line, format!("`lui` immediate {v} out of range")));
            }
            Insn::Lui { rd: *rd, imm: v as u16 }
        }
        Slot::LuiHi { rd, value } => {
            let v = imm32(value)? as u32;
            Insn::Lui { rd: *rd, imm: (v >> 16) as u16 }
        }
        Slot::OriLo { rd, rs, value } => {
            let v = imm32(value)? as u32;
            Insn::AluImm { op: AluOp::Or, rd: *rd, rs1: *rs, imm: (v & 0xffff) as i32 }
        }
        Slot::Load { width, signed, rd, base, offset } => Insn::Load {
            width: *width,
            signed: *signed,
            rd: *rd,
            base: *base,
            offset: imm32(offset)?,
        },
        Slot::Store { width, src, base, offset } => {
            Insn::Store { width: *width, src: *src, base: *base, offset: imm32(offset)? }
        }
        Slot::Branch { cond, rs1, rs2, target } => {
            Insn::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, offset: rel_words(target)? }
        }
        Slot::Jump { target, link } => {
            let offset = rel_words(target)?;
            if *link {
                Insn::Jal { offset }
            } else {
                Insn::Jump { offset }
            }
        }
        Slot::Jalr { rd, rs1, offset } => Insn::Jalr { rd: *rd, rs1: *rs1, offset: imm32(offset)? },
    };
    Ok(insn)
}

fn emit_data(
    buf: &mut Vec<u8>,
    item: &DataItem,
    symbols: &BTreeMap<String, i64>,
    line: u32,
) -> Result<(), AsmError> {
    let eval_to = |e: &Expr, bits: u32| -> Result<u64, AsmError> {
        let v = e.eval(symbols)?;
        let umax = (1i64 << bits) - 1;
        let smin = -(1i64 << (bits - 1));
        if v < smin || v > umax {
            return Err(AsmError::new(line, format!("data value {v} does not fit {bits} bits")));
        }
        Ok((v as u64) & ((1u64 << bits) - 1))
    };
    match item {
        DataItem::Word(es) => {
            for e in es {
                buf.extend_from_slice(&(eval_to(e, 32)? as u32).to_le_bytes());
            }
        }
        DataItem::Half(es) => {
            for e in es {
                buf.extend_from_slice(&(eval_to(e, 16)? as u16).to_le_bytes());
            }
        }
        DataItem::Byte(es) => {
            for e in es {
                buf.push(eval_to(e, 8)? as u8);
            }
        }
        DataItem::Space(n) => buf.extend(std::iter::repeat_n(0u8, *n as usize)),
        DataItem::Ascii(bytes) => buf.extend_from_slice(bytes),
        DataItem::Align(_) => {} // padding handled by offset bookkeeping
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, MemWidth};

    #[test]
    fn end_to_end_small_program() {
        let p = assemble(
            r#"
                .equ N, 3
                .text
            main:
                li   r1, N
                la   r2, buf
            loop:
                sw   r1, 0(r2)
                addi r1, r1, -1
                bnez r1, loop
                halt
                .rodata
            tbl:
                .word main, loop, N
                .data
            buf:
                .space 16
            "#,
        )
        .unwrap();

        assert_eq!(p.entry, 0);
        // li N fits in 16 bits → single addi.
        assert_eq!(
            p.decode_at(0).unwrap(),
            Insn::AluImm { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::ZERO, imm: 3 }
        );
        // la expands to lui+ori of the buffer address.
        assert_eq!(p.decode_at(4).unwrap(), Insn::Lui { rd: Reg::new(2), imm: 0x1000 });
        match p.decode_at(8).unwrap() {
            Insn::AluImm { op: AluOp::Or, rd, imm, .. } => {
                assert_eq!(rd, Reg::new(2));
                assert_eq!(imm, 0);
            }
            other => panic!("unexpected {other}"),
        }
        // Branch back to `loop` (at 0xc): bnez at 0x14 → offset -2 words.
        match p.decode_at(0x14).unwrap() {
            Insn::Branch { cond: Cond::Ne, offset, .. } => assert_eq!(offset, -2),
            other => panic!("unexpected {other}"),
        }
        // Jump table in .rodata resolves labels.
        let tbl = p.symbols.addr_of("tbl").unwrap();
        assert_eq!(p.rom_value(tbl, MemWidth::W), Some(0)); // main
        assert_eq!(p.rom_value(tbl + 4, MemWidth::W), Some(0xc)); // loop
        assert_eq!(p.rom_value(tbl + 8, MemWidth::W), Some(3)); // N

        // Data section placed at the default RAM base.
        assert_eq!(p.symbols.addr_of("buf"), Some(0x1000_0000));
    }

    #[test]
    fn li_expansion_sizes() {
        let p =
            assemble(".text\nmain: li r1, 5\nli r2, 0x12345678\nli r3, 0x70000\nhalt\n").unwrap();
        // 1 + 2 + 1 (0x70000 = lui only) + 1 instructions.
        assert_eq!(p.insn_count(), 5);
        assert_eq!(p.decode_at(4).unwrap(), Insn::Lui { rd: Reg::new(2), imm: 0x1234 });
        assert_eq!(p.decode_at(4 * 3).unwrap(), Insn::Lui { rd: Reg::new(3), imm: 0x7 });
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble(".text\na: nop\na: halt\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble(".text\nmain: j nowhere\n").unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn code_outside_text_rejected() {
        let err = assemble(".data\nnop\n").unwrap_err();
        assert!(err.to_string().contains(".text"));
    }

    #[test]
    fn data_in_text_rejected() {
        let err = assemble(".text\nmain: .word 1\n").unwrap_err();
        assert!(err.to_string().contains("not allowed in .text"));
    }

    #[test]
    fn entry_directive_overrides_main() {
        let p = assemble(".entry task\n.text\nmain: nop\ntask: halt\n").unwrap();
        assert_eq!(p.entry, 4);
    }

    #[test]
    fn align_pads_text_with_nops() {
        let p = assemble(".text\nmain: nop\n.align 16\nrest: halt\n").unwrap();
        assert_eq!(p.symbols.addr_of("rest"), Some(16));
        for a in (4..16).step_by(4) {
            assert_eq!(p.decode_at(a).unwrap(), Insn::nop());
        }
    }

    #[test]
    fn label_arithmetic_in_data() {
        let p =
            assemble(".text\nmain: halt\n.rodata\nstart:\n.word 1, 2, 3\nend:\n.word end-start\n")
                .unwrap();
        let end = p.symbols.addr_of("end").unwrap();
        assert_eq!(p.rom_value(end, MemWidth::W), Some(12));
    }

    #[test]
    fn custom_bases() {
        let opts = AsmOptions { text_base: 0x8000, data_base: 0x2000_0000 };
        let p = assemble_with(".text\nmain: halt\n.data\nv: .word 0\n", &opts).unwrap();
        assert_eq!(p.entry, 0x8000);
        assert_eq!(p.symbols.addr_of("v"), Some(0x2000_0000));
    }
}
