//! Constant expressions in assembler operands (`label+4`, `0x10`, `N*1`…).

use std::collections::BTreeMap;
use std::fmt;

use super::AsmError;

/// An atom of an operand expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Atom {
    /// A numeric literal.
    Num(i64),
    /// A symbol reference (label or `.equ` constant).
    Sym(String),
}

/// A sum/difference of atoms, e.g. `table + 8` or `end - start`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expr {
    /// Signed terms; the expression value is the sum of `sign * atom`.
    pub terms: Vec<(i64, Atom)>,
    /// Source line, for error messages.
    pub line: u32,
}

impl Expr {
    /// A constant expression.
    pub fn num(v: i64, line: u32) -> Expr {
        Expr { terms: vec![(1, Atom::Num(v))], line }
    }

    /// A single-symbol expression.
    pub fn sym(name: impl Into<String>, line: u32) -> Expr {
        Expr { terms: vec![(1, Atom::Sym(name.into()))], line }
    }

    /// Returns the constant value if the expression references no symbols.
    pub fn as_const(&self) -> Option<i64> {
        let mut total = 0i64;
        for (sign, atom) in &self.terms {
            match atom {
                Atom::Num(v) => total += sign * v,
                Atom::Sym(_) => return None,
            }
        }
        Some(total)
    }

    /// Evaluates the expression against a symbol table.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first undefined symbol.
    pub fn eval(&self, symbols: &BTreeMap<String, i64>) -> Result<i64, AsmError> {
        let mut total = 0i64;
        for (sign, atom) in &self.terms {
            let v = match atom {
                Atom::Num(v) => *v,
                Atom::Sym(name) => *symbols.get(name).ok_or_else(|| {
                    AsmError::new(self.line, format!("undefined symbol `{name}`"))
                })?,
            };
            total = total.wrapping_add(sign.wrapping_mul(v));
        }
        Ok(total)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (sign, atom)) in self.terms.iter().enumerate() {
            if i > 0 || *sign < 0 {
                f.write_str(if *sign < 0 { "-" } else { "+" })?;
            }
            match atom {
                Atom::Num(v) => write!(f, "{v}")?,
                Atom::Sym(s) => f.write_str(s)?,
            }
        }
        Ok(())
    }
}

/// Parses an expression of the form `atom (('+'|'-') atom)*`.
///
/// Atoms are decimal literals, `0x`/`0b` literals, `'c'` character
/// literals, or identifiers. A leading `-` negates the first atom.
pub fn parse_expr(s: &str, line: u32) -> Result<Expr, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(AsmError::new(line, "empty expression"));
    }
    let bytes = s.as_bytes();
    let mut terms = Vec::new();
    let mut i = 0usize;
    let mut sign = 1i64;
    // Optional leading sign.
    if bytes[0] == b'-' {
        sign = -1;
        i = 1;
    } else if bytes[0] == b'+' {
        i = 1;
    }
    loop {
        // Parse one atom starting at i.
        let start = i;
        if i >= bytes.len() {
            return Err(AsmError::new(line, format!("malformed expression `{s}`")));
        }
        if bytes[i] == b'\'' {
            // Character literal.
            let rest = &s[i + 1..];
            let (ch, consumed) = parse_char(rest, line)?;
            terms.push((sign, Atom::Num(ch as i64)));
            i += 1 + consumed;
            if i >= bytes.len() || bytes[i] != b'\'' {
                return Err(AsmError::new(line, "unterminated character literal"));
            }
            i += 1;
        } else {
            while i < bytes.len() && bytes[i] != b'+' && bytes[i] != b'-' {
                i += 1;
            }
            let tok = s[start..i].trim();
            if tok.is_empty() {
                return Err(AsmError::new(line, format!("malformed expression `{s}`")));
            }
            terms.push((sign, parse_atom(tok, line)?));
        }
        // Operator or end.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        sign = match bytes[i] {
            b'+' => 1,
            b'-' => -1,
            _ => return Err(AsmError::new(line, format!("malformed expression `{s}`"))),
        };
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
    }
    Ok(Expr { terms, line })
}

fn parse_atom(tok: &str, line: u32) -> Result<Atom, AsmError> {
    let first = tok.chars().next().unwrap();
    if first.is_ascii_digit() {
        let v = parse_number(tok)
            .ok_or_else(|| AsmError::new(line, format!("bad numeric literal `{tok}`")))?;
        Ok(Atom::Num(v))
    } else if first == '_' || first.is_ascii_alphabetic() || first == '.' {
        Ok(Atom::Sym(tok.to_string()))
    } else {
        Err(AsmError::new(line, format!("bad expression atom `{tok}`")))
    }
}

fn parse_char(rest: &str, line: u32) -> Result<(u8, usize), AsmError> {
    let mut chars = rest.chars();
    match chars.next() {
        Some('\\') => {
            let c = chars.next().ok_or_else(|| AsmError::new(line, "unterminated escape"))?;
            let b = match c {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '\'' => b'\'',
                '"' => b'"',
                _ => return Err(AsmError::new(line, format!("unknown escape `\\{c}`"))),
            };
            Ok((b, 2))
        }
        Some(c) if c.is_ascii() => Ok((c as u8, 1)),
        _ => Err(AsmError::new(line, "bad character literal")),
    }
}

/// Parses `123`, `0x7f`, `0b101` (no sign).
pub fn parse_number(tok: &str) -> Option<i64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else if let Some(bin) = tok.strip_prefix("0b").or_else(|| tok.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()
    } else {
        tok.replace('_', "").parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_str(s: &str, syms: &[(&str, i64)]) -> i64 {
        let map: BTreeMap<String, i64> = syms.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        parse_expr(s, 1).unwrap().eval(&map).unwrap()
    }

    #[test]
    fn literals() {
        assert_eq!(eval_str("42", &[]), 42);
        assert_eq!(eval_str("-42", &[]), -42);
        assert_eq!(eval_str("0x10", &[]), 16);
        assert_eq!(eval_str("0b101", &[]), 5);
        assert_eq!(eval_str("1_000", &[]), 1000);
        assert_eq!(eval_str("'A'", &[]), 65);
        assert_eq!(eval_str("'\\n'", &[]), 10);
    }

    #[test]
    fn sums_and_symbols() {
        assert_eq!(eval_str("a+4", &[("a", 0x100)]), 0x104);
        assert_eq!(eval_str("end - start", &[("end", 32), ("start", 8)]), 24);
        assert_eq!(eval_str("a + b - 1", &[("a", 1), ("b", 2)]), 2);
    }

    #[test]
    fn const_detection() {
        assert_eq!(parse_expr("3+4", 1).unwrap().as_const(), Some(7));
        assert_eq!(parse_expr("x+4", 1).unwrap().as_const(), None);
    }

    #[test]
    fn undefined_symbol_is_error() {
        let e = parse_expr("nosuch", 7).unwrap();
        let err = e.eval(&BTreeMap::new()).unwrap_err();
        assert!(err.to_string().contains("nosuch"));
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse_expr("", 1).is_err());
        assert!(parse_expr("1 ++", 1).is_err());
        assert!(parse_expr("$x", 1).is_err());
    }
}
