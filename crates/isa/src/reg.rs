//! Architectural registers of EVA32.

use std::fmt;
use std::str::FromStr;

/// One of the sixteen EVA32 general-purpose registers.
///
/// Register `r0` always reads as zero and ignores writes. By software
/// convention `r13` is the stack pointer ([`Reg::SP`]) and `r14` the link
/// register ([`Reg::LR`]); the hardware treats them like any other register
/// except that `jal` implicitly writes `lr`.
///
/// # Example
///
/// ```
/// use stamp_isa::Reg;
///
/// let sp: Reg = "sp".parse()?;
/// assert_eq!(sp, Reg::SP);
/// assert_eq!(sp.index(), 13);
/// # Ok::<(), stamp_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// The stack pointer `r13`.
    pub const SP: Reg = Reg(13);
    /// The link register `r14`, written by `jal`/`jalr`.
    pub const LR: Reg = Reg(14);
    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[inline]
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range: {index}");
        Reg(index)
    }

    /// Creates a register from the low 4 bits of `bits` (used by the decoder).
    #[inline]
    pub(crate) fn from_bits(bits: u32) -> Reg {
        Reg((bits & 0xf) as u8)
    }

    /// Returns the register index in `0..16`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the hard-wired zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => f.write_str("sp"),
            Reg::LR => f.write_str("lr"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Reg {
    type Err = crate::asm::AsmError;

    fn from_str(s: &str) -> Result<Reg, Self::Err> {
        let err = || crate::asm::AsmError::new(0, format!("unknown register `{s}`"));
        match s {
            "zero" => return Ok(Reg::ZERO),
            "sp" => return Ok(Reg::SP),
            "lr" | "ra" => return Ok(Reg::LR),
            _ => {}
        }
        let rest = s.strip_prefix('r').ok_or_else(err)?;
        let n: u8 = rest.parse().map_err(|_| err())?;
        if n < 16 {
            Ok(Reg(n))
        } else {
            Err(err())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::new(13));
        assert_eq!("lr".parse::<Reg>().unwrap(), Reg::new(14));
        assert_eq!("r7".parse::<Reg>().unwrap(), Reg::new(7));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn display_uses_aliases() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::new(3).to_string(), "r3");
        assert_eq!(Reg::ZERO.to_string(), "r0");
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(16);
    }
}
