//! Binary encoding and decoding of EVA32 instructions.
//!
//! Every instruction is one little-endian 32-bit word with the opcode in
//! bits `[31:24]`. The formats are:
//!
//! ```text
//! R:  | op:8 | rd:4 | rs1:4 | rs2:4 | 0:12   |   register ALU
//! I:  | op:8 | rd:4 | rs1:4 | imm:16        |   ALU-immediate, lui, loads, jalr
//! S:  | op:8 | src:4 | base:4 | imm:16      |   stores
//! B:  | op:8 | rs1:4 | rs2:4 | imm:16       |   branches (imm in words)
//! J:  | op:8 | imm:24                       |   j, jal (imm in words)
//! H:  | 0:32                                |   halt
//! ```
//!
//! Decoding is *strict*: reserved bits must be zero and unknown opcodes are
//! rejected, so that CFG reconstruction reliably detects when it has
//! wandered into data.

use std::error::Error;
use std::fmt;

use crate::{sext16, sext24, AluOp, Cond, Insn, MemWidth, Reg};

/// Error produced when an instruction cannot be encoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// The immediate is outside the representable range of the format.
    ImmediateRange { insn: String, imm: i64 },
    /// The ALU operation has no immediate form (`mul`, `div`, …).
    NoImmediateForm { op: AluOp },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmediateRange { insn, imm } => {
                write!(f, "immediate {imm} out of range in `{insn}`")
            }
            EncodeError::NoImmediateForm { op } => {
                write!(f, "`{}` has no immediate form", op.mnemonic())
            }
        }
    }
}

impl Error for EncodeError {}

/// Error produced when a word does not decode to a valid instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not assigned.
    UnknownOpcode { word: u32, opcode: u8 },
    /// Bits that must be zero were set.
    ReservedBits { word: u32 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { word, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::ReservedBits { word } => {
                write!(f, "reserved bits set in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

mod op {
    pub const HALT: u8 = 0x00;
    pub const ALU_BASE: u8 = 0x01; // 0x01..=0x0e in AluOp::ALL order
    pub const ALUI_BASE: u8 = 0x10; // add,and,or,xor,sll,srl,sra,slt,sltu
    pub const LUI: u8 = 0x19;
    pub const LB: u8 = 0x20;
    pub const LBU: u8 = 0x21;
    pub const LH: u8 = 0x22;
    pub const LHU: u8 = 0x23;
    pub const LW: u8 = 0x24;
    pub const SB: u8 = 0x28;
    pub const SH: u8 = 0x29;
    pub const SW: u8 = 0x2a;
    pub const BRANCH_BASE: u8 = 0x30; // 0x30..=0x35 in Cond::ALL order
    pub const J: u8 = 0x38;
    pub const JAL: u8 = 0x39;
    pub const JALR: u8 = 0x3a;
}

/// Order of ALU ops with an immediate form, defining `ALUI_BASE + n`.
const ALUI_ORDER: [AluOp; 9] = [
    AluOp::Add,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

fn check_simm16(insn: &Insn, imm: i32) -> Result<u32, EncodeError> {
    if (-0x8000..=0x7fff).contains(&imm) {
        Ok((imm as u32) & 0xffff)
    } else {
        Err(EncodeError::ImmediateRange { insn: insn.to_string(), imm: imm as i64 })
    }
}

fn check_uimm16(insn: &Insn, imm: i32) -> Result<u32, EncodeError> {
    if (0..=0xffff).contains(&imm) {
        Ok(imm as u32)
    } else {
        Err(EncodeError::ImmediateRange { insn: insn.to_string(), imm: imm as i64 })
    }
}

/// Encodes an instruction to its 32-bit binary representation.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate does not fit its field or the
/// operation has no immediate form.
///
/// # Example
///
/// ```
/// use stamp_isa::codec::{decode, encode};
/// use stamp_isa::Insn;
///
/// let word = encode(&Insn::Halt)?;
/// assert_eq!(word, 0);
/// assert_eq!(decode(word)?, Insn::Halt);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(insn: &Insn) -> Result<u32, EncodeError> {
    let w = match *insn {
        Insn::Halt => 0,
        Insn::Alu { op, rd, rs1, rs2 } => {
            let opc = op::ALU_BASE + AluOp::ALL.iter().position(|&o| o == op).unwrap() as u8;
            field(opc, rd, rs1) | (rs2.index() as u32) << 12
        }
        Insn::AluImm { op, rd, rs1, imm } => {
            let idx = ALUI_ORDER
                .iter()
                .position(|&o| o == op)
                .ok_or(EncodeError::NoImmediateForm { op })?;
            let enc_imm = if op.is_shift() {
                if !(0..=31).contains(&imm) {
                    return Err(EncodeError::ImmediateRange {
                        insn: insn.to_string(),
                        imm: imm as i64,
                    });
                }
                imm as u32
            } else if op.imm_zero_extends() {
                check_uimm16(insn, imm)?
            } else {
                check_simm16(insn, imm)?
            };
            field(op::ALUI_BASE + idx as u8, rd, rs1) | enc_imm
        }
        Insn::Lui { rd, imm } => field(op::LUI, rd, Reg::ZERO) | imm as u32,
        Insn::Load { width, signed, rd, base, offset } => {
            let opc = match (width, signed) {
                (MemWidth::B, true) => op::LB,
                (MemWidth::B, false) => op::LBU,
                (MemWidth::H, true) => op::LH,
                (MemWidth::H, false) => op::LHU,
                (MemWidth::W, _) => op::LW,
            };
            field(opc, rd, base) | check_simm16(insn, offset)?
        }
        Insn::Store { width, src, base, offset } => {
            let opc = match width {
                MemWidth::B => op::SB,
                MemWidth::H => op::SH,
                MemWidth::W => op::SW,
            };
            field(opc, src, base) | check_simm16(insn, offset)?
        }
        Insn::Branch { cond, rs1, rs2, offset } => {
            let opc = op::BRANCH_BASE + Cond::ALL.iter().position(|&c| c == cond).unwrap() as u8;
            field(opc, rs1, rs2) | check_simm16(insn, offset)?
        }
        Insn::Jump { offset } => jfmt(op::J, insn, offset)?,
        Insn::Jal { offset } => jfmt(op::JAL, insn, offset)?,
        Insn::Jalr { rd, rs1, offset } => field(op::JALR, rd, rs1) | check_simm16(insn, offset)?,
    };
    Ok(w)
}

fn field(opc: u8, a: Reg, b: Reg) -> u32 {
    (opc as u32) << 24 | (a.index() as u32) << 20 | (b.index() as u32) << 16
}

fn jfmt(opc: u8, insn: &Insn, offset: i32) -> Result<u32, EncodeError> {
    if (-(1 << 23)..(1 << 23)).contains(&offset) {
        Ok((opc as u32) << 24 | (offset as u32) & 0x00ff_ffff)
    } else {
        Err(EncodeError::ImmediateRange { insn: insn.to_string(), imm: offset as i64 })
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for unassigned opcodes or set reserved bits;
/// see the module documentation for why decoding is strict.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let opcode = (word >> 24) as u8;
    let rd = Reg::from_bits(word >> 20);
    let rs1 = Reg::from_bits(word >> 16);
    let rs2 = Reg::from_bits(word >> 12);
    let imm16 = (word & 0xffff) as u16;
    let reserved = |ok: bool| {
        if ok {
            Ok(())
        } else {
            Err(DecodeError::ReservedBits { word })
        }
    };

    let insn = match opcode {
        op::HALT => {
            reserved(word == 0)?;
            Insn::Halt
        }
        o if (op::ALU_BASE..op::ALU_BASE + 14).contains(&o) => {
            reserved(word & 0xfff == 0)?;
            let op = AluOp::ALL[(o - op::ALU_BASE) as usize];
            Insn::Alu { op, rd, rs1, rs2 }
        }
        o if (op::ALUI_BASE..op::ALUI_BASE + 9).contains(&o) => {
            let op = ALUI_ORDER[(o - op::ALUI_BASE) as usize];
            let imm = if op.is_shift() {
                reserved(imm16 < 32)?;
                imm16 as i32
            } else if op.imm_zero_extends() {
                imm16 as i32
            } else {
                sext16(imm16)
            };
            Insn::AluImm { op, rd, rs1, imm }
        }
        op::LUI => {
            reserved(word & 0x000f_0000 == 0)?;
            Insn::Lui { rd, imm: imm16 }
        }
        op::LB | op::LBU | op::LH | op::LHU | op::LW => {
            let (width, signed) = match opcode {
                op::LB => (MemWidth::B, true),
                op::LBU => (MemWidth::B, false),
                op::LH => (MemWidth::H, true),
                op::LHU => (MemWidth::H, false),
                _ => (MemWidth::W, true),
            };
            Insn::Load { width, signed, rd, base: rs1, offset: sext16(imm16) }
        }
        op::SB | op::SH | op::SW => {
            let width = match opcode {
                op::SB => MemWidth::B,
                op::SH => MemWidth::H,
                _ => MemWidth::W,
            };
            Insn::Store { width, src: rd, base: rs1, offset: sext16(imm16) }
        }
        o if (op::BRANCH_BASE..op::BRANCH_BASE + 6).contains(&o) => {
            let cond = Cond::ALL[(o - op::BRANCH_BASE) as usize];
            Insn::Branch { cond, rs1: rd, rs2: rs1, offset: sext16(imm16) }
        }
        op::J => Insn::Jump { offset: sext24(word) },
        op::JAL => Insn::Jal { offset: sext24(word) },
        op::JALR => Insn::Jalr { rd, rs1, offset: sext16(imm16) },
        _ => return Err(DecodeError::UnknownOpcode { word, opcode }),
    };
    Ok(insn)
}

impl stamp_codec::Codec for Reg {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(self.index() as u8);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Reg, stamp_codec::CodecError> {
        let i = d.u8()?;
        if (i as usize) < Reg::COUNT {
            Ok(Reg::new(i))
        } else {
            Err(stamp_codec::CodecError::Invalid("register index"))
        }
    }
}

impl stamp_codec::Codec for MemWidth {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(match self {
            MemWidth::B => 0,
            MemWidth::H => 1,
            MemWidth::W => 2,
        });
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<MemWidth, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(MemWidth::B),
            1 => Ok(MemWidth::H),
            2 => Ok(MemWidth::W),
            _ => Err(stamp_codec::CodecError::Invalid("memory width")),
        }
    }
}

/// Instructions persist as their architectural 32-bit word. Every
/// instruction reachable from a program image decodes from such a word,
/// so [`encode`] cannot fail on it; should an unencodable instruction
/// ever be stored, it round-trips as an unassigned opcode and the
/// artifact is recomputed instead of trusted.
impl stamp_codec::Codec for Insn {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(encode(self).unwrap_or(0xffff_ffff));
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Insn, stamp_codec::CodecError> {
        decode(d.u32()?).map_err(|_| stamp_codec::CodecError::Invalid("instruction word"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Insn) {
        let w = encode(&i).unwrap_or_else(|e| panic!("encode {i}: {e}"));
        let d = decode(w).unwrap_or_else(|e| panic!("decode {i} ({w:#010x}): {e}"));
        assert_eq!(i, d, "round trip of {i}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let r = Reg::new;
        for i in [
            Insn::Halt,
            Insn::Alu { op: AluOp::Add, rd: r(1), rs1: r(2), rs2: r(3) },
            Insn::Alu { op: AluOp::Rem, rd: r(15), rs1: r(14), rs2: r(13) },
            Insn::AluImm { op: AluOp::Add, rd: r(1), rs1: r(2), imm: -32768 },
            Insn::AluImm { op: AluOp::Or, rd: r(1), rs1: r(2), imm: 0xffff },
            Insn::AluImm { op: AluOp::Sll, rd: r(1), rs1: r(2), imm: 31 },
            Insn::AluImm { op: AluOp::Sltu, rd: r(9), rs1: r(0), imm: 42 },
            Insn::Lui { rd: r(5), imm: 0xdead },
            Insn::Load { width: MemWidth::H, signed: false, rd: r(4), base: r(13), offset: -4 },
            Insn::Load { width: MemWidth::W, signed: true, rd: r(4), base: r(0), offset: 256 },
            Insn::Store { width: MemWidth::B, src: r(7), base: r(8), offset: 17 },
            Insn::Branch { cond: Cond::Geu, rs1: r(3), rs2: r(4), offset: -100 },
            Insn::Jump { offset: -(1 << 23) },
            Insn::Jal { offset: (1 << 23) - 1 },
            Insn::Jalr { rd: r(0), rs1: Reg::LR, offset: 0 },
        ] {
            roundtrip(i);
        }
    }

    #[test]
    fn immediate_range_checked() {
        let i = Insn::AluImm { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::new(1), imm: 0x8000 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmediateRange { .. })));
        let i = Insn::AluImm { op: AluOp::Or, rd: Reg::new(1), rs1: Reg::new(1), imm: -1 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmediateRange { .. })));
        let i = Insn::AluImm { op: AluOp::Sll, rd: Reg::new(1), rs1: Reg::new(1), imm: 32 };
        assert!(matches!(encode(&i), Err(EncodeError::ImmediateRange { .. })));
    }

    #[test]
    fn no_imm_form_for_mul() {
        let i = Insn::AluImm { op: AluOp::Mul, rd: Reg::new(1), rs1: Reg::new(1), imm: 3 };
        assert_eq!(encode(&i), Err(EncodeError::NoImmediateForm { op: AluOp::Mul }));
    }

    #[test]
    fn strict_decode_rejects_garbage() {
        // Unknown opcode.
        assert!(matches!(decode(0xff00_0000), Err(DecodeError::UnknownOpcode { .. })));
        // HALT with stray bits.
        assert!(matches!(decode(0x0000_0001), Err(DecodeError::ReservedBits { .. })));
        // R-format with nonzero reserved low bits.
        let add = encode(&Insn::Alu {
            op: AluOp::Add,
            rd: Reg::new(1),
            rs1: Reg::new(2),
            rs2: Reg::new(3),
        })
        .unwrap();
        assert!(matches!(decode(add | 1), Err(DecodeError::ReservedBits { .. })));
    }

    #[test]
    fn branch_operand_order_is_preserved() {
        let i = Insn::Branch { cond: Cond::Lt, rs1: Reg::new(3), rs2: Reg::new(9), offset: 5 };
        let d = decode(encode(&i).unwrap()).unwrap();
        match d {
            Insn::Branch { rs1, rs2, .. } => {
                assert_eq!(rs1, Reg::new(3));
                assert_eq!(rs2, Reg::new(9));
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }
}
