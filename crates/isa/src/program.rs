//! Linked binary program images.

use std::collections::BTreeMap;
use std::fmt;

use crate::codec::{decode, DecodeError};
use crate::{Insn, MemWidth};

/// The kind of a program section, determining where it is placed and
/// whether its contents are known statically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable code in ROM.
    Text,
    /// Read-only data in ROM. Contents are constant at run time, so the
    /// value analysis may fold loads from this section.
    RoData,
    /// Initialized read-write data, loaded into RAM at reset.
    Data,
    /// Zero-initialized read-write data (occupies RAM, no image bytes).
    Bss,
}

impl SectionKind {
    /// Returns `true` if the section lives in (read-only) ROM.
    pub fn is_rom(self) -> bool {
        matches!(self, SectionKind::Text | SectionKind::RoData)
    }
}

/// A contiguous program section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (`.text`, `.rodata`, `.data`, `.bss`).
    pub name: String,
    /// Base address.
    pub base: u32,
    /// Placement and mutability class.
    pub kind: SectionKind,
    /// Image bytes. Empty for [`SectionKind::Bss`].
    pub data: Vec<u8>,
    /// Size in bytes (equals `data.len()` except for `.bss`).
    pub size: u32,
}

impl Section {
    /// Returns `true` if `addr` lies inside the section.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// End address (exclusive).
    pub fn end(&self) -> u32 {
        self.base + self.size
    }
}

/// Bidirectional symbol table of a program image.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SymbolTable {
    by_name: BTreeMap<String, u32>,
    by_addr: BTreeMap<u32, String>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Records `name` at `addr`. The first name registered for an address
    /// wins for reverse lookups.
    pub fn insert(&mut self, name: impl Into<String>, addr: u32) {
        let name = name.into();
        self.by_addr.entry(addr).or_insert_with(|| name.clone());
        self.by_name.insert(name, addr);
    }

    /// Address of `name`, if defined.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Symbol defined exactly at `addr`, if any.
    pub fn name_at(&self, addr: u32) -> Option<&str> {
        self.by_addr.get(&addr).map(String::as_str)
    }

    /// The nearest symbol at or before `addr`, with the offset from it.
    pub fn nearest(&self, addr: u32) -> Option<(&str, u32)> {
        self.by_addr.range(..=addr).next_back().map(|(&a, n)| (n.as_str(), addr - a))
    }

    /// Iterates over `(name, addr)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.by_name.iter().map(|(n, &a)| (n.as_str(), a))
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Returns `true` if no symbols are defined.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Formats `addr` as `symbol+offset` (or hex if no symbol precedes it).
    pub fn format_addr(&self, addr: u32) -> String {
        match self.nearest(addr) {
            Some((name, 0)) => name.to_string(),
            Some((name, off)) => format!("{name}+{off:#x}"),
            None => format!("{addr:#010x}"),
        }
    }
}

/// A linked EVA32 binary image: sections, symbols and an entry point.
///
/// This is the *only* input the analyses receive, mirroring how aiT and
/// StackAnalyzer operate on executables rather than source code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Address of the first instruction of the analyzed task.
    pub entry: u32,
    /// All sections, in ascending base-address order.
    pub sections: Vec<Section>,
    /// Symbol table (labels from the assembler).
    pub symbols: SymbolTable,
}

impl Program {
    /// Creates a program from raw parts, sorting sections by base address.
    pub fn new(entry: u32, mut sections: Vec<Section>, symbols: SymbolTable) -> Program {
        sections.sort_by_key(|s| s.base);
        Program { entry, sections, symbols }
    }

    /// The section containing `addr`, if any.
    pub fn section_at(&self, addr: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.contains(addr))
    }

    /// Returns `true` if `addr` points into executable code.
    pub fn is_code(&self, addr: u32) -> bool {
        self.section_at(addr).is_some_and(|s| s.kind == SectionKind::Text)
    }

    /// Reads one *initial-image* byte. For `.bss` this is 0; for unmapped
    /// addresses `None`.
    pub fn initial_byte(&self, addr: u32) -> Option<u8> {
        let s = self.section_at(addr)?;
        let off = (addr - s.base) as usize;
        Some(s.data.get(off).copied().unwrap_or(0))
    }

    /// Reads a little-endian value of `width` from the initial image.
    /// Returns `None` if any byte is unmapped.
    pub fn initial_value(&self, addr: u32, width: MemWidth) -> Option<u32> {
        let mut v: u32 = 0;
        for i in 0..width.bytes() {
            v |= (self.initial_byte(addr.wrapping_add(i))? as u32) << (8 * i);
        }
        Some(v)
    }

    /// Reads a value that is guaranteed constant at run time (i.e. from a
    /// ROM section). Used by the value analysis to fold loads from jump
    /// tables and constant data.
    pub fn rom_value(&self, addr: u32, width: MemWidth) -> Option<u32> {
        let s = self.section_at(addr)?;
        if !s.kind.is_rom() || !s.contains(addr + width.bytes() - 1) {
            return None;
        }
        self.initial_value(addr, width)
    }

    /// Decodes the instruction at `addr`.
    ///
    /// # Errors
    ///
    /// Returns an error if `addr` is not word-aligned code or the word does
    /// not decode.
    pub fn decode_at(&self, addr: u32) -> Result<Insn, ProgramError> {
        if !addr.is_multiple_of(4) {
            return Err(ProgramError::Unaligned { addr });
        }
        if !self.is_code(addr) {
            return Err(ProgramError::NotCode { addr });
        }
        let word = self.initial_value(addr, MemWidth::W).ok_or(ProgramError::NotCode { addr })?;
        decode(word).map_err(|source| ProgramError::Decode { addr, source })
    }

    /// The address range `[start, end)` of the text section.
    pub fn text_range(&self) -> (u32, u32) {
        self.sections
            .iter()
            .find(|s| s.kind == SectionKind::Text)
            .map(|s| (s.base, s.end()))
            .unwrap_or((0, 0))
    }

    /// Total number of instructions in the text section.
    pub fn insn_count(&self) -> usize {
        let (s, e) = self.text_range();
        ((e - s) / 4) as usize
    }

    /// Iterates over `(addr, insn)` for all decodable words in `.text`.
    pub fn insns(&self) -> impl Iterator<Item = (u32, Insn)> + '_ {
        let (s, e) = self.text_range();
        (s..e).step_by(4).filter_map(|a| self.decode_at(a).ok().map(|i| (a, i)))
    }
}

impl stamp_codec::Codec for SectionKind {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u8(match self {
            SectionKind::Text => 0,
            SectionKind::RoData => 1,
            SectionKind::Data => 2,
            SectionKind::Bss => 3,
        });
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<SectionKind, stamp_codec::CodecError> {
        match d.u8()? {
            0 => Ok(SectionKind::Text),
            1 => Ok(SectionKind::RoData),
            2 => Ok(SectionKind::Data),
            3 => Ok(SectionKind::Bss),
            _ => Err(stamp_codec::CodecError::Invalid("section kind")),
        }
    }
}

impl stamp_codec::Codec for Section {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.name.enc(e);
        self.base.enc(e);
        self.kind.enc(e);
        self.data.enc(e);
        self.size.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Section, stamp_codec::CodecError> {
        Ok(Section {
            name: String::dec(d)?,
            base: u32::dec(d)?,
            kind: SectionKind::dec(d)?,
            data: Vec::dec(d)?,
            size: u32::dec(d)?,
        })
    }
}

/// Both maps are persisted: reverse lookups keep first-wins semantics
/// for aliased addresses, which a name-map-only encoding would lose.
impl stamp_codec::Codec for SymbolTable {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.by_name.enc(e);
        self.by_addr.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<SymbolTable, stamp_codec::CodecError> {
        Ok(SymbolTable { by_name: BTreeMap::dec(d)?, by_addr: BTreeMap::dec(d)? })
    }
}

impl stamp_codec::Codec for Program {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        self.entry.enc(e);
        self.sections.enc(e);
        self.symbols.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<Program, stamp_codec::CodecError> {
        // Field-by-field, not `Program::new`: sections were sorted at
        // construction and must round-trip positionally.
        Ok(Program { entry: u32::dec(d)?, sections: Vec::dec(d)?, symbols: SymbolTable::dec(d)? })
    }
}

/// Errors raised when reading instructions from a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Address is not 4-byte aligned.
    Unaligned { addr: u32 },
    /// Address does not point into an executable section.
    NotCode { addr: u32 },
    /// The word at the address does not decode to an instruction.
    Decode { addr: u32, source: DecodeError },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Unaligned { addr } => {
                write!(f, "unaligned instruction address {addr:#010x}")
            }
            ProgramError::NotCode { addr } => {
                write!(f, "address {addr:#010x} is not executable code")
            }
            ProgramError::Decode { addr, source } => {
                write!(f, "at {addr:#010x}: {source}")
            }
        }
    }
}

impl std::error::Error for ProgramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProgramError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode;

    fn tiny_program() -> Program {
        let insns = [Insn::nop(), Insn::Halt];
        let mut data = Vec::new();
        for i in &insns {
            data.extend_from_slice(&encode(i).unwrap().to_le_bytes());
        }
        let text = Section {
            name: ".text".into(),
            base: 0,
            kind: SectionKind::Text,
            size: data.len() as u32,
            data,
        };
        let rodata = Section {
            name: ".rodata".into(),
            base: 0x100,
            kind: SectionKind::RoData,
            data: vec![0x78, 0x56, 0x34, 0x12],
            size: 4,
        };
        let bss = Section {
            name: ".bss".into(),
            base: 0x1000_0000,
            kind: SectionKind::Bss,
            data: Vec::new(),
            size: 64,
        };
        let mut symbols = SymbolTable::new();
        symbols.insert("main", 0);
        symbols.insert("table", 0x100);
        Program::new(0, vec![text, rodata, bss], symbols)
    }

    #[test]
    fn decode_at_entry() {
        let p = tiny_program();
        assert_eq!(p.decode_at(0).unwrap(), Insn::nop());
        assert_eq!(p.decode_at(4).unwrap(), Insn::Halt);
    }

    #[test]
    fn decode_rejects_non_code() {
        let p = tiny_program();
        assert!(matches!(p.decode_at(2), Err(ProgramError::Unaligned { .. })));
        assert!(matches!(p.decode_at(0x100), Err(ProgramError::NotCode { .. })));
        assert!(matches!(p.decode_at(0x4000), Err(ProgramError::NotCode { .. })));
    }

    #[test]
    fn rom_value_reads_rodata_not_bss() {
        let p = tiny_program();
        assert_eq!(p.rom_value(0x100, MemWidth::W), Some(0x1234_5678));
        assert_eq!(p.rom_value(0x100, MemWidth::H), Some(0x5678));
        assert_eq!(p.rom_value(0x103, MemWidth::B), Some(0x12));
        // Straddles the end of the section.
        assert_eq!(p.rom_value(0x102, MemWidth::W), None);
        // .bss is not ROM even though its initial value is known.
        assert_eq!(p.rom_value(0x1000_0000, MemWidth::W), None);
        assert_eq!(p.initial_value(0x1000_0000, MemWidth::W), Some(0));
    }

    #[test]
    fn symbol_formatting() {
        let p = tiny_program();
        assert_eq!(p.symbols.format_addr(0), "main");
        assert_eq!(p.symbols.format_addr(0x104), "table+0x4");
        assert_eq!(p.symbols.addr_of("table"), Some(0x100));
        assert_eq!(p.symbols.name_at(0x100), Some("table"));
        assert_eq!(p.symbols.nearest(0x2), Some(("main", 2)));
    }

    #[test]
    fn insns_iterator_covers_text() {
        let p = tiny_program();
        let v: Vec<_> = p.insns().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[1], (4, Insn::Halt));
        assert_eq!(p.insn_count(), 2);
    }
}
