//! The timed simulator: functional execution + caches + pipeline timing.

use std::collections::BTreeMap;
use std::fmt;

use stamp_hw::HwConfig;
use stamp_isa::{Insn, Program, Reg};

use crate::cache::LruCache;
use crate::cpu::{Cpu, Fault, Memory, StepEffect};

/// Why a run stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The task executed `halt`.
    Halted,
    /// The instruction budget was exhausted before `halt`.
    LimitReached,
}

/// Timing and behaviour statistics of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub status: RunStatus,
    /// Total cycles under the additive-stall model.
    pub cycles: u64,
    /// Retired instructions.
    pub retired: u64,
    /// Maximum observed stack usage in bytes (`stack_top - min(sp)`).
    pub max_stack: u32,
    /// I-cache hits/misses (0 if uncached).
    pub i_hits: u64,
    /// I-cache misses.
    pub i_misses: u64,
    /// D-cache load hits (stores never touch the cache).
    pub d_hits: u64,
    /// D-cache load misses.
    pub d_misses: u64,
    /// Taken control transfers.
    pub taken: u64,
    /// Load-use hazard stalls.
    pub hazards: u64,
    /// Per-instruction-address execution counts (used to cross-check the
    /// path analysis's worst-case counts).
    pub exec_counts: BTreeMap<u32, u64>,
}

/// Simulation error: a run-time fault of the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimError {
    /// The fault raised by the architecture.
    pub fault: Fault,
    /// Instructions retired before the fault.
    pub retired: u64,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "after {} instructions: {}", self.retired, self.fault)
    }
}

impl std::error::Error for SimError {}

/// A cycle-accurate EVA32 simulator for one task.
///
/// See the crate documentation for the timing model. Typical use: build,
/// optionally inject inputs with [`Simulator::write_ram`], then
/// [`Simulator::run`].
pub struct Simulator {
    hw: HwConfig,
    program: Program,
    cpu: Cpu,
    mem: Memory,
    icache: Option<LruCache>,
    dcache: Option<LruCache>,
    /// Destination of the previously retired instruction when it was a
    /// load (the load-use hazard window).
    pending_load: Option<Reg>,
    decoded: BTreeMap<u32, Insn>,
}

impl Simulator {
    /// Creates a simulator with the program image loaded and the CPU at
    /// the program entry, `sp` = top of RAM.
    pub fn new(program: &Program, hw: &HwConfig) -> Simulator {
        let mem = Memory::load(program, &hw.mem);
        let cpu = Cpu::new(program.entry, hw.mem.stack_top());
        Simulator {
            hw: *hw,
            program: program.clone(),
            cpu,
            mem,
            icache: hw.icache.map(LruCache::new),
            dcache: hw.dcache.map(LruCache::new),
            pending_load: None,
            decoded: BTreeMap::new(),
        }
    }

    /// Resets CPU, memory and caches to the initial state.
    pub fn reset(&mut self) {
        self.mem = Memory::load(&self.program, &self.hw.mem);
        self.cpu = Cpu::new(self.program.entry, self.hw.mem.stack_top());
        self.icache = self.hw.icache.map(LruCache::new);
        self.dcache = self.hw.dcache.map(LruCache::new);
        self.pending_load = None;
    }

    /// Reads a register of the current CPU state.
    pub fn reg(&self, r: Reg) -> u32 {
        self.cpu.reg(r)
    }

    /// Writes a register of the current CPU state (for test setup).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.cpu.set_reg(r, v);
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.cpu.pc
    }

    /// Reads simulated memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Injects raw bytes into RAM (task inputs).
    ///
    /// # Panics
    ///
    /// Panics if the region is not entirely inside RAM.
    pub fn write_ram(&mut self, addr: u32, bytes: &[u8]) {
        self.mem.write_ram_bytes(addr, bytes);
    }

    /// Runs until `halt`, a fault, or `max_insns` retired instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program faults (unmapped access,
    /// store to ROM, unaligned access, undecodable fetch).
    pub fn run(&mut self, max_insns: u64) -> Result<RunResult, SimError> {
        let timing = self.hw.timing;
        let stack_top = self.hw.mem.stack_top();
        let mut res = RunResult {
            status: RunStatus::LimitReached,
            cycles: 0,
            retired: 0,
            max_stack: stack_top.saturating_sub(self.cpu.reg(Reg::SP)),
            i_hits: 0,
            i_misses: 0,
            d_hits: 0,
            d_misses: 0,
            taken: 0,
            hazards: 0,
            exec_counts: BTreeMap::new(),
        };

        while res.retired < max_insns {
            let pc = self.cpu.pc;

            // Fetch through the I-cache.
            let insn = match self.decoded.get(&pc) {
                Some(i) => *i,
                None => {
                    let i = self.program.decode_at(pc).map_err(|e| SimError {
                        fault: Fault::BadFetch { pc, reason: e.to_string() },
                        retired: res.retired,
                    })?;
                    self.decoded.insert(pc, i);
                    i
                }
            };
            let mut cost = 1u64;
            match &mut self.icache {
                Some(ic) => {
                    if ic.access(pc) {
                        res.i_hits += 1;
                    } else {
                        res.i_misses += 1;
                        cost += timing.i_miss_penalty as u64;
                    }
                }
                None => cost += timing.i_miss_penalty as u64,
            }

            // EX stalls for multi-cycle units.
            if let Insn::Alu { op, .. } = insn {
                cost += timing.ex_stall(op.is_mul(), op.is_div()) as u64;
            }

            // Load-use hazard: previous instruction was a load whose
            // destination this instruction reads.
            if timing.load_use_hazard {
                if let Some(dest) = self.pending_load {
                    if insn.uses().contains(dest) {
                        cost += 1;
                        res.hazards += 1;
                    }
                }
            }

            // Execute architecturally.
            let effect = self
                .cpu
                .step(&insn, &mut self.mem)
                .map_err(|fault| SimError { fault, retired: res.retired })?;

            // D-cache timing for loads (stores are write-around, 0 stall).
            if let StepEffect::Continue { mem_addr: Some(addr), .. } = effect {
                if insn.is_load() {
                    match &mut self.dcache {
                        Some(dc) => {
                            if dc.access(addr) {
                                res.d_hits += 1;
                            } else {
                                res.d_misses += 1;
                                cost += timing.d_miss_penalty as u64;
                            }
                        }
                        None => cost += timing.d_miss_penalty as u64,
                    }
                }
            }

            // Branch penalty for taken control transfers.
            if let StepEffect::Continue { taken: true, .. } = effect {
                res.taken += 1;
                cost += timing.branch_penalty as u64;
            }

            self.pending_load = match insn {
                Insn::Load { .. } => insn.def(),
                _ => None,
            };

            res.cycles += cost;
            res.retired += 1;
            *res.exec_counts.entry(pc).or_insert(0) += 1;
            res.max_stack = res.max_stack.max(stack_top.saturating_sub(self.cpu.reg(Reg::SP)));

            if effect == StepEffect::Halted {
                res.status = RunStatus::Halted;
                break;
            }
        }
        Ok(res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::asm::assemble;

    fn run_src(src: &str, hw: &HwConfig) -> (Simulator, RunResult) {
        let p = assemble(src).expect("assembles");
        let mut sim = Simulator::new(&p, hw);
        let res = sim.run(1_000_000).expect("no fault");
        (sim, res)
    }

    #[test]
    fn straight_line_ideal_timing() {
        // ideal(): 1 cycle per instruction, +2 per taken transfer.
        let (_, res) = run_src(".text\nmain: nop\nnop\nnop\nhalt\n", &HwConfig::ideal());
        assert_eq!(res.status, RunStatus::Halted);
        assert_eq!(res.retired, 4);
        assert_eq!(res.cycles, 4);
    }

    #[test]
    fn taken_branch_penalty() {
        let src = ".text\nmain: j skip\nskip: nop\nhalt\n";
        let (_, res) = run_src(src, &HwConfig::ideal());
        // j (1+2) + nop 1 + halt 1 = 5.
        assert_eq!(res.cycles, 5);
        assert_eq!(res.taken, 1);
    }

    #[test]
    fn untaken_branch_costs_one() {
        let src = ".text\nmain: beq r0, r1, main\nhalt\n";
        let mut p = Simulator::new(&assemble(src).unwrap(), &HwConfig::ideal());
        p.set_reg(Reg::new(1), 7); // branch not taken
        let res = p.run(100).unwrap();
        assert_eq!(res.cycles, 2);
        assert_eq!(res.taken, 0);
    }

    #[test]
    fn mul_div_latency() {
        let src = ".text\nmain: mul r1, r2, r3\ndiv r4, r5, r6\nhalt\n";
        let (_, res) = run_src(src, &HwConfig::ideal());
        // mul: 1+3, div: 1+11, halt: 1.
        assert_eq!(res.cycles, 4 + 12 + 1);
    }

    #[test]
    fn load_use_hazard_stalls_once() {
        let hw = HwConfig::ideal();
        // lw then immediately use → +1; lw then unrelated then use → no stall.
        let src = "\
            .text\nmain: la r1, v\nlw r2, 0(r1)\nadd r3, r2, r2\nhalt\n.data\nv: .word 5\n";
        let (_, res) = run_src(src, &hw);
        // la(2) + lw(1) + add(1+1 hazard) + halt(1) = 6.
        assert_eq!(res.hazards, 1);
        assert_eq!(res.cycles, 6);

        let src2 = "\
            .text\nmain: la r1, v\nlw r2, 0(r1)\nnop\nadd r3, r2, r2\nhalt\n.data\nv: .word 5\n";
        let (_, res2) = run_src(src2, &hw);
        assert_eq!(res2.hazards, 0);
    }

    #[test]
    fn icache_hits_on_loop() {
        let hw = HwConfig::default();
        let src = "\
            .text\nmain: li r1, 8\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let (_, res) = run_src(src, &hw);
        // The two-instruction loop occupies one or two lines; after the
        // first iteration everything hits.
        assert!(res.i_misses <= 2, "i_misses = {}", res.i_misses);
        assert!(res.i_hits >= 14, "i_hits = {}", res.i_hits);
    }

    #[test]
    fn dcache_reuse_hits() {
        let hw = HwConfig::default();
        let src = "\
            .text
            main: la r1, buf
            lw r2, 0(r1)      ; miss
            lw r3, 4(r1)      ; hit (same 16-byte line)
            lw r4, 0(r1)      ; hit
            halt
            .data
            buf: .word 1, 2, 3, 4
        ";
        let (_, res) = run_src(src, &hw);
        assert_eq!(res.d_misses, 1);
        assert_eq!(res.d_hits, 2);
    }

    #[test]
    fn stack_watermark_tracks_sp() {
        let src = "\
            .text
            main: addi sp, sp, -32
            addi sp, sp, -16
            addi sp, sp, 48
            halt
        ";
        let (_, res) = run_src(src, &HwConfig::ideal());
        assert_eq!(res.max_stack, 48);
    }

    #[test]
    fn fault_reports_position() {
        let src = ".text\nmain: lw r1, 0(r2)\nhalt\n";
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&p, &HwConfig::default());
        sim.set_reg(Reg::new(2), 0x7000_0000);
        let err = sim.run(10).unwrap_err();
        assert!(matches!(err.fault, Fault::Unmapped { .. }));
    }

    #[test]
    fn exec_counts_match_loop_iterations() {
        let src = ".text\nmain: li r1, 5\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let (_, res) = run_src(src, &HwConfig::ideal());
        assert_eq!(res.exec_counts[&4], 5); // addi executed 5 times
        assert_eq!(res.exec_counts[&8], 5); // bnez executed 5 times
    }

    #[test]
    fn limit_reached_on_infinite_loop() {
        let src = ".text\nmain: j main\n";
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&p, &HwConfig::ideal());
        let res = sim.run(100).unwrap();
        assert_eq!(res.status, RunStatus::LimitReached);
        assert_eq!(res.retired, 100);
    }

    #[test]
    fn timing_decomposes_into_recorded_stalls() {
        // For programs without mul/div, the additive model is an exact
        // identity over the recorded statistics:
        // cycles = retired + 10·i_misses + 10·d_misses + 2·taken + hazards.
        let src = "\
            .text
            main: li r1, 6
                  la r2, buf
            loop: lw r3, 0(r2)
                  add r4, r3, r3     ; hazard
                  sw r4, 4(r2)
                  addi r1, r1, -1
                  bnez r1, loop
                  beq r1, r0, out
                  nop
            out:  halt
            .data
            buf:  .space 16
        ";
        let hw = HwConfig::default();
        let (_, res) = run_src(src, &hw);
        let t = hw.timing;
        let expected = res.retired
            + t.i_miss_penalty as u64 * res.i_misses
            + t.d_miss_penalty as u64 * res.d_misses
            + t.branch_penalty as u64 * res.taken
            + res.hazards;
        assert_eq!(res.cycles, expected);
        assert!(res.hazards >= 6, "load-use hazard fires each iteration");
    }

    #[test]
    fn reset_restores_initial_state() {
        let src = ".text\nmain: li r1, 9\nhalt\n";
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&p, &HwConfig::default());
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg::new(1)), 9);
        sim.reset();
        assert_eq!(sim.reg(Reg::new(1)), 0);
        let res = sim.run(10).unwrap();
        assert_eq!(res.status, RunStatus::Halted);
    }
}
