//! Concrete set-associative LRU cache.

use stamp_hw::CacheConfig;

/// A concrete LRU cache holding line addresses.
///
/// Each set is a recency-ordered list (index 0 = most recently used).
/// This is the reference implementation that the abstract must/may caches
/// in `stamp-cache` over-approximate.
///
/// # Example
///
/// ```
/// use stamp_hw::CacheConfig;
/// use stamp_sim::LruCache;
///
/// let mut c = LruCache::new(CacheConfig::new(1, 2, 16)); // one 2-way set
/// assert!(!c.access(0x00)); // miss
/// assert!(!c.access(0x10)); // miss
/// assert!(c.access(0x00));  // hit
/// assert!(!c.access(0x20)); // miss, evicts 0x10
/// assert!(!c.access(0x10)); // miss again
/// ```
#[derive(Clone, Debug)]
pub struct LruCache {
    config: CacheConfig,
    /// `sets[s]` is the recency-ordered list of resident line addresses.
    sets: Vec<Vec<u32>>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> LruCache {
        LruCache { config, sets: vec![Vec::new(); config.sets() as usize], hits: 0, misses: 0 }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs one access to the line containing `addr`. Returns `true`
    /// on a hit. On a miss the line is allocated, evicting the LRU way.
    pub fn access(&mut self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        let set = &mut self.sets[self.config.set_index(addr) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.insert(0, line);
            self.hits += 1;
            true
        } else {
            set.insert(0, line);
            set.truncate(self.config.assoc() as usize);
            self.misses += 1;
            false
        }
    }

    /// Returns `true` if the line containing `addr` is resident, without
    /// updating recency or statistics.
    pub fn probe(&self, addr: u32) -> bool {
        let line = self.config.line_addr(addr);
        self.sets[self.config.set_index(addr) as usize].contains(&line)
    }

    /// The age (0 = most recently used) of the line containing `addr`,
    /// if resident.
    pub fn age_of(&self, addr: u32) -> Option<u32> {
        let line = self.config.line_addr(addr);
        self.sets[self.config.set_index(addr) as usize]
            .iter()
            .position(|&l| l == line)
            .map(|p| p as u32)
    }

    /// Empties the cache (statistics are kept).
    pub fn invalidate(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(CacheConfig::new(1, 2, 16));
        c.access(0x00);
        c.access(0x10);
        c.access(0x00); // refresh 0x00 → LRU is 0x10
        c.access(0x20); // evict 0x10
        assert!(c.probe(0x00));
        assert!(!c.probe(0x10));
        assert!(c.probe(0x20));
        assert_eq!(c.age_of(0x20), Some(0));
        assert_eq!(c.age_of(0x00), Some(1));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = LruCache::new(CacheConfig::new(2, 1, 16));
        c.access(0x00); // set 0
        c.access(0x10); // set 1
        assert!(c.probe(0x00));
        assert!(c.probe(0x10));
        c.access(0x20); // set 0 again, evicts 0x00
        assert!(!c.probe(0x00));
        assert!(c.probe(0x10));
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = LruCache::new(CacheConfig::new(32, 2, 16));
        assert!(!c.access(0x100));
        assert!(c.access(0x104));
        assert!(c.access(0x10f));
        assert!(!c.access(0x110));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn invalidate_empties() {
        let mut c = LruCache::new(CacheConfig::new(32, 2, 16));
        c.access(0x40);
        c.invalidate();
        assert!(!c.probe(0x40));
    }
}
