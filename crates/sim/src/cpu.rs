//! Architectural (functional) execution of EVA32 instructions.

use std::fmt;

use stamp_hw::{MemoryMap, Region};
use stamp_isa::{AluOp, Insn, MemWidth, Program, Reg};

/// A run-time fault raised by the architecture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Fetch from an address that is not decodable code.
    BadFetch { pc: u32, reason: String },
    /// Data access to an unmapped address.
    Unmapped { pc: u32, addr: u32 },
    /// Data access that is not naturally aligned.
    Unaligned { pc: u32, addr: u32, width: MemWidth },
    /// Store to read-only memory.
    RomWrite { pc: u32, addr: u32 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::BadFetch { pc, reason } => write!(f, "bad fetch at {pc:#010x}: {reason}"),
            Fault::Unmapped { pc, addr } => {
                write!(f, "unmapped access to {addr:#010x} at pc {pc:#010x}")
            }
            Fault::Unaligned { pc, addr, width } => write!(
                f,
                "unaligned {}-byte access to {addr:#010x} at pc {pc:#010x}",
                width.bytes()
            ),
            Fault::RomWrite { pc, addr } => {
                write!(f, "store to ROM address {addr:#010x} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// Flat concrete memory: a ROM image and a RAM image.
#[derive(Clone)]
pub struct Memory {
    map: MemoryMap,
    rom: Vec<u8>,
    ram: Vec<u8>,
}

impl Memory {
    /// Builds memory from a program image: sections are copied into their
    /// regions, `.bss` is zeroed (RAM starts all-zero).
    pub fn load(program: &Program, map: &MemoryMap) -> Memory {
        let mut mem = Memory {
            map: *map,
            rom: vec![0; map.rom_size as usize],
            ram: vec![0; map.ram_size as usize],
        };
        for s in &program.sections {
            for (i, &b) in s.data.iter().enumerate() {
                let addr = s.base + i as u32;
                match map.region(addr) {
                    Region::Rom => mem.rom[(addr - map.rom_base) as usize] = b,
                    Region::Ram => mem.ram[(addr - map.ram_base) as usize] = b,
                    Region::Unmapped => {}
                }
            }
        }
        mem
    }

    /// Reads one byte (no alignment rules at byte granularity).
    pub fn read_byte(&self, addr: u32) -> Option<u8> {
        match self.map.region(addr) {
            Region::Rom => Some(self.rom[(addr - self.map.rom_base) as usize]),
            Region::Ram => Some(self.ram[(addr - self.map.ram_base) as usize]),
            Region::Unmapped => None,
        }
    }

    /// Reads a little-endian value of the given width.
    pub fn read(&self, addr: u32, width: MemWidth) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..width.bytes() {
            v |= (self.read_byte(addr.wrapping_add(i))? as u32) << (8 * i);
        }
        Some(v)
    }

    /// Writes a little-endian value into RAM. Returns `false` if any byte
    /// is outside RAM.
    pub fn write(&mut self, addr: u32, width: MemWidth, value: u32) -> bool {
        for i in 0..width.bytes() {
            let a = addr.wrapping_add(i);
            if self.map.region(a) != Region::Ram {
                return false;
            }
            self.ram[(a - self.map.ram_base) as usize] = (value >> (8 * i)) as u8;
        }
        true
    }

    /// Overwrites a RAM region with raw bytes (used to inject task inputs).
    ///
    /// # Panics
    ///
    /// Panics if the region is not entirely inside RAM.
    pub fn write_ram_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr + i as u32;
            assert_eq!(self.map.region(a), Region::Ram, "address {a:#x} not in RAM");
            self.ram[(a - self.map.ram_base) as usize] = b;
        }
    }

    /// The memory map this memory was built with.
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }
}

/// Architectural CPU state: program counter and register file.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// Program counter.
    pub pc: u32,
    regs: [u32; Reg::COUNT],
}

/// The architectural outcome of one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepEffect {
    /// Continue at the (possibly transferred) next pc; `taken` is true for
    /// taken control transfers; `mem_addr` is the data address accessed.
    Continue { taken: bool, mem_addr: Option<u32> },
    /// The task executed `halt`.
    Halted,
}

impl Cpu {
    /// Creates a CPU with all registers zero except `sp`, which is set to
    /// `stack_top`, starting at `entry`.
    pub fn new(entry: u32, stack_top: u32) -> Cpu {
        let mut regs = [0u32; Reg::COUNT];
        regs[Reg::SP.index()] = stack_top;
        Cpu { pc: entry, regs }
    }

    /// Reads a register (`r0` is always 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one already-decoded instruction, updating registers,
    /// memory and the pc.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on unmapped, misaligned or read-only accesses.
    pub fn step(&mut self, insn: &Insn, mem: &mut Memory) -> Result<StepEffect, Fault> {
        let pc = self.pc;
        let mut next = pc.wrapping_add(4);
        let mut taken = false;
        let mut mem_addr = None;

        match *insn {
            Insn::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Insn::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Insn::Lui { rd, imm } => self.set_reg(rd, (imm as u32) << 16),
            Insn::Load { width, signed, rd, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u32);
                check_align(pc, addr, width)?;
                let raw = mem.read(addr, width).ok_or(Fault::Unmapped { pc, addr })?;
                let v = extend(raw, width, signed);
                self.set_reg(rd, v);
                mem_addr = Some(addr);
            }
            Insn::Store { width, src, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u32);
                check_align(pc, addr, width)?;
                if !mem.write(addr, width, self.reg(src)) {
                    return Err(match mem.map().region(addr) {
                        Region::Rom => Fault::RomWrite { pc, addr },
                        _ => Fault::Unmapped { pc, addr },
                    });
                }
                mem_addr = Some(addr);
            }
            Insn::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next = pc.wrapping_add((offset as u32).wrapping_mul(4));
                    taken = true;
                }
            }
            Insn::Jump { offset } => {
                next = pc.wrapping_add((offset as u32).wrapping_mul(4));
                taken = true;
            }
            Insn::Jal { offset } => {
                self.set_reg(Reg::LR, pc.wrapping_add(4));
                next = pc.wrapping_add((offset as u32).wrapping_mul(4));
                taken = true;
            }
            Insn::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !3;
                self.set_reg(rd, pc.wrapping_add(4));
                next = target;
                taken = true;
            }
            Insn::Halt => return Ok(StepEffect::Halted),
        }

        self.pc = next;
        Ok(StepEffect::Continue { taken, mem_addr })
    }
}

fn check_align(pc: u32, addr: u32, width: MemWidth) -> Result<(), Fault> {
    if !addr.is_multiple_of(width.bytes()) {
        Err(Fault::Unaligned { pc, addr, width })
    } else {
        Ok(())
    }
}

fn extend(raw: u32, width: MemWidth, signed: bool) -> u32 {
    match (width, signed) {
        (MemWidth::B, true) => raw as u8 as i8 as i32 as u32,
        (MemWidth::H, true) => raw as u16 as i16 as i32 as u32,
        _ => raw,
    }
}

/// The EVA32 ALU — delegates to [`AluOp::eval`], the single source of
/// truth shared with the value analysis.
pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    op.eval(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::asm::assemble;

    fn mem_for(src: &str) -> (Memory, Program) {
        let p = assemble(src).expect("assembles");
        let map = MemoryMap::default();
        (Memory::load(&p, &map), p)
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu(AluOp::Sll, 1, 33), 2); // amount masked to 5 bits
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Slt, u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(alu(AluOp::Sltu, u32::MAX, 0), 0);
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Div, i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(alu(AluOp::Mulh, 0x8000_0000, 0x8000_0000), 0x4000_0000);
    }

    #[test]
    fn memory_loads_sections() {
        let (mem, p) = mem_for(".text\nmain: halt\n.data\nv: .word 0xdeadbeef\n");
        let v = p.symbols.addr_of("v").unwrap();
        assert_eq!(mem.read(v, MemWidth::W), Some(0xdead_beef));
        assert_eq!(mem.read(v, MemWidth::B), Some(0xef));
    }

    #[test]
    fn store_to_rom_faults() {
        let (mut mem, _p) = mem_for(".text\nmain: halt\n");
        let mut cpu = Cpu::new(0, MemoryMap::default().stack_top());
        let st = Insn::Store { width: MemWidth::W, src: Reg::new(1), base: Reg::ZERO, offset: 16 };
        let err = cpu.step(&st, &mut mem).unwrap_err();
        assert!(matches!(err, Fault::RomWrite { addr: 16, .. }));
    }

    #[test]
    fn unaligned_access_faults() {
        let (mut mem, _p) = mem_for(".text\nmain: halt\n");
        let mut cpu = Cpu::new(0, MemoryMap::default().stack_top());
        cpu.set_reg(Reg::new(1), 0x1000_0001);
        let ld = Insn::Load {
            width: MemWidth::W,
            signed: true,
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
        };
        assert!(matches!(cpu.step(&ld, &mut mem), Err(Fault::Unaligned { .. })));
    }

    #[test]
    fn sign_extension_on_byte_load() {
        let (mut mem, _p) = mem_for(".text\nmain: halt\n");
        mem.write_ram_bytes(0x1000_0000, &[0xff]);
        let mut cpu = Cpu::new(0, MemoryMap::default().stack_top());
        cpu.set_reg(Reg::new(1), 0x1000_0000);
        let lb = Insn::Load {
            width: MemWidth::B,
            signed: true,
            rd: Reg::new(2),
            base: Reg::new(1),
            offset: 0,
        };
        cpu.step(&lb, &mut mem).unwrap();
        assert_eq!(cpu.reg(Reg::new(2)), u32::MAX);
        let lbu = Insn::Load {
            width: MemWidth::B,
            signed: false,
            rd: Reg::new(3),
            base: Reg::new(1),
            offset: 0,
        };
        cpu.step(&lbu, &mut mem).unwrap();
        assert_eq!(cpu.reg(Reg::new(3)), 0xff);
    }

    #[test]
    fn jalr_clears_low_bits_and_links() {
        let (mut mem, _p) = mem_for(".text\nmain: halt\n");
        let mut cpu = Cpu::new(0x100, MemoryMap::default().stack_top());
        cpu.set_reg(Reg::new(5), 0x203);
        let j = Insn::Jalr { rd: Reg::LR, rs1: Reg::new(5), offset: 1 };
        cpu.step(&j, &mut mem).unwrap();
        assert_eq!(cpu.pc, 0x204);
        assert_eq!(cpu.reg(Reg::LR), 0x104);
    }

    #[test]
    fn writes_to_r0_discarded() {
        let (mut mem, _p) = mem_for(".text\nmain: halt\n");
        let mut cpu = Cpu::new(0, MemoryMap::default().stack_top());
        let i = Insn::AluImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 42 };
        cpu.step(&i, &mut mem).unwrap();
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }
}
