//! # stamp-sim — cycle-accurate concrete execution of EVA32 binaries
//!
//! This crate is the *ground truth* against which the static analyses are
//! validated. It implements, concretely and deterministically, exactly the
//! hardware model fixed by [`stamp_hw::HwConfig`]: architectural semantics
//! of every instruction, true-LRU caches, and the additive-stall pipeline
//! timing (issue + I-miss + EX + D-miss + branch penalty + load-use
//! hazard).
//!
//! In the paper's world this corresponds to measuring a task on the real
//! processor with a logic analyzer; here, because simulator and analyses
//! share one hardware model, the soundness theorem "observed cycles ≤
//! predicted WCET on every input" is machine-checkable (test suite,
//! experiment E0/E1).
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_hw::HwConfig;
//! use stamp_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(".text\nmain: li r1, 3\nadd r2, r1, r1\nhalt\n")?;
//! let hw = HwConfig::default();
//! let mut sim = Simulator::new(&program, &hw);
//! let result = sim.run(10_000)?;
//! assert_eq!(sim.reg(stamp_isa::Reg::new(2)), 6);
//! assert!(result.cycles > 0);
//! # Ok(())
//! # }
//! ```

mod cache;
mod cpu;
mod run;

pub use cache::LruCache;
pub use cpu::{Cpu, Fault, Memory};
pub use run::{RunResult, RunStatus, SimError, Simulator};
