//! The differential soundness oracle shared by the property tests and
//! the fuzz campaign (`stamp fuzz`).
//!
//! The paper's central claim is that the statically derived bounds are
//! *sound*: no execution, on any input, exceeds them. The repo holds
//! both sides of that claim — the abstract analyses and the
//! cycle-accurate simulator read the same [`HwConfig`] — so the claim
//! is directly testable. [`check`] runs one program through both sides
//! and compares:
//!
//! * **timing** — simulated cycles never exceed the WCET bound;
//! * **memory** — the simulated stack watermark never exceeds the
//!   stack bound;
//! * **values** — every concrete register at the halt site is contained
//!   in some abstract exit state of the halt block (joined over VIVU
//!   contexts);
//! * **termination** — the simulation halts within its instruction
//!   budget and without faulting (the analyses only accept programs
//!   they can prove terminating, so a hang or fault contradicts them);
//! * **sampling** — the probabilistic path sampler's observed maximum
//!   over `samples` seed-pinned iCFG walks never exceeds the ILP
//!   bound (every sampled path is a feasible point of the ILP, so its
//!   cost is bounded by the ILP optimum — see `stamp_sample`).
//!
//! Any discrepancy is a [`Violation`]; the fuzz campaign treats it as a
//! counterexample and hands it to the shrinker. A *failure of the
//! analysis itself* on a generated program is also a violation
//! ([`Violation::Analysis`]) — the generator guarantees analyzable
//! programs, so an analysis error means the generator contract or the
//! analyzer broke.
//!
//! [`FaultInjection`] deliberately mis-reports a bound or flags a
//! mnemonic so the campaign's detection and shrinking machinery can be
//! tested end to end against a harness that is *known* to be broken
//! (the fuzzing equivalent of mutation testing).

use rand::Rng;
use stamp_core::{
    AnalysisConfig, Annotations, ArtifactStore, PhaseArtifacts, StackAnalysis, WcetAnalysis,
};
use stamp_hw::HwConfig;
use stamp_isa::{Program, Reg};
use stamp_sim::{RunStatus, Simulator};
use stamp_value::ValueOptions;

/// Configuration of one oracle run.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// The hardware model, shared verbatim by analyses and simulator.
    pub hw: HwConfig,
    /// Value-analysis options under test.
    pub value: ValueOptions,
    /// Random-input simulation rounds (programs without an input region
    /// run exactly once — they are input-independent).
    pub rounds: usize,
    /// Append the adversarial input patterns (descending / ascending /
    /// all-zero / all-ones) after the random rounds. Sharpens the
    /// observed worst case for sorts and searches.
    pub adversarial: bool,
    /// Check concrete registers against abstract exit states at halt.
    pub check_values: bool,
    /// Run the WCET analysis (`false` for recursive, stack-only tasks).
    pub wcet: bool,
    /// Simulator instruction budget per round.
    pub max_insns: u64,
    /// Probabilistic path-sampling walks per program (seed-pinned to 0
    /// so the check is deterministic); `0` skips the sampling leg.
    pub samples: usize,
    /// Deliberate oracle corruption, for testing the detection and
    /// shrinking machinery itself. `None` in every real campaign.
    pub fault: Option<FaultInjection>,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            hw: HwConfig::default(),
            value: ValueOptions::default(),
            rounds: 3,
            adversarial: false,
            check_values: true,
            wcet: true,
            max_insns: 5_000_000,
            samples: 32,
            fault: None,
        }
    }
}

/// A deliberately broken oracle, used to validate the fuzz harness:
/// each variant makes the oracle report violations that the true
/// analyses never produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultInjection {
    /// Report only `percent`% of the true WCET bound, so sufficiently
    /// tight programs appear to overrun it.
    TightenWcet(u64),
    /// Report only `percent`% of the true stack bound.
    TightenStack(u64),
    /// Compare the sampler's observed maximum against only `percent`%
    /// of the true WCET bound, so the sampling leg reports a (fake)
    /// soundness violation. Independent of [`TightenWcet`], which only
    /// tightens the bound the *simulator* is compared against — the
    /// two legs are testable in isolation.
    ///
    /// [`TightenWcet`]: FaultInjection::TightenWcet
    TightenSample(u64),
    /// Report a violation whenever the program contains this mnemonic
    /// (a predicate fault with a crisp minimal reproducer, ideal for
    /// exercising the shrinker).
    FlagMnemonic(String),
}

/// A soundness violation: the simulator contradicted an analysis (or,
/// for [`Violation::Analysis`], an analysis failed on a program the
/// generator guarantees analyzable).
#[derive(Clone, Debug)]
pub enum Violation {
    /// An analysis stage failed outright.
    Analysis {
        /// Which stage (`"wcet"`, `"stack"`, `"input"`).
        stage: &'static str,
        /// The analysis error.
        message: String,
    },
    /// The simulator faulted (memory error, illegal instruction) on a
    /// program the analyses accepted as fault-free.
    SimFault {
        /// Input round of the fault.
        round: usize,
        /// The simulator error.
        message: String,
    },
    /// The simulation did not halt within its instruction budget,
    /// contradicting the termination argument behind the WCET bound.
    NoHalt {
        /// Input round.
        round: usize,
        /// The exhausted instruction budget.
        budget: u64,
    },
    /// Simulated cycles exceeded the WCET bound.
    WcetExceeded {
        /// Input round.
        round: usize,
        /// Simulated cycles.
        observed: u64,
        /// The (possibly fault-tightened) static bound.
        bound: u64,
    },
    /// The path sampler's observed maximum exceeded the WCET bound —
    /// a feasible ILP point costlier than the claimed ILP optimum.
    SampleExceeded {
        /// Completed sampled walks behind the observation.
        samples: usize,
        /// The costliest sampled path, in cycles.
        observed: u64,
        /// The (possibly fault-tightened) static bound.
        bound: u64,
    },
    /// Simulated stack watermark exceeded the stack bound.
    StackExceeded {
        /// Input round.
        round: usize,
        /// Simulated watermark in bytes.
        observed: u32,
        /// The (possibly fault-tightened) static bound.
        bound: u32,
    },
    /// A concrete register at halt lies outside every abstract exit
    /// state of the halt block.
    ValueEscape {
        /// Input round.
        round: usize,
        /// Register name.
        reg: String,
        /// The concrete value.
        value: u32,
    },
    /// A [`FaultInjection::FlagMnemonic`] predicate fired.
    Injected {
        /// The flagged mnemonic.
        mnemonic: String,
    },
}

impl Violation {
    /// Short machine-readable kind, stable across releases (used in
    /// fuzz reports and for "same failure" matching during shrinking).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Analysis { .. } => "analysis",
            Violation::SimFault { .. } => "sim-fault",
            Violation::NoHalt { .. } => "no-halt",
            Violation::WcetExceeded { .. } => "wcet",
            Violation::SampleExceeded { .. } => "sample",
            Violation::StackExceeded { .. } => "stack",
            Violation::ValueEscape { .. } => "value",
            Violation::Injected { .. } => "injected",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Analysis { stage, message } => {
                write!(f, "{stage} analysis failed: {message}")
            }
            Violation::SimFault { round, message } => {
                write!(f, "round {round}: simulator fault: {message}")
            }
            Violation::NoHalt { round, budget } => write!(
                f,
                "round {round}: no halt within {budget} instructions (analysis claims termination)"
            ),
            Violation::WcetExceeded { round, observed, bound } => write!(
                f,
                "round {round}: UNSOUND WCET — simulated {observed} cycles > bound {bound}"
            ),
            Violation::SampleExceeded { samples, observed, bound } => write!(
                f,
                "UNSOUND sampling — costliest of {samples} sampled paths is {observed} cycles \
                 > bound {bound}"
            ),
            Violation::StackExceeded { round, observed, bound } => write!(
                f,
                "round {round}: UNSOUND stack — simulated {observed} bytes > bound {bound}"
            ),
            Violation::ValueEscape { round, reg, value } => write!(
                f,
                "round {round}: UNSOUND value — register {reg} = {value:#x} outside every \
                 abstract exit state"
            ),
            Violation::Injected { mnemonic } => {
                write!(f, "injected fault: program contains `{mnemonic}`")
            }
        }
    }
}

/// What a passing oracle run observed — the raw material for tightness
/// assertions (`bound ≤ 2 × observed`) and throughput accounting.
#[derive(Clone, Copy, Debug)]
pub struct OracleReport {
    /// The WCET bound (`None` when the WCET analysis was skipped).
    pub wcet: Option<u64>,
    /// The stack bound in bytes.
    pub stack_bound: u32,
    /// Worst simulated cycles over all rounds.
    pub worst_cycles: u64,
    /// Worst simulated stack watermark over all rounds.
    pub worst_stack: u32,
    /// Total cycles simulated (all rounds).
    pub total_cycles: u64,
    /// Simulation rounds executed.
    pub rounds: usize,
    /// The sampler's observed maximum (`None` when the sampling leg
    /// was skipped or no walk completed).
    pub sampled_max: Option<u64>,
    /// Completed sampled walks.
    pub sampled_paths: usize,
}

/// `true` when any decoded instruction's mnemonic equals `mnemonic`.
fn contains_mnemonic(program: &Program, mnemonic: &str) -> bool {
    let (lo, hi) = program.text_range();
    (lo..hi).step_by(4).any(|addr| {
        program
            .decode_at(addr)
            .ok()
            .and_then(|insn| insn.to_string().split_whitespace().next().map(str::to_string))
            .is_some_and(|m| m == mnemonic)
    })
}

/// Runs the full differential oracle on one program: analyses first,
/// then `cfg.rounds` randomized simulations (plus adversarial patterns
/// when enabled), comparing every observation against the bounds.
///
/// `input` names the RAM region randomized between rounds (symbol and
/// length in bytes); `None` runs a single input-independent round.
/// Inputs are drawn from `rng`, so a seeded rng makes the whole check
/// deterministic — the property the fuzz campaign's byte-identical
/// reports rest on.
///
/// # Errors
///
/// The first [`Violation`] found, boxed (violations carry full context
/// and are large; passing runs stay cheap).
pub fn check(
    program: &Program,
    annotations: &Annotations,
    input: Option<(&str, u32)>,
    cfg: &OracleConfig,
    rng: &mut impl Rng,
) -> Result<OracleReport, Box<Violation>> {
    if let Some(FaultInjection::FlagMnemonic(m)) = &cfg.fault {
        if contains_mnemonic(program, m) {
            return Err(Box::new(Violation::Injected { mnemonic: m.clone() }));
        }
    }

    // ---- The static side: bounds plus the full phase artifacts.
    let (wcet_bound, artifacts): (Option<u64>, Option<PhaseArtifacts>) = if cfg.wcet {
        let run = WcetAnalysis::new(program)
            .config(AnalysisConfig {
                hw: cfg.hw,
                value: cfg.value.clone(),
                ..AnalysisConfig::default()
            })
            .annotations(annotations.clone())
            .run_full(&ArtifactStore::disabled());
        match run {
            Ok((report, artifacts)) => (Some(report.wcet), Some(artifacts)),
            Err(e) => {
                return Err(Box::new(Violation::Analysis { stage: "wcet", message: e.to_string() }))
            }
        }
    } else {
        (None, None)
    };
    let stack_bound = StackAnalysis::new(program)
        .hw(cfg.hw)
        .annotations(annotations.clone())
        .run()
        .map_err(|e| Violation::Analysis { stage: "stack", message: e.to_string() })?
        .bound;

    let raw_wcet = wcet_bound;
    let wcet_bound = match (&cfg.fault, wcet_bound) {
        (Some(FaultInjection::TightenWcet(percent)), Some(b)) => Some(b * percent / 100),
        _ => wcet_bound,
    };
    let stack_bound = match &cfg.fault {
        Some(FaultInjection::TightenStack(percent)) => (stack_bound as u64 * percent / 100) as u32,
        _ => stack_bound,
    };

    // ---- The sampling leg: the sampler's observed maximum is a lower
    // bound on the true worst case, so it must stay under the ILP
    // optimum. Compared against the raw bound (tightened only by
    // `TightenSample`), so `TightenWcet` self-tests keep exercising
    // the *simulator* leg alone.
    let mut sampled_max = None;
    let mut sampled_paths = 0;
    if cfg.samples > 0 {
        if let (Some(arts), Some(bound)) = (&artifacts, raw_wcet) {
            let bound = match &cfg.fault {
                Some(FaultInjection::TightenSample(percent)) => bound * percent / 100,
                _ => bound,
            };
            let options = stamp_sample::SampleOptions {
                samples: cfg.samples,
                seed: 0,
                ..stamp_sample::SampleOptions::default()
            };
            let summary = stamp_sample::sample_paths(
                &arts.cfg, &arts.icfg, &arts.va, &arts.lb, &arts.pa, &options,
            );
            if let Some(observed) = summary.observed_max {
                if observed > bound {
                    return Err(Box::new(Violation::SampleExceeded {
                        samples: summary.completed,
                        observed,
                        bound,
                    }));
                }
            }
            sampled_max = summary.observed_max;
            sampled_paths = summary.completed;
        }
    }

    // ---- The input plan: random rounds, then adversarial patterns.
    let input_region = match input {
        None => None,
        Some((sym, len)) => {
            let addr = program.symbols.addr_of(sym).ok_or_else(|| Violation::Analysis {
                stage: "input",
                message: format!("input symbol `{sym}` not found"),
            })?;
            Some((addr, len))
        }
    };
    let inputs: Vec<Option<Vec<u8>>> = match input_region {
        None => vec![None],
        Some((_, len)) => {
            let mut plan: Vec<Option<Vec<u8>>> = (0..cfg.rounds.max(1))
                .map(|_| Some((0..len).map(|_| rng.gen()).collect()))
                .collect();
            if cfg.adversarial {
                let words = (len / 4).max(1);
                let descending: Vec<u8> = (0..words)
                    .flat_map(|i| 0x7fff_ff00u32.wrapping_sub(i * 17).to_le_bytes())
                    .take(len as usize)
                    .collect();
                let ascending: Vec<u8> = (0..words)
                    .flat_map(|i| (i * 13 + 1).to_le_bytes())
                    .take(len as usize)
                    .collect();
                plan.push(Some(descending));
                plan.push(Some(ascending));
                plan.push(Some(vec![0u8; len as usize]));
                plan.push(Some(vec![0xffu8; len as usize]));
            }
            plan
        }
    };

    // ---- The dynamic side: simulate and compare.
    let mut report = OracleReport {
        wcet: wcet_bound,
        stack_bound,
        worst_cycles: 0,
        worst_stack: 0,
        total_cycles: 0,
        rounds: inputs.len(),
        sampled_max,
        sampled_paths,
    };
    for (round, bytes) in inputs.into_iter().enumerate() {
        let mut sim = Simulator::new(program, &cfg.hw);
        if let (Some((addr, _)), Some(bytes)) = (input_region, &bytes) {
            sim.write_ram(addr, bytes);
        }
        let res = sim
            .run(cfg.max_insns)
            .map_err(|e| Violation::SimFault { round, message: e.to_string() })?;
        if res.status != RunStatus::Halted {
            return Err(Box::new(Violation::NoHalt { round, budget: cfg.max_insns }));
        }
        if let Some(bound) = wcet_bound {
            if res.cycles > bound {
                return Err(Box::new(Violation::WcetExceeded {
                    round,
                    observed: res.cycles,
                    bound,
                }));
            }
        }
        if res.max_stack > stack_bound {
            return Err(Box::new(Violation::StackExceeded {
                round,
                observed: res.max_stack,
                bound: stack_bound,
            }));
        }
        if cfg.check_values {
            if let Some(artifacts) = &artifacts {
                check_exit_values(&mut sim, artifacts, round)?;
            }
        }
        report.worst_cycles = report.worst_cycles.max(res.cycles);
        report.worst_stack = report.worst_stack.max(res.max_stack);
        report.total_cycles += res.cycles;
    }
    Ok(report)
}

/// The value-containment leg: every concrete register at the halt site
/// must lie inside the abstract exit state of *some* VIVU context of
/// the halt block.
fn check_exit_values(
    sim: &mut Simulator,
    artifacts: &PhaseArtifacts,
    round: usize,
) -> Result<(), Box<Violation>> {
    let halt_block = artifacts.cfg.block_containing(sim.pc()).ok_or_else(|| {
        Box::new(Violation::ValueEscape { round, reg: "pc".to_string(), value: sim.pc() })
    })?;
    for r in Reg::all() {
        let concrete = sim.reg(r);
        let contained = artifacts
            .icfg
            .nodes_of_block(halt_block)
            .iter()
            .any(|&n| artifacts.va.exit_state(n).is_some_and(|s| s.reg(r).contains(concrete)));
        if !contained {
            return Err(Box::new(Violation::ValueEscape {
                round,
                reg: r.to_string(),
                value: concrete,
            }));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stamp_isa::asm::assemble;

    fn generated(seed: u64, cfg: &GenConfig) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, cfg);
        assemble(&src).expect("generated code assembles")
    }

    #[test]
    fn clean_programs_pass_the_oracle() {
        let program = generated(1, &GenConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let report = check(
            &program,
            &Annotations::new(),
            Some(("scratch", 128)),
            &OracleConfig::default(),
            &mut rng,
        )
        .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
        assert!(report.wcet.unwrap() >= report.worst_cycles);
        assert!(report.stack_bound >= report.worst_stack);
        assert_eq!(report.rounds, 3);
        assert!(report.sampled_paths > 0, "sampling leg must run by default");
        assert!(report.sampled_max.unwrap() <= report.wcet.unwrap());
    }

    #[test]
    fn tightened_sample_bound_is_detected_as_a_sample_violation() {
        let program = generated(2, &GenConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = OracleConfig {
            fault: Some(FaultInjection::TightenSample(1)),
            ..OracleConfig::default()
        };
        let v = check(&program, &Annotations::new(), Some(("scratch", 128)), &cfg, &mut rng)
            .expect_err("tightened sampling bound must be violated");
        assert_eq!(v.kind(), "sample", "{v}");
        assert!(v.to_string().contains("UNSOUND sampling"), "{v}");
    }

    #[test]
    fn sampling_leg_can_be_disabled() {
        let program = generated(2, &GenConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = OracleConfig {
            samples: 0,
            fault: Some(FaultInjection::TightenSample(1)),
            ..OracleConfig::default()
        };
        let report = check(&program, &Annotations::new(), Some(("scratch", 128)), &cfg, &mut rng)
            .unwrap_or_else(|v| panic!("unexpected violation: {v}"));
        assert_eq!(report.sampled_paths, 0);
        assert_eq!(report.sampled_max, None);
    }

    #[test]
    fn tightened_wcet_bound_is_detected() {
        // With the bound cut to 1% any non-trivial program overruns it.
        let program = generated(2, &GenConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg =
            OracleConfig { fault: Some(FaultInjection::TightenWcet(1)), ..OracleConfig::default() };
        let v = check(&program, &Annotations::new(), Some(("scratch", 128)), &cfg, &mut rng)
            .expect_err("tightened bound must be violated");
        assert_eq!(v.kind(), "wcet", "{v}");
    }

    #[test]
    fn flagged_mnemonic_is_detected_and_named() {
        // Seed 1's default program contains a division (as almost all
        // do: each statement is a div with probability 1/10).
        let program = generated(1, &GenConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = OracleConfig {
            fault: Some(FaultInjection::FlagMnemonic("div".to_string())),
            ..OracleConfig::default()
        };
        let v = check(&program, &Annotations::new(), Some(("scratch", 128)), &cfg, &mut rng)
            .expect_err("flagged mnemonic must fire");
        assert_eq!(v.kind(), "injected");
        assert!(v.to_string().contains("div"), "{v}");
    }

    #[test]
    fn oracle_is_deterministic_for_a_fixed_rng_seed() {
        let program = generated(3, &GenConfig::rich());
        let run = || {
            let mut rng = StdRng::seed_from_u64(33);
            check(
                &program,
                &Annotations::new(),
                Some(("scratch", 256)),
                &OracleConfig::default(),
                &mut rng,
            )
            .map(|r| (r.worst_cycles, r.worst_stack, r.total_cycles))
            .map_err(|v| v.to_string())
        };
        assert_eq!(run(), run());
    }
}
