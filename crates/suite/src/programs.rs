//! The benchmark corpus.
//!
//! Each task is written the way an embedded compiler would emit it
//! (explicit frames, compare-then-branch idioms, table lookups) so the
//! analyses face realistic code shapes: counted and data-dependent
//! loops, nested loops with triangular bounds, jump tables, constant
//! modes guarding dead paths, recursion, and deep call chains.

use crate::Benchmark;

/// Returns the full benchmark corpus.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "fibcall",
            description: "iterative Fibonacci (simple counted loop)",
            source: FIBCALL,
            loop_annotations: &[],
            recursion: &[],
            input: None,
            max_insns: 100_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "insertsort",
            description: "insertion sort of 10 words (triangular nested loop, data exits)",
            source: INSERTSORT,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("arr", 40)),
            max_insns: 100_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "bsort",
            description: "bubble sort of 12 words (n² nested loops, swaps)",
            source: BSORT,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("arr", 48)),
            max_insns: 200_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "matmult",
            description: "5×5 matrix multiply (3-deep loop nest, strided arrays)",
            source: MATMULT,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("amat", 100)),
            max_insns: 500_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "crc",
            description: "table-driven CRC over 16 bytes (masked ROM table lookups)",
            source: CRC,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("msg", 16)),
            max_insns: 100_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "fir",
            description: "8-tap FIR filter over 16 samples (MAC loop, ROM coefficients)",
            source: FIR,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("samples", 64)),
            max_insns: 200_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "bs",
            description: "binary search in a 16-entry ROM table (annotated halving loop)",
            source: BS,
            loop_annotations: &[("bsloop", 8)],
            recursion: &[],
            input: Some(("key", 4)),
            max_insns: 10_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "cnt",
            description: "count and sum positive matrix entries (data-dependent branches)",
            source: CNT,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("mat", 64)),
            max_insns: 100_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "switchcase",
            description: "jump-table state machine over 8 opcode bytes (indirect jumps)",
            source: SWITCHCASE,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("inp", 8)),
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "prime",
            description: "trial-division primality test (div/rem latency, annotated loop)",
            source: PRIME,
            loop_annotations: &[("ploop", 16)],
            recursion: &[],
            input: None,
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "statemate",
            description: "mode-guarded state machine with provably dead branches",
            source: STATEMATE,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("sensors", 48)),
            max_insns: 100_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "nested",
            description: "four-level call chain with stack frames and a leaf loop",
            source: NESTED,
            loop_annotations: &[],
            recursion: &[],
            input: None,
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "arraysum",
            description: "sum a 256-word array (stride-4 addresses over a cache-filling range)",
            source: ARRAYSUM,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("arr", 1024)),
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "fdct",
            description: "fixed-point 8-point DCT butterfly (straight-line mul-heavy)",
            source: FDCT,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("blk", 32)),
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "ns",
            description: "3-level nested search with data-dependent early exit",
            source: NS,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("cube", 64)),
            max_insns: 200_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "memcpy",
            description: "pointer-range copy loop (relational end−p bound over unknown base)",
            source: MEMCPY,
            loop_annotations: &[],
            recursion: &[],
            input: Some(("off", 4)),
            max_insns: 50_000,
            supports_wcet: true,
        },
        Benchmark {
            name: "fac",
            description: "recursive factorial (stack analysis with recursion annotation)",
            source: FAC,
            loop_annotations: &[],
            recursion: &[("fac", 11)],
            input: None,
            max_insns: 50_000,
            supports_wcet: false,
        },
    ]
}

const FIBCALL: &str = r#"
        .text
main:   li   r1, 30             ; n
        li   r2, 0              ; fib(0)
        li   r3, 1              ; fib(1)
fib_loop:
        add  r4, r2, r3
        mov  r2, r3
        mov  r3, r4
        addi r1, r1, -1
        bnez r1, fib_loop
        halt
"#;

const INSERTSORT: &str = r#"
        .equ N, 10
        .text
main:   li   r5, 1              ; i = 1
        la   r10, arr
outer:  slli r6, r5, 2
        add  r6, r10, r6
        lw   r7, 0(r6)          ; key = arr[i]
        mov  r8, r5             ; j = i
inner:  beqz r8, ins            ; j == 0 -> insert
        slli r9, r8, 2
        add  r9, r10, r9
        lw   r11, -4(r9)        ; arr[j-1]
        ble  r11, r7, ins       ; arr[j-1] <= key -> insert
        sw   r11, 0(r9)         ; arr[j] = arr[j-1]
        addi r8, r8, -1
        j    inner
ins:    slli r9, r8, 2
        add  r9, r10, r9
        sw   r7, 0(r9)          ; arr[j] = key
        addi r5, r5, 1
        slti r12, r5, N
        bnez r12, outer
        halt
        .data
arr:    .space 40
"#;

const BSORT: &str = r#"
        .equ N, 12
        .text
main:   li   r1, N
        addi r1, r1, -1         ; i = N-1
        la   r10, arr
outer:  li   r2, 0              ; j = 0
inner:  slli r3, r2, 2
        add  r3, r10, r3
        lw   r4, 0(r3)
        lw   r5, 4(r3)
        ble  r4, r5, noswap
        sw   r5, 0(r3)
        sw   r4, 4(r3)
noswap: addi r2, r2, 1
        blt  r2, r1, inner      ; j < i
        addi r1, r1, -1
        bnez r1, outer
        halt
        .data
arr:    .space 48
"#;

const MATMULT: &str = r#"
        .equ N, 5
        .text
main:   li   r1, 0              ; i
iloop:  li   r2, 0              ; j
jloop:  li   r3, 0              ; k
        li   r9, 0              ; acc
kloop:  li   r4, N
        mul  r5, r1, r4
        add  r5, r5, r3         ; i*N + k
        slli r5, r5, 2
        la   r6, amat
        add  r6, r6, r5
        lw   r7, 0(r6)          ; A[i][k]
        mul  r5, r3, r4
        add  r5, r5, r2         ; k*N + j
        slli r5, r5, 2
        la   r6, bmat
        add  r6, r6, r5
        lw   r8, 0(r6)          ; B[k][j]
        mul  r7, r7, r8
        add  r9, r9, r7
        addi r3, r3, 1
        slti r12, r3, N
        bnez r12, kloop
        li   r4, N
        mul  r5, r1, r4
        add  r5, r5, r2         ; i*N + j
        slli r5, r5, 2
        la   r6, cmat
        add  r6, r6, r5
        sw   r9, 0(r6)          ; C[i][j] = acc
        addi r2, r2, 1
        slti r12, r2, N
        bnez r12, jloop
        addi r1, r1, 1
        slti r12, r1, N
        bnez r12, iloop
        halt
        .rodata
bmat:   .word 1, 2, 3, 4, 5
        .word 6, 7, 8, 9, 10
        .word 11, 12, 13, 14, 15
        .word 2, 4, 6, 8, 10
        .word 1, 3, 5, 7, 9
        .data
amat:   .space 100
cmat:   .space 100
"#;

const CRC: &str = r#"
        .equ LEN, 16
        .text
main:   li   r1, 0              ; idx
        li   r2, 0              ; crc
        la   r10, msg
        la   r11, crctab
cloop:  add  r3, r10, r1
        lbu  r4, 0(r3)          ; msg[idx]
        xor  r5, r2, r4
        andi r5, r5, 0x3f       ; 64-entry table
        slli r5, r5, 2
        add  r6, r11, r5
        lw   r2, 0(r6)          ; crc = crctab[(crc ^ b) & 63]
        addi r1, r1, 1
        slti r12, r1, LEN
        bnez r12, cloop
        halt
        .rodata
crctab: .word 7, 60, 113, 166, 219, 16, 69, 122
        .word 175, 228, 25, 78, 131, 184, 237, 34
        .word 87, 140, 193, 246, 43, 96, 149, 202
        .word 255, 52, 105, 158, 211, 8, 61, 114
        .word 167, 220, 17, 70, 123, 176, 229, 26
        .word 79, 132, 185, 238, 35, 88, 141, 194
        .word 247, 44, 97, 150, 203, 0, 53, 106
        .word 159, 212, 9, 62, 115, 168, 221, 18
        .data
msg:    .space 16
"#;

const FIR: &str = r#"
        .equ TAPS, 8
        .text
main:   li   r1, 0              ; n
oloop:  li   r2, 0              ; k
        li   r9, 0              ; acc
floop:  add  r3, r1, r2
        slli r3, r3, 2
        la   r4, samples
        add  r4, r4, r3
        lw   r5, 0(r4)          ; x[n+k]
        slli r6, r2, 2
        la   r7, coef
        add  r7, r7, r6
        lw   r8, 0(r7)          ; h[k]
        mul  r5, r5, r8
        add  r9, r9, r5
        addi r2, r2, 1
        slti r12, r2, TAPS
        bnez r12, floop
        slli r3, r1, 2
        la   r4, output
        add  r4, r4, r3
        sw   r9, 0(r4)
        addi r1, r1, 1
        slti r12, r1, 9         ; LEN - TAPS + 1
        bnez r12, oloop
        halt
        .rodata
coef:   .word 3, -5, 7, 11, -13, 17, -19, 23
        .data
samples: .space 64
output: .space 36
"#;

const BS: &str = r#"
        .text
main:   la   r1, key
        lw   r2, 0(r1)          ; search key (input)
        li   r3, 0              ; lo
        li   r4, 15             ; hi
        li   r9, -1             ; result index
bsloop: bgt  r3, r4, done
        add  r5, r3, r4
        srli r5, r5, 1          ; mid
        slli r6, r5, 2
        la   r7, table
        add  r7, r7, r6
        lw   r8, 0(r7)
        beq  r8, r2, found
        blt  r8, r2, right
        addi r4, r5, -1         ; hi = mid - 1
        j    bsloop
right:  addi r3, r5, 1          ; lo = mid + 1
        j    bsloop
found:  mov  r9, r5
done:   halt
        .rodata
table:  .word 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53
        .data
key:    .space 4
"#;

const CNT: &str = r#"
        .text
main:   li   r1, 0              ; idx
        li   r2, 0              ; count of positives
        li   r3, 0              ; sum of positives
        la   r10, mat
cloop:  slli r4, r1, 2
        add  r4, r10, r4
        lw   r5, 0(r4)
        blez r5, skip
        addi r2, r2, 1
        add  r3, r3, r5
skip:   addi r1, r1, 1
        slti r12, r1, 16
        bnez r12, cloop
        halt
        .data
mat:    .space 64
"#;

const SWITCHCASE: &str = r#"
        .text
main:   li   r1, 0              ; idx
        li   r6, 1              ; state
        la   r10, inp
        la   r11, jtab
sloop:  add  r2, r10, r1
        lbu  r3, 0(r2)          ; opcode
        andi r3, r3, 3          ; 4 cases
        slli r3, r3, 2
        add  r4, r11, r3
        lw   r5, 0(r4)          ; handler address from ROM table
        jalr r0, r5, 0          ; computed jump
case0:  addi r6, r6, 1
        j    snext
case1:  mul  r6, r6, r6
        j    snext
case2:  addi r6, r6, -1
        j    snext
case3:  xor  r6, r6, r1
snext:  addi r1, r1, 1
        slti r12, r1, 8
        bnez r12, sloop
        halt
        .rodata
jtab:   .word case0, case1, case2, case3
        .data
inp:    .space 8
"#;

const PRIME: &str = r#"
        .text
main:   li   r1, 229            ; candidate
        li   r2, 2              ; divisor
        li   r9, 1              ; assume prime
ploop:  mul  r3, r2, r2
        bgt  r3, r1, done       ; d*d > n: no divisor found
        rem  r4, r1, r2
        beqz r4, notp
        addi r2, r2, 1
        j    ploop
notp:   li   r9, 0
done:   halt
"#;

const STATEMATE: &str = r#"
        .text
main:   li   r7, 2              ; mode register: constant 2
        li   r1, 0
        li   r5, 0
        la   r10, sensors
mloop:  slli r2, r1, 2
        add  r2, r10, r2
        lw   r3, 0(r2)          ; sensor reading
        beq  r7, r0, m0         ; mode 0? provably never
        slti r4, r7, 2
        bnez r4, m1             ; mode 1? provably never
        add  r5, r5, r3         ; mode-2 path (the only live one)
        j    mnext
m0:     div  r5, r5, r3         ; dead, expensive
        div  r5, r5, r3
        j    mnext
m1:     mul  r5, r5, r3         ; dead, expensive
        mul  r5, r5, r3
        mul  r5, r5, r3
mnext:  addi r1, r1, 1
        slti r12, r1, 12
        bnez r12, mloop
        halt
        .data
sensors: .space 48
"#;

const NESTED: &str = r#"
        .text
main:   addi sp, sp, -16
        call l1
        addi sp, sp, 16
        halt
l1:     addi sp, sp, -24
        sw   lr, 0(sp)
        call l2
        lw   lr, 0(sp)
        addi sp, sp, 24
        ret
l2:     addi sp, sp, -32
        sw   lr, 0(sp)
        call l3
        lw   lr, 0(sp)
        addi sp, sp, 32
        ret
l3:     addi sp, sp, -40
        li   r1, 6
l3lp:   addi r1, r1, -1
        bnez r1, l3lp
        addi sp, sp, 40
        ret
"#;

const ARRAYSUM: &str = r#"
        .equ N, 256
        .text
main:   li   r1, 0              ; i
        li   r6, 0              ; sum
        la   r2, arr
sloop:  slli r3, r1, 2
        add  r3, r2, r3
        lw   r4, 0(r3)
        add  r6, r6, r4
        addi r1, r1, 1
        slti r5, r1, N
        bnez r5, sloop
        halt
        .data
arr:    .space 1024
"#;

const FDCT: &str = r#"
        .text
main:   la   r10, blk
        ; two butterfly stages over 8 input words, unrolled per pair
        li   r12, 0             ; pair offset 0, 8, 16, 24
stage:  add  r1, r10, r12
        lw   r2, 0(r1)          ; a
        lw   r3, 4(r1)          ; b
        add  r4, r2, r3         ; s = a + b
        sub  r5, r2, r3         ; d = a - b
        li   r6, 181            ; ~ sqrt(2)/2 in Q8
        mul  r5, r5, r6
        srai r5, r5, 8
        sw   r4, 0(r1)
        sw   r5, 4(r1)
        addi r12, r12, 8
        slti r7, r12, 32
        bnez r7, stage
        ; recombine stage (straight line, multiplier heavy)
        lw   r1, 0(r10)
        lw   r2, 8(r10)
        mul  r3, r1, r2
        lw   r4, 16(r10)
        mul  r3, r3, r4
        lw   r5, 24(r10)
        add  r3, r3, r5
        sw   r3, 0(r10)
        halt
        .data
blk:    .space 32
"#;

const NS: &str = r#"
        .equ N, 4
        .text
main:   li   r1, 0              ; i
        la   r10, cube
        li   r9, 400            ; target value (rarely present)
iloop:  li   r2, 0              ; j
jloop:  li   r3, 0              ; k
kloop:  ; idx = (i*N + j)*N + k
        li   r4, N
        mul  r5, r1, r4
        add  r5, r5, r2
        mul  r5, r5, r4
        add  r5, r5, r3
        slli r5, r5, 2
        add  r5, r10, r5
        lw   r6, 0(r5)
        andi r6, r6, 0x1ff
        beq  r6, r9, found      ; early exit on hit
        addi r3, r3, 1
        slti r7, r3, N
        bnez r7, kloop
        addi r2, r2, 1
        slti r7, r2, N
        bnez r7, jloop
        addi r1, r1, 1
        slti r7, r1, N
        bnez r7, iloop
        li   r8, 0              ; not found
        halt
found:  li   r8, 1
        halt
        .data
cube:   .space 64
"#;

const MEMCPY: &str = r#"
        .text
main:   la   r9, off
        lw   r9, 0(r9)          ; unknown input word
        andi r9, r9, 0x1c       ; source offset 0..28, word aligned
        la   r1, buf
        add  r1, r1, r9         ; p   = buf + off
        addi r2, r1, 64         ; end = p + 64   (relational bound)
        la   r3, dst
copy:   lw   r4, 0(r1)
        sw   r4, 0(r3)
        addi r1, r1, 4
        addi r3, r3, 4
        blt  r1, r2, copy
        halt
        .data
off:    .space 4
buf:    .space 96
dst:    .space 64
"#;

const FAC: &str = r#"
        .text
main:   li   r1, 10
        call fac
        halt
fac:    addi sp, sp, -8
        sw   lr, 4(sp)
        beqz r1, base
        sw   r1, 0(sp)
        addi r1, r1, -1
        call fac
        lw   r2, 0(sp)
        mul  r9, r9, r2
        j    fout
base:   li   r9, 1
fout:   lw   lr, 4(sp)
        addi sp, sp, 8
        ret
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_the_feature_matrix() {
        let all = benchmarks();
        assert!(all.iter().any(|b| !b.supports_wcet), "a recursive task");
        assert!(all.iter().any(|b| !b.loop_annotations.is_empty()), "annotated loops");
        assert!(all.iter().any(|b| b.source.contains("jalr")), "indirect jumps");
        assert!(all.iter().any(|b| b.input.is_none()), "deterministic tasks");
    }
}
