//! # stamp-suite — the evaluation workload corpus and fuzz engine
//!
//! EVA32 benchmark tasks modeled on the Mälardalen WCET suite (the de
//! facto workload set for WCET tools, matching the "embedded control
//! software" the paper targets), plus the differential testing stack:
//! a scenario-rich random-program generator ([`generate`]), the shared
//! soundness [`oracle`], the [`fuzz`] campaign driver behind
//! `stamp fuzz`, and the [`shrink`] delta-debugging counterexample
//! minimizer.
//!
//! Every [`Benchmark`] carries the annotations it needs (bounds for
//! data-dependent loops, recursion depths) and an optional input region
//! that the experiment harness randomizes between simulator runs — the
//! analyses never see the inputs, exactly as in the paper's setting
//! ("results … valid for every program run and all inputs").
//!
//! # Example
//!
//! ```
//! use stamp_suite::benchmarks;
//!
//! let all = benchmarks();
//! assert!(all.len() >= 10);
//! let fib = all.iter().find(|b| b.name == "fibcall").unwrap();
//! let program = fib.program();
//! assert!(program.insn_count() > 0);
//! ```

pub mod fuzz;
mod gen;
pub mod manifest;
pub mod oracle;
pub mod plan;
mod programs;
pub mod shrink;

pub use gen::{generate, GenConfig};
pub use manifest::{corpus_matrix, corpus_request, parse_manifest, ManifestError};
pub use plan::{describe_config, plan, BatchPlan, JobPlan, PhasePlan};
pub use programs::benchmarks;

use rand::Rng;
use stamp_core::Annotations;
use stamp_hw::HwConfig;
use stamp_isa::asm::assemble;
use stamp_isa::Program;
use stamp_sim::{RunStatus, Simulator};

/// A benchmark task: source, annotations and input specification.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Short name (Mälardalen-style).
    pub name: &'static str,
    /// What the task computes and which analysis features it exercises.
    pub description: &'static str,
    /// EVA32 assembly source.
    pub source: &'static str,
    /// Loop-bound annotations `(header symbol, bound)` for loops the
    /// automatic analysis cannot bound.
    pub loop_annotations: &'static [(&'static str, u64)],
    /// Recursion-depth annotations `(function symbol, depth)`.
    pub recursion: &'static [(&'static str, u32)],
    /// Input region randomized between simulator runs:
    /// `(symbol, length in bytes)`.
    pub input: Option<(&'static str, u32)>,
    /// Simulator instruction budget.
    pub max_insns: u64,
    /// `false` for recursive tasks: only the stack analysis applies
    /// (the WCET analyses reject recursion, as aiT does without
    /// annotations).
    pub supports_wcet: bool,
}

impl Benchmark {
    /// Assembles the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if the source does not assemble (covered by tests).
    pub fn program(&self) -> Program {
        assemble(self.source)
            .unwrap_or_else(|e| panic!("benchmark {} does not assemble: {e}", self.name))
    }

    /// The benchmark's annotations.
    pub fn annotations(&self) -> Annotations {
        let mut a = Annotations::new();
        for &(sym, bound) in self.loop_annotations {
            a = a.loop_bound(sym, bound);
        }
        for &(sym, depth) in self.recursion {
            a = a.recursion_depth(sym, depth);
        }
        a
    }

    /// Runs the benchmark once on random inputs, returning observed
    /// cycles and maximum stack usage.
    ///
    /// # Panics
    ///
    /// Panics if the program faults or fails to halt within its budget —
    /// benchmarks are written to always terminate.
    pub fn simulate_once(
        &self,
        program: &Program,
        hw: &HwConfig,
        rng: &mut impl Rng,
    ) -> (u64, u32) {
        let mut sim = Simulator::new(program, hw);
        if let Some((sym, len)) = self.input {
            let addr = program
                .symbols
                .addr_of(sym)
                .unwrap_or_else(|| panic!("benchmark {} lacks symbol {sym}", self.name));
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            sim.write_ram(addr, &bytes);
        }
        let res = sim
            .run(self.max_insns)
            .unwrap_or_else(|e| panic!("benchmark {} faulted: {e}", self.name));
        assert_eq!(
            res.status,
            RunStatus::Halted,
            "benchmark {} did not halt within {} instructions",
            self.name,
            self.max_insns
        );
        (res.cycles, res.max_stack)
    }

    /// The worst observed cycles and stack over `runs` random-input
    /// simulations (the measurement baseline of experiment E1/E2).
    pub fn worst_observed(
        &self,
        program: &Program,
        hw: &HwConfig,
        runs: usize,
        rng: &mut impl Rng,
    ) -> (u64, u32) {
        let mut worst = (0u64, 0u32);
        let mut try_run = |bytes: Option<Vec<u8>>| {
            let mut sim = Simulator::new(program, hw);
            if let (Some((sym, _)), Some(bytes)) = (self.input, bytes) {
                let addr = program.symbols.addr_of(sym).expect("input symbol");
                sim.write_ram(addr, &bytes);
            }
            let res = sim.run(self.max_insns).expect("benchmark faulted");
            assert_eq!(res.status, RunStatus::Halted, "{} did not halt", self.name);
            worst.0 = worst.0.max(res.cycles);
            worst.1 = worst.1.max(res.max_stack);
        };
        match self.input {
            None => try_run(None),
            Some((_, len)) => {
                for _ in 0..runs.max(1) {
                    let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                    try_run(Some(bytes));
                }
                // Adversarial patterns: as the paper notes, "even repeated
                // measurements cannot guarantee that the maximum … is ever
                // observed"; these sharpen the baseline for sorts and
                // searches (descending input, missing keys, …).
                let words = (len / 4).max(1);
                let descending: Vec<u8> = (0..words)
                    .flat_map(|i| 0x7fff_ff00u32.wrapping_sub(i * 17).to_le_bytes())
                    .take(len as usize)
                    .collect();
                let ascending: Vec<u8> = (0..words)
                    .flat_map(|i| (i * 13 + 1).to_le_bytes())
                    .take(len as usize)
                    .collect();
                try_run(Some(descending));
                try_run(Some(ascending));
                try_run(Some(vec![0u8; len as usize]));
                try_run(Some(vec![0xffu8; len as usize]));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_benchmark_assembles_and_halts() {
        let hw = HwConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for b in benchmarks() {
            let p = b.program();
            let (cycles, _stack) = b.simulate_once(&p, &hw, &mut rng);
            assert!(cycles > 0, "{} ran for zero cycles", b.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = benchmarks().iter().map(|b| b.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn inputs_change_behaviour_where_expected() {
        // Benchmarks with data-dependent *trip counts* (insertsort, bs)
        // or arms of different latency (switchcase) must show timing
        // variation across inputs. (Others like bsort are genuinely
        // time-constant here: the swap arm's two extra stores cost
        // exactly the taken-branch penalty of the no-swap arm.)
        let hw = HwConfig::default();
        for name in ["insertsort", "bs", "switchcase"] {
            let b = benchmarks().into_iter().find(|b| b.name == name).unwrap();
            let p = b.program();
            let mut rng = StdRng::seed_from_u64(1);
            let (c1, _) = b.simulate_once(&p, &hw, &mut rng);
            let mut any_different = false;
            for seed in 2..12 {
                let mut rng = StdRng::seed_from_u64(seed);
                let (c, _) = b.simulate_once(&p, &hw, &mut rng);
                if c != c1 {
                    any_different = true;
                    break;
                }
            }
            assert!(any_different, "{name} seems input-independent");
        }
    }
}
