//! Structured random-program generation for soundness testing.
//!
//! Programs are built from templates that guarantee termination and
//! memory safety by construction (counted loops, masked word-aligned
//! scratch addresses, defined division semantics), while still exercising
//! data-dependent control flow: scratch memory starts with random
//! contents, loads feed branches, and the analyses see none of it.

use std::fmt::Write as _;

use rand::Rng;

/// Knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Straight-line statements per block (upper bound).
    pub block_len: usize,
    /// Number of top-level constructs (loops / diamonds / calls).
    pub constructs: usize,
    /// Maximum loop iteration count.
    pub max_loop: u32,
    /// Maximum loop nesting depth.
    pub max_depth: usize,
    /// Number of auxiliary leaf functions.
    pub functions: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { block_len: 6, constructs: 6, max_loop: 12, max_depth: 2, functions: 2 }
    }
}

/// Registers the generator uses freely (avoiding r0, sp, lr and the loop
/// counters r10-r12).
const WORK_REGS: [&str; 7] = ["r1", "r2", "r3", "r4", "r5", "r6", "r7"];
const LOOP_REGS: [&str; 3] = ["r10", "r11", "r12"];

struct Gen<'r, R: Rng> {
    rng: &'r mut R,
    out: String,
    label: u32,
}

impl<R: Rng> Gen<'_, R> {
    fn fresh(&mut self, base: &str) -> String {
        self.label += 1;
        format!("{base}_{}", self.label)
    }

    fn reg(&mut self) -> &'static str {
        WORK_REGS[self.rng.gen_range(0..WORK_REGS.len())]
    }

    /// One safe straight-line instruction.
    fn stmt(&mut self) {
        let (d, a, b) = (self.reg(), self.reg(), self.reg());
        let line = match self.rng.gen_range(0..10u32) {
            0 => format!("        add  {d}, {a}, {b}"),
            1 => format!("        sub  {d}, {a}, {b}"),
            2 => format!("        xor  {d}, {a}, {b}"),
            3 => format!("        and  {d}, {a}, {b}"),
            4 => format!("        mul  {d}, {a}, {b}"),
            5 => format!("        div  {d}, {a}, {b}"), // division by zero is defined
            6 => format!("        addi {d}, {a}, {}", self.rng.gen_range(-100..100)),
            7 => format!("        slli {d}, {a}, {}", self.rng.gen_range(0..8)),
            8 => {
                // Masked, word-aligned scratch load: always in bounds.
                format!(
                    "        andi {d}, {a}, 0x7c\n        la   r9, scratch\n        add  r9, r9, {d}\n        lw   {d}, 0(r9)"
                )
            }
            _ => {
                format!(
                    "        andi {d}, {a}, 0x7c\n        la   r9, scratch\n        add  r9, r9, {d}\n        sw   {b}, 0(r9)"
                )
            }
        };
        let _ = writeln!(self.out, "{line}");
    }

    fn block(&mut self, len: usize) {
        for _ in 0..len.max(1) {
            self.stmt();
        }
    }

    /// A counted loop (always terminates) containing `inner`.
    fn counted_loop(&mut self, cfg: &GenConfig, depth: usize) {
        let head = self.fresh("loop");
        let counter = LOOP_REGS[depth % LOOP_REGS.len()];
        let n = self.rng.gen_range(1..=cfg.max_loop);
        let _ = writeln!(self.out, "        li   {counter}, {n}");
        let _ = writeln!(self.out, "{head}:");
        self.construct(cfg, depth + 1);
        let _ = writeln!(self.out, "        addi {counter}, {counter}, -1");
        let _ = writeln!(self.out, "        bnez {counter}, {head}");
    }

    /// A data-dependent diamond: both arms terminate.
    fn diamond(&mut self, cfg: &GenConfig) {
        let (a, b) = (self.reg(), self.reg());
        let t = self.fresh("then");
        let j = self.fresh("join");
        let cond = ["beq", "bne", "blt", "bge", "bltu", "bgeu"][self.rng.gen_range(0..6usize)];
        let _ = writeln!(self.out, "        {cond} {a}, {b}, {t}");
        self.block(cfg.block_len / 2);
        let _ = writeln!(self.out, "        j    {j}");
        let _ = writeln!(self.out, "{t}:");
        self.block(cfg.block_len / 2);
        let _ = writeln!(self.out, "{j}:");
    }

    fn construct(&mut self, cfg: &GenConfig, depth: usize) {
        let n = self.rng.gen_range(1..=cfg.block_len);
        self.block(n);
        match self.rng.gen_range(0..3u32) {
            0 if depth < cfg.max_depth => self.counted_loop(cfg, depth),
            1 => self.diamond(cfg),
            _ => {}
        }
    }
}

/// Generates a random, terminating, fault-free EVA32 program.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let src = stamp_suite::generate(&mut rng, &stamp_suite::GenConfig::default());
/// let program = stamp_isa::asm::assemble(&src).expect("generated code assembles");
/// assert!(program.insn_count() > 5);
/// ```
pub fn generate<R: Rng>(rng: &mut R, cfg: &GenConfig) -> String {
    let mut g = Gen { rng, out: String::new(), label: 0 };
    let _ = writeln!(g.out, "        .text");
    let _ = writeln!(g.out, "main:");
    // Seed registers with constants so comparisons have variety.
    for (i, r) in WORK_REGS.iter().enumerate() {
        let v: i32 = g.rng.gen_range(-50..50) * (i as i32 + 1);
        let _ = writeln!(g.out, "        li   {r}, {v}");
    }
    let functions: Vec<String> = (0..cfg.functions).map(|i| format!("aux{i}")).collect();
    for _ in 0..cfg.constructs {
        if !functions.is_empty() && g.rng.gen_bool(0.3) {
            let f = &functions[g.rng.gen_range(0..functions.len())];
            let _ = writeln!(g.out, "        call {f}");
        } else {
            g.construct(cfg, 0);
        }
    }
    let _ = writeln!(g.out, "        halt");
    // Leaf functions with small frames.
    for f in &functions {
        let frame = 8 * g.rng.gen_range(1..4u32);
        let _ = writeln!(g.out, "{f}:");
        let _ = writeln!(g.out, "        addi sp, sp, -{frame}");
        let n = g.rng.gen_range(1..=cfg.block_len);
        g.block(n);
        if g.rng.gen_bool(0.5) {
            g.diamond(cfg);
        }
        let _ = writeln!(g.out, "        addi sp, sp, {frame}");
        let _ = writeln!(g.out, "        ret");
    }
    let _ = writeln!(g.out, "        .data");
    let _ = writeln!(g.out, "scratch: .space 128");
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stamp_hw::HwConfig;
    use stamp_isa::asm::assemble;
    use stamp_sim::{RunStatus, Simulator};

    #[test]
    fn generated_programs_assemble_and_halt() {
        let hw = HwConfig::default();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = generate(&mut rng, &GenConfig::default());
            let p = assemble(&src).unwrap_or_else(|e| {
                panic!("seed {seed}: {e}\n{src}");
            });
            let mut sim = Simulator::new(&p, &hw);
            // Random scratch contents.
            let scratch = p.symbols.addr_of("scratch").unwrap();
            let bytes: Vec<u8> = (0..128).map(|_| rng.gen()).collect();
            sim.write_ram(scratch, &bytes);
            let res = sim.run(3_000_000).unwrap_or_else(|e| {
                panic!("seed {seed} faulted: {e}\n{src}");
            });
            assert_eq!(res.status, RunStatus::Halted, "seed {seed} did not halt:\n{src}");
        }
    }
}
