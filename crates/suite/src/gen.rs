//! Structured random-program generation for soundness testing.
//!
//! Programs are built from templates that guarantee termination and
//! memory safety by construction (counted loops, masked aligned
//! scratch addresses, defined division semantics), while still exercising
//! data-dependent control flow: scratch memory starts with random
//! contents, loads feed branches, and the analyses see none of it.
//!
//! Every scenario feature sits behind a [`GenConfig`] knob, and **all
//! knobs default to the legacy shape**: with `GenConfig::default()` the
//! generator consumes exactly the same random-number stream as before
//! the knobs existed, so seeded corpora (the pinned E6 scaling series,
//! the E0 regression seeds) are stable across releases. New features
//! draw from the rng only when enabled.
//!
//! The scenario space with everything on ([`GenConfig::rich`]):
//!
//! * **nested counted loops** up to `max_depth`, each with its own
//!   counter register;
//! * **call chains** through the auxiliary functions up to `call_depth`
//!   deep, with real stack traffic (link-register save/restore in the
//!   callee frame, optional work-register spills via `frame_traffic`);
//! * **calls inside loop bodies** (`calls_in_loops`), which multiplies
//!   VIVU contexts and exercises the call/return edges of the cache and
//!   pipeline analyses;
//! * **varied addressing** (`varied_addressing`): word, halfword and
//!   byte accesses through masked index registers plus random static
//!   offsets — all provably inside the scratch region;
//! * **data-dependent branches** (`load_branches`): diamonds whose
//!   condition register was freshly loaded from randomized scratch
//!   memory, so the taken arm is genuinely input-controlled.

use std::fmt::Write as _;

use rand::Rng;

/// Knobs for the generator.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Straight-line statements per block (upper bound).
    pub block_len: usize,
    /// Number of top-level constructs (loops / diamonds / calls).
    pub constructs: usize,
    /// Maximum loop iteration count.
    pub max_loop: u32,
    /// Maximum loop nesting depth (effectively capped at 4, the number
    /// of dedicated counter registers).
    pub max_depth: usize,
    /// Number of auxiliary functions.
    pub functions: usize,
    /// Maximum call-chain depth through the auxiliary functions:
    /// `aux0 → aux1 → …` up to this many frames. `1` (the legacy shape)
    /// makes every auxiliary function a leaf.
    pub call_depth: usize,
    /// Spill and reload a work register through the callee frame, so
    /// function bodies produce real load/store stack traffic beyond the
    /// frame adjustment itself.
    pub frame_traffic: bool,
    /// Allow `call` instructions inside loop bodies, not only at the
    /// top level of `main`.
    pub calls_in_loops: bool,
    /// Mix widths (word/halfword/byte), masks and static offsets into
    /// scratch addressing instead of the single masked-word pattern.
    pub varied_addressing: bool,
    /// Emit diamonds whose condition register was freshly loaded from
    /// scratch memory (input-dependent control flow).
    pub load_branches: bool,
    /// Scratch region size in words. Must be a power of two ≥ 8;
    /// `32` is the legacy 128-byte region.
    pub scratch_words: u32,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            block_len: 6,
            constructs: 6,
            max_loop: 12,
            max_depth: 2,
            functions: 2,
            call_depth: 1,
            frame_traffic: false,
            calls_in_loops: false,
            varied_addressing: false,
            load_branches: false,
            scratch_words: 32,
        }
    }
}

impl GenConfig {
    /// Every scenario feature enabled: deep loop nests, three-deep call
    /// chains with frame traffic, calls under loops, varied addressing
    /// and input-dependent branches over a 256-byte scratch region.
    /// The fuzz campaign's default shape pool is built around this.
    pub fn rich() -> GenConfig {
        GenConfig {
            block_len: 6,
            constructs: 8,
            max_loop: 10,
            max_depth: 3,
            functions: 3,
            call_depth: 3,
            frame_traffic: true,
            calls_in_loops: true,
            varied_addressing: true,
            load_branches: true,
            scratch_words: 64,
        }
    }

    /// Scratch region size in bytes.
    pub fn scratch_bytes(&self) -> u32 {
        self.scratch_words * 4
    }
}

/// Registers the generator uses freely (avoiding r0, sp, lr, the
/// address temporary r9 and the loop counters).
const WORK_REGS: [&str; 7] = ["r1", "r2", "r3", "r4", "r5", "r6", "r7"];
/// Dedicated loop counters, one per nesting level. Each level must own
/// its counter — sharing one (the old `depth % len` indexing) lets an
/// inner loop clobber an outer count, silently voiding the
/// termination-by-construction guarantee. Nesting is therefore capped
/// at this array's length.
const LOOP_REGS: [&str; 4] = ["r10", "r11", "r12", "r8"];

struct Gen<'a, R: Rng> {
    rng: &'a mut R,
    cfg: &'a GenConfig,
    out: String,
    label: u32,
}

impl<R: Rng> Gen<'_, R> {
    fn fresh(&mut self, base: &str) -> String {
        self.label += 1;
        format!("{base}_{}", self.label)
    }

    fn reg(&mut self) -> &'static str {
        WORK_REGS[self.rng.gen_range(0..WORK_REGS.len())]
    }

    /// A masked in-bounds scratch access: base register `a` masked into
    /// the region, plus (with `varied_addressing`) a random width and a
    /// random aligned static offset. `value` is the stored register for
    /// stores, `None` for loads into `d`.
    fn scratch_access(&mut self, d: &str, a: &str, value: Option<&str>) -> String {
        let bytes = self.cfg.scratch_bytes();
        let (mnemonic, width) = if self.cfg.varied_addressing {
            let load_ops: [(&str, u32); 4] = [("lw", 4), ("lhu", 2), ("lh", 2), ("lbu", 1)];
            let store_ops: [(&str, u32); 3] = [("sw", 4), ("sh", 2), ("sb", 1)];
            match value {
                None => load_ops[self.rng.gen_range(0..load_ops.len())],
                Some(_) => store_ops[self.rng.gen_range(0..store_ops.len())],
            }
        } else {
            (if value.is_none() { "lw" } else { "sw" }, 4)
        };
        // The index mask keeps the access aligned to its width; the
        // static offset fills the remaining headroom, so every access
        // provably lands inside [scratch, scratch + bytes).
        let (mask, offset) = if self.cfg.varied_addressing {
            let span = if self.rng.gen_bool(0.5) { bytes } else { bytes / 2 };
            let mask = (span - width) & !(width - 1);
            let max_k = (bytes - width - mask) / width;
            let offset = self.rng.gen_range(0..=max_k) * width;
            (mask, offset)
        } else {
            (bytes - 4, 0)
        };
        let access = match value {
            None => format!("{mnemonic}   {d}, {offset}({{base}})"),
            Some(v) => format!("{mnemonic}   {v}, {offset}({{base}})"),
        };
        format!(
            "        andi {d}, {a}, {mask:#x}\n        la   r9, scratch\n        add  r9, r9, {d}\n        {}",
            access.replace("{base}", "r9")
        )
    }

    /// One safe straight-line instruction.
    fn stmt(&mut self) {
        let (d, a, b) = (self.reg(), self.reg(), self.reg());
        let line = match self.rng.gen_range(0..10u32) {
            0 => format!("        add  {d}, {a}, {b}"),
            1 => format!("        sub  {d}, {a}, {b}"),
            2 => format!("        xor  {d}, {a}, {b}"),
            3 => format!("        and  {d}, {a}, {b}"),
            4 => format!("        mul  {d}, {a}, {b}"),
            5 => format!("        div  {d}, {a}, {b}"), // division by zero is defined
            6 => format!("        addi {d}, {a}, {}", self.rng.gen_range(-100..100)),
            7 => format!("        slli {d}, {a}, {}", self.rng.gen_range(0..8)),
            8 => self.scratch_access(d, a, None),
            _ => self.scratch_access(d, a, Some(b)),
        };
        let _ = writeln!(self.out, "{line}");
    }

    fn block(&mut self, len: usize) {
        for _ in 0..len.max(1) {
            self.stmt();
        }
    }

    /// A counted loop (always terminates) containing `inner`. Only
    /// reached with `depth < LOOP_REGS.len()` (see [`Gen::construct`]),
    /// so every nesting level owns its counter register.
    fn counted_loop(&mut self, depth: usize) {
        let head = self.fresh("loop");
        let counter = LOOP_REGS[depth];
        let n = self.rng.gen_range(1..=self.cfg.max_loop);
        let _ = writeln!(self.out, "        li   {counter}, {n}");
        let _ = writeln!(self.out, "{head}:");
        self.construct(depth + 1);
        let _ = writeln!(self.out, "        addi {counter}, {counter}, -1");
        let _ = writeln!(self.out, "        bnez {counter}, {head}");
    }

    /// A data-dependent diamond: both arms terminate. With
    /// `load_branches`, the condition register may be freshly loaded
    /// from randomized scratch memory so the branch direction is truly
    /// input-dependent.
    fn diamond(&mut self) {
        let (a, b) = (self.reg(), self.reg());
        if self.cfg.load_branches && self.rng.gen_bool(0.5) {
            let idx = self.reg();
            let load = self.scratch_access(a, idx, None);
            let _ = writeln!(self.out, "{load}");
        }
        let t = self.fresh("then");
        let j = self.fresh("join");
        let cond = ["beq", "bne", "blt", "bge", "bltu", "bgeu"][self.rng.gen_range(0..6usize)];
        let _ = writeln!(self.out, "        {cond} {a}, {b}, {t}");
        self.block(self.cfg.block_len / 2);
        let _ = writeln!(self.out, "        j    {j}");
        let _ = writeln!(self.out, "{t}:");
        self.block(self.cfg.block_len / 2);
        let _ = writeln!(self.out, "{j}:");
    }

    fn construct(&mut self, depth: usize) {
        let n = self.rng.gen_range(1..=self.cfg.block_len);
        self.block(n);
        // With calls-in-loops enabled a fourth outcome (a call) joins
        // the choice; the legacy three-way draw is untouched otherwise,
        // keeping default-config streams stable.
        let calls = self.cfg.calls_in_loops && self.cfg.functions > 0;
        let choice = if calls { self.rng.gen_range(0..4u32) } else { self.rng.gen_range(0..3u32) };
        match choice {
            0 if depth < self.cfg.max_depth.min(LOOP_REGS.len()) => self.counted_loop(depth),
            1 => self.diamond(),
            3 => {
                let f = self.rng.gen_range(0..self.cfg.functions);
                let _ = writeln!(self.out, "        call aux{f}");
            }
            _ => {}
        }
    }

    /// One auxiliary function. Function `i` calls `aux{i+1}` when the
    /// chain has depth budget left — the call graph is a DAG by
    /// construction (calls only go to higher indices), so there is no
    /// recursion and the stack analysis sees a real call chain.
    fn function(&mut self, i: usize) {
        let chains = i + 1 < self.cfg.functions && i + 1 < self.cfg.call_depth;
        let frame = 8 * self.rng.gen_range(1..4u32);
        let _ = writeln!(self.out, "aux{i}:");
        let _ = writeln!(self.out, "        addi sp, sp, -{frame}");
        if chains {
            let _ = writeln!(self.out, "        sw   lr, {}(sp)", frame - 4);
        }
        let spilled = if self.cfg.frame_traffic {
            let r = self.reg();
            let _ = writeln!(self.out, "        sw   {r}, 0(sp)");
            Some(r)
        } else {
            None
        };
        let n = self.rng.gen_range(1..=self.cfg.block_len);
        self.block(n);
        if chains {
            let _ = writeln!(self.out, "        call aux{}", i + 1);
        }
        if self.rng.gen_bool(0.5) {
            self.diamond();
        }
        if let Some(r) = spilled {
            let _ = writeln!(self.out, "        lw   {r}, 0(sp)");
        }
        if chains {
            let _ = writeln!(self.out, "        lw   lr, {}(sp)", frame - 4);
        }
        let _ = writeln!(self.out, "        addi sp, sp, {frame}");
        let _ = writeln!(self.out, "        ret");
    }
}

/// Generates a random, terminating, fault-free EVA32 program.
///
/// # Panics
///
/// Panics if `cfg.scratch_words` is not a power of two ≥ 8.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let src = stamp_suite::generate(&mut rng, &stamp_suite::GenConfig::default());
/// let program = stamp_isa::asm::assemble(&src).expect("generated code assembles");
/// assert!(program.insn_count() > 5);
/// ```
pub fn generate<R: Rng>(rng: &mut R, cfg: &GenConfig) -> String {
    assert!(
        cfg.scratch_words.is_power_of_two() && cfg.scratch_words >= 8,
        "scratch_words must be a power of two ≥ 8, got {}",
        cfg.scratch_words
    );
    let mut g = Gen { rng, cfg, out: String::new(), label: 0 };
    let _ = writeln!(g.out, "        .text");
    let _ = writeln!(g.out, "main:");
    // Seed registers with constants so comparisons have variety.
    for (i, r) in WORK_REGS.iter().enumerate() {
        let v: i32 = g.rng.gen_range(-50..50) * (i as i32 + 1);
        let _ = writeln!(g.out, "        li   {r}, {v}");
    }
    for _ in 0..cfg.constructs {
        if cfg.functions > 0 && g.rng.gen_bool(0.3) {
            let f = g.rng.gen_range(0..cfg.functions);
            let _ = writeln!(g.out, "        call aux{f}");
        } else {
            g.construct(0);
        }
    }
    let _ = writeln!(g.out, "        halt");
    for i in 0..cfg.functions {
        g.function(i);
    }
    let _ = writeln!(g.out, "        .data");
    let _ = writeln!(g.out, "scratch: .space {}", cfg.scratch_bytes());
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use stamp_hw::HwConfig;
    use stamp_isa::asm::assemble;
    use stamp_sim::{RunStatus, Simulator};

    fn assemble_and_run(seed: u64, cfg: &GenConfig) {
        let hw = HwConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, cfg);
        let p = assemble(&src).unwrap_or_else(|e| {
            panic!("seed {seed}: {e}\n{src}");
        });
        let mut sim = Simulator::new(&p, &hw);
        // Random scratch contents.
        let scratch = p.symbols.addr_of("scratch").unwrap();
        let bytes: Vec<u8> = (0..cfg.scratch_bytes()).map(|_| rng.gen()).collect();
        sim.write_ram(scratch, &bytes);
        let res = sim.run(3_000_000).unwrap_or_else(|e| {
            panic!("seed {seed} faulted: {e}\n{src}");
        });
        assert_eq!(res.status, RunStatus::Halted, "seed {seed} did not halt:\n{src}");
    }

    #[test]
    fn generated_programs_assemble_and_halt() {
        for seed in 0..30 {
            assemble_and_run(seed, &GenConfig::default());
        }
    }

    #[test]
    fn rich_programs_assemble_and_halt() {
        for seed in 0..30 {
            assemble_and_run(seed, &GenConfig::rich());
        }
    }

    #[test]
    fn each_feature_alone_assembles_and_halts() {
        let base = GenConfig::default();
        let features: [GenConfig; 5] = [
            GenConfig { call_depth: 3, functions: 3, ..base },
            GenConfig { frame_traffic: true, ..base },
            GenConfig { calls_in_loops: true, ..base },
            GenConfig { varied_addressing: true, scratch_words: 16, ..base },
            GenConfig { load_branches: true, ..base },
        ];
        for (i, cfg) in features.iter().enumerate() {
            for seed in 0..6 {
                assemble_and_run(seed * 31 + i as u64, cfg);
            }
        }
    }

    #[test]
    fn default_config_stream_is_stable() {
        // The default-config byte stream is a compatibility surface: the
        // pinned E6 scaling series and recorded fuzz seeds depend on it.
        // This pin catches accidental extra rng draws on legacy paths.
        let mut rng = StdRng::seed_from_u64(42);
        let src = generate(&mut rng, &GenConfig::default());
        let digest: u64 = src
            .bytes()
            .fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3));
        assert_eq!(digest, 0x7ddb1c653104ffb8, "default generator stream changed:\n{src}");
    }

    #[test]
    fn rich_call_chains_use_the_stack() {
        // At least one rich seed must reach call depth ≥ 2 (lr saved in
        // a frame) — otherwise call_depth is not doing its job.
        let mut saw_chain = false;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = generate(&mut rng, &GenConfig::rich());
            if src.contains("sw   lr,") {
                saw_chain = true;
                break;
            }
        }
        assert!(saw_chain, "no rich seed produced a call chain");
    }
}
