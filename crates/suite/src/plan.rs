//! Batch planning: predict a request's phase-artifact reuse without
//! running it (`stamp batch --dry-run`).
//!
//! The mapping from manifest knobs to analysis phases lives in
//! `stamp_core::phase` (each phase fingerprints exactly the knobs it
//! reads); this module aggregates those per-job fingerprint chains
//! across a whole [`BatchRequest`] into a table of expected reuse —
//! which a certification campaign reads as "how much of this matrix is
//! actually new work".

use std::collections::BTreeSet;

use stamp_core::{plan_job, AnalysisConfig, BatchRequest, Fingerprint, PhaseId};
use stamp_hw::HwConfig;

/// One job of the plan.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// The job's display name (`target@variant`).
    pub name: String,
    /// Target name.
    pub target: String,
    /// Variant name.
    pub variant: String,
    /// Human-readable summary of the knobs this variant changes from
    /// the defaults (see [`describe_config`]).
    pub knobs: String,
    /// The assembler's message when the job cannot even be planned (it
    /// would fail the same way when run).
    pub error: Option<String>,
}

/// One phase row of the plan table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhasePlan {
    /// The phase.
    pub phase: PhaseId,
    /// Artifact requests the matrix will make to this phase.
    pub requests: usize,
    /// Distinct input fingerprints among those requests (= artifacts
    /// actually computed, assuming a cold store).
    pub unique: usize,
}

impl PhasePlan {
    /// Requests expected to be answered from the store.
    pub fn expected_hits(&self) -> usize {
        self.requests - self.unique
    }
}

/// The resolved plan of a batch request.
#[derive(Clone, Debug)]
pub struct BatchPlan {
    /// Per-job rows, in request (report) order.
    pub jobs: Vec<JobPlan>,
    /// Per-phase reuse table, in pipeline order (phases with zero
    /// requests are omitted).
    pub phases: Vec<PhasePlan>,
}

impl BatchPlan {
    /// Total artifact requests across all phases.
    pub fn requests(&self) -> usize {
        self.phases.iter().map(|p| p.requests).sum()
    }

    /// Total distinct artifacts (cold-store computations).
    pub fn unique(&self) -> usize {
        self.phases.iter().map(|p| p.unique).sum()
    }

    /// Expected store hit rate on a cold run (0 for an empty plan).
    pub fn expected_hit_rate(&self) -> f64 {
        let requests = self.requests();
        if requests == 0 {
            0.0
        } else {
            (requests - self.unique()) as f64 / requests as f64
        }
    }
}

/// Plans `request`: resolves every job's phase fingerprint chain (the
/// analysis itself does not run; see `stamp_core::plan_job` for the
/// iteration-0 approximation) and tabulates expected reuse per phase.
pub fn plan(request: &BatchRequest) -> BatchPlan {
    let mut jobs = Vec::new();
    let mut requests: Vec<(PhaseId, Fingerprint)> = Vec::new();
    for job in &request.jobs {
        let error = match plan_job(job) {
            Ok(reqs) => {
                requests.extend(reqs.iter().map(|r| (r.phase, r.fingerprint)));
                None
            }
            Err(e) => Some(e),
        };
        jobs.push(JobPlan {
            name: job.name(),
            target: job.target.clone(),
            variant: job.variant.clone(),
            knobs: describe_config(&job.config),
            error,
        });
    }
    let phases = PhaseId::ALL
        .iter()
        .filter_map(|&phase| {
            let total = requests.iter().filter(|(p, _)| *p == phase).count();
            if total == 0 {
                return None;
            }
            let unique: BTreeSet<Fingerprint> =
                requests.iter().filter(|(p, _)| *p == phase).map(|(_, fp)| *fp).collect();
            Some(PhasePlan { phase, requests: total, unique: unique.len() })
        })
        .collect();
    BatchPlan { jobs, phases }
}

/// Summarizes the knobs a configuration changes from the defaults, in
/// manifest vocabulary (`hw=no-cache peel=0 …`); `"(defaults)"` when
/// nothing differs.
pub fn describe_config(config: &AnalysisConfig) -> String {
    let default = AnalysisConfig::default();
    let mut knobs = Vec::new();
    if config.hw != default.hw {
        if config.hw == HwConfig::no_cache() {
            knobs.push("hw=no-cache".to_string());
        } else if config.hw == HwConfig::ideal() {
            knobs.push("hw=ideal".to_string());
        } else if let Some(c) = config.hw.icache.filter(|_| config.hw.dcache == config.hw.icache) {
            knobs.push(format!("hw={{cache_bytes: {}}}", c.size_bytes()));
        } else {
            knobs.push("hw=custom".to_string());
        }
    }
    if config.vivu.peel != default.vivu.peel {
        knobs.push(format!("peel={}", config.vivu.peel));
    }
    if config.vivu.max_call_depth != default.vivu.max_call_depth {
        knobs.push(format!("max_call_depth={}", config.vivu.max_call_depth));
    }
    if config.vivu.max_contexts != default.vivu.max_contexts {
        knobs.push(format!("max_contexts={}", config.vivu.max_contexts));
    }
    if config.value.domain != default.value.domain {
        knobs.push(format!("domain={:?}", config.value.domain).to_lowercase());
    }
    if config.value.widen_delay != default.value.widen_delay {
        knobs.push(format!("widen_delay={}", config.value.widen_delay));
    }
    if config.value.small_set != default.value.small_set {
        knobs.push(format!("small_set={}", config.value.small_set));
    }
    if config.use_infeasible != default.use_infeasible {
        knobs.push(format!("use_infeasible={}", config.use_infeasible));
    }
    if config.uarch_summaries != default.uarch_summaries {
        knobs.push(format!("uarch_summaries={}", config.uarch_summaries));
    }
    if knobs.is_empty() {
        "(defaults)".to_string()
    } else {
        knobs.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{corpus_matrix, parse_manifest};
    use stamp_core::BatchVariant;

    #[test]
    fn hardware_sweep_plan_predicts_prefix_sharing() {
        let request = corpus_matrix(&[
            BatchVariant::default(),
            BatchVariant {
                name: "no-cache".into(),
                config: AnalysisConfig { hw: HwConfig::no_cache(), ..Default::default() },
                sampling: None,
            },
            BatchVariant {
                name: "ideal".into(),
                config: AnalysisConfig { hw: HwConfig::ideal(), ..Default::default() },
                sampling: None,
            },
        ]);
        let plan = plan(&request);
        assert_eq!(plan.jobs.len(), request.jobs.len());
        assert!(plan.jobs.iter().all(|j| j.error.is_none()));
        let targets = request.jobs.len() / 3;
        let row = |p: PhaseId| plan.phases.iter().find(|r| r.phase == p).copied().unwrap();
        // Assemble: one request per job, one unique source per target.
        assert_eq!(row(PhaseId::Assemble).requests, 3 * targets);
        assert_eq!(row(PhaseId::Assemble).unique, targets);
        // Value: shared across the whole hardware sweep (stack and
        // default-variant WCET chains coincide at default VIVU).
        assert_eq!(row(PhaseId::Value).unique, targets);
        // Pipeline: nothing shared — timing differs everywhere.
        assert_eq!(row(PhaseId::Pipeline).unique, row(PhaseId::Pipeline).requests);
        // Overall, the matrix should predict a majority of hits.
        assert!(
            plan.expected_hit_rate() > 0.5,
            "expected >50% reuse, got {:.2}",
            plan.expected_hit_rate()
        );
    }

    #[test]
    fn single_variant_corpus_still_shares_the_stack_prefix() {
        let request = corpus_matrix(&[BatchVariant::default()]);
        let plan = plan(&request);
        // WCET-enabled targets request cfg/context/value twice (stack
        // chain + WCET chain) under identical fingerprints.
        let row = |p: PhaseId| plan.phases.iter().find(|r| r.phase == p).copied().unwrap();
        assert!(row(PhaseId::Value).requests > row(PhaseId::Value).unique);
    }

    #[test]
    fn unassemblable_targets_plan_as_errors() {
        let request = parse_manifest(
            r#"{"targets": [{"name": "bad", "source": ".text\nmain: frobnicate r1\n"}]}"#,
            std::path::Path::new("."),
        )
        .unwrap();
        let p = plan(&request);
        assert!(p.jobs[0].error.as_deref().unwrap().contains("assemble"));
        assert_eq!(p.requests(), 0);
    }

    #[test]
    fn describe_config_names_changed_knobs_only() {
        assert_eq!(describe_config(&AnalysisConfig::default()), "(defaults)");
        let mut c = AnalysisConfig { hw: HwConfig::no_cache(), ..Default::default() };
        c.vivu.peel = 0;
        c.use_infeasible = false;
        let s = describe_config(&c);
        assert_eq!(s, "hw=no-cache peel=0 use_infeasible=false");
        let cache = AnalysisConfig { hw: HwConfig::with_cache_bytes(4096), ..Default::default() };
        assert_eq!(describe_config(&cache), "hw={cache_bytes: 4096}");
    }
}
