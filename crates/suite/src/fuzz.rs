//! The differential fuzz campaign behind `stamp fuzz`.
//!
//! A campaign fans `iterations` jobs across the [`stamp_exec::Pool`]:
//! each job derives its own seed from the campaign seed, draws a
//! program **shape** (legacy / deep-loops / call-chain / branchy /
//! rich — the scenario space of [`GenConfig`]), generates a program,
//! and runs the full differential [`oracle`](crate::oracle) under the
//! job's (HwConfig × ValueOptions) variant. Violations are minimized
//! by the [`shrink`](crate::shrink) delta debugger and persisted as
//! ready-to-commit reproducer files.
//!
//! # Determinism
//!
//! The campaign inherits the batch engine's headline invariant: the
//! deterministic report ([`FuzzReport::results_json`]) is
//! **byte-identical** across worker counts and runs. Everything in it
//! is a pure function of `(FuzzConfig, campaign seed)` — job seeds are
//! derived (never drawn from shared state), inputs come from per-job
//! rngs, the shrinker is deterministic, and results merge in job
//! order. Wall times, worker counts and reproducer paths live in the
//! timing layer ([`FuzzReport::to_json`]), exactly as in
//! `stamp batch`.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stamp_core::{Annotations, Json};
use stamp_exec::{Pool, PoolError};
use stamp_hw::HwConfig;
use stamp_isa::asm::assemble;
use stamp_value::ValueOptions;

use crate::oracle::{self, FaultInjection, OracleConfig};
use crate::shrink;
use crate::{generate, GenConfig};

/// One point of the hardware × analysis-options sweep.
#[derive(Clone, Debug)]
pub struct FuzzVariant {
    /// Short name used in job labels and reports.
    pub name: String,
    /// The hardware model, shared by analyses and simulator.
    pub hw: HwConfig,
    /// The value-analysis options under test.
    pub value: ValueOptions,
}

/// The built-in (HwConfig × ValueOptions) sweep: cache off / ideal /
/// small alongside the default, and widening-delay extremes — the
/// matrix the ISSUE's scenario coverage asks for. Jobs cycle through
/// these in order.
pub fn default_variants() -> Vec<FuzzVariant> {
    let v = |name: &str, hw: HwConfig, value: ValueOptions| FuzzVariant {
        name: name.to_string(),
        hw,
        value,
    };
    vec![
        v("default", HwConfig::default(), ValueOptions::default()),
        v("no-cache", HwConfig::no_cache(), ValueOptions::default()),
        v("ideal", HwConfig::ideal(), ValueOptions::default()),
        v("small-cache", HwConfig::with_cache_bytes(128), ValueOptions::default()),
        v(
            "widen-0",
            HwConfig::default(),
            ValueOptions { widen_delay: 0, ..ValueOptions::default() },
        ),
        v(
            "widen-6",
            HwConfig::no_cache(),
            ValueOptions { widen_delay: 6, ..ValueOptions::default() },
        ),
    ]
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of fuzz jobs (programs generated and checked).
    pub iterations: usize,
    /// Campaign seed; every job seed derives from it.
    pub seed: u64,
    /// Random-input simulation rounds per program.
    pub rounds: usize,
    /// Path-sampling walks per program for the oracle's sampling leg
    /// (observed-max ≤ ILP bound); `0` skips it.
    pub samples: usize,
    /// Minimize counterexamples with the delta debugger.
    pub shrink: bool,
    /// Evaluation budget per shrink (assemble + oracle runs).
    pub max_shrink_evals: usize,
    /// Deliberate oracle corruption (harness self-test); `None` in
    /// real campaigns.
    pub fault: Option<FaultInjection>,
    /// Where to persist reproducer files; `None` writes nothing.
    pub repro_dir: Option<PathBuf>,
    /// The (HwConfig × ValueOptions) sweep; jobs cycle through it.
    pub variants: Vec<FuzzVariant>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            iterations: 256,
            seed: 0,
            rounds: 3,
            samples: 32,
            shrink: true,
            max_shrink_evals: 500,
            fault: None,
            repro_dir: None,
            variants: default_variants(),
        }
    }
}

/// A confirmed counterexample: the violation, the program that
/// produced it, and its minimized form.
#[derive(Clone, Debug)]
pub struct FuzzFinding {
    /// Job index within the campaign.
    pub job: usize,
    /// The job's derived seed (replays the exact program and inputs).
    pub seed: u64,
    /// Variant name.
    pub variant: String,
    /// Generator shape name.
    pub shape: String,
    /// Violation kind ([`crate::oracle::Violation::kind`]).
    pub kind: String,
    /// Human-readable violation description.
    pub message: String,
    /// Non-empty source lines of the original program.
    pub original_lines: usize,
    /// Non-empty source lines after shrinking (equals
    /// `original_lines` when shrinking is off or not applicable).
    pub shrunk_lines: usize,
    /// The minimized failing source.
    pub shrunk_source: String,
    /// Where the reproducer file was written (timing layer only — the
    /// path depends on `--repro-dir`, not on the failure).
    pub repro_path: Option<String>,
}

/// The merged campaign report: deterministic results plus the timing
/// envelope, in the established `results_json` / `to_json` split.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Campaign configuration echo (iterations, seed, rounds).
    pub iterations: usize,
    /// The campaign seed.
    pub seed: u64,
    /// Simulation rounds per program.
    pub rounds: usize,
    /// Variant names, in sweep order.
    pub variants: Vec<String>,
    /// Programs generated and checked (== `iterations`).
    pub programs: usize,
    /// Total generated source lines (non-empty).
    pub lines_total: u64,
    /// Total simulation rounds executed.
    pub sim_runs: u64,
    /// Total simulated cycles across all rounds.
    pub cycles_total: u64,
    /// Sum of all WCET bounds (a determinism checksum over the whole
    /// analysis side).
    pub wcet_sum: u64,
    /// Total completed path-sampling walks (the sampling leg's
    /// determinism checksum; every one passed observed-max ≤ bound).
    pub sampled_paths: u64,
    /// Largest stack bound seen.
    pub max_stack_bound: u32,
    /// Counterexamples, in job order.
    pub findings: Vec<FuzzFinding>,
    /// Worker threads used (timing layer).
    pub workers: usize,
    /// Cores the machine exposed (timing layer).
    pub cores: usize,
    /// Campaign wall time in milliseconds (timing layer).
    pub wall_ms: f64,
}

impl FuzzReport {
    /// Number of violations found.
    pub fn violations(&self) -> usize {
        self.findings.len()
    }

    /// Programs checked per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.programs as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }

    fn finding_json(f: &FuzzFinding) -> Json {
        Json::obj([
            ("job", Json::int(f.job as u64)),
            ("seed", Json::int(f.seed)),
            ("variant", Json::str(f.variant.clone())),
            ("shape", Json::str(f.shape.clone())),
            ("kind", Json::str(f.kind.clone())),
            ("message", Json::str(f.message.clone())),
            ("original_lines", Json::int(f.original_lines as u64)),
            ("shrunk_lines", Json::int(f.shrunk_lines as u64)),
            ("shrunk_source", Json::str(f.shrunk_source.clone())),
        ])
    }

    /// The deterministic core: byte-identical across runs and worker
    /// counts (no wall times, no worker count, no filesystem paths).
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("stamp-fuzz/1")),
            ("iterations", Json::int(self.iterations as u64)),
            ("seed", Json::int(self.seed)),
            ("rounds", Json::int(self.rounds as u64)),
            ("variants", Json::Arr(self.variants.iter().map(|v| Json::str(v.clone())).collect())),
            ("programs", Json::int(self.programs as u64)),
            ("lines_total", Json::int(self.lines_total)),
            ("sim_runs", Json::int(self.sim_runs)),
            ("cycles_total", Json::int(self.cycles_total)),
            ("wcet_sum", Json::int(self.wcet_sum)),
            ("sampled_paths", Json::int(self.sampled_paths)),
            ("max_stack_bound", Json::int(self.max_stack_bound as u64)),
            ("violation_count", Json::int(self.findings.len() as u64)),
            ("violations", Json::Arr(self.findings.iter().map(Self::finding_json).collect())),
        ])
    }

    /// The full report: the deterministic results plus the timing layer
    /// (wall time, throughput, workers, reproducer paths).
    pub fn to_json(&self) -> Json {
        let violations: Vec<Json> = self
            .findings
            .iter()
            .map(|f| match Self::finding_json(f) {
                Json::Obj(mut o) => {
                    o.insert(
                        "repro_path".to_string(),
                        f.repro_path.clone().map(Json::str).unwrap_or(Json::Null),
                    );
                    Json::Obj(o)
                }
                _ => unreachable!("finding_json returns an object"),
            })
            .collect();
        match self.results_json() {
            Json::Obj(mut o) => {
                o.insert("violations".to_string(), Json::Arr(violations));
                o.insert("workers".to_string(), Json::int(self.workers as u64));
                o.insert("cores".to_string(), Json::int(self.cores as u64));
                o.insert("wall_ms".to_string(), Json::Num(self.wall_ms));
                o.insert("throughput_programs_per_s".to_string(), Json::Num(self.throughput()));
                Json::Obj(o)
            }
            _ => unreachable!("results_json returns an object"),
        }
    }
}

/// A campaign-level failure (worker panic — violations are results,
/// not errors).
#[derive(Debug)]
pub enum FuzzError {
    /// A fuzz job panicked (a bug in the harness, not a violation).
    JobPanicked {
        /// The failing job's label.
        job: String,
        /// The panic message.
        message: String,
    },
    /// A reproducer file could not be written.
    ReproIo {
        /// The failing path.
        path: String,
        /// The I/O error.
        message: String,
    },
}

impl std::fmt::Display for FuzzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuzzError::JobPanicked { job, message } => {
                write!(f, "fuzz job `{job}` panicked: {message}")
            }
            FuzzError::ReproIo { path, message } => {
                write!(f, "could not write reproducer {path}: {message}")
            }
        }
    }
}

impl std::error::Error for FuzzError {}

/// Derives job `i`'s seed from the campaign seed (odd-multiplier
/// mixing: distinct jobs always get distinct seeds).
fn job_seed(campaign_seed: u64, i: usize) -> u64 {
    campaign_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d
}

/// Draws the job's generator shape. Names are stable (they appear in
/// reports); sizes jitter within each shape so a campaign covers a
/// spread of program sizes, not one point.
fn pick_shape(rng: &mut StdRng) -> (&'static str, GenConfig) {
    match rng.gen_range(0..5u32) {
        0 => ("legacy", GenConfig { constructs: rng.gen_range(4..=8), ..GenConfig::default() }),
        1 => (
            "deep-loops",
            GenConfig {
                constructs: rng.gen_range(3..=6),
                max_depth: 4,
                max_loop: 6,
                ..GenConfig::default()
            },
        ),
        2 => (
            "call-chain",
            GenConfig {
                constructs: rng.gen_range(4..=8),
                functions: 4,
                call_depth: 4,
                frame_traffic: true,
                calls_in_loops: true,
                ..GenConfig::default()
            },
        ),
        3 => (
            "branchy",
            GenConfig {
                constructs: rng.gen_range(4..=8),
                block_len: 8,
                varied_addressing: true,
                load_branches: true,
                scratch_words: 64,
                ..GenConfig::default()
            },
        ),
        _ => ("rich", GenConfig { constructs: rng.gen_range(5..=9), ..GenConfig::rich() }),
    }
}

/// One job's deterministic outcome.
struct JobOutcome {
    lines: u64,
    sim_runs: u64,
    cycles: u64,
    wcet: u64,
    stack_bound: u32,
    sampled_paths: u64,
    finding: Option<FuzzFinding>,
}

fn run_job(cfg: &FuzzConfig, index: usize) -> JobOutcome {
    let seed = job_seed(cfg.seed, index);
    let variant = &cfg.variants[index % cfg.variants.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    let (shape, gen_cfg) = pick_shape(&mut rng);
    let src = generate(&mut rng, &gen_cfg);
    let lines = shrink::line_count(&src) as u64;
    let oracle_cfg = OracleConfig {
        hw: variant.hw,
        value: variant.value.clone(),
        rounds: cfg.rounds,
        samples: cfg.samples,
        fault: cfg.fault.clone(),
        ..OracleConfig::default()
    };
    let annotations = Annotations::new();
    let input = Some(("scratch", gen_cfg.scratch_bytes()));

    let mut outcome = JobOutcome {
        lines,
        sim_runs: 0,
        cycles: 0,
        wcet: 0,
        stack_bound: 0,
        sampled_paths: 0,
        finding: None,
    };
    // The oracle consumes `rng` exactly where generation left off, so
    // a job is replayable from (campaign seed, index) alone. The state
    // at this point is snapshotted for the shrinker: every candidate
    // must be judged against the *same* simulation inputs that exposed
    // the violation, not a reseeded stream.
    let oracle_rng = rng.clone();
    let violation = match assemble(&src) {
        Err(e) => {
            Box::new(oracle::Violation::Analysis { stage: "assemble", message: e.to_string() })
        }
        Ok(program) => match oracle::check(&program, &annotations, input, &oracle_cfg, &mut rng) {
            Ok(report) => {
                outcome.sim_runs = report.rounds as u64;
                outcome.cycles = report.total_cycles;
                outcome.wcet = report.wcet.unwrap_or(0);
                outcome.stack_bound = report.stack_bound;
                outcome.sampled_paths = report.sampled_paths as u64;
                return outcome;
            }
            Err(v) => v,
        },
    };

    // ---- Counterexample path: minimize, then record.
    let kind = violation.kind().to_string();
    let (shrunk_source, shrunk_lines) = if cfg.shrink && kind != "analysis" {
        // "Still failing" = assembles (the shrinker checks that) and
        // the oracle reports the same violation kind. Every candidate
        // replays the snapshotted rng state, so it sees byte-identical
        // simulation inputs to the run that found the violation — an
        // input-dependent failure stays reproducible throughout the
        // minimization, and the whole search is deterministic.
        let mut predicate = |_cand: &str, program: &stamp_isa::Program| {
            let mut rng = oracle_rng.clone();
            match oracle::check(program, &annotations, input, &oracle_cfg, &mut rng) {
                Ok(_) => false,
                Err(v) => v.kind() == kind,
            }
        };
        let (shrunk, stats) = shrink::shrink(&src, cfg.max_shrink_evals, &mut predicate);
        (shrunk, stats.shrunk_lines)
    } else {
        (src.clone(), lines as usize)
    };
    outcome.finding = Some(FuzzFinding {
        job: index,
        seed,
        variant: variant.name.clone(),
        shape: shape.to_string(),
        kind,
        message: violation.to_string(),
        original_lines: lines as usize,
        shrunk_lines,
        shrunk_source,
        repro_path: None,
    });
    outcome
}

/// The reproducer file for a finding: a ready-to-commit `.s` file
/// whose header comments carry everything needed to replay the
/// violation (campaign seed, job seed, variant, violation).
pub fn reproducer_file(campaign_seed: u64, f: &FuzzFinding) -> (String, String) {
    let name = format!("fuzz-seed{}-job{}-{}.s", campaign_seed, f.job, f.variant);
    let body = format!(
        "; stamp fuzz reproducer (minimized by delta debugging)\n\
         ; campaign seed: {campaign_seed}  job: {job}  job seed: {seed}\n\
         ; variant: {variant}  shape: {shape}\n\
         ; violation: {message}\n\
         ; replay: stamp fuzz --iterations {iters} --seed {campaign_seed}\n\
         {src}",
        job = f.job,
        seed = f.seed,
        variant = f.variant,
        shape = f.shape,
        message = f.message,
        iters = f.job + 1,
        src = f.shrunk_source,
    );
    (name, body)
}

/// Runs the campaign across `workers` threads. Violations land in the
/// report's findings (reproducers written to `cfg.repro_dir` when
/// set); only harness bugs (worker panics, reproducer I/O failures)
/// error the campaign.
///
/// # Errors
///
/// [`FuzzError::JobPanicked`] naming the lowest failing job, or
/// [`FuzzError::ReproIo`] when a reproducer cannot be persisted.
pub fn run_campaign(cfg: &FuzzConfig, workers: usize) -> Result<FuzzReport, FuzzError> {
    assert!(!cfg.variants.is_empty(), "fuzz campaign needs at least one variant");
    let t = std::time::Instant::now();
    let indices: Vec<usize> = (0..cfg.iterations).collect();
    let pool = Pool::new(workers);
    let outcomes = pool
        .map_labeled(
            &indices,
            |_, &i| format!("fuzz-{i}@{}", cfg.variants[i % cfg.variants.len()].name),
            |_, &i| run_job(cfg, i),
        )
        .map_err(|e| {
            let PoolError::JobPanicked { label, message, .. } = e;
            FuzzError::JobPanicked { job: label, message }
        })?;

    let mut report = FuzzReport {
        iterations: cfg.iterations,
        seed: cfg.seed,
        rounds: cfg.rounds,
        variants: cfg.variants.iter().map(|v| v.name.clone()).collect(),
        programs: outcomes.len(),
        lines_total: 0,
        sim_runs: 0,
        cycles_total: 0,
        wcet_sum: 0,
        sampled_paths: 0,
        max_stack_bound: 0,
        findings: Vec::new(),
        workers: pool.workers(),
        cores: stamp_exec::default_workers(),
        wall_ms: 0.0,
    };
    for o in outcomes {
        report.lines_total += o.lines;
        report.sim_runs += o.sim_runs;
        report.cycles_total += o.cycles;
        report.wcet_sum = report.wcet_sum.wrapping_add(o.wcet);
        report.sampled_paths += o.sampled_paths;
        report.max_stack_bound = report.max_stack_bound.max(o.stack_bound);
        if let Some(finding) = o.finding {
            report.findings.push(finding);
        }
    }

    // Persist reproducers after the merge (single-threaded, job order)
    // so partial campaigns never leave half-written files behind.
    if let Some(dir) = &cfg.repro_dir {
        if !report.findings.is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| FuzzError::ReproIo {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
        }
        for f in &mut report.findings {
            let (name, body) = reproducer_file(cfg.seed, f);
            let path = dir.join(name);
            std::fs::write(&path, body).map_err(|e| FuzzError::ReproIo {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            f.repro_path = Some(path.display().to_string());
        }
    }

    report.wall_ms = t.elapsed().as_secs_f64() * 1e3;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(iterations: usize) -> FuzzConfig {
        FuzzConfig { iterations, rounds: 2, ..FuzzConfig::default() }
    }

    #[test]
    fn small_campaign_is_green_and_deterministic_across_workers() {
        let cfg = small(8);
        let serial = run_campaign(&cfg, 1).unwrap();
        let parallel = run_campaign(&cfg, 4).unwrap();
        assert_eq!(serial.violations(), 0, "{:?}", serial.findings.first());
        assert_eq!(
            serial.results_json().to_string(),
            parallel.results_json().to_string(),
            "fuzz results must be byte-identical across worker counts"
        );
        assert_eq!(serial.programs, 8);
        assert!(serial.sim_runs >= 16);
        assert!(serial.wcet_sum > 0);
        assert!(serial.sampled_paths > 0, "oracle sampling leg must run in campaigns");
        assert!(serial.results_json().to_string().contains("\"sampled_paths\":"));
    }

    #[test]
    fn job_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..64).map(|i| job_seed(7, i)).collect();
        let mut b = a.clone();
        b.sort_unstable();
        b.dedup();
        assert_eq!(b.len(), 64);
        assert_eq!(job_seed(7, 3), job_seed(7, 3));
        assert_ne!(job_seed(7, 3), job_seed(8, 3));
    }

    #[test]
    fn timing_layer_is_separate_from_results() {
        let report = run_campaign(&small(2), 2).unwrap();
        let det = report.results_json().to_string();
        assert!(!det.contains("wall_ms"), "{det}");
        assert!(!det.contains("workers"), "{det}");
        let full = report.to_json().to_string();
        assert!(full.contains("\"wall_ms\""));
        assert!(full.contains("\"throughput_programs_per_s\""));
    }

    #[test]
    fn injected_fault_produces_a_shrunk_finding() {
        let dir = std::env::temp_dir().join("stamp_fuzz_unit_repro");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FuzzConfig {
            fault: Some(FaultInjection::FlagMnemonic("div".to_string())),
            repro_dir: Some(dir.clone()),
            ..small(4)
        };
        let report = run_campaign(&cfg, 2).unwrap();
        assert!(report.violations() > 0, "no generated program contained a div?");
        let f = &report.findings[0];
        assert_eq!(f.kind, "injected");
        assert!(f.shrunk_lines < f.original_lines, "{f:?}");
        let path = f.repro_path.as_ref().expect("reproducer written");
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("; stamp fuzz reproducer"));
        assert!(text.contains("div"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
