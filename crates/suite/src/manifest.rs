//! Batch-manifest helpers: JSON manifests → [`BatchRequest`]s, plus the
//! built-in EVA32 corpus request (`stamp batch --corpus`).
//!
//! A manifest names *targets* (what to analyze) and *variants* (under
//! which configurations); the batch engine runs the full cross product.
//!
//! ```json
//! {
//!   "targets": [
//!     {"benchmark": "fibcall"},
//!     {"file": "task.s", "loop_bounds": {"loop": 33}},
//!     {"name": "inline", "source": ".text\nmain: halt\n"}
//!   ],
//!   "variants": [
//!     {"name": "default"},
//!     {"name": "small-cache", "hw": "no-cache", "peel": 0, "domain": "interval"}
//!   ]
//! }
//! ```
//!
//! Target keys: exactly one of `benchmark` (a name from
//! [`crate::benchmarks`]), `file` (a path to EVA32 assembly, resolved
//! against the manifest's directory) or `source` (inline assembly,
//! which then requires `name`); optional `name`, `loop_bounds`
//! (object of `symbol: bound`), `recursion` (object of
//! `symbol: depth`), `wcet` (bool, default `true`).
//!
//! Variant keys, all optional except `name`: `hw` (`"default"`,
//! `"no-cache"`, `"ideal"` or `{"cache_bytes": N}`), `peel`,
//! `max_call_depth`, `max_contexts` (VIVU), `domain` (`"const"`,
//! `"interval"`, `"strided"`), `widen_delay`, `small_set` (value
//! analysis), `use_infeasible` (bool, ILP), `summaries` (bool, solve
//! the path ILP via memoized per-segment summaries; default true),
//! `uarch_summaries` (bool, compose cache/pipeline analyses from
//! per-region microarchitectural summaries; default true),
//! `sampling` (probabilistic path sampling: `{}` for the defaults or
//! `{"samples": N, "seed": N}`).
//!
//! Unknown keys are rejected everywhere: a misspelled knob must fail
//! the parse, not silently run the default configuration.

use std::path::Path;

use stamp_core::{
    AnalysisConfig, Annotations, BatchRequest, BatchTarget, BatchVariant, Json, SampleParams,
};
use stamp_hw::HwConfig;

use crate::benchmarks;

/// A manifest rejection: what is wrong and where.
#[derive(Clone, Debug)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError(msg.into()))
}

/// The batch request covering the whole built-in EVA32 corpus under the
/// default configuration — the workload of `stamp batch --corpus`,
/// whose job results are pinned in `stamp_bench::pins`.
pub fn corpus_request() -> BatchRequest {
    corpus_matrix(&[BatchVariant::default()])
}

/// The corpus crossed with explicit configuration variants (used by the
/// throughput benchmark to build a machine-saturating job matrix).
pub fn corpus_matrix(variants: &[BatchVariant]) -> BatchRequest {
    let targets = benchmarks().into_iter().map(|b| BatchTarget {
        name: b.name.to_string(),
        source: b.source.to_string(),
        annotations: b.annotations(),
        wcet: b.supports_wcet,
    });
    BatchRequest::matrix(targets, variants)
}

/// Parses a JSON batch manifest into a [`BatchRequest`]. `base` is the
/// directory against which relative `file` targets are resolved
/// (normally the manifest's own directory).
///
/// # Errors
///
/// [`ManifestError`] on malformed JSON, unknown keys' values, missing
/// files, unknown benchmark names, or an empty target list.
pub fn parse_manifest(text: &str, base: &Path) -> Result<BatchRequest, ManifestError> {
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return err(e.to_string()),
    };
    if doc.as_obj().is_none() {
        return err("top level must be an object");
    }
    check_keys(&doc, "manifest", &["targets", "variants"])?;

    let targets = match doc.get("targets").and_then(Json::as_arr) {
        Some(ts) if !ts.is_empty() => ts,
        Some(_) | None => return err("no targets (a non-empty `targets` array is required)"),
    };
    let targets: Vec<BatchTarget> =
        targets.iter().map(|t| parse_target(t, base)).collect::<Result<_, _>>()?;

    let variants: Vec<BatchVariant> = match doc.get("variants") {
        None => vec![BatchVariant::default()],
        Some(vs) => match vs.as_arr() {
            Some(vs) if !vs.is_empty() => vs.iter().map(parse_variant).collect::<Result<_, _>>()?,
            _ => return err("`variants` must be a non-empty array"),
        },
    };

    let mut names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
    names.sort();
    names.dedup();
    if names.len() != variants.len() {
        return err("variant names must be unique");
    }
    // Job names are target@variant; duplicate targets would make jobs
    // indistinguishable in the merged report (and in by-name lookups
    // like --check-pins).
    let mut names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != targets.len() {
        return err("target names must be unique (set distinct `name` keys)");
    }

    Ok(BatchRequest::matrix(targets, &variants))
}

/// Rejects keys outside `allowed` — a misspelled knob must be an
/// error, not a silently ignored no-op that runs the default config.
fn check_keys(obj: &Json, kind: &str, allowed: &[&str]) -> Result<(), ManifestError> {
    for key in obj.as_obj().expect("checked by caller").keys() {
        if !allowed.contains(&key.as_str()) {
            return err(format!("unknown {kind} key `{key}` (allowed: {})", allowed.join(", ")));
        }
    }
    Ok(())
}

fn parse_target(t: &Json, base: &Path) -> Result<BatchTarget, ManifestError> {
    if t.as_obj().is_none() {
        return err("each target must be an object");
    }
    check_keys(
        t,
        "target",
        &["benchmark", "file", "source", "name", "loop_bounds", "recursion", "wcet"],
    )?;
    let explicit_name = t.get("name").map(|n| match n.as_str() {
        Some(s) => Ok(s.to_string()),
        None => err::<String>("target `name` must be a string"),
    });
    let explicit_name = explicit_name.transpose()?;

    let sources_given =
        ["benchmark", "file", "source"].iter().filter(|k| t.get(k).is_some()).count();
    if sources_given != 1 {
        return err("each target needs exactly one of `benchmark`, `file` or `source`");
    }

    let (name, source, mut annotations, mut wcet);
    if let Some(b) = t.get("benchmark") {
        let bench_name = b.as_str().ok_or(ManifestError("`benchmark` must be a string".into()))?;
        let bench = benchmarks()
            .into_iter()
            .find(|b| b.name == bench_name)
            .ok_or(ManifestError(format!("unknown benchmark `{bench_name}`")))?;
        name = explicit_name.unwrap_or_else(|| bench.name.to_string());
        source = bench.source.to_string();
        annotations = bench.annotations();
        wcet = bench.supports_wcet;
    } else if let Some(f) = t.get("file") {
        let rel = f.as_str().ok_or(ManifestError("`file` must be a string".into()))?;
        let path = base.join(rel);
        source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => return err(format!("{}: {e}", path.display())),
        };
        let stem = Path::new(rel)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| rel.to_string());
        name = explicit_name.unwrap_or(stem);
        annotations = Annotations::new();
        wcet = true;
    } else {
        let s = t.get("source").expect("counted above");
        source = s.as_str().ok_or(ManifestError("`source` must be a string".into()))?.to_string();
        name = explicit_name
            .ok_or(ManifestError("inline `source` targets require a `name`".into()))?;
        annotations = Annotations::new();
        wcet = true;
    }

    // Manifest annotations are appended after whatever the target
    // brought along, and resolution keeps the *last* entry per symbol
    // (`Annotations` resolves its list into a map), so a manifest
    // `loop_bounds`/`recursion` entry overrides a benchmark default at
    // the same symbol — the behaviour README promises.
    if let Some(lb) = t.get("loop_bounds") {
        let obj = lb.as_obj().ok_or(ManifestError("`loop_bounds` must be an object".into()))?;
        for (sym, bound) in obj {
            let bound = bound
                .as_u64()
                .ok_or(ManifestError(format!("loop bound for `{sym}` must be an integer")))?;
            annotations = annotations.loop_bound(sym.clone(), bound);
        }
    }
    if let Some(rec) = t.get("recursion") {
        let obj = rec.as_obj().ok_or(ManifestError("`recursion` must be an object".into()))?;
        for (sym, depth) in obj {
            let depth = depth
                .as_u64()
                .ok_or(ManifestError(format!("recursion depth for `{sym}` must be an integer")))?;
            annotations = annotations.recursion_depth(sym.clone(), depth as u32);
        }
    }
    if let Some(w) = t.get("wcet") {
        wcet = w.as_bool().ok_or(ManifestError("`wcet` must be a boolean".into()))?;
    }

    Ok(BatchTarget { name, source, annotations, wcet })
}

fn parse_variant(v: &Json) -> Result<BatchVariant, ManifestError> {
    if v.as_obj().is_none() {
        return err("each variant must be an object");
    }
    check_keys(
        v,
        "variant",
        &[
            "name",
            "hw",
            "peel",
            "max_call_depth",
            "max_contexts",
            "domain",
            "widen_delay",
            "small_set",
            "use_infeasible",
            "summaries",
            "uarch_summaries",
            "sampling",
        ],
    )?;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or(ManifestError("each variant needs a string `name`".into()))?
        .to_string();
    let mut config = AnalysisConfig::default();

    if let Some(hw) = v.get("hw") {
        config.hw = match hw.as_str() {
            Some("default") => HwConfig::default(),
            Some("no-cache") => HwConfig::no_cache(),
            Some("ideal") => HwConfig::ideal(),
            Some(other) => return err(format!("unknown hw model `{other}`")),
            None => {
                if hw.as_obj().is_some() {
                    check_keys(hw, "hw", &["cache_bytes"])?;
                }
                match hw.get("cache_bytes").and_then(Json::as_u64) {
                    Some(bytes) if (32..=1 << 20).contains(&bytes) && bytes.is_power_of_two() => {
                        HwConfig::with_cache_bytes(bytes as u32)
                    }
                    _ => {
                        return err("`hw` must be \"default\", \"no-cache\", \"ideal\" or \
                             {\"cache_bytes\": power-of-two ≥ 32}")
                    }
                }
            }
        };
    }
    if let Some(p) = v.get("peel") {
        config.vivu.peel =
            p.as_u64()
                .filter(|&p| p <= u8::MAX as u64)
                .ok_or(ManifestError("`peel` must be a small integer".into()))? as u8;
    }
    if let Some(d) = v.get("max_call_depth") {
        config.vivu.max_call_depth =
            d.as_u64().ok_or(ManifestError("`max_call_depth` must be an integer".into()))? as usize;
    }
    if let Some(m) = v.get("max_contexts") {
        config.vivu.max_contexts =
            m.as_u64().ok_or(ManifestError("`max_contexts` must be an integer".into()))? as usize;
    }
    if let Some(d) = v.get("domain") {
        use stamp_value::DomainKind;
        config.value.domain = match d.as_str() {
            Some("const") => DomainKind::Const,
            Some("interval") => DomainKind::Interval,
            Some("strided") => DomainKind::Strided,
            _ => return err("`domain` must be \"const\", \"interval\" or \"strided\""),
        };
    }
    if let Some(w) = v.get("widen_delay") {
        config.value.widen_delay = w
            .as_u64()
            .filter(|&w| w <= u32::MAX as u64)
            .ok_or(ManifestError("`widen_delay` must be an integer".into()))?
            as u32;
    }
    if let Some(s) = v.get("small_set") {
        config.value.small_set =
            s.as_u64().ok_or(ManifestError("`small_set` must be an integer".into()))?;
    }
    if let Some(u) = v.get("use_infeasible") {
        config.use_infeasible =
            u.as_bool().ok_or(ManifestError("`use_infeasible` must be a boolean".into()))?;
    }
    if let Some(u) = v.get("summaries") {
        config.summaries =
            u.as_bool().ok_or(ManifestError("`summaries` must be a boolean".into()))?;
    }
    if let Some(u) = v.get("uarch_summaries") {
        config.uarch_summaries =
            u.as_bool().ok_or(ManifestError("`uarch_summaries` must be a boolean".into()))?;
    }
    let mut sampling = None;
    if let Some(s) = v.get("sampling") {
        if s.as_obj().is_none() {
            return err("`sampling` must be an object ({\"samples\": N, \"seed\": N})");
        }
        check_keys(s, "sampling", &["samples", "seed"])?;
        let mut params = SampleParams::default();
        if let Some(n) = s.get("samples") {
            params.samples =
                n.as_u64().ok_or(ManifestError("`samples` must be an integer".into()))? as usize;
        }
        if let Some(n) = s.get("seed") {
            params.seed = n.as_u64().ok_or(ManifestError("`seed` must be an integer".into()))?;
        }
        sampling = Some(params);
    }
    Ok(BatchVariant { name, config, sampling })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_request_covers_every_benchmark_once() {
        let req = corpus_request();
        assert_eq!(req.jobs.len(), benchmarks().len());
        let fac = req.jobs.iter().find(|j| j.target == "fac").unwrap();
        assert!(!fac.wcet, "recursive tasks are stack-only");
        assert!(req.jobs.iter().all(|j| j.variant == "default"));
    }

    #[test]
    fn manifest_cross_product_and_variant_knobs() {
        let req = parse_manifest(
            r#"{
              "targets": [
                {"benchmark": "fibcall"},
                {"name": "tiny", "source": ".text\nmain: halt\n", "wcet": false}
              ],
              "variants": [
                {"name": "default"},
                {"name": "lean", "hw": "no-cache", "peel": 0, "domain": "interval",
                 "widen_delay": 4, "use_infeasible": false, "uarch_summaries": false}
              ]
            }"#,
            Path::new("."),
        )
        .unwrap();
        assert_eq!(req.jobs.len(), 4);
        let lean = &req.jobs[1];
        assert_eq!(lean.name(), "fibcall@lean");
        assert!(lean.config.hw.icache.is_none());
        assert_eq!(lean.config.vivu.peel, 0);
        assert!(!lean.config.use_infeasible);
        assert!(!lean.config.uarch_summaries);
        assert!(!req.jobs[2].wcet);
    }

    #[test]
    fn file_targets_resolve_against_base_and_carry_annotations() {
        let dir = std::env::temp_dir().join("stamp_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t.s"), ".text\nmain: halt\n").unwrap();
        let req = parse_manifest(
            r#"{"targets": [{"file": "t.s", "loop_bounds": {"loop": 7},
                             "recursion": {"f": 3}}]}"#,
            &dir,
        )
        .unwrap();
        assert_eq!(req.jobs[0].target, "t");
        assert_eq!(req.jobs[0].annotations.loop_bounds().len(), 1);
    }

    #[test]
    fn rejections_are_specific() {
        let base = Path::new(".");
        let cases: &[(&str, &str)] = &[
            ("[1,", "syntax error"),
            ("[]", "top level"),
            ("{}", "no targets"),
            (r#"{"targets": []}"#, "no targets"),
            (r#"{"targets": [{}]}"#, "exactly one of"),
            (r#"{"targets": [{"benchmark": "nope"}]}"#, "unknown benchmark"),
            (r#"{"tasks": [{"benchmark": "crc"}]}"#, "unknown manifest key `tasks`"),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "hw": {"cache_bytes": 512, "assoc": 4}}]}"#,
                "unknown hw key `assoc`",
            ),
            (r#"{"targets": [{"benchmark": "crc", "loop_bound": {}}]}"#, "unknown target key"),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "peels": 0}]}"#,
                "unknown variant key `peels`",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}, {"benchmark": "crc"}]}"#,
                "target names must be unique",
            ),
            (r#"{"targets": [{"source": ".text\n"}]}"#, "require a `name`"),
            (r#"{"targets": [{"file": "/nonexistent/x.s"}]}"#, "x.s"),
            (r#"{"targets": [{"benchmark": "crc"}], "variants": []}"#, "non-empty"),
            (r#"{"targets": [{"benchmark": "crc"}], "variants": [{}]}"#, "needs a string"),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a"}, {"name": "a"}]}"#,
                "unique",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "hw": "turbo"}]}"#,
                "unknown hw",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "hw": {"cache_bytes": 33}}]}"#,
                "power-of-two",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "domain": "octagon"}]}"#,
                "domain",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "sampling": 64}]}"#,
                "`sampling` must be an object",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "sampling": {"walks": 1}}]}"#,
                "unknown sampling key `walks`",
            ),
            (
                r#"{"targets": [{"benchmark": "crc"}],
                    "variants": [{"name": "a", "sampling": {"samples": "many"}}]}"#,
                "`samples` must be an integer",
            ),
        ];
        for (text, needle) in cases {
            let e = parse_manifest(text, base).unwrap_err().to_string();
            assert!(e.contains(needle), "manifest {text:?} gave `{e}`, wanted `{needle}`");
        }
    }

    #[test]
    fn manifest_loop_bounds_reach_the_analysis() {
        // A data-dependent loop the analysis cannot bound: the
        // manifest's annotation is what makes it analyzable, and its
        // value shows in the WCET.
        let manifest = |bound: u64| {
            format!(
                r#"{{"targets": [{{"name": "t", "loop_bounds": {{"loop": {bound}}},
                    "source": ".text\nmain: la r1, v\nlw r1, 0(r1)\nloop: srli r1, r1, 1\nbnez r1, loop\nhalt\n.data\nv: .space 4\n"}}]}}"#
            )
        };
        let wcet = |bound: u64| {
            let req = parse_manifest(&manifest(bound), Path::new(".")).unwrap();
            let report = stamp_core::run_batch(&req, 1).unwrap();
            assert!(report.results[0].is_ok(), "{:?}", report.results[0].error);
            report.results[0].wcet.unwrap()
        };
        assert!(wcet(8) > wcet(3), "larger annotated bound must raise the WCET");
    }

    #[test]
    fn sampling_variant_parses_with_defaults_and_overrides() {
        let req = parse_manifest(
            r#"{"targets": [{"benchmark": "crc"}],
                "variants": [{"name": "plain"},
                             {"name": "walk", "sampling": {"samples": 16, "seed": 3}},
                             {"name": "default-walk", "sampling": {}}]}"#,
            Path::new("."),
        )
        .unwrap();
        assert_eq!(req.jobs[0].sampling, None);
        assert_eq!(req.jobs[1].sampling, Some(SampleParams { samples: 16, seed: 3 }));
        assert_eq!(req.jobs[2].sampling, Some(SampleParams::default()));
    }

    #[test]
    fn cache_bytes_variant_builds() {
        let req = parse_manifest(
            r#"{"targets": [{"benchmark": "crc"}],
                "variants": [{"name": "big", "hw": {"cache_bytes": 4096}}]}"#,
            Path::new("."),
        )
        .unwrap();
        assert_eq!(req.jobs[0].config.hw.icache.as_ref().map(|c| c.size_bytes()), Some(4096));
    }
}
