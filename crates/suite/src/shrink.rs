//! Delta-debugging counterexample minimization (ddmin over source
//! lines).
//!
//! When the differential oracle finds a violation, the generated
//! program is typically hundreds of lines — far more than the bug
//! needs. [`shrink`] minimizes it: remove ever-smaller chunks of
//! lines, keeping a candidate only when it still **assembles** and
//! still **fails the caller's predicate**, until no single line can be
//! removed (or the evaluation budget runs out).
//!
//! Guarantees, relied on by `tests/fuzz_campaign.rs` and the shrinker
//! property suite:
//!
//! * **deterministic** — the algorithm draws no randomness; the same
//!   source and predicate produce byte-identical output on every run;
//! * **well-formed** — the result assembles (candidates that do not are
//!   rejected before the predicate ever sees them, so structural lines
//!   like labels and `.data` survive exactly as long as something
//!   references them);
//! * **still failing** — the result satisfies the predicate (it is the
//!   input when the input itself does not, a contract violation by the
//!   caller);
//! * **bounded** — at most `max_evals` assemble+predicate evaluations,
//!   so shrinking a pathological counterexample cannot hang a
//!   campaign.

use stamp_isa::asm::assemble;
use stamp_isa::Program;

/// What a [`shrink`] run did, for reports and logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Assemble+predicate evaluations spent.
    pub evaluations: usize,
    /// Non-empty source lines before shrinking.
    pub original_lines: usize,
    /// Non-empty source lines after shrinking.
    pub shrunk_lines: usize,
    /// `true` when the evaluation budget stopped the search before the
    /// 1-minimal fixpoint was reached.
    pub budget_exhausted: bool,
}

/// Number of non-empty lines in `src` (the size measure reported by
/// [`ShrinkStats`] and the fuzz report).
pub fn line_count(src: &str) -> usize {
    src.lines().filter(|l| !l.trim().is_empty()).count()
}

struct Search<'p> {
    evaluations: usize,
    max_evals: usize,
    predicate: &'p mut dyn FnMut(&str, &Program) -> bool,
}

impl Search<'_> {
    /// `true` when the candidate assembles and still fails (predicate
    /// returns `true` for "still failing").
    fn still_fails(&mut self, lines: &[String]) -> bool {
        if self.evaluations >= self.max_evals {
            return false;
        }
        self.evaluations += 1;
        let mut candidate = lines.join("\n");
        candidate.push('\n');
        match assemble(&candidate) {
            Ok(program) => (self.predicate)(&candidate, &program),
            Err(_) => false,
        }
    }
}

/// Minimizes `src` under `predicate` (`true` = "this candidate still
/// exhibits the failure"). The predicate is only consulted on
/// candidates that assemble; the returned source always assembles and
/// always satisfies the predicate, unless `src` itself does not — then
/// `src` is returned unchanged with zero removals.
pub fn shrink(
    src: &str,
    max_evals: usize,
    predicate: &mut dyn FnMut(&str, &Program) -> bool,
) -> (String, ShrinkStats) {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    let original_lines = line_count(src);
    let mut search = Search { evaluations: 0, max_evals, predicate };

    // The caller's contract: the input itself fails. Verify rather
    // than assume — a passing input must come back unchanged.
    if !search.still_fails(&lines) {
        let stats = ShrinkStats {
            evaluations: search.evaluations,
            original_lines,
            shrunk_lines: original_lines,
            budget_exhausted: false,
        };
        return (src.to_string(), stats);
    }

    // ddmin proper: chunked removal from half the file down to single
    // lines, iterated to a fixpoint (one full single-line pass with no
    // removal). Chunks are tried front to back; on success the cursor
    // stays put, so freshly adjacent lines are reconsidered at once.
    loop {
        let mut removed_any = false;
        let mut chunk = lines.len().div_ceil(2).max(1);
        loop {
            let mut i = 0;
            while i < lines.len() && search.evaluations < search.max_evals {
                let end = (i + chunk).min(lines.len());
                let mut candidate = Vec::with_capacity(lines.len() - (end - i));
                candidate.extend_from_slice(&lines[..i]);
                candidate.extend_from_slice(&lines[end..]);
                if !candidate.is_empty() && search.still_fails(&candidate) {
                    lines = candidate;
                    removed_any = true;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = chunk.div_ceil(2).max(1);
        }
        if !removed_any || search.evaluations >= search.max_evals {
            break;
        }
    }

    let mut shrunk = lines.join("\n");
    shrunk.push('\n');
    let stats = ShrinkStats {
        evaluations: search.evaluations,
        original_lines,
        shrunk_lines: line_count(&shrunk),
        budget_exhausted: search.evaluations >= search.max_evals,
    };
    (shrunk, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIV_TASK: &str = "\
        .text
main:   li   r1, 10
        li   r2, 3
        add  r3, r1, r2
        div  r4, r1, r2
        sub  r5, r3, r1
        halt
";

    fn contains_div(program: &Program) -> bool {
        let (lo, hi) = program.text_range();
        (lo..hi)
            .step_by(4)
            .any(|a| program.decode_at(a).is_ok_and(|i| i.to_string().starts_with("div ")))
    }

    #[test]
    fn shrinks_to_a_minimal_failing_program() {
        let (shrunk, stats) = shrink(DIV_TASK, 1_000, &mut |_, p| contains_div(p));
        assert!(shrunk.contains("div"), "{shrunk}");
        let program = assemble(&shrunk).expect("shrunk program assembles");
        assert!(contains_div(&program));
        assert!(stats.shrunk_lines < stats.original_lines, "{stats:?}");
        // 1-minimal: removing any remaining line breaks assembly or
        // loses the failure.
        let lines: Vec<&str> = shrunk.lines().collect();
        for skip in 0..lines.len() {
            let candidate: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let still_fails = assemble(&candidate).map(|p| contains_div(&p)).unwrap_or(false);
            assert!(!still_fails, "line {skip} was removable:\n{shrunk}");
        }
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink(DIV_TASK, 1_000, &mut |_, p| contains_div(p));
        let b = shrink(DIV_TASK, 1_000, &mut |_, p| contains_div(p));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn passing_input_comes_back_unchanged() {
        let (out, stats) = shrink(DIV_TASK, 1_000, &mut |_, _| false);
        assert_eq!(out, DIV_TASK);
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.shrunk_lines, stats.original_lines);
    }

    #[test]
    fn budget_bounds_the_search() {
        let (_, stats) = shrink(DIV_TASK, 3, &mut |_, p| contains_div(p));
        assert!(stats.evaluations <= 3, "{stats:?}");
        assert!(stats.budget_exhausted);
    }
}
