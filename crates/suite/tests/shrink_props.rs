//! Property tests for the delta-debugging shrinker, over generated
//! counterexamples rather than hand-written ones: shrinking is
//! deterministic for a fixed seed, the shrunk program still assembles,
//! and — for an injected synthetic oracle — the minimized reproducer
//! still fails.

use rand::rngs::StdRng;
use rand::SeedableRng;
use stamp_core::Annotations;
use stamp_isa::asm::assemble;
use stamp_isa::Program;
use stamp_suite::oracle::{self, FaultInjection, OracleConfig};
use stamp_suite::shrink::{line_count, shrink};
use stamp_suite::{generate, GenConfig};

/// The synthetic oracle: fails exactly when the program contains a
/// `div` instruction (the same predicate `--inject-fault contains-div`
/// wires into the campaign).
fn fails_synthetic_oracle(program: &Program) -> bool {
    let cfg = OracleConfig {
        fault: Some(FaultInjection::FlagMnemonic("div".to_string())),
        ..OracleConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0);
    oracle::check(program, &Annotations::new(), None, &cfg, &mut rng)
        .err()
        .is_some_and(|v| v.kind() == "injected")
}

/// Generated sources that fail the synthetic oracle (almost all do:
/// each straight-line statement is a `div` with probability 1/10).
fn failing_sources(count: usize) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < count {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = generate(&mut rng, &GenConfig::rich());
        let program = assemble(&src).expect("generated code assembles");
        if fails_synthetic_oracle(&program) {
            out.push((seed, src));
        }
        seed += 1;
        assert!(seed < 100, "could not find {count} failing seeds");
    }
    out
}

#[test]
fn shrinking_is_deterministic_for_a_fixed_seed() {
    for (seed, src) in failing_sources(4) {
        let run = || shrink(&src, 600, &mut |_, p| fails_synthetic_oracle(p));
        let (a, a_stats) = run();
        let (b, b_stats) = run();
        assert_eq!(a, b, "seed {seed}: shrinking diverged between runs");
        assert_eq!(a_stats, b_stats, "seed {seed}");
    }
}

#[test]
fn shrunk_programs_still_assemble() {
    for (seed, src) in failing_sources(4) {
        let (shrunk, stats) = shrink(&src, 600, &mut |_, p| fails_synthetic_oracle(p));
        let program = assemble(&shrunk)
            .unwrap_or_else(|e| panic!("seed {seed}: shrunk program broken: {e}\n{shrunk}"));
        assert!(program.insn_count() > 0, "seed {seed}");
        assert_eq!(stats.shrunk_lines, line_count(&shrunk), "seed {seed}");
    }
}

#[test]
fn minimized_reproducer_still_fails_the_injected_oracle() {
    for (seed, src) in failing_sources(4) {
        let (shrunk, stats) = shrink(&src, 600, &mut |_, p| fails_synthetic_oracle(p));
        let program = assemble(&shrunk).expect("shrunk program assembles");
        assert!(
            fails_synthetic_oracle(&program),
            "seed {seed}: minimized reproducer no longer fails\n{shrunk}"
        );
        // The predicate is a single instruction, so minimization must
        // go deep: well under a quarter of the original.
        assert!(
            stats.shrunk_lines * 4 <= stats.original_lines,
            "seed {seed}: {} of {} lines left",
            stats.shrunk_lines,
            stats.original_lines
        );
    }
}

#[test]
fn shrinking_respects_its_evaluation_budget() {
    let (_, src) = failing_sources(1).remove(0);
    for budget in [1usize, 5, 25] {
        let (shrunk, stats) = shrink(&src, budget, &mut |_, p| fails_synthetic_oracle(p));
        assert!(stats.evaluations <= budget, "{} > {budget}", stats.evaluations);
        // Whatever the budget, the result is valid: it assembles and
        // still fails (or is the untouched original).
        let program = assemble(&shrunk).expect("budgeted shrink output assembles");
        assert!(fails_synthetic_oracle(&program));
    }
}
