//! Modular path analysis: series-parallel decomposition of the IPET ILP
//! with memoized segment summaries.
//!
//! The monolithic ILP of [`crate::analyze`] grows super-linearly in the
//! supergraph, and the exact branch-and-bound solver pays for it: on the
//! generated scaling series the path phase dominates total analysis time
//! by two orders of magnitude at the largest sizes. This module restores
//! the modularity the paper attributes to per-procedure analysis: it cuts
//! the supergraph at *series points* — nodes that every execution passes
//! exactly once — solves each segment's ILP independently, and composes
//! the segment optima by addition. Because identical procedure bodies
//! expand to isomorphic segments, each segment is reduced to a canonical
//! byte string and solved **once**; repeats (further call sites, other
//! jobs, warm stores) recall the [`SegmentSummary`] through a
//! [`SummaryMemo`] instead of re-solving.
//!
//! # Cut points
//!
//! A node `c` is a valid cut when
//!
//! 1. `c` dominates every exit (so every source→sink path passes it),
//! 2. `c` lies on no cycle (so circulations never touch it), and
//! 3. `c` carries no [`Frame::Loop`] in its context (so every
//!    loop-instance constraint stays within one segment — any node
//!    between a loop's first-iteration and steady-state contexts carries
//!    that loop's frame).
//!
//! (1) and (2) force `count(c) = 1` in *every* feasible integer flow:
//! a unit of flow from the virtual source to the single fired sink
//! decomposes into one path — which passes every dominator of the exits
//! — plus circulations, which avoid acyclic nodes. Splitting at `c`
//! therefore loses nothing: the restriction of a global optimum is
//! feasible per segment, and gluing per-segment optima (each boundary
//! fires exactly once on both sides) is feasible globally, so the sum of
//! segment optima equals the global optimum exactly.
//!
//! The candidate cuts are the common dominators of all exits — the
//! dominator-tree chain of their nearest common dominator — filtered by
//! (2) and (3); this aligns segments with the call structure, so a
//! procedure called from ten sites yields ten isomorphic segments and
//! one solve.
//!
//! # Safety net
//!
//! Decomposition is *validated, not trusted*: after assigning every node
//! a segment, the module checks that edge ownership is consistent, that
//! every loop instance and infeasibility pin falls inside one segment,
//! and that each segment's traversal covers all its edges. Any violation
//! abandons decomposition for that program and [`crate::analyze`] solves
//! the monolithic ILP instead — the summarized path can only ever
//! reproduce the exact monolithic optimum or step aside.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use stamp_ai::{Frame, IEdge, IEdgeId, Icfg, NodeId};
use stamp_ilp::{CmpOp, LpProblem};

use crate::{Formula, InstanceRule, PathError};

/// The solved optimum of one canonical segment ILP.
///
/// `values` holds the witness assignment in canonical variable order
/// (source, then edges in traversal order, then sinks); `objective` is
/// the segment's contribution to the WCET objective. Stored in the
/// artifact store keyed by the canonical segment bytes, so the summary
/// is shared across call sites, jobs, and processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Optimal objective value of the segment ILP.
    pub objective: i64,
    /// Optimal variable assignment, indexed by canonical variable.
    pub values: Vec<i64>,
}

impl stamp_codec::Codec for SegmentSummary {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u64(self.objective as u64);
        e.len_prefix(self.values.len());
        for &v in &self.values {
            e.u64(v as u64);
        }
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<SegmentSummary, stamp_codec::CodecError> {
        let objective = d.u64()? as i64;
        let n = d.len_prefix(8)?;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(d.u64()? as i64);
        }
        Ok(SegmentSummary { objective, values })
    }
}

/// Where segment summaries are looked up and recorded.
///
/// `canonical` is the canonical byte form of the segment ILP (stable
/// across isomorphic segments); `solve` produces the summary when the
/// memo has no entry. Implementations decide the sharing scope: none
/// ([`NoMemo`]), per-analysis ([`LocalMemo`]), or cross-job/process
/// (the artifact-store broker in `stamp-core`).
pub trait SummaryMemo {
    /// Returns the summary for `canonical`, solving via `solve` on a
    /// miss. Solve errors must not be cached.
    fn summarize(
        &self,
        canonical: &[u8],
        solve: &mut dyn FnMut() -> Result<SegmentSummary, PathError>,
    ) -> Result<Arc<SegmentSummary>, PathError>;
}

/// A memo that never remembers: every segment is solved fresh.
pub struct NoMemo;

impl SummaryMemo for NoMemo {
    fn summarize(
        &self,
        _canonical: &[u8],
        solve: &mut dyn FnMut() -> Result<SegmentSummary, PathError>,
    ) -> Result<Arc<SegmentSummary>, PathError> {
        solve().map(Arc::new)
    }
}

/// An in-memory memo scoped to one analysis: repeated procedure bodies
/// within a single program are solved once.
#[derive(Default)]
pub struct LocalMemo {
    cache: RefCell<HashMap<Vec<u8>, Arc<SegmentSummary>>>,
}

impl SummaryMemo for LocalMemo {
    fn summarize(
        &self,
        canonical: &[u8],
        solve: &mut dyn FnMut() -> Result<SegmentSummary, PathError>,
    ) -> Result<Arc<SegmentSummary>, PathError> {
        if let Some(hit) = self.cache.borrow().get(canonical) {
            return Ok(hit.clone());
        }
        let summary = Arc::new(solve()?);
        self.cache.borrow_mut().insert(canonical.to_vec(), summary.clone());
        Ok(summary)
    }
}

/// One canonical constraint: `(op, rhs, terms)` with terms as
/// `(variable, coefficient)` pairs sorted by variable.
type SegConstraint = (CmpOp, i64, Vec<(u32, i64)>);

/// One segment's ILP in canonical form: variable 0 is the segment
/// source, variables `1..=edges.len()` are the owned edges in traversal
/// order, and any remaining variables are sinks. `constraints` hold
/// canonical variable indices with terms sorted by variable.
struct SegLp {
    obj: Vec<i64>,
    constraints: Vec<SegConstraint>,
    /// Global edge behind each canonical edge variable.
    edges: Vec<IEdgeId>,
}

impl SegLp {
    /// Serializes the segment ILP into its canonical byte form — the
    /// memo key. Isomorphic segments (same shape, same objective
    /// coefficients, same bounds) produce identical bytes regardless of
    /// where in the supergraph they sit.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut e = stamp_codec::Enc::new();
        e.u8(1); // canonical-form version
        e.u32(self.edges.len() as u32);
        e.u32(self.obj.len() as u32);
        for &c in &self.obj {
            e.u64(c as u64);
        }
        e.u32(self.constraints.len() as u32);
        for (op, rhs, terms) in &self.constraints {
            e.u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Le => 1,
                CmpOp::Ge => 2,
            });
            e.u64(*rhs as u64);
            e.u32(terms.len() as u32);
            for &(v, c) in terms {
                e.u32(v);
                e.u64(c as u64);
            }
        }
        e.into_bytes()
    }

    /// Builds and solves the concrete ILP for this segment.
    fn solve(&self) -> Result<SegmentSummary, PathError> {
        let mut lp = LpProblem::new();
        for (i, &c) in self.obj.iter().enumerate() {
            lp.add_var(format!("v{i}"), c);
        }
        for (op, rhs, terms) in &self.constraints {
            lp.add_constraint(
                terms.iter().map(|&(v, c)| (stamp_ilp::VarId(v as usize), c)),
                *op,
                *rhs,
            );
        }
        let sol = lp.maximize_integer()?;
        Ok(SegmentSummary { objective: sol.objective, values: sol.values })
    }
}

/// Reverse postorder over the supergraph, or `None` when some node is
/// unreachable from the entry (decomposition then steps aside).
fn reverse_postorder(icfg: &Icfg) -> Option<Vec<u32>> {
    let n = icfg.nodes().len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut post: Vec<u32> = Vec::with_capacity(n);
    // Iterative DFS; the stack holds (node, next-successor cursor).
    let mut stack: Vec<(u32, usize)> = vec![(icfg.entry().index() as u32, 0)];
    state[icfg.entry().index()] = 1;
    while let Some(top) = stack.last_mut() {
        let (u, cursor) = (top.0, top.1);
        top.1 += 1;
        match icfg.succs(NodeId(u)).nth(cursor) {
            Some(e) => {
                let v = e.to.index();
                if state[v] == 0 {
                    state[v] = 1;
                    stack.push((v as u32, 0));
                }
            }
            None => {
                state[u as usize] = 2;
                post.push(u);
                stack.pop();
            }
        }
    }
    if post.len() != n {
        return None;
    }
    post.reverse();
    Some(post)
}

/// Cooper–Harvey–Kennedy iterative dominators over a reverse postorder.
/// Returns the immediate dominator per node (entry maps to itself).
fn dominators(icfg: &Icfg, rpo: &[u32], rpo_num: &[u32]) -> Vec<u32> {
    let n = icfg.nodes().len();
    let entry = icfg.entry().index();
    let mut idom = vec![u32::MAX; n];
    idom[entry] = entry as u32;
    let mut changed = true;
    while changed {
        changed = false;
        for &u in rpo.iter().skip(1) {
            let mut new_idom = u32::MAX;
            for e in icfg.preds(NodeId(u)) {
                let p = e.from.index();
                if idom[p] == u32::MAX {
                    continue;
                }
                new_idom = if new_idom == u32::MAX {
                    p as u32
                } else {
                    intersect(new_idom, p as u32, &idom, rpo_num)
                };
            }
            if new_idom != u32::MAX && idom[u as usize] != new_idom {
                idom[u as usize] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Nearest common dominator of two nodes (the classic two-finger walk).
fn intersect(mut a: u32, mut b: u32, idom: &[u32], rpo_num: &[u32]) -> u32 {
    while a != b {
        while rpo_num[a as usize] > rpo_num[b as usize] {
            a = idom[a as usize];
        }
        while rpo_num[b as usize] > rpo_num[a as usize] {
            b = idom[b as usize];
        }
    }
    a
}

/// Marks every node that lies on some cycle: members of a non-trivial
/// strongly connected component, or targets of a self-loop. Iterative
/// Tarjan, since generated call chains can be deep.
fn on_cycle(icfg: &Icfg) -> Vec<bool> {
    let n = icfg.nodes().len();
    let mut cyclic = vec![false; n];
    for e in icfg.edges() {
        if e.from == e.to {
            cyclic[e.to.index()] = true;
        }
    }
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut dfs: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        dfs.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        on_stack[root as usize] = true;
        scc_stack.push(root);
        while let Some(top) = dfs.last_mut() {
            let (u, cursor) = (top.0, top.1);
            match icfg.succs(NodeId(u)).nth(cursor) {
                Some(e) => {
                    dfs.last_mut().expect("nonempty").1 += 1;
                    let v = e.to.index();
                    if index[v] == u32::MAX {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        on_stack[v] = true;
                        scc_stack.push(v as u32);
                        dfs.push((v as u32, 0));
                    } else if on_stack[v] {
                        low[u as usize] = low[u as usize].min(index[v]);
                    }
                }
                None => {
                    dfs.pop();
                    if let Some(&(p, _)) = dfs.last() {
                        low[p as usize] = low[p as usize].min(low[u as usize]);
                    }
                    if low[u as usize] == index[u as usize] {
                        // Pop the component; size ≥ 2 means a cycle.
                        let mut members: Vec<u32> = Vec::new();
                        loop {
                            let w = scc_stack.pop().expect("scc stack");
                            on_stack[w as usize] = false;
                            members.push(w);
                            if w == u {
                                break;
                            }
                        }
                        if members.len() >= 2 {
                            for w in members {
                                cyclic[w as usize] = true;
                            }
                        }
                    }
                }
            }
        }
    }
    cyclic
}

/// Does this node's calling context carry any loop frame? Such nodes
/// sit between a loop's peeled and steady-state contexts (or inside a
/// callee invoked from a loop body); cutting there would split that
/// loop's instance constraint across segments.
fn in_loop_context(icfg: &Icfg, node: u32) -> bool {
    let ctx = icfg.node(NodeId(node)).ctx;
    icfg.ctxs().get(ctx).frames().iter().any(|f| matches!(f, Frame::Loop { .. }))
}

/// Attempts the summarized solve: decompose at series cuts, solve each
/// segment through `memo`, compose. Returns `Ok(None)` when the program
/// offers no valid decomposition (the caller then solves the monolithic
/// ILP) and `Ok(Some((objective, edge_values)))` on success, with
/// `edge_values` indexed densely by supergraph edge.
pub(crate) fn solve_summarized(
    icfg: &Icfg,
    formula: &Formula,
    memo: &dyn SummaryMemo,
) -> Result<Option<(i64, Vec<i64>)>, PathError> {
    let n = icfg.nodes().len();
    let exits = icfg.exits();
    if exits.is_empty() || n == 0 {
        return Ok(None);
    }
    let Some(rpo) = reverse_postorder(icfg) else {
        return Ok(None);
    };
    let mut rpo_num = vec![0u32; n];
    for (i, &u) in rpo.iter().enumerate() {
        rpo_num[u as usize] = i as u32;
    }
    let idom = dominators(icfg, &rpo, &rpo_num);
    let cyclic = on_cycle(icfg);
    let mut is_exit = vec![false; n];
    for &x in exits {
        is_exit[x.index()] = true;
    }

    // Candidate cuts: the dominator chain of the exits' nearest common
    // dominator, entry-side first, filtered to valid series points.
    let entry = icfg.entry().index() as u32;
    let mut ncd = exits[0].index() as u32;
    for &x in &exits[1..] {
        ncd = intersect(ncd, x.index() as u32, &idom, &rpo_num);
    }
    let mut chain: Vec<u32> = Vec::new();
    let mut c = ncd;
    while c != entry {
        chain.push(c);
        c = idom[c as usize];
    }
    chain.reverse();
    let cuts: Vec<u32> = chain
        .into_iter()
        .filter(|&c| !cyclic[c as usize] && !is_exit[c as usize] && !in_loop_context(icfg, c))
        .collect();
    if cuts.is_empty() {
        return Ok(None);
    }
    let k = cuts.len();

    // Segment index per node: one more than the number of cuts strictly
    // dominating it. Cut j itself lands in segment j (its in-edges close
    // segment j; its out-edges open segment j+1).
    let mut cut_no = vec![usize::MAX; n];
    for (j, &c) in cuts.iter().enumerate() {
        cut_no[c as usize] = j;
    }
    let mut seg = vec![0usize; n];
    for &u in rpo.iter().skip(1) {
        let d = idom[u as usize] as usize;
        seg[u as usize] = seg[d] + usize::from(cut_no[d] != usize::MAX);
    }

    // An edge belongs to the segment of its target; a cut's out-edges
    // must open the next segment and every other edge must stay inside
    // its source's segment — otherwise the decomposition is invalid.
    let owner = |e: &IEdge| seg[e.to.index()];
    for e in icfg.edges() {
        let f = e.from.index();
        let expected = if cut_no[f] != usize::MAX { cut_no[f] + 1 } else { seg[f] };
        if owner(e) != expected {
            return Ok(None);
        }
    }
    if exits.iter().any(|x| seg[x.index()] != k) {
        return Ok(None);
    }
    // Every loop instance and every infeasibility pin must fall within
    // a single segment.
    for inst in &formula.instances {
        let mut edges = inst.entries.iter().chain(inst.backs.iter());
        let first = match edges.next() {
            Some(&e) => seg[icfg.edge(e).to.index()],
            None => continue,
        };
        if edges.any(|&e| seg[icfg.edge(e).to.index()] != first) {
            return Ok(None);
        }
    }
    let mut owned_edges = vec![0usize; k + 1];
    for e in icfg.edges() {
        owned_edges[owner(e)] += 1;
    }

    let mut total_objective: i64 = 0;
    let mut edge_values = vec![0i64; icfg.edges().len()];
    for i in 0..=k {
        let boundary = if i == 0 { entry } else { cuts[i - 1] };
        let sink_boundary = if i < k { Some(cuts[i]) } else { None };
        let Some(seglp) =
            build_segment(icfg, formula, i, boundary, sink_boundary, &seg, &cut_no, owned_edges[i])
        else {
            return Ok(None);
        };
        let canonical = seglp.canonical_bytes();
        let summary = memo.summarize(&canonical, &mut || seglp.solve())?;
        // A recalled summary of the wrong shape (corrupt or stale store
        // entry) is discarded; the segment is solved inline instead.
        let summary = if summary.values.len() == seglp.obj.len() {
            summary
        } else {
            Arc::new(seglp.solve()?)
        };
        total_objective += summary.objective;
        for (j, &eid) in seglp.edges.iter().enumerate() {
            edge_values[eid.index()] = summary.values[1 + j];
        }
    }
    Ok(Some((total_objective, edge_values)))
}

/// Builds segment `i`'s canonical ILP: breadth-first traversal from the
/// boundary over owned edges fixes the canonical numbering, then the
/// constraints are emitted in a fixed order. Returns `None` when the
/// traversal fails to cover every owned edge.
#[allow(clippy::too_many_arguments)]
fn build_segment(
    icfg: &Icfg,
    formula: &Formula,
    i: usize,
    boundary: u32,
    sink_boundary: Option<u32>,
    seg: &[usize],
    cut_no: &[usize],
    owned_edges: usize,
) -> Option<SegLp> {
    let n = icfg.nodes().len();
    let mut canon_node = vec![u32::MAX; n];
    let mut visit_order: Vec<u32> = vec![boundary];
    canon_node[boundary as usize] = 0;
    let mut edges: Vec<IEdgeId> = Vec::new();
    let mut canon_edge: HashMap<IEdgeId, u32> = HashMap::new();
    let mut queue: VecDeque<u32> = VecDeque::from([boundary]);
    while let Some(u) = queue.pop_front() {
        // A cut's out-edges belong to the next segment.
        if cut_no[u as usize] != usize::MAX && u != boundary {
            continue;
        }
        for e in icfg.succs(NodeId(u)) {
            if seg[e.to.index()] != i {
                continue;
            }
            canon_edge.insert(e.id, edges.len() as u32);
            edges.push(e.id);
            let v = e.to.index();
            if canon_node[v] == u32::MAX {
                canon_node[v] = visit_order.len() as u32;
                visit_order.push(v as u32);
                queue.push_back(v as u32);
            }
        }
    }
    if edges.len() != owned_edges {
        return None;
    }

    // Variables: 0 = source, 1..=E = edges, then sinks (last segment).
    let source = 0u32;
    let evar = |eid: IEdgeId| 1 + canon_edge[&eid];
    let mut obj: Vec<i64> = Vec::with_capacity(1 + edges.len());
    obj.push(if i == 0 { formula.entry_time } else { 0 });
    for &eid in &edges {
        obj.push(formula.coeff[eid.index()]);
    }
    let mut sinks: Vec<(u32, u32)> = Vec::new(); // (node, var)
    if sink_boundary.is_none() {
        let mut xs: Vec<u32> = icfg.exits().iter().map(|x| x.index() as u32).collect();
        xs.sort_by_key(|&x| canon_node[x as usize]);
        for x in xs {
            if canon_node[x as usize] == u32::MAX {
                return None;
            }
            sinks.push((x, obj.len() as u32));
            obj.push(0);
        }
    }
    let sink_of: HashMap<u32, u32> = sinks.iter().copied().collect();

    let mut cons: Vec<SegConstraint> = Vec::new();
    let push = |cons: &mut Vec<SegConstraint>, mut terms: Vec<(u32, i64)>, op: CmpOp, rhs: i64| {
        terms.sort_by_key(|&(v, _)| v);
        cons.push((op, rhs, terms));
    };

    // The segment source fires exactly once.
    push(&mut cons, vec![(source, 1)], CmpOp::Eq, 1);
    // Conservation, boundary first, then interior nodes in canonical
    // order. The boundary receives the source; in segment 0 the entry
    // may also have (owned) in-edges. The sink boundary's conservation
    // belongs to the next segment; here its inflow is pinned to one.
    for &u in &visit_order {
        if Some(u) == sink_boundary {
            let terms: Vec<(u32, i64)> = icfg.preds(NodeId(u)).map(|e| (evar(e.id), 1)).collect();
            push(&mut cons, terms, CmpOp::Eq, 1);
            continue;
        }
        let mut terms: Vec<(u32, i64)> = Vec::new();
        if u == boundary {
            terms.push((source, 1));
            if i == 0 {
                for e in icfg.preds(NodeId(u)) {
                    terms.push((evar(e.id), 1));
                }
            }
        } else {
            for e in icfg.preds(NodeId(u)) {
                terms.push((evar(e.id), 1));
            }
        }
        for e in icfg.succs(NodeId(u)) {
            terms.push((evar(e.id), -1));
        }
        if let Some(&s) = sink_of.get(&u) {
            terms.push((s, -1));
        }
        push(&mut cons, terms, CmpOp::Eq, 0);
    }
    // Exactly one sink fires (last segment only).
    if sink_boundary.is_none() && !sinks.is_empty() {
        push(&mut cons, sinks.iter().map(|&(_, v)| (v, 1i64)).collect(), CmpOp::Eq, 1);
    }

    // Owned loop instances, ordered by their smallest canonical edge so
    // isomorphic segments emit identical constraint sequences.
    let mut owned: Vec<&crate::Instance> = formula
        .instances
        .iter()
        .filter(|inst| {
            inst.entries
                .iter()
                .chain(inst.backs.iter())
                .next()
                .is_some_and(|&e| seg[icfg.edge(e).to.index()] == i)
        })
        .collect();
    owned.sort_by_key(|inst| inst.entries.iter().chain(inst.backs.iter()).map(|&e| evar(e)).min());
    for inst in owned {
        match inst.rule {
            InstanceRule::Bound(bound) => {
                let mut terms: Vec<(u32, i64)> = inst.backs.iter().map(|&b| (evar(b), 1)).collect();
                let mul = bound.saturating_sub(1).min(i64::MAX as u64) as i64;
                for &en in &inst.entries {
                    terms.push((evar(en), -mul));
                }
                push(&mut cons, terms, CmpOp::Le, 0);
            }
            InstanceRule::PinUnreachable => {
                let mut pinned: Vec<u32> =
                    inst.entries.iter().chain(inst.backs.iter()).map(|&e| evar(e)).collect();
                pinned.sort_unstable();
                for v in pinned {
                    push(&mut cons, vec![(v, 1)], CmpOp::Le, 0);
                }
            }
        }
    }
    // Owned infeasibility pins, by canonical edge.
    let mut pins: Vec<u32> = formula
        .pins
        .iter()
        .filter(|&&e| seg[icfg.edge(e).to.index()] == i)
        .map(|&e| evar(e))
        .collect();
    pins.sort_unstable();
    for v in pins {
        push(&mut cons, vec![(v, 1)], CmpOp::Le, 0);
    }

    Some(SegLp { obj, constraints: cons, edges })
}
