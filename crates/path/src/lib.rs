//! # stamp-path — path analysis by implicit path enumeration (IPET)
//!
//! The final phase of the paper's pipeline: "path analysis determines a
//! worst-case execution path of the program" using "integer linear
//! programming".
//!
//! One ILP variable counts the traversals of each supergraph edge. Flow
//! conservation ties edge counts to block counts, the loop-bound analysis
//! contributes `Σ back-edges ≤ (bound−1) · Σ entries` per loop instance,
//! and the value analysis contributes `x_e = 0` for infeasible edges
//! ("their execution time does not contribute to the overall WCET … and
//! need not be determined in the first place"). The objective maximizes
//!
//! ```text
//! Σ_nodes time(node)·count(node) + Σ_edges penalty(edge)·x_edge
//! ```
//!
//! which the exact solver in `stamp-ilp` turns into the WCET bound and a
//! witness assignment of worst-case execution counts.
//!
//! # Example
//!
//! See `stamp-core`, which wires all phases together; this crate's tests
//! verify WCET bounds against the cycle-accurate simulator.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use stamp_ai::{Frame, IEdgeId, IEdgeKind, Icfg, NodeId};
use stamp_cfg::{BlockId, Cfg};
use stamp_ilp::{CmpOp, IlpError, LpProblem, VarId};
use stamp_loopbound::LoopBoundAnalysis;
use stamp_pipeline::PipelineAnalysis;
use stamp_value::ValueAnalysis;

mod summary;

pub use summary::{LocalMemo, NoMemo, SegmentSummary, SummaryMemo};

/// Errors from the path analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// A loop instance has no bound (neither computed nor annotated);
    /// the ILP would be unbounded.
    MissingLoopBound {
        /// Address of the loop header's first instruction.
        header_addr: u32,
    },
    /// The CFG still contains unresolved indirect jumps.
    UnresolvedIndirect {
        /// Address of the indirect jump.
        addr: u32,
    },
    /// The underlying ILP failed.
    Ilp(IlpError),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::MissingLoopBound { header_addr } => write!(
                f,
                "no loop bound for the loop headed at {header_addr:#010x}; add an annotation"
            ),
            PathError::UnresolvedIndirect { addr } => {
                write!(f, "unresolved indirect jump at {addr:#010x}; add a target annotation")
            }
            PathError::Ilp(e) => write!(f, "path ILP failed: {e}"),
        }
    }
}

impl Error for PathError {}

impl From<IlpError> for PathError {
    fn from(e: IlpError) -> PathError {
        PathError::Ilp(e)
    }
}

/// Options for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct PathOptions {
    /// Pin value-analysis-infeasible edges to zero (disable for the E4
    /// ablation).
    pub use_infeasible: bool,
    /// Decompose the ILP at series cut points and solve memoized
    /// per-segment summaries (see [`SummaryMemo`]); the composed
    /// optimum is exactly the monolithic one. Disable to force the
    /// single whole-supergraph solve.
    pub summaries: bool,
}

impl Default for PathOptions {
    fn default() -> PathOptions {
        PathOptions { use_infeasible: true, summaries: true }
    }
}

/// The WCET bound together with its witness counts.
#[derive(Clone, Debug)]
pub struct WcetResult {
    /// The worst-case execution time bound in cycles.
    pub wcet: u64,
    /// Worst-case traversal count per supergraph edge.
    pub edge_counts: HashMap<IEdgeId, u64>,
    /// Worst-case execution count per supergraph node.
    pub node_counts: HashMap<NodeId, u64>,
    /// Size of the ILP (variables, constraints) — reported as analysis
    /// statistics.
    pub ilp_size: (usize, usize),
}

impl WcetResult {
    /// Worst-case execution counts aggregated per basic block (summed
    /// over contexts) — comparable with the simulator's per-address
    /// execution counts.
    pub fn block_counts(&self, icfg: &Icfg) -> HashMap<BlockId, u64> {
        let mut m = HashMap::new();
        for (&n, &c) in &self.node_counts {
            *m.entry(icfg.node(n).block).or_insert(0) += c;
        }
        m
    }

    /// A concrete worst-case path (block/context sequence), reconstructed
    /// from the edge counts by an Euler-style walk. Intended for reports;
    /// truncated to `limit` nodes.
    pub fn worst_path(&self, icfg: &Icfg, limit: usize) -> Vec<NodeId> {
        let mut remaining: HashMap<IEdgeId, u64> = self.edge_counts.clone();
        let mut path = vec![icfg.entry()];
        let mut cur = icfg.entry();
        while path.len() < limit {
            // Prefer the outgoing edge with the largest remaining count.
            let next = icfg
                .succs(cur)
                .filter(|e| remaining.get(&e.id).copied().unwrap_or(0) > 0)
                .max_by_key(|e| remaining[&e.id]);
            match next {
                Some(e) => {
                    *remaining.get_mut(&e.id).expect("present") -= 1;
                    path.push(e.to);
                    cur = e.to;
                }
                None => break,
            }
        }
        path
    }
}

impl stamp_codec::Codec for WcetResult {
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u64(self.wcet);
        self.edge_counts.enc(e);
        self.node_counts.enc(e);
        self.ilp_size.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<WcetResult, stamp_codec::CodecError> {
        Ok(WcetResult {
            wcet: d.u64()?,
            edge_counts: HashMap::dec(d)?,
            node_counts: HashMap::dec(d)?,
            ilp_size: stamp_codec::Codec::dec(d)?,
        })
    }
}

/// How one loop instance constrains its edge counts.
enum InstanceRule {
    /// `Σ backs − (bound−1) · Σ entries ≤ 0`.
    Bound(u64),
    /// The instance is provably never entered: every edge pinned to 0.
    PinUnreachable,
}

/// One loop instance's edges together with its constraint rule,
/// recorded so the summarized solve can re-emit the same constraints
/// per segment.
struct Instance {
    entries: Vec<IEdgeId>,
    backs: Vec<IEdgeId>,
    rule: InstanceRule,
}

/// The fully constructed IPET ILP plus the structure the summarized
/// solve needs: per-edge objective coefficients, loop instances, and
/// infeasibility pins. The monolithic problem is always built — its
/// construction is linear and it pins down `ilp_size` identically in
/// both modes — but in summarized mode only the segments are solved.
struct Formula {
    lp: LpProblem,
    /// ILP variable per supergraph edge, dense by edge index.
    evar: Vec<VarId>,
    /// Objective coefficient per supergraph edge, dense by edge index.
    coeff: Vec<i64>,
    /// Objective coefficient of the virtual source (entry node time).
    entry_time: i64,
    instances: Vec<Instance>,
    /// Infeasible edges pinned to zero (empty when ablated).
    pins: Vec<IEdgeId>,
    size: (usize, usize),
}

/// Runs the IPET path analysis.
///
/// With `options.summaries` set (the default) the ILP is decomposed at
/// series cut points and solved per segment with an analysis-local
/// memo, so repeated procedure bodies are solved once; the result is
/// exactly the monolithic optimum. Use [`analyze_with_memo`] to share
/// segment summaries beyond a single call.
///
/// # Errors
///
/// See [`PathError`]; in particular every loop instance must carry a
/// bound.
pub fn analyze(
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
    lb: &LoopBoundAnalysis,
    pa: &PipelineAnalysis,
    options: &PathOptions,
) -> Result<WcetResult, PathError> {
    analyze_with_memo(cfg, icfg, va, lb, pa, options, &LocalMemo::default())
}

/// [`analyze`] with an explicit segment-summary memo, letting callers
/// share summaries across programs, jobs, and processes (ignored when
/// `options.summaries` is off).
pub fn analyze_with_memo(
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
    lb: &LoopBoundAnalysis,
    pa: &PipelineAnalysis,
    options: &PathOptions,
    memo: &dyn SummaryMemo,
) -> Result<WcetResult, PathError> {
    if let Some(&addr) = cfg.unresolved_indirects().first() {
        return Err(PathError::UnresolvedIndirect { addr });
    }

    let formula = prepare(cfg, icfg, va, lb, pa, options)?;
    let summarized =
        if options.summaries { summary::solve_summarized(icfg, &formula, memo)? } else { None };
    let (objective, edge_values) = match summarized {
        Some(composed) => composed,
        None => {
            let sol = formula.lp.maximize_integer()?;
            let values = formula.evar.iter().map(|v| sol.values[v.0]).collect();
            (sol.objective, values)
        }
    };

    let mut edge_counts = HashMap::new();
    for (e, &v) in icfg.edges().iter().zip(edge_values.iter()) {
        let c = v.max(0) as u64;
        if c > 0 {
            edge_counts.insert(e.id, c);
        }
    }
    let mut node_counts: HashMap<NodeId, u64> = HashMap::new();
    for nd in icfg.nodes() {
        let mut c: u64 = 0;
        for e in icfg.preds(nd.id) {
            c += edge_counts.get(&e.id).copied().unwrap_or(0);
        }
        if nd.id == icfg.entry() {
            c += 1; // the source edge
        }
        if c > 0 {
            node_counts.insert(nd.id, c);
        }
    }

    Ok(WcetResult {
        // Persistent lines may each miss once over the whole task; the
        // pipeline analysis priced those accesses as hits and exposes
        // the one-time budget here.
        wcet: objective.max(0) as u64 + pa.ps_extra_cycles(),
        edge_counts,
        node_counts,
        ilp_size: formula.size,
    })
}

/// Builds the IPET ILP and the summarization structure.
fn prepare(
    cfg: &Cfg,
    icfg: &Icfg,
    va: &ValueAnalysis,
    lb: &LoopBoundAnalysis,
    pa: &PipelineAnalysis,
    options: &PathOptions,
) -> Result<Formula, PathError> {
    let mut lp = LpProblem::new();

    // One variable per supergraph edge, plus a virtual source and one
    // sink per exit node.
    let mut evar: Vec<VarId> = Vec::with_capacity(icfg.edges().len());
    let mut coeffs: Vec<i64> = Vec::with_capacity(icfg.edges().len());
    for e in icfg.edges() {
        // Objective: entering a node costs the node's time; traversing a
        // taken transfer costs the penalty.
        let t = pa.time(e.to).unwrap_or(0);
        let coeff = (t + pa.edge_penalty(cfg, icfg, e)) as i64;
        let v = lp.add_var(format!("e{}", e.id.index()), coeff);
        debug_assert_eq!(evar.len(), e.id.index());
        evar.push(v);
        coeffs.push(coeff);
    }
    let entry_time = pa.time(icfg.entry()).unwrap_or(0);
    let source = lp.add_var("source", entry_time as i64);
    let mut sinks: HashMap<NodeId, VarId> = HashMap::new();
    for &x in icfg.exits() {
        sinks.insert(x, lp.add_var(format!("sink{}", x.index()), 0));
    }

    // Source fires exactly once.
    lp.add_constraint([(source, 1)], CmpOp::Eq, 1);

    // Flow conservation at every node.
    for nd in icfg.nodes() {
        let mut terms: Vec<(VarId, i64)> = Vec::new();
        for e in icfg.preds(nd.id) {
            terms.push((evar[e.id.index()], 1));
        }
        if nd.id == icfg.entry() {
            terms.push((source, 1));
        }
        for e in icfg.succs(nd.id) {
            terms.push((evar[e.id.index()], -1));
        }
        if let Some(&sink) = sinks.get(&nd.id) {
            terms.push((sink, -1));
        }
        lp.add_constraint(terms, CmpOp::Eq, 0);
    }

    // At most one task exit in total (the task stops at the first halt).
    let sink_terms: Vec<(VarId, i64)> = sinks.values().map(|&v| (v, 1)).collect();
    if !sink_terms.is_empty() {
        lp.add_constraint(sink_terms, CmpOp::Eq, 1);
    }

    // Loop bounds per loop instance: (header, stripped context) →
    // (entry edges, back edges).
    type LoopInstanceKey = (BlockId, Vec<Frame>);
    type LoopInstanceEdges = (Vec<IEdgeId>, Vec<IEdgeId>);
    let mut instances: HashMap<LoopInstanceKey, LoopInstanceEdges> = HashMap::new();
    for e in icfg.edges() {
        let to = icfg.node(e.to);
        // Instance key: target context with the loop's own trailing frame
        // stripped (matching `stamp-loopbound`).
        let header = to.block;
        let is_back_of_header =
            matches!(e.kind, IEdgeKind::Intra { back_edge_of: Some(h), .. } if h == header);
        let header_has_loop = lb.bounds().keys().any(|(h, _)| *h == header)
            || lb.unbounded().iter().any(|(h, _)| *h == header);
        if !header_has_loop {
            continue;
        }
        let ctx = icfg.ctxs().get(to.ctx);
        let mut frames = ctx.frames().to_vec();
        if matches!(frames.last(), Some(Frame::Loop { header: h, .. }) if *h == header) {
            frames.pop();
        }
        let entry = instances.entry((header, frames)).or_default();
        if is_back_of_header {
            entry.1.push(e.id);
        } else {
            entry.0.push(e.id);
        }
    }
    let infeasible_set: std::collections::HashSet<IEdgeId> =
        va.infeasible_edges().iter().copied().collect();
    // Deterministic instance order (HashMap iteration is not): sorted
    // by (header, stripped context).
    let mut instances: Vec<(LoopInstanceKey, LoopInstanceEdges)> = instances.into_iter().collect();
    instances.sort_by(|a, b| a.0.cmp(&b.0));
    let mut recorded: Vec<Instance> = Vec::new();
    for ((header, frames), (entries, backs)) in instances {
        if backs.is_empty() {
            continue;
        }
        let rule = match lb.bound(header, &frames) {
            Some(bound) => {
                // Σ backs − (bound−1) · Σ entries ≤ 0.
                let mut terms: Vec<(VarId, i64)> = Vec::new();
                for b in &backs {
                    terms.push((evar[b.index()], 1));
                }
                let k = (bound.saturating_sub(1)).min(i64::MAX as u64) as i64;
                for en in &entries {
                    terms.push((evar[en.index()], -k));
                }
                lp.add_constraint(terms, CmpOp::Le, 0);
                InstanceRule::Bound(bound)
            }
            None => {
                // A bound is unnecessary when the instance is provably
                // never entered: pin its flow to zero instead. (This is
                // a genuine reachability fact, so it applies even when
                // infeasible-path *path constraints* are ablated.)
                let unreachable = entries.iter().all(|e| {
                    infeasible_set.contains(e) || va.entry_state(icfg.edge(*e).from).is_none()
                });
                if !unreachable {
                    return Err(PathError::MissingLoopBound {
                        header_addr: cfg.block(header).start,
                    });
                }
                for e in entries.iter().chain(backs.iter()) {
                    lp.add_constraint([(evar[e.index()], 1)], CmpOp::Le, 0);
                }
                InstanceRule::PinUnreachable
            }
        };
        recorded.push(Instance { entries, backs, rule });
    }

    // Infeasible edges.
    let mut pins: Vec<IEdgeId> = Vec::new();
    if options.use_infeasible {
        for &e in va.infeasible_edges() {
            lp.add_constraint([(evar[e.index()], 1)], CmpOp::Le, 0);
            pins.push(e);
        }
    }

    let size = (lp.num_vars(), lp.num_constraints());
    Ok(Formula {
        lp,
        evar,
        coeff: coeffs,
        entry_time: entry_time as i64,
        instances: recorded,
        pins,
        size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_ai::VivuConfig;
    use stamp_cache::CacheAnalysis;
    use stamp_cfg::CfgBuilder;
    use stamp_hw::HwConfig;
    use stamp_isa::asm::assemble;
    use stamp_loopbound::LoopBoundOptions;
    use stamp_sim::Simulator;
    use stamp_value::ValueOptions;

    fn wcet_of(src: &str, hw: &HwConfig) -> (stamp_isa::Program, WcetResult) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &LoopBoundOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(hw, &cfg, &icfg, &ca, &va);
        let res =
            analyze(&cfg, &icfg, &va, &lb, &pa, &PathOptions::default()).expect("path analysis");
        (p, res)
    }

    #[test]
    fn straight_line_wcet_is_exact() {
        let src = ".text\nmain: li r1, 3\nmul r2, r1, r1\nhalt\n";
        for hw in [HwConfig::ideal(), HwConfig::default()] {
            let (p, res) = wcet_of(src, &hw);
            let mut sim = Simulator::new(&p, &hw);
            let c = sim.run(1000).unwrap().cycles;
            assert_eq!(res.wcet, c, "hw {hw:?}");
        }
    }

    #[test]
    fn counted_loop_wcet_is_exact_under_ideal_timing() {
        let src = ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(10_000).unwrap().cycles;
        assert_eq!(res.wcet, c);
    }

    #[test]
    fn loop_wcet_sound_and_tight_with_caches() {
        let src = ".text\nmain: li r1, 25\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let hw = HwConfig::default();
        let (p, res) = wcet_of(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(10_000).unwrap().cycles;
        assert!(res.wcet >= c, "unsound: {} < {}", res.wcet, c);
        assert!(
            res.wcet <= c + 24,
            "loose: bound {} vs simulated {} (cold-start slack only)",
            res.wcet,
            c
        );
    }

    #[test]
    fn branchy_max_path_found() {
        // Two arms with different costs: WCET takes the expensive arm
        // (12 cycles of divs) even though inputs are unknown.
        let src = "\
            .text
            main: beq r2, r0, cheap
                  div r3, r4, r5
                  halt
            cheap:
                  addi r3, r0, 1
                  halt
        ";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        // Simulate both arms, WCET must cover the worse one exactly.
        let mut worst = 0;
        for r2 in [0u32, 1] {
            let mut sim = Simulator::new(&p, &hw);
            sim.set_reg(stamp_isa::Reg::new(2), r2);
            worst = worst.max(sim.run(100).unwrap().cycles);
        }
        assert_eq!(res.wcet, worst);
    }

    #[test]
    fn infeasible_path_excluded() {
        // The expensive arm is dead: r1 is always 3.
        let src = "\
            .text
            main: li r1, 3
                  bne r1, r0, cheap
                  div r3, r4, r5
                  div r3, r4, r5
                  halt
            cheap:
                  addi r3, r0, 1
                  halt
        ";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(100).unwrap().cycles;
        assert_eq!(res.wcet, c, "pruning should make the bound exact");

        // Without infeasibility facts the bound inflates.
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &LoopBoundOptions::default());
        let ca = CacheAnalysis::run(&hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va);
        let loose = analyze(
            &cfg,
            &icfg,
            &va,
            &lb,
            &pa,
            &PathOptions { use_infeasible: false, ..PathOptions::default() },
        )
        .unwrap();
        assert!(loose.wcet > res.wcet);
    }

    #[test]
    fn nested_loop_counts_multiply() {
        let src = "\
            .text
            main:  li r1, 3
            outer: li r2, 4
            inner: addi r2, r2, -1
                   bnez r2, inner
                   addi r1, r1, -1
                   bnez r1, outer
                   halt
        ";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(10_000).unwrap().cycles;
        assert_eq!(res.wcet, c);
        // The inner body runs 12 times in the worst case.
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let inner = cfg.block_at(p.symbols.addr_of("inner").unwrap()).unwrap();
        let total: u64 =
            res.block_counts(&icfg).iter().filter(|(&b, _)| b == inner).map(|(_, &c)| c).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn call_costs_included() {
        let src = "\
            .text
            main: call f
                  call f
                  halt
            f:    div r1, r2, r3
                  ret
        ";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(1000).unwrap().cycles;
        assert_eq!(res.wcet, c);
    }

    #[test]
    fn missing_bound_is_reported() {
        // Data-dependent loop without annotation.
        let src = ".text\nmain: lw r1, 0(r2)\nloop: srli r1, r1, 1\nbnez r1, loop\nhalt\n";
        let p = assemble(src).unwrap();
        let hw = HwConfig::ideal();
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let va = ValueAnalysis::run(&p, &hw, &cfg, &icfg, &ValueOptions::default());
        let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &LoopBoundOptions::default());
        let ca = CacheAnalysis::run(&hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(&hw, &cfg, &icfg, &ca, &va);
        let err = analyze(&cfg, &icfg, &va, &lb, &pa, &PathOptions::default()).unwrap_err();
        assert!(matches!(err, PathError::MissingLoopBound { .. }));
    }

    /// All phases for `src` under `hw`, for tests that need to call
    /// [`analyze`] with non-default options.
    fn phases_of(
        src: &str,
        hw: &HwConfig,
    ) -> (stamp_isa::Program, Cfg, Icfg, ValueAnalysis, LoopBoundAnalysis, PipelineAnalysis) {
        let p = assemble(src).expect("assembles");
        let cfg = CfgBuilder::new(&p).build().expect("builds");
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).expect("expands");
        let va = ValueAnalysis::run(&p, hw, &cfg, &icfg, &ValueOptions::default());
        let lb = LoopBoundAnalysis::run(&p, &cfg, &icfg, &va, &LoopBoundOptions::default());
        let ca = CacheAnalysis::run(hw, &cfg, &icfg, &va);
        let pa = PipelineAnalysis::run(hw, &cfg, &icfg, &ca, &va);
        (p, cfg, icfg, va, lb, pa)
    }

    #[test]
    fn summarized_equals_monolithic_on_all_shapes() {
        // Every shape exercised above, both hardware models: the
        // summarized solve must reproduce the monolithic optimum (and
        // report the same ILP size) or fall back to it.
        let programs = [
            ".text\nmain: li r1, 3\nmul r2, r1, r1\nhalt\n",
            ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n",
            ".text\nmain: beq r2, r0, cheap\ndiv r3, r4, r5\nhalt\ncheap: addi r3, r0, 1\nhalt\n",
            ".text\nmain: li r1, 3\nbne r1, r0, cheap\ndiv r3, r4, r5\nhalt\ncheap: addi r3, r0, 1\nhalt\n",
            ".text\nmain: li r1, 3\nouter: li r2, 4\ninner: addi r2, r2, -1\nbnez r2, inner\naddi r1, r1, -1\nbnez r1, outer\nhalt\n",
            ".text\nmain: call f\ncall f\nhalt\nf: div r1, r2, r3\nret\n",
            ".text\nmain: call f\nli r4, 7\ncall g\nhalt\nf: div r1, r2, r3\nret\ng: call f\nret\n",
        ];
        for src in programs {
            for hw in [HwConfig::ideal(), HwConfig::default()] {
                let (_, cfg, icfg, va, lb, pa) = phases_of(src, &hw);
                let on = analyze(&cfg, &icfg, &va, &lb, &pa, &PathOptions::default()).unwrap();
                let off = analyze(
                    &cfg,
                    &icfg,
                    &va,
                    &lb,
                    &pa,
                    &PathOptions { summaries: false, ..PathOptions::default() },
                )
                .unwrap();
                assert_eq!(on.wcet, off.wcet, "src {src:?} hw {hw:?}");
                assert_eq!(on.ilp_size, off.ilp_size, "src {src:?} hw {hw:?}");
            }
        }
    }

    #[test]
    fn repeated_calls_reuse_segment_summaries() {
        use std::cell::Cell;

        /// A [`LocalMemo`] that counts lookups and actual solves.
        #[derive(Default)]
        struct CountingMemo {
            inner: LocalMemo,
            lookups: Cell<usize>,
            solves: Cell<usize>,
        }
        impl SummaryMemo for CountingMemo {
            fn summarize(
                &self,
                canonical: &[u8],
                solve: &mut dyn FnMut() -> Result<SegmentSummary, PathError>,
            ) -> Result<std::sync::Arc<SegmentSummary>, PathError> {
                self.lookups.set(self.lookups.get() + 1);
                self.inner.summarize(canonical, &mut || {
                    self.solves.set(self.solves.get() + 1);
                    solve()
                })
            }
        }

        // Three identical call sites expand to isomorphic supergraph
        // segments; under uniform (ideal) timing their canonical forms
        // coincide, so the memo must solve strictly fewer segments than
        // it serves.
        let src = "\
            .text
            main: call f
                  call f
                  call f
                  halt
            f:    div r1, r2, r3
                  ret
        ";
        let hw = HwConfig::ideal();
        let (p, cfg, icfg, va, lb, pa) = phases_of(src, &hw);
        let memo = CountingMemo::default();
        let opts = PathOptions::default();
        let res = analyze_with_memo(&cfg, &icfg, &va, &lb, &pa, &opts, &memo).unwrap();
        let mut sim = Simulator::new(&p, &hw);
        let c = sim.run(1000).unwrap().cycles;
        assert_eq!(res.wcet, c);
        assert!(memo.lookups.get() > 0, "no decomposition happened");
        assert!(
            memo.solves.get() < memo.lookups.get(),
            "no reuse: {} solves for {} segments",
            memo.solves.get(),
            memo.lookups.get()
        );
    }

    #[test]
    fn worst_path_reconstruction() {
        let src = ".text\nmain: li r1, 2\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";
        let hw = HwConfig::ideal();
        let (p, res) = wcet_of(src, &hw);
        let cfg = CfgBuilder::new(&p).build().unwrap();
        let icfg = Icfg::build(&cfg, &VivuConfig::default()).unwrap();
        let path = res.worst_path(&icfg, 100);
        assert_eq!(path.first(), Some(&icfg.entry()));
        // Path visits: entry, loop×2, halt = 4 nodes.
        assert_eq!(path.len(), 4);
    }
}
