//! # stamp-codec — binary (de)serialization for durable artifacts
//!
//! The durable artifact store (`stamp batch --store DIR`) persists
//! phase results across processes, which requires every cacheable
//! artifact to round-trip **exactly** — bit-identical fixpoints, no
//! float-text detours, no map-iteration nondeterminism. This crate
//! provides the shared encoding substrate:
//!
//! - [`Enc`] / [`Dec`]: a little-endian byte writer/reader pair with
//!   length-prefixed variable-size fields,
//! - the [`Codec`] trait with impls for primitives, tuples, `String`,
//!   `Option`, `Vec`, `BTreeMap`, `BTreeSet`, `HashMap` (hash maps are
//!   serialized in sorted key order so equal maps encode equal bytes),
//! - [`crc32`], the IEEE CRC-32 used to checksum on-disk records.
//!
//! Decoding is total: malformed input yields a [`CodecError`], never a
//! panic — the disk store treats any decode failure as a cache miss and
//! recomputes. Collection lengths are validated against the remaining
//! input before allocating, so a corrupt length prefix cannot trigger a
//! huge allocation.
//!
//! Each artifact crate implements [`Codec`] for its own types next to
//! their definitions (private fields stay private); the on-disk format
//! is versioned centrally by the store's schema fingerprint, so there
//! are no per-type version tags.
//!
//! # Example
//!
//! ```
//! use stamp_codec::{Codec, Dec, Enc};
//!
//! let mut e = Enc::new();
//! (42u32, "hello".to_string()).enc(&mut e);
//! let bytes = e.into_bytes();
//! let mut d = Dec::new(&bytes);
//! let back = <(u32, String)>::dec(&mut d)?;
//! assert_eq!(back, (42, "hello".to_string()));
//! assert!(d.finish().is_ok());
//! # Ok::<(), stamp_codec::CodecError>(())
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::hash::Hash;

/// Error produced when bytes do not decode to a valid value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Truncated,
    /// A tag, length or invariant check failed; names what was being
    /// decoded.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("truncated input"),
            CodecError::Invalid(what) => write!(f, "invalid encoding of {what}"),
        }
    }
}

impl Error for CodecError {}

/// A byte writer. All integers are little-endian; variable-length
/// fields are length-prefixed by their container's impl.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a collection length (`u32`; artifacts never approach 2^32
    /// elements).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not fit in `u32`.
    pub fn len_prefix(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("collection too large for artifact encoding"));
    }
}

/// A byte reader over an encoded buffer; the mirror of [`Enc`].
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a collection length and validates it against the remaining
    /// input, assuming every element occupies at least `min_elem_bytes`
    /// — a corrupt length prefix fails here instead of allocating.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Invalid("length prefix"));
        }
        Ok(n)
    }

    /// Asserts that every byte was consumed (trailing garbage is an
    /// error: it means the schema changed without a version bump).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Invalid("trailing bytes"))
        }
    }
}

/// Exact binary round-trip: `dec(enc(x)) == x` for every valid value.
pub trait Codec: Sized {
    /// Appends this value's encoding.
    fn enc(&self, e: &mut Enc);
    /// Decodes one value, consuming exactly what [`Codec::enc`] wrote.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or invalid input; never panics.
    fn dec(d: &mut Dec) -> Result<Self, CodecError>;
}

impl Codec for u8 {
    fn enc(&self, e: &mut Enc) {
        e.u8(*self);
    }
    fn dec(d: &mut Dec) -> Result<u8, CodecError> {
        d.u8()
    }
}

impl Codec for u32 {
    fn enc(&self, e: &mut Enc) {
        e.u32(*self);
    }
    fn dec(d: &mut Dec) -> Result<u32, CodecError> {
        d.u32()
    }
}

impl Codec for u64 {
    fn enc(&self, e: &mut Enc) {
        e.u64(*self);
    }
    fn dec(d: &mut Dec) -> Result<u64, CodecError> {
        d.u64()
    }
}

impl Codec for i32 {
    fn enc(&self, e: &mut Enc) {
        e.u32(*self as u32);
    }
    fn dec(d: &mut Dec) -> Result<i32, CodecError> {
        Ok(d.u32()? as i32)
    }
}

impl Codec for usize {
    fn enc(&self, e: &mut Enc) {
        e.u64(*self as u64);
    }
    fn dec(d: &mut Dec) -> Result<usize, CodecError> {
        usize::try_from(d.u64()?).map_err(|_| CodecError::Invalid("usize"))
    }
}

impl Codec for bool {
    fn enc(&self, e: &mut Enc) {
        e.u8(*self as u8);
    }
    fn dec(d: &mut Dec) -> Result<bool, CodecError> {
        match d.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }
}

impl Codec for String {
    fn enc(&self, e: &mut Enc) {
        e.len_prefix(self.len());
        e.raw(self.as_bytes());
    }
    fn dec(d: &mut Dec) -> Result<String, CodecError> {
        let n = d.len_prefix(1)?;
        let bytes = d.raw(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn enc(&self, e: &mut Enc) {
        match self {
            None => e.u8(0),
            Some(v) => {
                e.u8(1);
                v.enc(e);
            }
        }
    }
    fn dec(d: &mut Dec) -> Result<Option<T>, CodecError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::dec(d)?)),
            _ => Err(CodecError::Invalid("option tag")),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn enc(&self, e: &mut Enc) {
        e.len_prefix(self.len());
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<Vec<T>, CodecError> {
        let n = d.len_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::dec(d)?);
        }
        Ok(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn enc(&self, e: &mut Enc) {
        self.0.enc(e);
        self.1.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<(A, B), CodecError> {
        Ok((A::dec(d)?, B::dec(d)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn enc(&self, e: &mut Enc) {
        self.0.enc(e);
        self.1.enc(e);
        self.2.enc(e);
    }
    fn dec(d: &mut Dec) -> Result<(A, B, C), CodecError> {
        Ok((A::dec(d)?, B::dec(d)?, C::dec(d)?))
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn enc(&self, e: &mut Enc) {
        e.len_prefix(self.len());
        for (k, v) in self {
            k.enc(e);
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<BTreeMap<K, V>, CodecError> {
        let n = d.len_prefix(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::dec(d)?;
            let v = V::dec(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord> Codec for BTreeSet<T> {
    fn enc(&self, e: &mut Enc) {
        e.len_prefix(self.len());
        for v in self {
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<BTreeSet<T>, CodecError> {
        let n = d.len_prefix(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::dec(d)?);
        }
        Ok(out)
    }
}

/// Hash maps encode in sorted key order, so equal maps produce equal
/// bytes regardless of insertion history or hasher seed.
impl<K: Codec + Ord + Hash, V: Codec> Codec for HashMap<K, V> {
    fn enc(&self, e: &mut Enc) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        e.len_prefix(entries.len());
        for (k, v) in entries {
            k.enc(e);
            v.enc(e);
        }
    }
    fn dec(d: &mut Dec) -> Result<HashMap<K, V>, CodecError> {
        let n = d.len_prefix(2)?;
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::dec(d)?;
            let v = V::dec(d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Encodes one value standalone.
pub fn encode_value<T: Codec>(v: &T) -> Vec<u8> {
    let mut e = Enc::new();
    v.enc(&mut e);
    e.into_bytes()
}

/// Decodes one value standalone, requiring every byte to be consumed.
///
/// # Errors
///
/// [`CodecError`] on truncated, invalid or over-long input.
pub fn decode_value<T: Codec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut d = Dec::new(bytes);
    let v = T::dec(&mut d)?;
    d.finish()?;
    Ok(v)
}

/// The IEEE CRC-32 (reflected, polynomial `0xedb88320`) of `bytes` —
/// the per-record checksum of the on-disk artifact log.
pub fn crc32(bytes: &[u8]) -> u32 {
    // The 256-entry table costs 1 KiB and is built once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_value(&v);
        let back: T = decode_value(&bytes).expect("decodes");
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdead_beefu32);
        roundtrip(u64::MAX);
        roundtrip(-1i32);
        roundtrip(i32::MIN);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX as u64 as usize);
        roundtrip("héllo wörld".to_string());
        roundtrip(String::new());
    }

    #[test]
    fn containers_round_trip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u8));
        roundtrip(None::<String>);
        roundtrip((1u32, "x".to_string()));
        roundtrip((1u8, 2u32, 3u64));
        roundtrip(BTreeMap::from([(1u32, "a".to_string()), (2, "b".to_string())]));
        roundtrip(BTreeSet::from([5u32, 1, 9]));
        roundtrip(HashMap::from([(9u64, 1u8), (4, 2), (7, 3)]));
    }

    #[test]
    fn hash_maps_encode_deterministically() {
        // Same entries, different insertion orders: identical bytes.
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..100u32 {
            a.insert(k, k * 2);
        }
        for k in (0..100u32).rev() {
            b.insert(k, k * 2);
        }
        assert_eq!(encode_value(&a), encode_value(&b));
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let bytes = encode_value(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = decode_value(&bytes[..cut]);
            assert!(r.is_err(), "accepted a {cut}-byte prefix of {} bytes", bytes.len());
        }
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate() {
        // A Vec claiming u32::MAX elements with a 4-byte body.
        let mut e = Enc::new();
        e.u32(u32::MAX);
        e.u32(0);
        let r: Result<Vec<u8>, _> = decode_value(&e.into_bytes());
        assert_eq!(r, Err(CodecError::Invalid("length prefix")));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_value(&42u32);
        bytes.push(0);
        assert_eq!(decode_value::<u32>(&bytes), Err(CodecError::Invalid("trailing bytes")));
    }

    #[test]
    fn invalid_tags_error() {
        assert_eq!(decode_value::<bool>(&[2]), Err(CodecError::Invalid("bool")));
        assert_eq!(decode_value::<Option<u8>>(&[9, 0]), Err(CodecError::Invalid("option tag")));
        let bad_utf8 = {
            let mut e = Enc::new();
            e.len_prefix(2);
            e.raw(&[0xff, 0xfe]);
            e.into_bytes()
        };
        assert_eq!(decode_value::<String>(&bad_utf8), Err(CodecError::Invalid("utf-8 string")));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }
}
