//! Property-based round-trip validation of the hand-rolled JSON writer
//! and parser in `stamp_core::json`: for arbitrary values — hostile
//! strings (escapes, control characters, astral characters that render
//! as surrogate pairs in `\u` form), tricky numbers, deep nesting —
//! `parse(render(v)) == v`, and rendering is a stable normal form.

use proptest::prelude::*;
use stamp_core::Json;

/// Characters drawn from every class the escaper treats differently:
/// plain ASCII, the named escapes, other control characters, non-ASCII
/// BMP characters, and astral characters (surrogate pairs in `\u`
/// notation).
fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        8 => (0x20u32..0x7f).prop_map(|c| char::from_u32(c).unwrap()),
        2 => prop_oneof![
            Just('"'),
            Just('\\'),
            Just('/'),
            Just('\n'),
            Just('\t'),
            Just('\r'),
            Just('\u{8}'),
            Just('\u{c}'),
        ],
        1 => (0u32..0x20).prop_map(|c| char::from_u32(c).unwrap()),
        2 => (0x80u32..0xd800).prop_map(|c| char::from_u32(c).unwrap()),
        2 => (0x1_0000u32..0x2_0000).prop_map(|c| char::from_u32(c).unwrap()),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(arb_char(), 0..12).prop_map(|cs| cs.into_iter().collect())
}

/// Finite doubles of every flavor the writer distinguishes: integers
/// (rendered without a fraction), fractions, large magnitudes past the
/// integer-rendering cutoff, and signed zero.
fn arb_number() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => any::<i64>().prop_map(|i| (i % 1_000_000_000) as f64),
        2 => (any::<i64>(), -12i32..12).prop_map(|(m, e)| {
            ((m % 1_000_000) as f64) * 10f64.powi(e)
        }),
        1 => (any::<i64>(), 200i32..300).prop_map(|(m, e)| {
            ((m % 1_000) as f64) * 10f64.powi(e)
        }),
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => Just(9e15),
        1 => Just(-9e15),
    ]
}

/// Integers clustered around the places where `f64` precision breaks
/// down: the 2^53 exactness boundary and the top of the `u64` range.
fn arb_int() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => any::<u64>(),
        2 => (0i64..3).prop_map(|d| ((1u64 << 53) - 1).wrapping_add(d as u64)),
        2 => (0u64..3).prop_map(|d| u64::MAX - d),
        1 => Just(0u64),
    ]
}

/// Arbitrary JSON values to the given nesting depth.
fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    let leaf = prop_oneof![
        1 => Just(Json::Null),
        1 => any::<bool>().prop_map(Json::Bool),
        2 => arb_int().prop_map(Json::Int),
        3 => arb_number().prop_map(Json::Num),
        3 => arb_string().prop_map(Json::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_json(depth - 1);
    let arr = prop::collection::vec(inner.clone(), 0..5).prop_map(Json::Arr);
    let obj = prop::collection::vec((arb_string(), inner), 0..5)
        .prop_map(|entries| Json::Obj(entries.into_iter().collect()));
    prop_oneof![
        2 => leaf,
        2 => arr,
        2 => obj,
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The writer's output always parses back to the same value.
    #[test]
    fn parse_inverts_render(j in arb_json(4)) {
        let rendered = j.to_string();
        let parsed = Json::parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered JSON must parse: {e}\n{rendered}"));
        prop_assert_eq!(&parsed, &j, "round trip changed the value: {}", rendered);
    }

    /// Rendering is a stable normal form: render ∘ parse ∘ render is
    /// the identity on rendered documents.
    #[test]
    fn render_is_a_normal_form(j in arb_json(3)) {
        let once = j.to_string();
        let twice = Json::parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }

    /// Strings survive alone too (the densest escape territory).
    #[test]
    fn strings_round_trip(s in arb_string()) {
        let j = Json::Str(s.clone());
        let parsed = Json::parse(&j.to_string()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }

    /// Numbers survive exactly (shortest-round-trip `Display` plus an
    /// exact `f64` parser).
    #[test]
    fn numbers_round_trip(n in arb_number()) {
        let parsed = Json::parse(&Json::Num(n).to_string()).unwrap();
        prop_assert_eq!(parsed.as_f64(), Some(n), "{}", Json::Num(n));
    }

    /// Integers survive exactly over the whole `u64` range, including
    /// past 2^53 where `f64` would round (the `Json::int` regression).
    #[test]
    fn integers_round_trip_exactly(i in arb_int()) {
        let rendered = Json::int(i).to_string();
        prop_assert_eq!(&rendered, &i.to_string());
        let parsed = Json::parse(&rendered).unwrap();
        prop_assert_eq!(parsed.as_u64(), Some(i), "{}", rendered);
    }

    /// Nesting up to the parser's depth cap parses; beyond it, the
    /// parser errors instead of overflowing the stack.
    #[test]
    fn nesting_depth_is_enforced_not_fatal(depth in 1usize..200) {
        let doc = "[".repeat(depth) + &"]".repeat(depth);
        let result = Json::parse(&doc);
        if depth <= 128 {
            prop_assert!(result.is_ok(), "depth {} should parse", depth);
        } else {
            let e = result.unwrap_err();
            prop_assert!(e.message.contains("nesting"), "depth {}: {}", depth, e);
        }
    }

    /// Whitespace around any token never changes the parse.
    #[test]
    fn whitespace_is_insignificant(j in arb_json(2), ws in 0usize..4) {
        let pad = ["", " ", "\n\t", " \r\n "][ws];
        let doc = format!("{pad}{j}{pad}");
        prop_assert_eq!(Json::parse(&doc).unwrap(), j);
    }
}

/// Non-property companion: the generator actually exercises surrogate
/// pairs (a regression guard for the generator itself).
#[test]
fn astral_characters_render_and_reparse() {
    let j = Json::Str("😀 \u{1F600}\u{10000}".to_string());
    let parsed = Json::parse(&j.to_string()).unwrap();
    assert_eq!(parsed, j);
    // And the escaped spelling decodes to the same string.
    let escaped = "\"\\ud83d\\ude00 \\ud83d\\ude00\\ud800\\udc00\"";
    assert_eq!(Json::parse(escaped).unwrap().as_str(), j.as_str());
}
