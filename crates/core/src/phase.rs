//! The analysis phase graph and its input fingerprints.
//!
//! The paper's pipeline is a strict phase DAG — executable reading, CFG
//! reconstruction, value analysis, loop bounds, cache, pipeline, IPET —
//! and this module makes that DAG explicit: every phase is a named node
//! ([`PhaseId`]) with a declared input fingerprint, computed over
//! *exactly* the program bytes, annotations and configuration fields
//! the phase reads. Fingerprints chain: a phase hashes its upstream
//! phases' fingerprints plus its own knobs, so an artifact key
//! transitively covers everything that could influence the artifact.
//!
//! Per-phase inputs (the tables in DESIGN.md are generated from this
//! list; the `let … = *config;` destructurings below make the coverage
//! compile-checked — adding a field to a config struct breaks the
//! corresponding fingerprint function until it is accounted for):
//!
//! | phase      | inputs |
//! |------------|--------|
//! | `assemble` | source text |
//! | `cfg`      | program image (entry, sections, symbols) + indirect-target map |
//! | `context`  | `cfg` + all of `VivuConfig` |
//! | `value`    | `context` + `MemoryMap` + all of `ValueOptions` |
//! | `loopbound`| `value` + resolved loop-bound annotations + iteration cap |
//! | `cache`    | `value` + I/D cache geometries |
//! | `pipeline` | `cache` + the whole `HwConfig` (timing and caches) |
//! | `path`     | `pipeline` + `loopbound` + `use_infeasible` + `summaries` |
//! | `stack`    | `value` (default-VIVU chain) + resolved recursion depths |
//! | `summary`  | the canonical byte form of one supergraph segment's ILP |
//! | `uarch`    | the canonical byte form of one region's cache/pipeline entry class |
//!
//! Notably *absent* dependencies are what make cross-variant sharing
//! work: the CFG does not depend on any hardware knob, and the value
//! analysis reads the memory map but not cache geometry or timing — so
//! a `default` / `no-cache` / `ideal` hardware sweep shares one CFG,
//! one context expansion and one value fixpoint per target.

use std::collections::BTreeMap;

use stamp_ai::VivuConfig;
use stamp_hw::{CacheConfig, HwConfig, MemoryMap, Timing};
use stamp_isa::{Program, SectionKind};
use stamp_loopbound::LoopBoundOptions;
use stamp_value::{DomainKind, ValueOptions};

use crate::batch::BatchJob;
use crate::fingerprint::{Fingerprint, Fp};

/// One node of the phase graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhaseId {
    /// Source text → program image.
    Assemble,
    /// Program image → control-flow graph (executable reading + CFG
    /// reconstruction).
    Cfg,
    /// CFG → interprocedural supergraph (VIVU context expansion).
    Context,
    /// Supergraph → value-analysis fixpoint.
    Value,
    /// Value analysis → loop iteration bounds.
    LoopBound,
    /// Value analysis → cache classifications.
    Cache,
    /// Cache analysis → per-node pipeline times.
    Pipeline,
    /// Everything → worst-case path (IPET/ILP).
    Path,
    /// Value analysis (default-VIVU prefix) → stack bound.
    Stack,
    /// One canonical supergraph segment → its solved ILP summary
    /// (sub-artifacts of the path phase, shared across call sites,
    /// jobs and processes). Appended after `Stack` so the dense
    /// indices of the earlier phases stay stable on disk.
    Summary,
    /// One procedure region × entry-state class → its microarchitectural
    /// summary (sub-artifacts of the cache and pipeline phases; the
    /// payload is the summary's canonical byte form). Appended last so
    /// earlier on-disk indices stay stable.
    Uarch,
}

impl PhaseId {
    /// Every phase, in pipeline order.
    pub const ALL: [PhaseId; 11] = [
        PhaseId::Assemble,
        PhaseId::Cfg,
        PhaseId::Context,
        PhaseId::Value,
        PhaseId::LoopBound,
        PhaseId::Cache,
        PhaseId::Pipeline,
        PhaseId::Path,
        PhaseId::Stack,
        PhaseId::Summary,
        PhaseId::Uarch,
    ];

    /// Dense index (for per-phase counters).
    pub(crate) fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`PhaseId::index`], for decoding on-disk records.
    pub(crate) fn from_index(i: usize) -> Option<PhaseId> {
        PhaseId::ALL.get(i).copied()
    }

    /// The short machine-readable name (JSON keys, plan tables).
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::Assemble => "assemble",
            PhaseId::Cfg => "cfg",
            PhaseId::Context => "context",
            PhaseId::Value => "value",
            PhaseId::LoopBound => "loopbound",
            PhaseId::Cache => "cache",
            PhaseId::Pipeline => "pipeline",
            PhaseId::Path => "path",
            PhaseId::Stack => "stack",
            PhaseId::Summary => "summary",
            PhaseId::Uarch => "uarch",
        }
    }

    /// The human-readable phase title used in reports (matches the
    /// paper's phase names).
    pub fn title(self) -> &'static str {
        match self {
            PhaseId::Assemble => "assemble",
            PhaseId::Cfg => "cfg building",
            PhaseId::Context => "context expansion",
            PhaseId::Value => "value analysis",
            PhaseId::LoopBound => "loop bound analysis",
            PhaseId::Cache => "cache analysis",
            PhaseId::Pipeline => "pipeline analysis",
            PhaseId::Path => "path analysis (ILP)",
            PhaseId::Stack => "stack analysis",
            PhaseId::Summary => "procedure summaries",
            PhaseId::Uarch => "uarch summaries",
        }
    }
}

/// Fingerprint of raw assembly source (the `assemble` phase key).
pub fn source_fingerprint(source: &str) -> Fingerprint {
    let mut fp = Fp::new("stamp/assemble/1");
    fp.str(source);
    fp.finish()
}

/// Fingerprint of an assembled program image: entry point, every
/// section (name, placement, bytes) and the symbol table (symbols name
/// CFG functions, so they are an input of CFG reconstruction).
pub fn program_fingerprint(program: &Program) -> Fingerprint {
    let mut fp = Fp::new("stamp/program/1");
    fp.u32(program.entry);
    fp.u64(program.sections.len() as u64);
    for s in &program.sections {
        fp.str(&s.name);
        fp.u32(s.base);
        fp.u8(match s.kind {
            SectionKind::Text => 0,
            SectionKind::RoData => 1,
            SectionKind::Data => 2,
            SectionKind::Bss => 3,
        });
        fp.u32(s.size);
        fp.bytes(&s.data);
    }
    fp.u64(program.symbols.len() as u64);
    for (name, addr) in program.symbols.iter() {
        fp.str(name);
        fp.u32(addr);
        // The reverse lookup is an input of its own: when several names
        // alias one address, `name_at` keeps the first registered — an
        // insertion-order fact the forward map cannot reproduce, and
        // CFG reconstruction bakes it into function names.
        fp.str(program.symbols.name_at(addr).unwrap_or(""));
    }
    fp.finish()
}

fn mem_fields(fp: &mut Fp, mem: &MemoryMap) {
    let MemoryMap { rom_base, rom_size, ram_base, ram_size } = *mem;
    fp.u32(rom_base);
    fp.u32(rom_size);
    fp.u32(ram_base);
    fp.u32(ram_size);
}

fn cache_fields(fp: &mut Fp, cache: Option<CacheConfig>) {
    match cache {
        None => fp.u8(0),
        Some(c) => {
            fp.u8(1);
            fp.u32(c.sets());
            fp.u32(c.assoc());
            fp.u32(c.line_bytes());
        }
    }
}

/// `cfg`: the program image plus the indirect-jump target map (from
/// annotations and from value-analysis feedback iterations).
pub fn cfg_fingerprint(program: Fingerprint, indirects: &BTreeMap<u32, Vec<u32>>) -> Fingerprint {
    let mut fp = Fp::new("stamp/cfg/1");
    fp.fp(program);
    fp.u64(indirects.len() as u64);
    for (addr, targets) in indirects {
        fp.u32(*addr);
        fp.u64(targets.len() as u64);
        for t in targets {
            fp.u32(*t);
        }
    }
    fp.finish()
}

/// `context`: the CFG plus every VIVU knob.
pub fn context_fingerprint(cfg: Fingerprint, vivu: &VivuConfig) -> Fingerprint {
    let VivuConfig { max_call_depth, peel, max_contexts } = *vivu;
    let mut fp = Fp::new("stamp/context/1");
    fp.fp(cfg);
    fp.u64(max_call_depth as u64);
    fp.u8(peel);
    fp.u64(max_contexts as u64);
    fp.finish()
}

/// `value`: the supergraph, the memory map (stack top, RAM/ROM extent —
/// but *not* cache geometry or timing) and every value-analysis option.
pub fn value_fingerprint(
    context: Fingerprint,
    mem: &MemoryMap,
    value: &ValueOptions,
) -> Fingerprint {
    let ValueOptions { domain, widen_delay, small_set } = *value;
    let mut fp = Fp::new("stamp/value/1");
    fp.fp(context);
    mem_fields(&mut fp, mem);
    fp.u8(match domain {
        DomainKind::Const => 0,
        DomainKind::Interval => 1,
        DomainKind::Strided => 2,
    });
    fp.u32(widen_delay);
    fp.u64(small_set);
    fp.finish()
}

/// `loopbound`: the value analysis plus resolved loop-bound annotations
/// and the iteration cap.
pub fn loopbound_fingerprint(value: Fingerprint, options: &LoopBoundOptions) -> Fingerprint {
    let LoopBoundOptions { ref annotations, max_iterations } = *options;
    let mut fp = Fp::new("stamp/loopbound/1");
    fp.fp(value);
    fp.u64(annotations.len() as u64);
    for (addr, bound) in annotations {
        fp.u32(*addr);
        fp.u64(*bound);
    }
    fp.u64(max_iterations);
    fp.finish()
}

/// `cache`: the value analysis plus the I/D cache geometries (and
/// nothing else — timing does not influence classifications), plus the
/// summarized-solve switch. The two modes produce identical
/// classifications, but their artifacts must not mix: sharing one slot
/// would silently mask a summarization bug behind whichever mode
/// computed first.
pub fn cache_fingerprint(value: Fingerprint, hw: &HwConfig, uarch_summaries: bool) -> Fingerprint {
    let mut fp = Fp::new("stamp/cache/2");
    fp.fp(value);
    cache_fields(&mut fp, hw.icache);
    cache_fields(&mut fp, hw.dcache);
    fp.bool(uarch_summaries);
    fp.finish()
}

/// `pipeline`: the cache analysis plus the whole hardware model (the
/// pipeline reads timing, both cache geometries and, transitively, the
/// memory map), plus the summarized-solve switch (see
/// [`cache_fingerprint`]).
pub fn pipeline_fingerprint(
    cache: Fingerprint,
    hw: &HwConfig,
    uarch_summaries: bool,
) -> Fingerprint {
    let HwConfig { icache, dcache, ref mem, timing } = *hw;
    let Timing {
        i_miss_penalty,
        d_miss_penalty,
        branch_penalty,
        mul_latency,
        div_latency,
        load_use_hazard,
    } = timing;
    let mut fp = Fp::new("stamp/pipeline/2");
    fp.fp(cache);
    cache_fields(&mut fp, icache);
    cache_fields(&mut fp, dcache);
    mem_fields(&mut fp, mem);
    fp.u32(i_miss_penalty);
    fp.u32(d_miss_penalty);
    fp.u32(branch_penalty);
    fp.u32(mul_latency);
    fp.u32(div_latency);
    fp.bool(load_use_hazard);
    fp.bool(uarch_summaries);
    fp.finish()
}

/// `path`: pipeline times, loop bounds, the infeasible-path switch,
/// and the summarized-solve switch. The two solve modes prove the same
/// WCET but may pick different witness paths, so their artifacts must
/// not mix.
pub fn path_fingerprint(
    pipeline: Fingerprint,
    loopbound: Fingerprint,
    use_infeasible: bool,
    summaries: bool,
) -> Fingerprint {
    let mut fp = Fp::new("stamp/path/2");
    fp.fp(pipeline);
    fp.fp(loopbound);
    fp.bool(use_infeasible);
    fp.bool(summaries);
    fp.finish()
}

/// `summary`: a segment summary is keyed by nothing but the canonical
/// byte form of its ILP — that form already encodes every objective
/// coefficient and constraint, so isomorphic segments from different
/// programs, variants or processes share one artifact.
pub fn summary_fingerprint(canonical: &[u8]) -> Fingerprint {
    let mut fp = Fp::new("stamp/summary/1");
    fp.bytes(canonical);
    fp.finish()
}

/// `uarch`: a microarchitectural region summary is keyed by nothing but
/// its canonical key — the region's instruction bytes, shape and
/// hardware geometry plus the projected entry-state class (see
/// `stamp_cache::UarchMemo`). `kind` separates the cache and pipeline
/// key spaces, which are otherwise free to collide byte-for-byte.
pub fn uarch_fingerprint(kind: &'static str, key: &[u8]) -> Fingerprint {
    let mut fp = Fp::new("stamp/uarch/1");
    fp.str(kind);
    fp.bytes(key);
    fp.finish()
}

/// `stack` (precise supergraph mode): the default-VIVU value chain plus
/// resolved recursion depths (which feed the per-function breakdown).
pub fn stack_fingerprint(value: Fingerprint, recursion: &BTreeMap<u32, u32>) -> Fingerprint {
    let mut fp = Fp::new("stamp/stack/1");
    fp.fp(value);
    fp.u64(recursion.len() as u64);
    for (addr, depth) in recursion {
        fp.u32(*addr);
        fp.u32(*depth);
    }
    fp.finish()
}

/// `stack` (compositional call-graph fallback for recursive tasks): the
/// CFG, the memory map, and resolved recursion depths.
pub fn stack_callgraph_fingerprint(
    cfg: Fingerprint,
    mem: &MemoryMap,
    recursion: &BTreeMap<u32, u32>,
) -> Fingerprint {
    let mut fp = Fp::new("stamp/stack-callgraph/1");
    fp.fp(cfg);
    mem_fields(&mut fp, mem);
    fp.u64(recursion.len() as u64);
    for (addr, depth) in recursion {
        fp.u32(*addr);
        fp.u32(*depth);
    }
    fp.finish()
}

/// One predicted artifact request of a job: which phase, under which
/// fingerprint (see [`plan_job`]).
#[derive(Clone, Copy, Debug)]
pub struct PhaseRequest {
    /// The phase.
    pub phase: PhaseId,
    /// The phase-input fingerprint.
    pub fingerprint: Fingerprint,
}

/// Statically predicts the artifact requests a job will make, in
/// request order, *without running any analysis* (`stamp batch
/// --dry-run`). The prediction assembles the program (cheap) and then
/// chains fingerprints exactly as the drivers do.
///
/// Two approximations (both resolve only by running the analysis):
/// the CFG ↔ value-analysis feedback loop for indirect jumps is
/// predicted at iteration 0 (annotation-supplied targets only), so
/// programs with resolvable jump tables request a few more
/// `cfg`/`context`/`value` artifacts at run time than predicted; and
/// recursive tasks are predicted on the precise-mode stack chain,
/// while at run time their context expansion fails and the stack tool
/// takes the call-graph fallback (no `value` request, a
/// differently-keyed `stack` request).
///
/// # Errors
///
/// The assembler's message when the source does not assemble (the job
/// would fail the same way at run time).
pub fn plan_job(job: &BatchJob) -> Result<Vec<PhaseRequest>, String> {
    let mut requests = Vec::new();
    let mut push = |phase, fingerprint| requests.push(PhaseRequest { phase, fingerprint });

    let src_fp = source_fingerprint(&job.source);
    push(PhaseId::Assemble, src_fp);
    let program = stamp_isa::asm::assemble(&job.source).map_err(|e| format!("assemble: {e}"))?;
    let program_fp = program_fingerprint(&program);
    let indirects = job.annotations.resolved_indirects(&program);
    let cfg_fp = cfg_fingerprint(program_fp, &indirects);
    let recursion = job.annotations.resolved_recursion(&program);

    // The stack analysis runs first in a batch job, on the default-VIVU
    // prefix (stack bounds do not depend on unrolling contexts).
    push(PhaseId::Cfg, cfg_fp);
    let stack_ctx = context_fingerprint(cfg_fp, &VivuConfig::default());
    push(PhaseId::Context, stack_ctx);
    let stack_val = value_fingerprint(stack_ctx, &job.config.hw.mem, &ValueOptions::default());
    push(PhaseId::Value, stack_val);
    push(PhaseId::Stack, stack_fingerprint(stack_val, &recursion));

    if job.wcet {
        push(PhaseId::Cfg, cfg_fp);
        let ctx = context_fingerprint(cfg_fp, &job.config.vivu);
        push(PhaseId::Context, ctx);
        let val = value_fingerprint(ctx, &job.config.hw.mem, &job.config.value);
        push(PhaseId::Value, val);
        let lb_opts = LoopBoundOptions {
            annotations: job.annotations.resolved_loop_bounds(&program),
            ..LoopBoundOptions::default()
        };
        let lb = loopbound_fingerprint(val, &lb_opts);
        push(PhaseId::LoopBound, lb);
        let ca = cache_fingerprint(val, &job.config.hw, job.config.uarch_summaries);
        push(PhaseId::Cache, ca);
        let pi = pipeline_fingerprint(ca, &job.config.hw, job.config.uarch_summaries);
        push(PhaseId::Pipeline, pi);
        push(
            PhaseId::Path,
            path_fingerprint(pi, lb, job.config.use_infeasible, job.config.summaries),
        );
    }
    Ok(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::AnalysisConfig;
    use crate::annot::Annotations;

    const TASK: &str = ".text\nmain: li r1, 4\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n";

    fn job(config: AnalysisConfig) -> BatchJob {
        BatchJob {
            target: "t".to_string(),
            variant: "v".to_string(),
            source: TASK.to_string(),
            config,
            annotations: Annotations::new(),
            wcet: true,
            sampling: None,
        }
    }

    #[test]
    fn phase_indices_are_dense_and_ordered() {
        for (i, p) in PhaseId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn hardware_sweep_shares_the_value_prefix() {
        let default = plan_job(&job(AnalysisConfig::default())).unwrap();
        let no_cache = plan_job(&job(AnalysisConfig {
            hw: HwConfig::no_cache(),
            ..AnalysisConfig::default()
        }))
        .unwrap();
        let ideal =
            plan_job(&job(AnalysisConfig { hw: HwConfig::ideal(), ..AnalysisConfig::default() }))
                .unwrap();
        let by_phase = |plan: &[PhaseRequest], p: PhaseId| -> Vec<Fingerprint> {
            plan.iter().filter(|r| r.phase == p).map(|r| r.fingerprint).collect()
        };
        // Assemble/cfg/context/value/loopbound/stack: identical across
        // all three hardware variants (value reads only the memory map).
        for p in [
            PhaseId::Assemble,
            PhaseId::Cfg,
            PhaseId::Context,
            PhaseId::Value,
            PhaseId::LoopBound,
            PhaseId::Stack,
        ] {
            assert_eq!(by_phase(&default, p), by_phase(&no_cache, p), "{p:?}");
            assert_eq!(by_phase(&default, p), by_phase(&ideal, p), "{p:?}");
        }
        // Cache: no-cache and ideal agree (both cacheless), default differs.
        assert_eq!(by_phase(&no_cache, PhaseId::Cache), by_phase(&ideal, PhaseId::Cache));
        assert_ne!(by_phase(&default, PhaseId::Cache), by_phase(&ideal, PhaseId::Cache));
        // Pipeline and path: all distinct (timing differs).
        assert_ne!(by_phase(&no_cache, PhaseId::Pipeline), by_phase(&ideal, PhaseId::Pipeline));
        assert_ne!(by_phase(&no_cache, PhaseId::Path), by_phase(&ideal, PhaseId::Path));
    }

    #[test]
    fn vivu_knobs_reach_context_but_not_cfg() {
        let base = plan_job(&job(AnalysisConfig::default())).unwrap();
        let mut cfg = AnalysisConfig::default();
        cfg.vivu.peel = 0;
        let peeled = plan_job(&job(cfg)).unwrap();
        fn one(plan: &[PhaseRequest], p: PhaseId) -> &PhaseRequest {
            plan.iter().find(|r| r.phase == p).unwrap()
        }
        assert_eq!(one(&base, PhaseId::Cfg).fingerprint, one(&peeled, PhaseId::Cfg).fingerprint);
        // The stack chain uses default VIVU, so only the *second*
        // (WCET-chain) context request differs.
        let ctxs = |plan: &[PhaseRequest]| -> Vec<Fingerprint> {
            plan.iter().filter(|r| r.phase == PhaseId::Context).map(|r| r.fingerprint).collect()
        };
        assert_eq!(ctxs(&base)[0], ctxs(&peeled)[0]);
        assert_ne!(ctxs(&base)[1], ctxs(&peeled)[1]);
    }

    #[test]
    fn annotations_reach_loopbound_but_not_value() {
        let base = plan_job(&job(AnalysisConfig::default())).unwrap();
        let mut annotated = job(AnalysisConfig::default());
        annotated.annotations = Annotations::new().loop_bound("loop", 9);
        let annotated = plan_job(&annotated).unwrap();
        fn one(plan: &[PhaseRequest], p: PhaseId) -> &PhaseRequest {
            plan.iter().find(|r| r.phase == p).unwrap()
        }
        for p in [PhaseId::Cfg, PhaseId::Value] {
            assert_eq!(one(&base, p).fingerprint, one(&annotated, p).fingerprint, "{p:?}");
        }
        assert_ne!(
            one(&base, PhaseId::LoopBound).fingerprint,
            one(&annotated, PhaseId::LoopBound).fingerprint
        );
        assert_ne!(
            one(&base, PhaseId::Path).fingerprint,
            one(&annotated, PhaseId::Path).fingerprint,
            "loop bounds chain into the path fingerprint"
        );
    }

    #[test]
    fn aliased_label_order_reaches_the_program_fingerprint() {
        // Two labels on one address: the forward symbol map is
        // identical either way, but `name_at` (and hence CFG function
        // names) keeps the first registered — the fingerprint must see
        // the difference or a shared Cfg would leak the other job's
        // function names.
        let a = stamp_isa::asm::assemble(".text\nmain:\nalias:\n halt\n").unwrap();
        let b = stamp_isa::asm::assemble(".text\nalias:\nmain:\n halt\n").unwrap();
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        // Sanity: the same source twice fingerprints equal.
        let a2 = stamp_isa::asm::assemble(".text\nmain:\nalias:\n halt\n").unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a2));
    }

    #[test]
    fn bad_source_is_a_plan_error() {
        let mut j = job(AnalysisConfig::default());
        j.source = ".text\nmain: frobnicate r1\n".to_string();
        let e = plan_job(&j).unwrap_err();
        assert!(e.contains("assemble"), "{e}");
    }
}
