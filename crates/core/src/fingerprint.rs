//! Content fingerprints for phase artifacts.
//!
//! A [`Fingerprint`] is a 128-bit content hash over *exactly the inputs
//! a phase reads* (see `phase.rs` for the per-phase field tables). Two
//! jobs whose inputs hash equal may share the phase's artifact; the
//! soundness of the whole artifact store therefore rests on fingerprints
//! covering a superset of what the phase actually consumes, plus the
//! hash being collision-free in practice (128 bits of two independently
//! mixed lanes over at most a few thousand artifacts per process).
//!
//! The hash is hand-rolled (FNV-1a plus a rotate-multiply lane) because
//! the build environment has no crates.io access; it needs to be
//! deterministic and well-distributed, not cryptographic — the inputs
//! are the operator's own manifests, not adversarial data.

use std::fmt;

/// A 128-bit content hash identifying one phase input. Equal
/// fingerprints ⇒ the phase computes identical artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64, u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

impl Fingerprint {
    /// A short (64-bit) hex form for human-facing tables.
    pub fn short(&self) -> String {
        format!("{:016x}", self.0 ^ self.1)
    }

    /// The raw 16-byte little-endian form, used as the on-disk record
    /// key in the durable artifact store.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..].copy_from_slice(&self.1.to_le_bytes());
        out
    }

    /// Inverse of [`Fingerprint::to_bytes`].
    pub fn from_bytes(bytes: [u8; 16]) -> Fingerprint {
        Fingerprint(
            u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
            u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
        )
    }
}

/// Incremental fingerprint builder. Every variable-length field is
/// length-prefixed, so adjacent fields can never alias (`"ab" + "c"`
/// hashes differently from `"a" + "bc"`).
pub struct Fp {
    a: u64,
    b: u64,
}

impl Fp {
    /// Starts a fingerprint for the domain named by `tag` (the tag is
    /// hashed first, so fingerprints of different phases never collide
    /// structurally).
    pub fn new(tag: &str) -> Fp {
        let mut fp = Fp { a: 0xcbf2_9ce4_8422_2325, b: 0x9e37_79b9_7f4a_7c15 };
        fp.str(tag);
        fp
    }

    fn push(&mut self, byte: u8) {
        // Lane a: FNV-1a. Lane b: xor + golden-ratio multiply + rotate —
        // mixed differently enough that a collision must defeat both.
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(23);
    }

    fn fixed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.push(b);
        }
    }

    /// Hashes raw bytes, length-prefixed.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.fixed(&(bytes.len() as u64).to_le_bytes());
        self.fixed(bytes);
    }

    /// Hashes a string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Hashes a `u64` (fixed width).
    pub fn u64(&mut self, v: u64) {
        self.fixed(&v.to_le_bytes());
    }

    /// Hashes a `u32` (fixed width).
    pub fn u32(&mut self, v: u32) {
        self.fixed(&v.to_le_bytes());
    }

    /// Hashes a byte (fixed width).
    pub fn u8(&mut self, v: u8) {
        self.push(v);
    }

    /// Hashes a boolean.
    pub fn bool(&mut self, v: bool) {
        self.push(v as u8);
    }

    /// Hashes another fingerprint (chaining: a phase's fingerprint
    /// includes its upstream phases' fingerprints).
    pub fn fp(&mut self, f: Fingerprint) {
        self.u64(f.0);
        self.u64(f.1);
    }

    /// Finalizes the fingerprint.
    pub fn finish(self) -> Fingerprint {
        // One avalanche round per lane so short inputs still diffuse.
        let mix = |mut h: u64| {
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            h
        };
        Fingerprint(mix(self.a), mix(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(build: impl FnOnce(&mut Fp)) -> Fingerprint {
        let mut fp = Fp::new("test");
        build(&mut fp);
        fp.finish()
    }

    #[test]
    fn equal_inputs_hash_equal() {
        let a = of(|f| {
            f.str("hello");
            f.u64(42);
        });
        let b = of(|f| {
            f.str("hello");
            f.u64(42);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn field_boundaries_do_not_alias() {
        let ab_c = of(|f| {
            f.str("ab");
            f.str("c");
        });
        let a_bc = of(|f| {
            f.str("a");
            f.str("bc");
        });
        assert_ne!(ab_c, a_bc, "length prefixes must separate fields");
    }

    #[test]
    fn tags_separate_domains() {
        let mut x = Fp::new("phase-x");
        x.u64(1);
        let mut y = Fp::new("phase-y");
        y.u64(1);
        assert_ne!(x.finish(), y.finish());
    }

    #[test]
    fn single_bit_changes_flip_the_hash() {
        let base = of(|f| f.u64(0x1000));
        for bit in 0..64 {
            let flipped = of(|f| f.u64(0x1000 ^ (1 << bit)));
            assert_ne!(base, flipped, "bit {bit}");
        }
    }

    #[test]
    fn no_collisions_over_small_dense_inputs() {
        // Every (u32, bool) pair a realistic knob sweep could produce.
        let mut seen = std::collections::HashSet::new();
        for v in 0..2048u32 {
            for b in [false, true] {
                let fp = of(|f| {
                    f.u32(v);
                    f.bool(b);
                });
                assert!(seen.insert(fp), "collision at ({v}, {b})");
            }
        }
    }

    #[test]
    fn display_is_stable_hex() {
        let fp = of(|f| f.str("stamp"));
        let s = fp.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fp.short().len(), 16);
    }
}
