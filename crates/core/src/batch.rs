//! Parallel batch analysis: a job matrix of (target × configuration
//! variant), executed across a `stamp_exec` worker pool, merged into one
//! deterministic report.
//!
//! Certification campaigns analyze whole task sets across many hardware
//! configurations, not one binary at a time. [`BatchRequest`] expresses
//! that matrix, [`run_batch`] saturates the machine with it, and
//! [`BatchReport`] carries the merged results.
//!
//! # Determinism
//!
//! The headline invariant, enforced by `tests/batch_determinism.rs` and
//! the CI `batch-smoke` job: a parallel run is **bit-identical** to the
//! serial run of the same request, job for job. Two design decisions
//! make that cheap to guarantee:
//!
//! 1. each job owns its whole analysis — program assembly, CFG, solver
//!    state (including the kernel's `Rc`-based copy-on-write maps,
//!    which therefore stay thread-local and need no synchronization);
//! 2. results are ordered by job index (the pool writes into per-job
//!    slots), never by completion time.
//!
//! Wall times are the one legitimately nondeterministic output; they
//! are segregated so [`BatchReport::results_json`] is byte-comparable
//! across runs while [`BatchReport::to_json`] adds the timing layer.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stamp_exec::cancel::{self, CancelToken, Cancelled};
use stamp_exec::{DeadlineOutcome, Pool, PoolError};
use stamp_isa::Program;

use crate::analyzer::{AnalysisConfig, WcetAnalysis};
use crate::annot::Annotations;
use crate::artifact::{ArtifactClaim, ArtifactStats, ArtifactStore};
use crate::error::AnalysisError;
use crate::json::Json;
use crate::phase::{self, PhaseId};
use crate::report::PhaseStats;
use crate::stack_tool::StackAnalysis;

/// One unit of work: a target program under one configuration variant.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// The target's name (benchmark name or file stem).
    pub target: String,
    /// The configuration variant's name (`"default"` when unvaried).
    pub variant: String,
    /// EVA32 assembly source of the target.
    pub source: String,
    /// The analyzer configuration for this job.
    pub config: AnalysisConfig,
    /// Annotations (loop bounds, recursion depths).
    pub annotations: Annotations,
    /// Attempt the WCET analysis (`false` for recursive, stack-only
    /// tasks, which aiT rejects without annotations).
    pub wcet: bool,
    /// Probabilistic path sampling on top of the WCET analysis: draw
    /// the configured number of seed-pinned weighted walks through the
    /// finished phase artifacts and report the observed distribution
    /// (`None` skips sampling; ignored for stack-only jobs).
    pub sampling: Option<SampleParams>,
}

impl BatchJob {
    /// The job's display name: `target` alone for the default variant,
    /// `target@variant` otherwise.
    pub fn name(&self) -> String {
        if self.variant == "default" {
            self.target.clone()
        } else {
            format!("{}@{}", self.target, self.variant)
        }
    }
}

/// An ordered set of batch jobs. Order is significant: it is the result
/// order of the merged report.
#[derive(Clone, Debug, Default)]
pub struct BatchRequest {
    /// The jobs, in report order.
    pub jobs: Vec<BatchJob>,
}

impl BatchRequest {
    /// An empty request.
    pub fn new() -> BatchRequest {
        BatchRequest::default()
    }

    /// Builds the full job matrix `targets × variants`: every target
    /// analyzed under every configuration variant, targets outermost
    /// (all variants of one target are adjacent in the report).
    pub fn matrix(
        targets: impl IntoIterator<Item = BatchTarget>,
        variants: &[BatchVariant],
    ) -> BatchRequest {
        let mut jobs = Vec::new();
        for t in targets {
            for v in variants {
                jobs.push(BatchJob {
                    target: t.name.clone(),
                    variant: v.name.clone(),
                    source: t.source.clone(),
                    config: v.config.clone(),
                    annotations: t.annotations.clone(),
                    wcet: t.wcet,
                    sampling: v.sampling,
                });
            }
        }
        BatchRequest { jobs }
    }
}

/// A program to analyze (one axis of the job matrix).
#[derive(Clone, Debug)]
pub struct BatchTarget {
    /// Target name (used in job names and reports).
    pub name: String,
    /// EVA32 assembly source.
    pub source: String,
    /// Annotations that apply to this target under every variant.
    pub annotations: Annotations,
    /// Whether the WCET analysis applies (see [`BatchJob::wcet`]).
    pub wcet: bool,
}

/// A named analyzer configuration (the other axis of the job matrix).
#[derive(Clone, Debug)]
pub struct BatchVariant {
    /// Variant name (used in job names and reports).
    pub name: String,
    /// The configuration.
    pub config: AnalysisConfig,
    /// Probabilistic path sampling for every job of this variant (see
    /// [`BatchJob::sampling`]).
    pub sampling: Option<SampleParams>,
}

impl Default for BatchVariant {
    fn default() -> BatchVariant {
        BatchVariant {
            name: "default".to_string(),
            config: AnalysisConfig::default(),
            sampling: None,
        }
    }
}

/// Parameters of the probabilistic path-sampling pass a job runs after
/// a successful WCET analysis. The walk count and rng seed are the
/// whole deterministic identity of a sampling run — the remaining
/// sampler options ([`stamp_sample::SampleOptions`]) are derived from
/// the job's [`AnalysisConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleParams {
    /// Number of path walks to draw.
    pub samples: usize,
    /// Seed of the walk rng.
    pub seed: u64,
}

impl Default for SampleParams {
    fn default() -> SampleParams {
        SampleParams { samples: 64, seed: 0 }
    }
}

impl SampleParams {
    /// The sampler options for a job under `config`: the E4
    /// `use_infeasible` ablation switch must flip the sampler and the
    /// ILP together, or sampled paths leave the ILP's polytope.
    fn options(&self, config: &AnalysisConfig) -> stamp_sample::SampleOptions {
        stamp_sample::SampleOptions {
            samples: self.samples,
            seed: self.seed,
            use_infeasible: config.use_infeasible,
            ..stamp_sample::SampleOptions::default()
        }
    }
}

/// The outcome of one job. All fields except `wall_ms` are pure
/// functions of the job — they are the deterministic payload.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's display name ([`BatchJob::name`]).
    pub name: String,
    /// Target name.
    pub target: String,
    /// Variant name.
    pub variant: String,
    /// WCET bound in cycles (`None` for stack-only jobs or failures).
    pub wcet: Option<u64>,
    /// Worst-case stack bound in bytes (`None` if the stack analysis
    /// failed).
    pub stack: Option<u32>,
    /// Total solver node evaluations (value + cache + pipeline).
    pub evaluations: u64,
    /// I-cache classifications `[always-hit, always-miss, persistent,
    /// not-classified]`.
    pub fetch: [usize; 4],
    /// D-cache classifications, same order.
    pub data: [usize; 4],
    /// The sampled WCET distribution, when the job requested sampling
    /// and the WCET analysis succeeded. Deterministic (seed-pinned
    /// walks over deterministic artifacts), so it lives in
    /// `results_json` like every other analysis result.
    pub sampling: Option<stamp_sample::SampleSummary>,
    /// The analysis error, if any part of the job failed.
    pub error: Option<String>,
    /// Wall time of this job in milliseconds (excluded from the
    /// deterministic rendering).
    pub wall_ms: f64,
    /// Per-phase artifact provenance of this job, in request order
    /// (`true` = reused from the shared store). Which job of a
    /// fingerprint group computes is a scheduling accident, so this is
    /// excluded from the deterministic rendering, like `wall_ms`.
    /// Covers the assemble request (including a cached assembly error)
    /// and every analysis chain that ran to completion; a chain that
    /// errored partway contributes nothing here — its requests still
    /// count in the store-wide [`BatchReport::artifacts`] statistics.
    pub provenance: Vec<(PhaseId, bool)>,
}

impl JobResult {
    /// `true` when the job produced every result it was asked for.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Number of phase artifacts this job reused from the store.
    pub fn artifacts_reused(&self) -> usize {
        self.provenance.iter().filter(|(_, reused)| *reused).count()
    }

    /// Number of phase artifacts this job computed itself (published
    /// to the store when one is enabled; with a disabled store every
    /// request counts here and nothing is retained).
    pub fn artifacts_computed(&self) -> usize {
        self.provenance.len() - self.artifacts_reused()
    }

    /// The provenance map for the timing layer: per phase, `"computed"`
    /// if this job computed the artifact on any request, `"reused"`
    /// otherwise.
    fn provenance_json(&self) -> Json {
        let mut by_phase: std::collections::BTreeMap<String, Json> = Default::default();
        for &(phase, reused) in &self.provenance {
            let entry = by_phase.entry(phase.name().to_string());
            match entry {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if !reused {
                        e.insert(Json::str("computed"));
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Json::str(if reused { "reused" } else { "computed" }));
                }
            }
        }
        Json::Obj(by_phase)
    }

    /// The deterministic JSON rendering (no wall time). Public so the
    /// serve layer can embed the exact same object in its `ok`
    /// responses — byte-identity between served and batch results is a
    /// tested invariant, not a coincidence.
    pub fn result_json(&self) -> Json {
        let mut obj = Json::obj([
            ("name", Json::str(self.name.clone())),
            ("target", Json::str(self.target.clone())),
            ("variant", Json::str(self.variant.clone())),
            ("wcet", self.wcet.map(Json::int).unwrap_or(Json::Null)),
            ("stack", self.stack.map(|s| Json::int(s as u64)).unwrap_or(Json::Null)),
            ("evaluations", Json::int(self.evaluations)),
            ("fetch", Json::Arr(self.fetch.iter().map(|&v| Json::int(v as u64)).collect())),
            ("data", Json::Arr(self.data.iter().map(|&v| Json::int(v as u64)).collect())),
            ("error", self.error.as_ref().map(|e| Json::str(e.clone())).unwrap_or(Json::Null)),
        ]);
        // The sampling key appears only on jobs that sampled, so
        // non-sampling reports keep their exact pre-sampling shape.
        if let (Json::Obj(o), Some(s)) = (&mut obj, &self.sampling) {
            o.insert("sampling".to_string(), sampling_json(s));
        }
        obj
    }
}

/// The deterministic JSON rendering of a sampled WCET distribution.
fn sampling_json(s: &stamp_sample::SampleSummary) -> Json {
    let opt = |v: Option<u64>| v.map(Json::int).unwrap_or(Json::Null);
    Json::obj([
        ("samples", Json::int(s.samples as u64)),
        ("seed", Json::int(s.seed)),
        ("completed", Json::int(s.completed as u64)),
        ("dead_ends", Json::int(s.dead_ends as u64)),
        ("observed_max", opt(s.observed_max)),
        ("observed_min", opt(s.observed_min)),
        ("mean", opt(s.mean)),
        ("p50", opt(s.p50)),
        ("p90", opt(s.p90)),
        ("p99", opt(s.p99)),
        ("total_cycles", Json::int(s.total_cycles)),
    ])
}

/// The merged report of a batch run: per-job results in request order,
/// plus the run's timing envelope.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job results, ordered by job index (request order).
    pub results: Vec<JobResult>,
    /// Worker threads used.
    pub workers: usize,
    /// Cores the machine exposed to this process.
    pub cores: usize,
    /// Wall time of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Artifact-cache statistics of *this pass* (the delta over the
    /// store for this `run_batch_with` call; all-zero when the store is
    /// disabled). Part of the timing layer, never of `results_json`.
    pub artifacts: ArtifactStats,
}

impl BatchReport {
    /// Number of failed jobs.
    pub fn errors(&self) -> usize {
        self.results.iter().filter(|r| !r.is_ok()).count()
    }

    /// Aggregate throughput in jobs per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.results.len() as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }

    /// The deterministic core of the report: per-job results only, no
    /// wall times, no worker count. Byte-identical across runs and
    /// across `--jobs` values — this is what the determinism tests and
    /// the CI pin gate compare.
    pub fn results_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str("stamp-batch/1")),
            ("jobs", Json::Arr(self.results.iter().map(|r| r.result_json()).collect())),
        ])
    }

    /// The full merged report: the deterministic results plus the
    /// timing layer (per-job and aggregate wall times, throughput,
    /// worker count, artifact-cache statistics and per-job provenance).
    pub fn to_json(&self) -> Json {
        let jobs: Vec<Json> = self
            .results
            .iter()
            .map(|r| match r.result_json() {
                Json::Obj(mut o) => {
                    o.insert("wall_ms".to_string(), Json::Num(r.wall_ms));
                    o.insert("artifacts".to_string(), r.provenance_json());
                    Json::Obj(o)
                }
                _ => unreachable!("result_json returns an object"),
            })
            .collect();
        Json::obj([
            ("schema", Json::str("stamp-batch/1")),
            ("jobs", Json::Arr(jobs)),
            ("job_count", Json::int(self.results.len() as u64)),
            ("error_count", Json::int(self.errors() as u64)),
            ("workers", Json::int(self.workers as u64)),
            ("cores", Json::int(self.cores as u64)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("throughput_jobs_per_s", Json::Num(self.throughput())),
            ("artifact_cache", self.artifacts.to_json()),
        ])
    }
}

/// A batch-level failure (anything job-level lands in
/// [`JobResult::error`] instead).
#[derive(Debug)]
pub enum BatchError {
    /// A job panicked (a bug in the analyzer, not an analysis error).
    JobPanicked {
        /// The failing job's display name.
        job: String,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::JobPanicked { job, message } => {
                write!(f, "batch job `{job}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// Runs one job, start to finish, on the current thread, sharing phase
/// artifacts through `store`. Analysis failures are captured into the
/// result, not propagated: one unanalyzable task must not sink a
/// certification campaign's batch.
fn run_job(job: &BatchJob, store: &ArtifactStore) -> JobResult {
    let t = Instant::now();
    let mut result = JobResult {
        name: job.name(),
        target: job.target.clone(),
        variant: job.variant.clone(),
        wcet: None,
        stack: None,
        evaluations: 0,
        fetch: [0; 4],
        data: [0; 4],
        sampling: None,
        error: None,
        wall_ms: 0.0,
        provenance: Vec::new(),
    };
    let mut errors: Vec<String> = Vec::new();
    let note = |phases: &[PhaseStats], result: &mut JobResult| {
        result.provenance.extend(phases.iter().map(|p| (p.phase, p.reused)));
    };

    // The assemble phase is claimed by hand rather than through
    // `get_or_compute` so the reuse flag survives the error path: a
    // cached assembly *error* is provenance-reported as reused too.
    let assemble = || stamp_isa::asm::assemble(&job.source).map_err(AnalysisError::from);
    let (assembled, reused): (Result<Arc<Program>, AnalysisError>, bool) =
        match store.claim(PhaseId::Assemble, phase::source_fingerprint(&job.source)) {
            ArtifactClaim::Disabled => (assemble().map(Arc::new), false),
            ArtifactClaim::Ready(stored) => {
                (stored.map(|any| any.downcast().expect("assemble artifacts are Programs")), true)
            }
            ArtifactClaim::Fill(guard) => match assemble() {
                Ok(program) => {
                    let shared = Arc::new(program);
                    guard.fulfill(Ok(shared.clone()));
                    (Ok(shared), false)
                }
                Err(e) => {
                    guard.fulfill(Err(e.clone()));
                    (Err(e), false)
                }
            },
        };
    result.provenance.push((PhaseId::Assemble, reused));
    match assembled {
        Err(e) => errors.push(format!("assemble: {e}")),
        Ok(program) => {
            match StackAnalysis::new(&program)
                .hw(job.config.hw)
                .annotations(job.annotations.clone())
                .run_with(store)
            {
                Ok(stack) => {
                    result.stack = Some(stack.bound);
                    note(&stack.phases, &mut result);
                }
                Err(e) => errors.push(format!("stack: {e}")),
            }
            if job.wcet {
                match WcetAnalysis::new(&program)
                    .config(job.config.clone())
                    .annotations(job.annotations.clone())
                    .run_full(store)
                {
                    Ok((report, artifacts)) => {
                        result.wcet = Some(report.wcet);
                        result.evaluations = report.evaluations;
                        let (f, d) = (report.fetch_stats, report.data_stats);
                        result.fetch = [f.hit, f.miss, f.persistent, f.unclassified];
                        result.data = [d.hit, d.miss, d.persistent, d.unclassified];
                        note(&report.phases, &mut result);
                        // Segment-summary provenance, one entry per
                        // summary this job touched — timing layer only,
                        // mirroring the per-phase entries above.
                        for _ in 0..report.summaries_computed {
                            result.provenance.push((PhaseId::Summary, false));
                        }
                        for _ in 0..report.summaries_reused {
                            result.provenance.push((PhaseId::Summary, true));
                        }
                        // Microarchitectural region summaries, same
                        // contract.
                        for _ in 0..report.uarch_computed {
                            result.provenance.push((PhaseId::Uarch, false));
                        }
                        for _ in 0..report.uarch_reused {
                            result.provenance.push((PhaseId::Uarch, true));
                        }
                        // Sampling rides on the finished phase DAG: no
                        // phase is recomputed, only walked.
                        if let Some(params) = &job.sampling {
                            result.sampling = Some(stamp_sample::sample_paths(
                                &artifacts.cfg,
                                &artifacts.icfg,
                                &artifacts.va,
                                &artifacts.lb,
                                &artifacts.pa,
                                &params.options(&job.config),
                            ));
                        }
                    }
                    Err(e) => errors.push(format!("wcet: {e}")),
                }
            }
        }
    }

    if !errors.is_empty() {
        result.error = Some(errors.join("; "));
    }
    result.wall_ms = t.elapsed().as_secs_f64() * 1e3;
    result
}

/// Runs every job of `request` across `workers` threads with a fresh
/// artifact store shared by all jobs, and merges the results into one
/// report ordered by job index. Equivalent to [`run_batch_with`] on a
/// new [`ArtifactStore`]; pass a disabled store to opt out of reuse, or
/// a long-lived store to carry artifacts across batch passes.
///
/// # Errors
///
/// [`BatchError::JobPanicked`] when a job panics — the error names the
/// job. Analysis-level failures (bad source, missing loop bounds)
/// never error the batch; they are recorded per job.
pub fn run_batch(request: &BatchRequest, workers: usize) -> Result<BatchReport, BatchError> {
    run_batch_with(request, workers, &ArtifactStore::new())
}

/// [`run_batch`] against a caller-supplied [`ArtifactStore`].
///
/// Concurrent jobs whose phase inputs fingerprint equal share the
/// artifact: the first claimant computes while the others wait on the
/// slot, and later jobs hit without waiting. The merged
/// [`BatchReport::results_json`] is **byte-identical** whatever store
/// is passed (enabled, disabled, cold or warm) — reuse shows up only in
/// wall times and in the timing layer's provenance and statistics.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_with(
    request: &BatchRequest,
    workers: usize,
    store: &ArtifactStore,
) -> Result<BatchReport, BatchError> {
    run_batch_deadline(request, workers, store, None)
}

/// The result recorded for a job whose deadline expired. The error
/// string quotes the *configured* deadline, never the measured elapsed
/// time: it lands in `results_json`, which must stay deterministic.
fn deadline_result(job: &BatchJob, deadline: Duration) -> JobResult {
    JobResult {
        name: job.name(),
        target: job.target.clone(),
        variant: job.variant.clone(),
        wcet: None,
        stack: None,
        evaluations: 0,
        fetch: [0; 4],
        data: [0; 4],
        sampling: None,
        error: Some(format!("deadline of {} ms exceeded", deadline.as_millis())),
        wall_ms: deadline.as_secs_f64() * 1e3,
        provenance: Vec::new(),
    }
}

/// [`run_batch_with`] with an optional per-job deadline (measured from
/// each job's start). An over-deadline job is cancelled cooperatively
/// at the next kernel checkpoint and recorded as a per-job error
/// (`deadline of N ms exceeded`) — it never wedges a worker or sinks
/// the rest of the matrix.
///
/// # Errors
///
/// As [`run_batch`] — deadlines are job-level outcomes, not batch
/// errors.
pub fn run_batch_deadline(
    request: &BatchRequest,
    workers: usize,
    store: &ArtifactStore,
    deadline: Option<Duration>,
) -> Result<BatchReport, BatchError> {
    let t = Instant::now();
    let before = store.stats();
    let pool = Pool::new(workers);
    let outcomes = pool
        .map_labeled_deadline(
            &request.jobs,
            |_, job| job.name(),
            deadline,
            |_, job| run_job(job, store),
        )
        .map_err(|e| {
            let PoolError::JobPanicked { label, message, .. } = e;
            BatchError::JobPanicked { job: label, message }
        })?;
    let results = outcomes
        .into_iter()
        .zip(&request.jobs)
        .map(|(outcome, job)| match outcome {
            DeadlineOutcome::Done(result) => result,
            DeadlineOutcome::DeadlineExceeded => {
                deadline_result(job, deadline.expect("a job only times out under a deadline"))
            }
        })
        .collect();
    Ok(BatchReport {
        results,
        workers: pool.workers(),
        cores: stamp_exec::default_workers(),
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        artifacts: store.stats().since(&before),
    })
}

/// The outcome of one guarded job: the serve layer's unit of work.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job ran to completion (possibly with a job-level analysis
    /// error recorded inside).
    Completed(Box<JobResult>),
    /// The job's cancellation budget expired before it finished.
    DeadlineExceeded,
    /// The job panicked; the daemon isolates this to one response.
    Panicked {
        /// The panic message.
        message: String,
    },
}

/// Runs one job on the current thread with panic isolation and an
/// optional cancellation budget (measured from now — callers that
/// promise a deadline from admission subtract the queue wait first).
/// This is the long-lived daemon's job runner: a panicking or runaway
/// job becomes a structured outcome, never a dead worker.
pub fn run_job_guarded(
    job: &BatchJob,
    store: &ArtifactStore,
    budget: Option<Duration>,
) -> JobOutcome {
    let run = || match budget {
        Some(budget) => {
            let token = CancelToken::with_deadline(budget);
            cancel::with_token(&token, || run_job(job, store))
        }
        None => run_job(job, store),
    };
    // AssertUnwindSafe: the job owns its analysis state; the shared
    // artifact store is unwind-safe by design (an in-flight slot is
    // released by its guard's Drop).
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(result) => JobOutcome::Completed(Box::new(result)),
        Err(payload) if payload.is::<Cancelled>() => JobOutcome::DeadlineExceeded,
        Err(payload) => {
            JobOutcome::Panicked { message: stamp_exec::panic_message(payload.as_ref()) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_TASK: &str = "\
        .text
main:   addi sp, sp, -32
        li   r1, 10
loop:   addi r1, r1, -1
        bnez r1, loop
        addi sp, sp, 32
        halt
";

    fn target(name: &str, source: &str) -> BatchTarget {
        BatchTarget {
            name: name.to_string(),
            source: source.to_string(),
            annotations: Annotations::new(),
            wcet: true,
        }
    }

    #[test]
    fn matrix_builds_targets_times_variants_in_order() {
        let req = BatchRequest::matrix(
            [target("a", LOOP_TASK), target("b", LOOP_TASK)],
            &[
                BatchVariant::default(),
                BatchVariant {
                    name: "no-cache".to_string(),
                    config: AnalysisConfig {
                        hw: stamp_hw::HwConfig::no_cache(),
                        ..AnalysisConfig::default()
                    },
                    sampling: None,
                },
            ],
        );
        let names: Vec<String> = req.jobs.iter().map(|j| j.name()).collect();
        assert_eq!(names, ["a", "a@no-cache", "b", "b@no-cache"]);
    }

    #[test]
    fn batch_runs_and_results_are_deterministic_across_worker_counts() {
        let req = BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]);
        let serial = run_batch(&req, 1).unwrap();
        let parallel = run_batch(&req, 4).unwrap();
        assert_eq!(serial.results_json().to_string(), parallel.results_json().to_string());
        assert!(serial.results[0].wcet.is_some());
        assert_eq!(serial.results[0].stack, Some(32));
        assert_eq!(serial.errors(), 0);
    }

    #[test]
    fn sampling_jobs_report_a_distribution_under_the_wcet() {
        let variant = BatchVariant {
            name: "sampled".to_string(),
            config: AnalysisConfig::default(),
            sampling: Some(SampleParams { samples: 16, seed: 3 }),
        };
        let req = BatchRequest::matrix([target("t", LOOP_TASK)], &[variant]);
        let serial = run_batch(&req, 1).unwrap();
        let parallel = run_batch(&req, 4).unwrap();
        // The sampling summary is part of the deterministic core.
        assert_eq!(serial.results_json().to_string(), parallel.results_json().to_string());
        let r = &serial.results[0];
        let s = r.sampling.as_ref().expect("sampling ran");
        assert_eq!(s.samples, 16);
        assert_eq!(s.seed, 3);
        assert!(s.completed > 0);
        assert!(s.observed_max.unwrap() <= r.wcet.unwrap(), "sampled max must stay under WCET");
        let json = r.result_json().to_string();
        assert!(json.contains("\"sampling\":{"), "{json}");
        assert!(json.contains("\"observed_max\":"), "{json}");
        // Jobs without sampling keep the pre-sampling JSON shape.
        let plain = run_batch(
            &BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]),
            1,
        )
        .unwrap();
        assert!(!plain.results[0].result_json().to_string().contains("sampling"));
    }

    #[test]
    fn analysis_failure_is_captured_per_job_not_propagated() {
        let mut req = BatchRequest::matrix(
            [target("good", LOOP_TASK), target("bad-asm", ".text\nmain: frobnicate r1\n")],
            &[BatchVariant::default()],
        );
        // A task whose loop bound the analysis cannot derive.
        req.jobs.push(BatchJob {
            target: "unbounded".to_string(),
            variant: "default".to_string(),
            source: "\
        .text
main:   la   r1, v
        lw   r1, 0(r1)
loop:   srli r1, r1, 1
        bnez r1, loop
        halt
        .data
v:      .space 4
"
            .to_string(),
            config: AnalysisConfig::default(),
            annotations: Annotations::new(),
            wcet: true,
            sampling: None,
        });
        let report = run_batch(&req, 2).unwrap();
        assert_eq!(report.results.len(), 3);
        assert!(report.results[0].is_ok());
        assert!(report.results[1].error.as_deref().unwrap().contains("assemble"));
        assert!(report.results[2].error.as_deref().unwrap().contains("wcet"));
        assert_eq!(report.errors(), 2);
    }

    #[test]
    fn report_json_layers_timing_over_deterministic_core() {
        let req = BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]);
        let report = run_batch(&req, 1).unwrap();
        let det = report.results_json().to_string();
        assert!(!det.contains("wall_ms"), "{det}");
        let full = report.to_json().to_string();
        assert!(full.contains("\"wall_ms\""), "{full}");
        assert!(full.contains("\"throughput_jobs_per_s\""), "{full}");
        assert!(full.contains("\"cores\""), "{full}");
    }

    #[test]
    fn empty_request_yields_empty_report() {
        let report = run_batch(&BatchRequest::new(), 8).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.errors(), 0);
    }

    #[test]
    fn zero_deadline_becomes_a_deterministic_per_job_error() {
        let req = BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]);
        let report =
            run_batch_deadline(&req, 1, &ArtifactStore::new(), Some(Duration::ZERO)).unwrap();
        assert_eq!(report.results[0].error.as_deref(), Some("deadline of 0 ms exceeded"));
        assert_eq!(report.results[0].name, "t");
        assert_eq!(report.errors(), 1);
        // The error string carries the configured deadline, not a
        // measured time, so it is stable across runs.
        let again =
            run_batch_deadline(&req, 4, &ArtifactStore::new(), Some(Duration::ZERO)).unwrap();
        assert_eq!(report.results_json().to_string(), again.results_json().to_string());
    }

    #[test]
    fn generous_deadline_leaves_results_byte_identical() {
        let req = BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]);
        let plain = run_batch(&req, 2).unwrap();
        let deadlined =
            run_batch_deadline(&req, 2, &ArtifactStore::new(), Some(Duration::from_secs(3600)))
                .unwrap();
        assert_eq!(plain.results_json().to_string(), deadlined.results_json().to_string());
    }

    #[test]
    fn guarded_job_reports_timeouts_and_completions() {
        let store = ArtifactStore::new();
        let job = &BatchRequest::matrix([target("t", LOOP_TASK)], &[BatchVariant::default()]).jobs
            [0]
        .clone();
        match run_job_guarded(job, &store, Some(Duration::ZERO)) {
            JobOutcome::DeadlineExceeded => {}
            other => panic!("expected a timeout, got {other:?}"),
        }
        // The store survives the cancelled job and serves the next one.
        match run_job_guarded(job, &store, None) {
            JobOutcome::Completed(r) => {
                assert!(r.is_ok(), "{:?}", r.error);
                assert_eq!(r.stack, Some(32));
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}
