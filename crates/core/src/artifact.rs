//! The content-addressed artifact store: cross-job reuse of phase
//! results.
//!
//! A batch campaign runs `targets × variants` jobs, and most variants
//! agree on most phase inputs — the whole hardware sweep shares one CFG
//! and one value fixpoint per target (see `phase.rs`). The
//! [`ArtifactStore`] exploits that: artifacts are keyed by
//! `(phase, input fingerprint)`, the **first claimant computes** and
//! every other job — concurrent or later — **waits on the slot** and
//! receives the shared artifact (`stamp_exec::Slot` provides the
//! claim/wait state machine, including panic-safe claim hand-off).
//!
//! # Soundness
//!
//! Reuse is sound because every phase is a pure function of its
//! fingerprinted inputs and fingerprints chain through upstream phases
//! (`phase.rs` documents per-phase coverage). Phase *errors* are
//! artifacts too: a cached [`AnalysisError`] replays identically to a
//! computed one, so failed jobs render byte-identically with and
//! without the store.
//!
//! # Determinism
//!
//! Whether a given job computed or reused an artifact depends on
//! scheduling, so provenance and hit statistics are reported strictly
//! in the *timing layer* of batch reports (`BatchReport::to_json`),
//! never in the deterministic `results_json` — a cached run is
//! byte-identical to a cold one, which `tests/artifact_reuse.rs` and
//! the CI `batch-smoke` job enforce.

use std::any::Any;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use stamp_exec::{Slot, SlotClaim, SlotFillGuard};

use crate::error::AnalysisError;
use crate::fingerprint::Fingerprint;
use crate::json::Json;
use crate::phase::PhaseId;
use crate::store_disk::{self, DiskStore};

/// What a slot stores: the phase's artifact (type-erased, downcast by
/// the phase driver) or the error the phase produced.
type Stored = Result<Arc<dyn Any + Send + Sync>, AnalysisError>;

/// The slot map: one claim/wait slot per `(phase, fingerprint)` key.
type SlotMap = HashMap<(PhaseId, Fingerprint), Arc<Slot<Stored>>>;

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    waits: AtomicU64,
}

/// A thread-safe, content-addressed store of phase artifacts, shared by
/// every job of a batch run (see the module docs). With
/// [`ArtifactStore::with_disk`] the store is additionally backed by a
/// durable on-disk artifact log (`store_disk.rs`): misses consult the
/// log before computing, and freshly computed artifacts are written
/// through, so a later *process* re-running the same inputs starts warm.
pub struct ArtifactStore {
    enabled: bool,
    slots: Mutex<SlotMap>,
    counters: [Counters; PhaseId::ALL.len()],
    disk: Option<DiskStore>,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

/// The outcome of claiming an artifact slot (crate-internal; phase
/// drivers use it, public callers see only reports and stats).
pub(crate) enum ArtifactClaim<'s> {
    /// The store is disabled: compute locally, publish nothing.
    Disabled,
    /// Another job already produced this artifact (or its error) — or
    /// a durable backend held it from an earlier process.
    Ready(Stored),
    /// This job is the first claimant and must compute and publish.
    Fill(FillGuard<'s>),
}

/// Exclusive permission to publish one artifact. Dropping it without
/// fulfilling (panic inside the computing phase) releases the claim to
/// a waiting job.
pub(crate) struct FillGuard<'s> {
    inner: SlotFillGuard<Stored>,
    /// Write-through target: set iff the store has a durable backend.
    disk: Option<&'s DiskStore>,
    phase: PhaseId,
    fp: Fingerprint,
}

impl FillGuard<'_> {
    /// Publishes the computed artifact (or the phase error) and wakes
    /// every waiting job. Successful artifacts are written through to
    /// the durable log, if any; errors are never persisted (see
    /// `store_disk.rs`). A failed disk write degrades to in-memory-only
    /// operation — persistence is an optimization, never a failure.
    pub(crate) fn fulfill(self, value: Stored) {
        if let (Some(disk), Ok(any)) = (self.disk, &value) {
            if let Some(bytes) = store_disk::encode_artifact(self.phase, any.as_ref()) {
                disk.append(self.phase, self.fp, &bytes);
            }
        }
        self.inner.fulfill(value);
    }
}

impl ArtifactStore {
    /// An enabled, empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore {
            enabled: true,
            slots: Mutex::new(HashMap::new()),
            counters: Default::default(),
            disk: None,
        }
    }

    /// An enabled store backed by the durable artifact log in `dir`
    /// (created if absent). Artifacts persisted by earlier processes
    /// answer misses without recomputation (counted as
    /// [`PhaseStat::hits_disk`]); newly computed artifacts are written
    /// through. The returned warnings describe recovered corruption —
    /// a corrupt or truncated log is repaired by truncation and never
    /// fails the open.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, disk full on header
    /// write) — see [`crate::ArtifactStore::with_disk`] callers for the
    /// CLI mapping to exit code 2.
    pub fn with_disk(dir: &Path) -> io::Result<(ArtifactStore, Vec<String>)> {
        let (disk, warnings) = DiskStore::open(dir)?;
        let mut store = ArtifactStore::new();
        store.disk = Some(disk);
        Ok((store, warnings))
    }

    /// Number of artifacts held by the durable backend (0 without one).
    pub fn disk_artifact_count(&self) -> usize {
        self.disk.as_ref().map(DiskStore::len).unwrap_or(0)
    }

    /// The durable log path, if this store has a disk backend.
    pub fn disk_path(&self) -> Option<&Path> {
        self.disk.as_ref().map(DiskStore::path)
    }

    /// Whether a mid-run write failure has degraded the durable backend
    /// to in-memory-only operation (`false` without a backend).
    pub fn disk_degraded(&self) -> bool {
        self.disk.as_ref().is_some_and(DiskStore::is_degraded)
    }

    /// The degradation warning, if a disk write has failed since the
    /// last call — delivered at most once, so callers (CLI, daemon) can
    /// print exactly one line instead of one per lost artifact.
    pub fn take_disk_warning(&self) -> Option<String> {
        self.disk.as_ref().and_then(DiskStore::take_warning)
    }

    /// Flushes the durable backend, if any — the daemon's drain-time
    /// sync. Appends are flushed record-by-record already, so this is
    /// cheap.
    pub fn flush_disk(&self) {
        if let Some(disk) = &self.disk {
            disk.flush();
        }
    }

    /// A disabled store: every claim answers [`ArtifactClaim::Disabled`]
    /// and nothing is retained — the zero-overhead path of
    /// `--no-artifact-cache` and of one-shot [`crate::WcetAnalysis::run`].
    pub fn disabled() -> ArtifactStore {
        ArtifactStore { enabled: false, ..ArtifactStore::new() }
    }

    /// Whether artifacts are being cached.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of distinct artifacts (and cached errors) in the store.
    pub fn artifact_count(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Claims the artifact for `(phase, fp)` (see [`ArtifactClaim`]).
    ///
    /// With a durable backend, a first claimant consults the on-disk
    /// log before computing: a decodable record is published to the
    /// in-memory slot (so concurrent claimants share it) and answered
    /// as [`ArtifactClaim::Ready`], counted separately as a disk hit.
    /// An undecodable record — version skew survived the schema check,
    /// or silent corruption passing CRC — is evicted and recomputed;
    /// never a crash.
    pub(crate) fn claim(&self, phase: PhaseId, fp: Fingerprint) -> ArtifactClaim<'_> {
        if !self.enabled {
            return ArtifactClaim::Disabled;
        }
        let slot = Arc::clone(self.slots.lock().unwrap().entry((phase, fp)).or_default());
        let counters = &self.counters[phase.index()];
        match Slot::claim(&slot) {
            SlotClaim::Ready { value, waited } => {
                counters.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    counters.waits.fetch_add(1, Ordering::Relaxed);
                }
                ArtifactClaim::Ready(value)
            }
            SlotClaim::Fill(inner) => {
                if let Some(disk) = &self.disk {
                    if let Some(bytes) = disk.get(phase, fp) {
                        match store_disk::decode_artifact(phase, &bytes) {
                            Ok(any) => {
                                counters.hits_disk.fetch_add(1, Ordering::Relaxed);
                                let stored: Stored = Ok(any);
                                inner.fulfill(stored.clone());
                                return ArtifactClaim::Ready(stored);
                            }
                            Err(_) => disk.evict(phase, fp),
                        }
                    }
                }
                counters.misses.fetch_add(1, Ordering::Relaxed);
                ArtifactClaim::Fill(FillGuard { inner, disk: self.disk.as_ref(), phase, fp })
            }
        }
    }

    /// The get-or-compute convenience over [`ArtifactStore::claim`]:
    /// returns the shared artifact plus whether it was reused, caching
    /// errors exactly like values.
    pub(crate) fn get_or_compute<T: Send + Sync + 'static>(
        &self,
        phase: PhaseId,
        fp: Fingerprint,
        compute: impl FnOnce() -> Result<T, AnalysisError>,
    ) -> Result<(Arc<T>, bool), AnalysisError> {
        let downcast = |any: Arc<dyn Any + Send + Sync>| -> Arc<T> {
            any.downcast().expect("artifact store: phase keyed with two different types")
        };
        match self.claim(phase, fp) {
            ArtifactClaim::Disabled => compute().map(|v| (Arc::new(v), false)),
            ArtifactClaim::Ready(stored) => stored.map(|any| (downcast(any), true)),
            ArtifactClaim::Fill(guard) => match compute() {
                Ok(v) => {
                    let shared = Arc::new(v);
                    guard.fulfill(Ok(shared.clone()));
                    Ok((shared, false))
                }
                Err(e) => {
                    guard.fulfill(Err(e.clone()));
                    Err(e)
                }
            },
        }
    }

    /// A snapshot of the per-phase request counters.
    pub fn stats(&self) -> ArtifactStats {
        ArtifactStats {
            enabled: self.enabled,
            phases: PhaseId::ALL.map(|p| {
                let c = &self.counters[p.index()];
                PhaseStat {
                    phase: p.name(),
                    hits: c.hits.load(Ordering::Relaxed),
                    hits_disk: c.hits_disk.load(Ordering::Relaxed),
                    misses: c.misses.load(Ordering::Relaxed),
                    waits: c.waits.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

/// Request counters of one phase (a row of [`ArtifactStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase's short name.
    pub phase: &'static str,
    /// Requests answered from the in-memory store (including after a
    /// wait).
    pub hits: u64,
    /// Requests answered from the durable on-disk log — artifacts
    /// computed by an earlier process.
    pub hits_disk: u64,
    /// Requests that computed the artifact.
    pub misses: u64,
    /// Hits that blocked on an in-flight computation.
    pub waits: u64,
}

/// Per-phase artifact-cache statistics, either cumulative
/// ([`ArtifactStore::stats`]) or as a delta over one batch pass
/// ([`ArtifactStats::since`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArtifactStats {
    /// Whether the store was enabled (disabled stores count nothing).
    pub enabled: bool,
    /// One row per phase, in pipeline order.
    pub phases: [PhaseStat; PhaseId::ALL.len()],
}

impl ArtifactStats {
    /// Total requests answered from the in-memory store.
    pub fn hits(&self) -> u64 {
        self.phases.iter().map(|p| p.hits).sum()
    }

    /// Total requests answered from the durable on-disk log.
    pub fn hits_disk(&self) -> u64 {
        self.phases.iter().map(|p| p.hits_disk).sum()
    }

    /// Total requests that computed.
    pub fn misses(&self) -> u64 {
        self.phases.iter().map(|p| p.misses).sum()
    }

    /// Total artifact requests.
    pub fn requests(&self) -> u64 {
        self.hits() + self.hits_disk() + self.misses()
    }

    /// Fraction of requests answered without computing — from memory
    /// or from disk (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            (self.hits() + self.hits_disk()) as f64 / total as f64
        }
    }

    /// Of the requests that *reached the durable backend* (i.e. missed
    /// memory), the fraction answered from disk. This is the
    /// warm-process metric the CI store-smoke job gates on: a second
    /// process over unchanged inputs answers every first claim from
    /// disk, so its disk hit rate is 1.0.
    pub fn disk_hit_rate(&self) -> f64 {
        let reached = self.hits_disk() + self.misses();
        if reached == 0 {
            0.0
        } else {
            self.hits_disk() as f64 / reached as f64
        }
    }

    /// The row for the named phase, or `None` for a name that is not a
    /// phase. (Returning a defaulted row here once masked typos in
    /// callers — an unknown phase looked identical to an idle one.)
    pub fn phase(&self, name: &str) -> Option<PhaseStat> {
        self.phases.iter().copied().find(|p| p.phase == name)
    }

    /// The delta from an `earlier` snapshot of the same store — the
    /// per-pass statistics of a batch run against a long-lived store.
    pub fn since(&self, earlier: &ArtifactStats) -> ArtifactStats {
        let mut delta = *self;
        for (row, before) in delta.phases.iter_mut().zip(earlier.phases.iter()) {
            // Saturating: counters only grow, but guard against callers
            // swapping the arguments or mixing snapshots of different
            // stores — a zero row beats a wrapped 2^64 count in a report.
            row.hits = row.hits.saturating_sub(before.hits);
            row.hits_disk = row.hits_disk.saturating_sub(before.hits_disk);
            row.misses = row.misses.saturating_sub(before.misses);
            row.waits = row.waits.saturating_sub(before.waits);
        }
        delta
    }

    /// JSON rendering (part of the *timing layer* of batch reports —
    /// hit patterns depend on scheduling and never enter the
    /// deterministic `results_json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("enabled", Json::Bool(self.enabled)),
            ("hits", Json::int(self.hits())),
            ("hits_disk", Json::int(self.hits_disk())),
            ("misses", Json::int(self.misses())),
            ("hit_rate", Json::Num(self.hit_rate())),
            ("disk_hit_rate", Json::Num(self.disk_hit_rate())),
            (
                "phases",
                Json::Obj(
                    self.phases
                        .iter()
                        .filter(|p| p.hits + p.hits_disk + p.misses > 0)
                        .map(|p| {
                            (
                                p.phase.to_string(),
                                Json::obj([
                                    ("hits", Json::int(p.hits)),
                                    ("hits_disk", Json::int(p.hits_disk)),
                                    ("misses", Json::int(p.misses)),
                                    ("waits", Json::int(p.waits)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fp;

    fn fp(n: u64) -> Fingerprint {
        let mut f = Fp::new("test");
        f.u64(n);
        f.finish()
    }

    #[test]
    fn first_request_computes_second_reuses() {
        let store = ArtifactStore::new();
        let (a, reused) = store
            .get_or_compute(PhaseId::Cfg, fp(1), || Ok::<_, AnalysisError>(vec![1u32, 2, 3]))
            .unwrap();
        assert!(!reused);
        let (b, reused) = store
            .get_or_compute(PhaseId::Cfg, fp(1), || -> Result<Vec<u32>, AnalysisError> {
                panic!("must not recompute")
            })
            .unwrap();
        assert!(reused);
        assert!(Arc::ptr_eq(&a, &b), "the artifact is shared, not copied");
        let stats = store.stats();
        assert_eq!(
            stats.phase("cfg").unwrap(),
            PhaseStat { phase: "cfg", hits: 1, hits_disk: 0, misses: 1, waits: 0 }
        );
        assert_eq!(stats.phase("no-such-phase"), None);
        assert_eq!(store.artifact_count(), 1);
    }

    #[test]
    fn distinct_fingerprints_and_phases_do_not_collide() {
        let store = ArtifactStore::new();
        let compute = |v: u32| move || Ok::<_, AnalysisError>(v);
        let (a, _) = store.get_or_compute(PhaseId::Cfg, fp(1), compute(10)).unwrap();
        let (b, _) = store.get_or_compute(PhaseId::Cfg, fp(2), compute(20)).unwrap();
        let (c, _) = store.get_or_compute(PhaseId::Value, fp(1), compute(30)).unwrap();
        assert_eq!((*a, *b, *c), (10, 20, 30));
        assert_eq!(store.stats().misses(), 3);
        assert_eq!(store.stats().hits(), 0);
    }

    #[test]
    fn errors_are_cached_and_replayed() {
        let store = ArtifactStore::new();
        let fail = || -> Result<u32, AnalysisError> {
            Err(AnalysisError::UnknownSymbol { name: "boom".into() })
        };
        let e1 = store.get_or_compute(PhaseId::Path, fp(9), fail).unwrap_err();
        // The second request must *not* recompute: the closure panics if
        // called.
        let e2 = store
            .get_or_compute(PhaseId::Path, fp(9), || -> Result<u32, AnalysisError> {
                panic!("errors are artifacts too")
            })
            .unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
        let s = store.stats().phase("path").unwrap();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn disabled_store_always_computes_and_counts_nothing() {
        let store = ArtifactStore::disabled();
        for _ in 0..3 {
            let (v, reused) = store
                .get_or_compute(PhaseId::Value, fp(5), || Ok::<_, AnalysisError>(7u8))
                .unwrap();
            assert_eq!(*v, 7);
            assert!(!reused);
        }
        assert_eq!(store.stats().requests(), 0);
        assert_eq!(store.artifact_count(), 0);
        assert!(!store.enabled());
    }

    #[test]
    fn concurrent_claims_compute_once_and_wait() {
        let store = ArtifactStore::new();
        let computed = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = store
                        .get_or_compute(PhaseId::Value, fp(1), || {
                            computed.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so other threads
                            // actually wait on the slot.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Ok::<_, AnalysisError>(123u64)
                        })
                        .unwrap();
                    assert_eq!(*v, 123);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "exactly one claimant computes");
        let s = store.stats().phase("value").unwrap();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn stats_delta_isolates_a_pass() {
        let store = ArtifactStore::new();
        let _ = store.get_or_compute(PhaseId::Cfg, fp(1), || Ok::<_, AnalysisError>(1u8));
        let before = store.stats();
        let _ = store.get_or_compute(PhaseId::Cfg, fp(1), || Ok::<_, AnalysisError>(1u8));
        let delta = store.stats().since(&before);
        assert_eq!(delta.hits(), 1);
        assert_eq!(delta.misses(), 0);
        assert_eq!(delta.hit_rate(), 1.0);
    }

    #[test]
    fn stats_json_lands_active_phases_only() {
        let store = ArtifactStore::new();
        let _ = store.get_or_compute(PhaseId::Cache, fp(1), || Ok::<_, AnalysisError>(0u8));
        let json = store.stats().to_json().to_string();
        assert!(json.contains("\"cache\""), "{json}");
        assert!(!json.contains("\"pipeline\""), "{json}");
        assert!(json.contains("\"hit_rate\""), "{json}");
        assert!(json.contains("\"hits_disk\""), "{json}");
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("stamp-artifact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(bound: u32) -> crate::stack_tool::StackReport {
        crate::stack_tool::StackReport {
            bound,
            mode: "precise",
            per_function: std::collections::BTreeMap::new(),
            phases: Vec::new(),
        }
    }

    #[test]
    fn disk_store_answers_a_fresh_process_from_the_log() {
        let dir = tmp_dir("warm");
        {
            let (store, warnings) = ArtifactStore::with_disk(&dir).unwrap();
            assert!(warnings.is_empty(), "{warnings:?}");
            let (_, reused) = store
                .get_or_compute(PhaseId::Stack, fp(1), || Ok::<_, AnalysisError>(sample_report(64)))
                .unwrap();
            assert!(!reused);
            assert_eq!(store.disk_artifact_count(), 1, "fulfill writes through");
        }
        // A second store on the same directory models a new process: the
        // in-memory map starts empty, so the artifact must come from disk.
        let (store, warnings) = ArtifactStore::with_disk(&dir).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        let (report, reused) = store
            .get_or_compute(
                PhaseId::Stack,
                fp(1),
                || -> Result<crate::stack_tool::StackReport, AnalysisError> {
                    panic!("must be served from disk")
                },
            )
            .unwrap();
        assert!(reused);
        assert_eq!(report.bound, 64);
        let stats = store.stats();
        assert_eq!(stats.hits_disk(), 1);
        assert_eq!(stats.hits(), 0);
        assert_eq!(stats.disk_hit_rate(), 1.0);
        // A repeat request in the same process is a plain memory hit.
        let (_, reused) = store
            .get_or_compute(
                PhaseId::Stack,
                fp(1),
                || -> Result<crate::stack_tool::StackReport, AnalysisError> {
                    panic!("must be served from memory")
                },
            )
            .unwrap();
        assert!(reused);
        assert_eq!(store.stats().hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unencodable_artifacts_stay_memory_only() {
        let dir = tmp_dir("alien");
        let (store, _) = ArtifactStore::with_disk(&dir).unwrap();
        // `Vec<u32>` is not one of the nine persistable artifact types,
        // so the value is cached in memory but never written through.
        let (v, _) = store
            .get_or_compute(PhaseId::Cfg, fp(3), || Ok::<_, AnalysisError>(vec![1u32, 2]))
            .unwrap();
        assert_eq!(*v, vec![1, 2]);
        assert_eq!(store.disk_artifact_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_write_failure_degrades_without_failing_jobs() {
        struct FailingSink;
        impl std::io::Write for FailingSink {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("no space left on device"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let dir = tmp_dir("degrade");
        let (store, _) = ArtifactStore::with_disk(&dir).unwrap();
        let (_, reused) = store
            .get_or_compute(PhaseId::Stack, fp(1), || Ok::<_, AnalysisError>(sample_report(8)))
            .unwrap();
        assert!(!reused);
        assert_eq!(store.disk_artifact_count(), 1);
        assert!(!store.disk_degraded());

        // The disk goes away mid-run: computations keep succeeding,
        // write-through silently stops, one warning is queued.
        store.disk.as_ref().unwrap().set_sink_for_tests(Box::new(FailingSink));
        let (report, reused) = store
            .get_or_compute(PhaseId::Stack, fp(2), || Ok::<_, AnalysisError>(sample_report(16)))
            .unwrap();
        assert!(!reused);
        assert_eq!(report.bound, 16, "the job's result is unaffected");
        assert!(store.disk_degraded());
        let warning = store.take_disk_warning().expect("degradation surfaces one warning");
        assert!(warning.contains("persistence disabled"), "{warning}");
        assert!(store.take_disk_warning().is_none());

        // In-memory reuse still works for both pre- and post-fault
        // artifacts, and pre-fault disk contents still answer reads.
        for (key, bound) in [(fp(1), 8), (fp(2), 16)] {
            let (r, reused) = store
                .get_or_compute(
                    PhaseId::Stack,
                    key,
                    || -> Result<crate::stack_tool::StackReport, AnalysisError> {
                        panic!("must be served from memory")
                    },
                )
                .unwrap();
            assert!(reused);
            assert_eq!(r.bound, bound);
        }
        assert_eq!(store.disk_artifact_count(), 1, "only the pre-fault artifact is durable");
        store.flush_disk(); // the drain-time flush must not panic when degraded
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_never_written_to_disk() {
        let dir = tmp_dir("err");
        let (store, _) = ArtifactStore::with_disk(&dir).unwrap();
        let fail = || -> Result<crate::stack_tool::StackReport, AnalysisError> {
            Err(AnalysisError::UnknownSymbol { name: "boom".into() })
        };
        store.get_or_compute(PhaseId::Stack, fp(7), fail).unwrap_err();
        assert_eq!(store.disk_artifact_count(), 0, "errors are per-run, not durable");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
