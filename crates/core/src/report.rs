//! The aiT-style analysis report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use stamp_ai::{Frame, Icfg};
use stamp_cache::{CacheAnalysis, ClassStats};
use stamp_cfg::{dot, BlockId, Cfg};
use stamp_isa::Program;
use stamp_loopbound::LoopBoundAnalysis;
use stamp_path::WcetResult;
use stamp_pipeline::PipelineAnalysis;
use stamp_value::{PrecisionSummary, ValueAnalysis};

use crate::json::Json;
use crate::phase::PhaseId;

/// One analysis phase as this run experienced it: wall-clock duration
/// plus whether the phase's artifact was reused from a shared
/// [`crate::ArtifactStore`] rather than computed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseStats {
    /// Which phase.
    pub phase: PhaseId,
    /// Duration in seconds (the time to *obtain* the artifact — near
    /// zero when reused).
    pub seconds: f64,
    /// `true` when the artifact came out of the store (provenance; kept
    /// out of all deterministic renderings, since whether a job reused
    /// or computed depends on scheduling).
    pub reused: bool,
}

impl PhaseStats {
    /// The human-readable phase name.
    pub fn name(&self) -> &'static str {
        self.phase.title()
    }
}

/// The complete result of a WCET analysis ("Its results are documented
/// in a report file and as annotations in the control-flow graph").
#[derive(Clone, Debug)]
pub struct WcetReport {
    /// The WCET bound in cycles.
    pub wcet: u64,
    /// Program entry address.
    pub entry: u32,
    /// Number of reconstructed functions.
    pub functions: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Number of decoded instructions.
    pub insns: usize,
    /// Number of supergraph nodes (block × context instances).
    pub nodes: usize,
    /// Value-analysis address precision (E3).
    pub precision: PrecisionSummary,
    /// Branch instances proven constant (E4).
    pub constant_branches: usize,
    /// Supergraph edges proven infeasible (E4).
    pub infeasible_edges: usize,
    /// I-cache classification counts (E5).
    pub fetch_stats: ClassStats,
    /// D-cache classification counts (E5).
    pub data_stats: ClassStats,
    /// Loop bounds: `(header address, instance description, bound)`.
    pub loop_bounds: Vec<(u32, String, u64)>,
    /// ILP size `(variables, constraints)`.
    pub ilp_size: (usize, usize),
    /// Per-phase durations.
    pub phases: Vec<PhaseStats>,
    /// Path-segment summaries this run solved (provenance, timing
    /// layer only — like [`PhaseStats::reused`] it depends on what the
    /// shared store already held, so it is kept out of every
    /// deterministic rendering).
    pub summaries_computed: u64,
    /// Path-segment summaries recalled from a memo or the store.
    pub summaries_reused: u64,
    /// Microarchitectural region summaries this run computed
    /// (provenance, timing layer only — see
    /// [`WcetReport::summaries_computed`]).
    pub uarch_computed: u64,
    /// Microarchitectural region summaries recalled from a memo or the
    /// store.
    pub uarch_reused: u64,
    /// Per-block worst-case profile: `(block start, count, cycles)`.
    pub block_profile: Vec<(u32, u64, u64)>,
    /// Block start addresses on the worst-case path prefix.
    pub worst_path: Vec<u32>,
    /// Total analysis node evaluations across fixpoints (E6).
    pub evaluations: u64,
    cfg: Cfg,
}

impl WcetReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        program: &Program,
        cfg: &Cfg,
        icfg: &Icfg,
        va: &ValueAnalysis,
        lb: &LoopBoundAnalysis,
        ca: &CacheAnalysis,
        pa: &PipelineAnalysis,
        result: &WcetResult,
        phases: Vec<PhaseStats>,
        summaries: (u64, u64),
        uarch: (u64, u64),
    ) -> WcetReport {
        // Per-block worst-case cycle attribution.
        let mut profile: BTreeMap<BlockId, (u64, u64)> = BTreeMap::new();
        for (&node, &count) in &result.node_counts {
            let t = pa.time(node).unwrap_or(0);
            let e = profile.entry(icfg.node(node).block).or_insert((0, 0));
            e.0 += count;
            e.1 += count * t;
        }
        for (&eid, &count) in &result.edge_counts {
            let e = icfg.edge(eid);
            let pen = pa.edge_penalty(cfg, icfg, &e);
            if pen > 0 {
                let slot = profile.entry(icfg.node(e.to).block).or_insert((0, 0));
                slot.1 += pen * count;
            }
        }
        let block_profile: Vec<(u32, u64, u64)> = profile
            .iter()
            .map(|(&b, &(count, cycles))| (cfg.block(b).start, count, cycles))
            .collect();

        let loop_bounds = lb
            .bounds()
            .iter()
            .map(|((header, frames), &bound)| {
                let desc = if frames.is_empty() {
                    "task".to_string()
                } else {
                    frames
                        .iter()
                        .map(|f| match f {
                            Frame::Call { site } => format!("call@{site:#x}"),
                            Frame::Loop { header, iter } => format!("{header}#{iter}"),
                        })
                        .collect::<Vec<_>>()
                        .join("·")
                };
                (cfg.block(*header).start, desc, bound)
            })
            .collect();

        let worst_path = result
            .worst_path(icfg, 64)
            .iter()
            .map(|&n| cfg.block(icfg.node(n).block).start)
            .collect();

        WcetReport {
            wcet: result.wcet,
            entry: program.entry,
            functions: cfg.functions().len(),
            blocks: cfg.blocks().len(),
            insns: cfg.insn_count(),
            nodes: icfg.nodes().len(),
            precision: va.precision_summary(),
            constant_branches: va.constant_branches(),
            infeasible_edges: va.infeasible_edges().len(),
            fetch_stats: ca.fetch_stats(),
            data_stats: ca.data_stats(),
            loop_bounds,
            ilp_size: result.ilp_size,
            phases,
            summaries_computed: summaries.0,
            summaries_reused: summaries.1,
            uarch_computed: uarch.0,
            uarch_reused: uarch.1,
            block_profile,
            worst_path,
            evaluations: va.evaluations + ca.evaluations + pa.evaluations,
            cfg: cfg.clone(),
        }
    }

    /// Total analysis time in seconds.
    pub fn analysis_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.seconds).sum()
    }

    /// Renders the human-readable report file.
    pub fn render(&self, program: &Program) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== stamp WCET analysis report ====");
        let _ = writeln!(
            out,
            "task entry: {} ({:#010x})",
            program.symbols.format_addr(self.entry),
            self.entry
        );
        let _ = writeln!(
            out,
            "program: {} functions, {} blocks, {} instructions; {} context instances",
            self.functions, self.blocks, self.insns, self.nodes
        );
        let _ = writeln!(out, "\n-- value analysis");
        let p = &self.precision;
        let _ = writeln!(
            out,
            "memory accesses: {} exact, {} bounded, {} unknown (of {})",
            p.exact,
            p.bounded,
            p.unknown,
            p.total()
        );
        let _ = writeln!(
            out,
            "constant conditions: {}; infeasible supergraph edges: {}",
            self.constant_branches, self.infeasible_edges
        );
        let _ = writeln!(out, "\n-- loop bounds");
        for (addr, desc, bound) in &self.loop_bounds {
            let _ = writeln!(
                out,
                "loop at {} [{}]: ≤ {} iterations",
                program.symbols.format_addr(*addr),
                desc,
                bound
            );
        }
        let _ = writeln!(out, "\n-- cache analysis");
        let f = &self.fetch_stats;
        let _ = writeln!(
            out,
            "fetches: {} always-hit, {} always-miss, {} persistent, {} unclassified",
            f.hit, f.miss, f.persistent, f.unclassified
        );
        let d = &self.data_stats;
        let _ = writeln!(
            out,
            "data:    {} always-hit, {} always-miss, {} persistent, {} unclassified",
            d.hit, d.miss, d.persistent, d.unclassified
        );
        let _ = writeln!(out, "\n-- path analysis");
        let _ =
            writeln!(out, "ILP: {} variables, {} constraints", self.ilp_size.0, self.ilp_size.1);
        let _ = writeln!(out, "\n**** WCET bound: {} cycles ****", self.wcet);
        let _ = writeln!(out, "\n-- worst-case profile (per block)");
        let mut rows: Vec<&(u32, u64, u64)> = self.block_profile.iter().collect();
        rows.sort_by_key(|(_, _, cycles)| std::cmp::Reverse(*cycles));
        for (addr, count, cycles) in rows.into_iter().take(12) {
            let _ = writeln!(
                out,
                "{:<24} executions: {:>8}   cycles: {:>10}",
                program.symbols.format_addr(*addr),
                count,
                cycles
            );
        }
        let _ = writeln!(out, "\n-- worst-case path (prefix)");
        let mut line = String::new();
        for (i, addr) in self.worst_path.iter().take(12).enumerate() {
            if i > 0 {
                line.push_str(" → ");
            }
            line.push_str(&program.symbols.format_addr(*addr));
        }
        if self.worst_path.len() > 12 {
            line.push_str(" → …");
        }
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "\n-- analysis time");
        for ph in &self.phases {
            let _ = writeln!(
                out,
                "{:<24} {:>9.3} ms{}",
                ph.name(),
                ph.seconds * 1e3,
                if ph.reused { "  (reused)" } else { "" }
            );
        }
        let _ = writeln!(out, "{:<24} {:>9.3} ms", "total", self.analysis_seconds() * 1e3);
        if self.summaries_computed + self.summaries_reused > 0 {
            let _ = writeln!(
                out,
                "{:<24} {} computed, {} reused",
                "procedure summaries", self.summaries_computed, self.summaries_reused
            );
        }
        if self.uarch_computed + self.uarch_reused > 0 {
            let _ = writeln!(
                out,
                "{:<24} {} computed, {} reused",
                "uarch summaries", self.uarch_computed, self.uarch_reused
            );
        }
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("wcet", Json::int(self.wcet)),
            ("entry", Json::int(self.entry as u64)),
            ("functions", Json::int(self.functions as u64)),
            ("blocks", Json::int(self.blocks as u64)),
            ("instructions", Json::int(self.insns as u64)),
            ("contexts", Json::int(self.nodes as u64)),
            (
                "precision",
                Json::obj([
                    ("exact", Json::int(self.precision.exact as u64)),
                    ("bounded", Json::int(self.precision.bounded as u64)),
                    ("unknown", Json::int(self.precision.unknown as u64)),
                ]),
            ),
            ("constant_branches", Json::int(self.constant_branches as u64)),
            ("infeasible_edges", Json::int(self.infeasible_edges as u64)),
            (
                "ilp",
                Json::obj([
                    ("vars", Json::int(self.ilp_size.0 as u64)),
                    ("constraints", Json::int(self.ilp_size.1 as u64)),
                ]),
            ),
            ("analysis_seconds", Json::Num(self.analysis_seconds())),
            (
                "loop_bounds",
                Json::Arr(
                    self.loop_bounds
                        .iter()
                        .map(|(a, d, b)| {
                            Json::obj([
                                ("header", Json::int(*a as u64)),
                                ("instance", Json::str(d.clone())),
                                ("bound", Json::int(*b)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the annotated CFG in DOT format (the aiSee substitute):
    /// worst-case counts and cycles per block, worst path highlighted.
    pub fn to_dot(&self) -> String {
        let mut ann = dot::Annotations::new();
        for &(addr, count, cycles) in &self.block_profile {
            if let Some(b) = self.cfg.block_at(addr) {
                ann.note_block(b, format!("count {count}, cycles {cycles}"));
                if count > 0 {
                    ann.highlight.push(b);
                }
            }
        }
        dot::render(&self.cfg, &ann)
    }
}
