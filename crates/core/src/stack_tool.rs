//! The StackAnalyzer product: per-task worst-case stack bounds.

use std::collections::BTreeMap;

use stamp_ai::{Icfg, IcfgError, VivuConfig};
use stamp_cfg::CfgBuilder;
use stamp_hw::HwConfig;
use stamp_isa::Program;
use stamp_stack::{FunctionStack, StackOptions};
use stamp_value::{ValueAnalysis, ValueOptions};

use crate::annot::Annotations;
use crate::error::AnalysisError;
use crate::json::Json;

/// Result of a stack analysis.
#[derive(Clone, Debug)]
pub struct StackReport {
    /// Worst-case stack usage of the task in bytes.
    pub bound: u32,
    /// Which analysis produced the bound: `"precise"` (supergraph replay)
    /// or `"callgraph"` (compositional, used for recursive tasks).
    pub mode: &'static str,
    /// Per-function breakdown (callgraph mode only).
    pub per_function: BTreeMap<String, FunctionStack>,
}

impl StackReport {
    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stack_bound", Json::int(self.bound as u64)),
            ("mode", Json::str(self.mode)),
            (
                "functions",
                Json::Obj(
                    self.per_function
                        .iter()
                        .map(|(n, f)| {
                            (
                                n.clone(),
                                Json::obj([
                                    ("local", Json::int(f.local as u64)),
                                    ("usage", Json::int(f.usage as u64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The stack analyzer. Prefers the precise supergraph mode and falls
/// back to the compositional call-graph mode when the task is recursive
/// (which then requires recursion-depth annotations).
///
/// # Example
///
/// ```
/// use stamp_isa::asm::assemble;
/// use stamp_core::StackAnalysis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble(".text\nmain: addi sp, sp, -64\naddi sp, sp, 64\nhalt\n")?;
/// let report = StackAnalysis::new(&p).run()?;
/// assert_eq!(report.bound, 64);
/// # Ok(())
/// # }
/// ```
pub struct StackAnalysis<'p> {
    program: &'p Program,
    hw: HwConfig,
    annotations: Annotations,
}

impl<'p> StackAnalysis<'p> {
    /// Creates a stack analyzer with the default hardware model.
    pub fn new(program: &'p Program) -> StackAnalysis<'p> {
        StackAnalysis { program, hw: HwConfig::default(), annotations: Annotations::new() }
    }

    /// Sets the hardware model (memory map / stack top).
    pub fn hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Attaches annotations (recursion depths, indirect targets).
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Analyzes the task at the program's entry point.
    pub fn run(&self) -> Result<StackReport, AnalysisError> {
        self.run_program(self.program)
    }

    /// Analyzes the task whose entry is the given symbol (for multi-task
    /// images, one task per OSEK task entry).
    pub fn run_task(&self, entry_symbol: &str) -> Result<StackReport, AnalysisError> {
        let addr = self
            .program
            .symbols
            .addr_of(entry_symbol)
            .ok_or_else(|| AnalysisError::UnknownSymbol { name: entry_symbol.to_string() })?;
        let mut program = self.program.clone();
        program.entry = addr;
        self.run_program(&program)
    }

    fn run_program(&self, program: &Program) -> Result<StackReport, AnalysisError> {
        let mut builder = CfgBuilder::new(program);
        for (a, ts) in self.annotations.resolved_indirects(program) {
            builder.indirect_targets(a, ts);
        }
        let cfg = builder.build()?;

        match Icfg::build(&cfg, &VivuConfig::default()) {
            Ok(icfg) => {
                let va =
                    ValueAnalysis::run(program, &self.hw, &cfg, &icfg, &ValueOptions::default());
                let precise = stamp_stack::analyze_icfg(program, &self.hw, &cfg, &icfg, &va)?;
                // The callgraph mode also provides the per-function table.
                let breakdown = stamp_stack::analyze_callgraph(
                    program,
                    &cfg,
                    &StackOptions {
                        recursion_depths: self.annotations.resolved_recursion(program),
                    },
                )
                .map(|r| r.per_function)
                .unwrap_or_default();
                Ok(StackReport { bound: precise.total, mode: "precise", per_function: breakdown })
            }
            // Recursion: fall back to the compositional mode.
            Err(IcfgError::CallDepthExceeded { .. } | IcfgError::ContextExplosion { .. }) => {
                let opts =
                    StackOptions { recursion_depths: self.annotations.resolved_recursion(program) };
                let r = stamp_stack::analyze_callgraph(program, &cfg, &opts)?;
                Ok(StackReport { bound: r.total, mode: "callgraph", per_function: r.per_function })
            }
            Err(e) => Err(e.into()),
        }
    }
}
