//! The StackAnalyzer product: per-task worst-case stack bounds.
//!
//! The stack tool rides the same phase graph as the WCET analyzer: its
//! CFG / context / value prefix (always at default VIVU and value
//! options — stack bounds do not depend on unrolling contexts) goes
//! through the shared [`ArtifactStore`], so in a batch a target's stack
//! analysis and its WCET analysis share one value fixpoint, and a
//! hardware sweep shares the stack bound itself across variants (only
//! the memory map reaches the stack fingerprint).

use std::collections::BTreeMap;
use std::time::Instant;

use stamp_ai::{Icfg, IcfgError, VivuConfig};
use stamp_cfg::CfgBuilder;
use stamp_hw::HwConfig;
use stamp_isa::Program;
use stamp_stack::{FunctionStack, StackOptions};
use stamp_value::ValueOptions;

use crate::analyzer::value_phase;
use crate::annot::Annotations;
use crate::artifact::ArtifactStore;
use crate::error::AnalysisError;
use crate::json::Json;
use crate::phase::{self, PhaseId};
use crate::report::PhaseStats;

/// Result of a stack analysis.
#[derive(Clone, Debug)]
pub struct StackReport {
    /// Worst-case stack usage of the task in bytes.
    pub bound: u32,
    /// Which analysis produced the bound: `"precise"` (supergraph replay)
    /// or `"callgraph"` (compositional, used for recursive tasks).
    pub mode: &'static str,
    /// Per-function breakdown (callgraph mode only).
    pub per_function: BTreeMap<String, FunctionStack>,
    /// Per-phase timing and artifact provenance of *this run* (excluded
    /// from [`StackReport::to_json`]: provenance depends on scheduling,
    /// and the JSON rendering is deterministic).
    pub phases: Vec<PhaseStats>,
}

impl StackReport {
    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stack_bound", Json::int(self.bound as u64)),
            ("mode", Json::str(self.mode)),
            (
                "functions",
                Json::Obj(
                    self.per_function
                        .iter()
                        .map(|(n, f)| {
                            (
                                n.clone(),
                                Json::obj([
                                    ("local", Json::int(f.local as u64)),
                                    ("usage", Json::int(f.usage as u64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl stamp_codec::Codec for StackReport {
    /// Stored stack artifacts always carry an empty `phases` vector
    /// (provenance is per-run, never shared), so the field is not
    /// persisted and decodes as empty.
    fn enc(&self, e: &mut stamp_codec::Enc) {
        e.u32(self.bound);
        e.u8(match self.mode {
            "precise" => 0,
            "callgraph" => 1,
            other => unreachable!("unknown stack mode {other:?}"),
        });
        self.per_function.enc(e);
    }
    fn dec(d: &mut stamp_codec::Dec) -> Result<StackReport, stamp_codec::CodecError> {
        let bound = d.u32()?;
        let mode = match d.u8()? {
            0 => "precise",
            1 => "callgraph",
            _ => return Err(stamp_codec::CodecError::Invalid("stack mode")),
        };
        Ok(StackReport { bound, mode, per_function: BTreeMap::dec(d)?, phases: Vec::new() })
    }
}

/// The stack analyzer. Prefers the precise supergraph mode and falls
/// back to the compositional call-graph mode when the task is recursive
/// (which then requires recursion-depth annotations).
///
/// # Example
///
/// ```
/// use stamp_isa::asm::assemble;
/// use stamp_core::StackAnalysis;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble(".text\nmain: addi sp, sp, -64\naddi sp, sp, 64\nhalt\n")?;
/// let report = StackAnalysis::new(&p).run()?;
/// assert_eq!(report.bound, 64);
/// # Ok(())
/// # }
/// ```
pub struct StackAnalysis<'p> {
    program: &'p Program,
    hw: HwConfig,
    annotations: Annotations,
}

impl<'p> StackAnalysis<'p> {
    /// Creates a stack analyzer with the default hardware model.
    pub fn new(program: &'p Program) -> StackAnalysis<'p> {
        StackAnalysis { program, hw: HwConfig::default(), annotations: Annotations::new() }
    }

    /// Sets the hardware model (memory map / stack top).
    pub fn hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Attaches annotations (recursion depths, indirect targets).
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.annotations = annotations;
        self
    }

    /// Analyzes the task at the program's entry point.
    pub fn run(&self) -> Result<StackReport, AnalysisError> {
        self.run_program(self.program, &ArtifactStore::disabled())
    }

    /// Like [`StackAnalysis::run`], but sharing phase artifacts through
    /// `store` (see the module docs). The report is identical except
    /// for timing and provenance.
    pub fn run_with(&self, store: &ArtifactStore) -> Result<StackReport, AnalysisError> {
        self.run_program(self.program, store)
    }

    /// Analyzes the task whose entry is the given symbol (for multi-task
    /// images, one task per OSEK task entry).
    pub fn run_task(&self, entry_symbol: &str) -> Result<StackReport, AnalysisError> {
        let addr = self
            .program
            .symbols
            .addr_of(entry_symbol)
            .ok_or_else(|| AnalysisError::UnknownSymbol { name: entry_symbol.to_string() })?;
        let mut program = self.program.clone();
        program.entry = addr;
        // The entry point is part of the program fingerprint, so
        // per-task artifacts of a multi-task image never collide.
        self.run_program(&program, &ArtifactStore::disabled())
    }

    fn run_program(
        &self,
        program: &Program,
        store: &ArtifactStore,
    ) -> Result<StackReport, AnalysisError> {
        let mut phases: Vec<PhaseStats> = Vec::new();
        let program_fp = phase::program_fingerprint(program);
        let extra = self.annotations.resolved_indirects(program);
        let recursion = self.annotations.resolved_recursion(program);

        // Phase boundary = cancellation point (see the WCET driver).
        stamp_exec::cancel::checkpoint_now();
        let t = Instant::now();
        let cfg_fp = phase::cfg_fingerprint(program_fp, &extra);
        let (cfg, reused) = store.get_or_compute(PhaseId::Cfg, cfg_fp, || {
            let mut builder = CfgBuilder::new(program);
            for (a, ts) in &extra {
                builder.indirect_targets(*a, ts.iter().copied());
            }
            builder.build().map_err(AnalysisError::from)
        })?;
        phases.push(PhaseStats { phase: PhaseId::Cfg, seconds: t.elapsed().as_secs_f64(), reused });

        let t = Instant::now();
        let vivu = VivuConfig::default();
        let context_fp = phase::context_fingerprint(cfg_fp, &vivu);
        let icfg_result = store.get_or_compute(PhaseId::Context, context_fp, || {
            Icfg::build(&cfg, &vivu).map_err(AnalysisError::from)
        });

        match icfg_result {
            Ok((icfg, reused)) => {
                phases.push(PhaseStats {
                    phase: PhaseId::Context,
                    seconds: t.elapsed().as_secs_f64(),
                    reused,
                });
                let t = Instant::now();
                let value_opts = ValueOptions::default();
                let value_fp = phase::value_fingerprint(context_fp, &self.hw.mem, &value_opts);
                let (va, reused) =
                    value_phase(store, value_fp, program, &self.hw, &cfg, &icfg, &value_opts);
                phases.push(PhaseStats {
                    phase: PhaseId::Value,
                    seconds: t.elapsed().as_secs_f64(),
                    reused,
                });

                stamp_exec::cancel::checkpoint_now();
                let t = Instant::now();
                let stack_fp = phase::stack_fingerprint(value_fp, &recursion);
                let (report, reused) = store.get_or_compute(PhaseId::Stack, stack_fp, || {
                    let precise = stamp_stack::analyze_icfg(program, &self.hw, &cfg, &icfg, &va)?;
                    // The callgraph mode also provides the per-function
                    // table.
                    let breakdown = stamp_stack::analyze_callgraph(
                        program,
                        &cfg,
                        &StackOptions { recursion_depths: recursion.clone() },
                    )
                    .map(|r| r.per_function)
                    .unwrap_or_default();
                    Ok(StackReport {
                        bound: precise.total,
                        mode: "precise",
                        per_function: breakdown,
                        phases: Vec::new(),
                    })
                })?;
                phases.push(PhaseStats {
                    phase: PhaseId::Stack,
                    seconds: t.elapsed().as_secs_f64(),
                    reused,
                });
                Ok(StackReport { phases, ..(*report).clone() })
            }
            // Recursion: fall back to the compositional mode (the cached
            // context error carries the variant, so sharing jobs take
            // the same branch).
            Err(AnalysisError::Icfg(
                IcfgError::CallDepthExceeded { .. } | IcfgError::ContextExplosion { .. },
            )) => {
                let t = Instant::now();
                let stack_fp = phase::stack_callgraph_fingerprint(cfg_fp, &self.hw.mem, &recursion);
                let (report, reused) = store.get_or_compute(PhaseId::Stack, stack_fp, || {
                    let opts = StackOptions { recursion_depths: recursion.clone() };
                    let r = stamp_stack::analyze_callgraph(program, &cfg, &opts)?;
                    Ok(StackReport {
                        bound: r.total,
                        mode: "callgraph",
                        per_function: r.per_function,
                        phases: Vec::new(),
                    })
                })?;
                phases.push(PhaseStats {
                    phase: PhaseId::Stack,
                    seconds: t.elapsed().as_secs_f64(),
                    reused,
                });
                Ok(StackReport { phases, ..(*report).clone() })
            }
            Err(e) => Err(e),
        }
    }
}
