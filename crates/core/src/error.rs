//! The unified analysis error type.

use std::error::Error;
use std::fmt;

use stamp_ai::IcfgError;
use stamp_cfg::CfgError;
use stamp_isa::asm::AsmError;
use stamp_path::PathError;
use stamp_stack::StackError;

/// Any failure of the analyzer pipeline, with the phase that raised it.
#[derive(Clone, Debug)]
pub enum AnalysisError {
    /// The source did not assemble (batch jobs only; the single-shot
    /// APIs take an already-assembled [`stamp_isa::Program`]).
    Assemble(AsmError),
    /// CFG reconstruction failed.
    Cfg(CfgError),
    /// Supergraph expansion failed (e.g. recursion).
    Icfg(IcfgError),
    /// Indirect jumps remained unresolved after the CFG ↔ value-analysis
    /// iteration; annotations are required.
    UnresolvedIndirects {
        /// Addresses of the unresolved jumps.
        addrs: Vec<u32>,
    },
    /// Path analysis failed (e.g. a loop without a bound).
    Path(PathError),
    /// Stack analysis failed.
    Stack(StackError),
    /// A symbol named in the API does not exist in the program.
    UnknownSymbol {
        /// The missing symbol.
        name: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Assemble(e) => write!(f, "{e}"),
            AnalysisError::Cfg(e) => write!(f, "CFG reconstruction: {e}"),
            AnalysisError::Icfg(e) => write!(f, "context expansion: {e}"),
            AnalysisError::UnresolvedIndirects { addrs } => {
                write!(f, "unresolved indirect jumps at ")?;
                for (i, a) in addrs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a:#010x}")?;
                }
                write!(f, "; add indirect-target annotations")
            }
            AnalysisError::Path(e) => write!(f, "path analysis: {e}"),
            AnalysisError::Stack(e) => write!(f, "stack analysis: {e}"),
            AnalysisError::UnknownSymbol { name } => {
                write!(f, "unknown symbol `{name}`")
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Assemble(e) => Some(e),
            AnalysisError::Cfg(e) => Some(e),
            AnalysisError::Icfg(e) => Some(e),
            AnalysisError::Path(e) => Some(e),
            AnalysisError::Stack(e) => Some(e),
            AnalysisError::UnresolvedIndirects { .. } | AnalysisError::UnknownSymbol { .. } => None,
        }
    }
}

impl From<AsmError> for AnalysisError {
    fn from(e: AsmError) -> AnalysisError {
        AnalysisError::Assemble(e)
    }
}

impl From<CfgError> for AnalysisError {
    fn from(e: CfgError) -> AnalysisError {
        AnalysisError::Cfg(e)
    }
}

impl From<IcfgError> for AnalysisError {
    fn from(e: IcfgError) -> AnalysisError {
        AnalysisError::Icfg(e)
    }
}

impl From<PathError> for AnalysisError {
    fn from(e: PathError) -> AnalysisError {
        AnalysisError::Path(e)
    }
}

impl From<StackError> for AnalysisError {
    fn from(e: StackError) -> AnalysisError {
        AnalysisError::Stack(e)
    }
}
