//! # stamp-core — the analyzer products: WCET (aiT) and stack (StackAnalyzer)
//!
//! This crate wires the paper's phases into the two tools it describes:
//!
//! * [`WcetAnalysis`] — "aiT determines the WCET of a program task in
//!   several phases: *CFG building* decodes … and reconstructs the
//!   control-flow graph from a binary program; *value analysis* computes
//!   value ranges for registers and address ranges …; *loop bound
//!   analysis* determines upper bounds for the number of iterations of
//!   simple loops; *cache analysis* classifies memory references as
//!   cache misses or hits; *pipeline analysis* predicts the behavior of
//!   the program on the processor pipeline; *path analysis* determines a
//!   worst-case execution path of the program."
//! * [`StackAnalysis`] — StackAnalyzer's per-task worst-case stack bound
//!   (§2), feeding the OSEK whole-system analysis in `stamp-stack`.
//!
//! The CFG-building ↔ value-analysis loop for indirect jumps is
//! implemented here: unresolved `jalr` targets found by the value
//! analysis (jump tables in ROM) are fed back into CFG reconstruction
//! until the graph is closed, as in the real tool chain.
//!
//! Results are delivered as a structured [`WcetReport`] with an
//! aiT-style text rendering ([`WcetReport::render`]), machine-readable
//! JSON ([`WcetReport::to_json`]), and an annotated control-flow graph
//! in DOT format ([`WcetReport::to_dot`]) standing in for the aiSee
//! visualization.
//!
//! # Example
//!
//! ```
//! use stamp_isa::asm::assemble;
//! use stamp_core::WcetAnalysis;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     ".text\nmain: li r1, 10\nloop: addi r1, r1, -1\nbnez r1, loop\nhalt\n",
//! )?;
//! let report = WcetAnalysis::new(&program).run()?;
//! assert!(report.wcet > 0);
//! println!("{}", report.render(&program));
//! # Ok(())
//! # }
//! ```

mod analyzer;
mod annot;
mod artifact;
mod batch;
mod error;
mod fingerprint;
mod json;
mod phase;
mod report;
mod stack_tool;
mod store_disk;

pub use analyzer::{AnalysisConfig, PhaseArtifacts, ValueArtifacts, WcetAnalysis};
pub use annot::Annotations;
pub use artifact::{ArtifactStats, ArtifactStore, PhaseStat};
pub use batch::{
    run_batch, run_batch_deadline, run_batch_with, run_job_guarded, BatchError, BatchJob,
    BatchReport, BatchRequest, BatchTarget, BatchVariant, JobOutcome, JobResult, SampleParams,
};
pub use error::AnalysisError;
pub use fingerprint::{Fingerprint, Fp};
pub use json::{Json, JsonParseError};
pub use phase::{plan_job, PhaseId, PhaseRequest};
pub use report::{PhaseStats, WcetReport};
pub use stack_tool::{StackAnalysis, StackReport};
