//! User annotations, mirroring aiT's annotation language.
//!
//! Annotations supply facts the analyses cannot derive: bounds for
//! data-dependent loops, targets of computed jumps the value analysis
//! cannot enumerate, and recursion depths for the stack analysis.
//! Locations are given by symbol name (resolved against the program's
//! symbol table) or raw address.

use std::collections::BTreeMap;

use stamp_isa::Program;

/// A collection of analysis annotations.
///
/// # Example
///
/// ```
/// use stamp_core::Annotations;
///
/// let ann = Annotations::new()
///     .loop_bound("search_loop", 10)
///     .recursion_depth("fac", 12);
/// assert_eq!(ann.loop_bounds().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    loop_bounds: Vec<(Loc, u64)>,
    indirect_targets: Vec<(Loc, Vec<Loc>)>,
    recursion_depths: Vec<(Loc, u32)>,
}

#[derive(Clone, Debug)]
enum Loc {
    Symbol(String),
    Addr(u32),
}

impl Loc {
    fn resolve(&self, program: &Program) -> Option<u32> {
        match self {
            Loc::Symbol(s) => program.symbols.addr_of(s),
            Loc::Addr(a) => Some(*a),
        }
    }
}

impl Annotations {
    /// No annotations.
    pub fn new() -> Annotations {
        Annotations::default()
    }

    /// Bounds the loop whose header starts at the given symbol: the
    /// header executes at most `bound` times per loop entry.
    pub fn loop_bound(mut self, header: impl Into<String>, bound: u64) -> Annotations {
        self.loop_bounds.push((Loc::Symbol(header.into()), bound));
        self
    }

    /// Bounds the loop whose header starts at `addr`.
    pub fn loop_bound_at(mut self, addr: u32, bound: u64) -> Annotations {
        self.loop_bounds.push((Loc::Addr(addr), bound));
        self
    }

    /// Declares the possible targets of the indirect jump at `addr`.
    pub fn indirect_target_addrs(
        mut self,
        addr: u32,
        targets: impl IntoIterator<Item = u32>,
    ) -> Annotations {
        self.indirect_targets.push((Loc::Addr(addr), targets.into_iter().map(Loc::Addr).collect()));
        self
    }

    /// Declares the possible targets (by symbol) of the indirect jump at
    /// the instruction labelled `at`.
    pub fn indirect_targets(
        mut self,
        at: impl Into<String>,
        targets: impl IntoIterator<Item = String>,
    ) -> Annotations {
        self.indirect_targets
            .push((Loc::Symbol(at.into()), targets.into_iter().map(Loc::Symbol).collect()));
        self
    }

    /// Bounds the recursion depth of the function labelled `function`
    /// (stack analysis, call-graph mode).
    pub fn recursion_depth(mut self, function: impl Into<String>, depth: u32) -> Annotations {
        self.recursion_depths.push((Loc::Symbol(function.into()), depth));
        self
    }

    /// Number of loop-bound annotations.
    pub fn loop_bounds(&self) -> &[(impl std::fmt::Debug, u64)] {
        &self.loop_bounds
    }

    /// Resolves loop bounds to header addresses.
    pub(crate) fn resolved_loop_bounds(&self, program: &Program) -> BTreeMap<u32, u64> {
        self.loop_bounds.iter().filter_map(|(l, b)| l.resolve(program).map(|a| (a, *b))).collect()
    }

    /// Resolves indirect-target annotations to addresses.
    pub(crate) fn resolved_indirects(&self, program: &Program) -> BTreeMap<u32, Vec<u32>> {
        self.indirect_targets
            .iter()
            .filter_map(|(at, ts)| {
                let a = at.resolve(program)?;
                let targets: Vec<u32> = ts.iter().filter_map(|t| t.resolve(program)).collect();
                Some((a, targets))
            })
            .collect()
    }

    /// Resolves recursion depths to function entry addresses.
    pub(crate) fn resolved_recursion(&self, program: &Program) -> BTreeMap<u32, u32> {
        self.recursion_depths
            .iter()
            .filter_map(|(l, d)| l.resolve(program).map(|a| (a, *d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stamp_isa::asm::assemble;

    #[test]
    fn symbols_resolve_against_program() {
        let p = assemble(".text\nmain: nop\nloop: j loop\n").unwrap();
        let ann = Annotations::new().loop_bound("loop", 5).loop_bound("nonexistent", 1);
        let resolved = ann.resolved_loop_bounds(&p);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[&4], 5);
    }

    #[test]
    fn addresses_pass_through() {
        let p = assemble(".text\nmain: halt\n").unwrap();
        let ann =
            Annotations::new().loop_bound_at(0x40, 3).indirect_target_addrs(0x10, [0x20, 0x30]);
        assert_eq!(ann.resolved_loop_bounds(&p)[&0x40], 3);
        assert_eq!(ann.resolved_indirects(&p)[&0x10], vec![0x20, 0x30]);
    }
}
