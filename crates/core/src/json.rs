//! A minimal JSON value writer (keeps `serde_json` out of the allowed
//! dependency set; reports are small and flat).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number (rendered without trailing zeros for integers).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience integer constructor.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Convenience string constructor.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Convenience object constructor.
    pub fn obj(entries: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let j = Json::obj([
            ("wcet", Json::int(1234)),
            ("name", Json::str("fib\"call")),
            ("phases", Json::Arr(vec![Json::int(1), Json::Num(2.5), Json::Null])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fib\"call","ok":true,"phases":[1,2.5,null],"wcet":1234}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(Json::str("a\nb\u{1}").to_string(), "\"a\\nb\\u0001\"");
    }
}
